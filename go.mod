module mdrep

go 1.22

require golang.org/x/tools v0.28.0
