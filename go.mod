module mdrep

go 1.22
