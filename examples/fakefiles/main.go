// Fake-file suppression (the E1 story): a population with vote-stuffing
// polluters, compared under three judgement schemes — no defence, naive
// vote averaging, and the paper's reputation-weighted judgement. Prints
// the fake-download ratio over time for each.
package main

import (
	"fmt"
	"log"

	"mdrep/internal/metrics"
	"mdrep/internal/p2psim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("simulating 300 peers for 14 days under a 20% polluter attack…")
	series := make([]*metrics.Series, 0, 3)
	for _, scheme := range []p2psim.Scheme{
		p2psim.SchemeNone,
		p2psim.SchemeNaiveVoting,
		p2psim.SchemeMDRep,
	} {
		cfg := p2psim.DefaultConfig()
		cfg.Peers = 300
		cfg.Titles = 400
		cfg.Requests = 15000
		cfg.Scheme = scheme
		res, err := p2psim.Run(cfg)
		if err != nil {
			return err
		}
		series = append(series, res.FakeRatio)
		fmt.Printf("  %-13s fake ratio %.3f (%d downloads, %d requests walked away)\n",
			scheme.String()+":", res.FakeFraction(), res.TotalDownloads, res.AvoidedFakes)
	}
	fmt.Println()
	fmt.Print(metrics.AsciiChart("fake-download ratio over 14 days", 70, 14, series...))
	fmt.Println("\nThe undefended system sustains ~90% pollution on attacked titles;")
	fmt.Println("naive vote averaging is poisoned by the stuffed votes; the")
	fmt.Println("reputation-weighted judgement (Eq. 9) learns who to believe and")
	fmt.Println("drives the ratio down as honest evaluations accumulate.")
	return nil
}
