// Quickstart: build a tiny network, feed it the three kinds of evidence
// the paper combines (file evaluations, download volume, user ratings),
// and use the resulting multi-trust reputations to unmask a fake file
// before downloading it.
package main

import (
	"fmt"
	"log"
	"time"

	"mdrep"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Five peers: 0 is "us", 1-2 are honest friends, 3 is a stranger,
	// 4 is a polluter pushing a fake file.
	const (
		us       = 0
		friendA  = 1
		friendB  = 2
		stranger = 3
		polluter = 4
	)
	sys, err := mdrep.NewSystem(5,
		mdrep.WithWeights(0.5, 0.3, 0.2), // α FM + β DM + γ UM (Eq. 7)
		mdrep.WithBlend(0.4, 0.6),        // η implicit + ρ explicit (Eq. 1)
		mdrep.WithSteps(1),               // one-step multi-trust, as in Maze
		mdrep.WithFakeThreshold(0.5),
	)
	if err != nil {
		return err
	}
	now := time.Duration(0)

	// Evidence 1 — file-based trust: we and our friends evaluated the
	// same classics similarly; the polluter disagrees wildly.
	history := []struct {
		peer int
		file mdrep.FileID
		vote float64
	}{
		{us, "classic-1", 0.95}, {friendA, "classic-1", 0.9}, {polluter, "classic-1", 0.1},
		{us, "classic-2", 0.2}, {friendA, "classic-2", 0.3}, {friendB, "classic-2", 0.25},
		{us, "classic-3", 0.85}, {friendB, "classic-3", 0.9},
	}
	for _, h := range history {
		if err := sys.Vote(h.peer, h.file, h.vote, now); err != nil {
			return err
		}
	}

	// Evidence 2 — download volume: we fetched 700 MB of good data from
	// friend A, and kept the files for weeks (strong implicit approval).
	if err := sys.RecordDownload(us, friendA, "classic-1", 700<<20, now); err != nil {
		return err
	}
	if err := sys.ObserveRetention(us, "classic-1", 21*24*time.Hour, false, now); err != nil {
		return err
	}

	// Evidence 3 — user ratings: friend B goes on our friend list.
	if err := sys.AddFriend(us, friendB); err != nil {
		return err
	}

	// Our multi-trust view of the network (row "us" of RM = TM^n).
	reps, err := sys.Reputations(us, now)
	if err != nil {
		return err
	}
	fmt.Println("our reputation view:")
	for peer, name := range map[int]string{
		friendA: "friend A", friendB: "friend B", stranger: "stranger", polluter: "polluter",
	} {
		fmt.Printf("  %-9s %.3f\n", name, reps[peer])
	}

	// A new title appears. The polluter's copy is promoted hard; friend A
	// has the real copy and rates it honestly. Eq. (9) weighs the
	// evaluations by OUR trust in each evaluator.
	fakeOpinions := []mdrep.OwnerEvaluation{
		{Owner: polluter, Value: 1.0}, // "best quality!!"
		{Owner: friendA, Value: 0.1},  // "it's a loop of static"
	}
	j, err := sys.JudgeFile(us, fakeOpinions, now)
	if err != nil {
		return err
	}
	fmt.Printf("\nsuspicious copy: R_f = %.3f, fake = %v\n", j.Reputation, j.Fake)

	realOpinions := []mdrep.OwnerEvaluation{
		{Owner: friendA, Value: 0.9},
		{Owner: friendB, Value: 0.95},
	}
	j, err = sys.JudgeFile(us, realOpinions, now)
	if err != nil {
		return err
	}
	fmt.Printf("friends' copy:   R_f = %.3f, fake = %v\n", j.Reputation, j.Fake)
	return nil
}
