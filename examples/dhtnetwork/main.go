// DHT network (the §4.1 story): an in-process ring of real TCP nodes
// storing signed EvaluationInfo records with the file index. Demonstrates
// publication, retrieval from another node, forgery rejection, and
// fault-tolerant retrieval after a node failure.
package main

import (
	"fmt"
	"log"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A PKI directory shared by all replicas (§4.2: signatures defeat
	// forged evaluations).
	dir := identity.NewDirectory()
	alice, err := identity.Generate(identity.NewDeterministicReader(1))
	if err != nil {
		return err
	}
	if _, err := dir.Register(alice.PublicKey()); err != nil {
		return err
	}

	// Six verifying DHT nodes over loopback TCP.
	client := dht.NewTCPClient()
	const n = 6
	servers := make([]*dht.TCPNodeServer, 0, n)
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	for i := 0; i < n; i++ {
		cfg := dht.NodeConfig{SuccessorListLen: 3, Storage: dht.NewStorage(0, dir)}
		srv, err := dht.ServeTCPNode("127.0.0.1:0", client, cfg)
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		if i > 0 {
			if err := srv.Node().Join(servers[0].Addr()); err != nil {
				return err
			}
		}
	}
	for round := 0; round < 2*n+6; round++ {
		for _, s := range servers {
			s.Node().Stabilize()
		}
	}
	for _, s := range servers {
		s.Node().FixAllFingers()
	}
	fmt.Printf("ring of %d TCP nodes stabilised\n", n)

	// Alice publishes her file's index entry with her signed evaluation.
	info := eval.Info{
		FileID:     "4c6f72656d20697073756d",
		OwnerID:    alice.ID(),
		Evaluation: 0.92,
		Timestamp:  time.Duration(1),
	}
	if err := info.Sign(alice); err != nil {
		return err
	}
	key := dht.HashKey(string(info.FileID))
	if err := servers[0].Node().Publish([]dht.StoredRecord{{Key: key, Info: info}}); err != nil {
		return err
	}
	fmt.Printf("alice published evaluation %.2f of %s\n", info.Evaluation, info.FileID)

	// Any node can retrieve it before deciding to download (§4.1 step 3).
	recs, err := servers[n-1].Node().Retrieve(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	fmt.Printf("node %d retrieved %d evaluation(s); first: %.2f by %s\n",
		n-1, len(recs), recs[0].Info.Evaluation, recs[0].Info.OwnerID)

	// A forger re-publishes Alice's record with the score flipped; the
	// verifying replicas drop it.
	forged := info
	forged.Evaluation = 0.05
	forged.Timestamp = time.Duration(2)
	if err := servers[2].Node().Publish([]dht.StoredRecord{{Key: key, Info: forged}}); err != nil {
		return err
	}
	recs, err = servers[n-1].Node().Retrieve(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	fmt.Printf("after forgery attempt: evaluation still %.2f (signature check held)\n",
		recs[0].Info.Evaluation)

	// Kill the key's root; the successor-list replicas keep the record
	// available once the ring stabilises around the hole.
	root, err := servers[0].Node().Lookup(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	var survivors []*dht.TCPNodeServer
	for _, s := range servers {
		if s.Addr() == root.Addr {
			_ = s.Close()
			continue
		}
		survivors = append(survivors, s)
	}
	if len(survivors) == n {
		fmt.Println("(root was an external node; skipping failure demo)")
		return nil
	}
	for round := 0; round < 4*n; round++ {
		for _, s := range survivors {
			s.Node().Stabilize()
		}
	}
	for _, s := range survivors {
		s.Node().FixAllFingers()
	}
	recs, err = survivors[0].Node().Retrieve(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	fmt.Printf("after killing the root node: still %d evaluation(s) retrievable\n", len(recs))
	return nil
}
