// Service differentiation (the E2 story): free-riders in a population of
// sharers, under the paper's trust-based incentive mechanism — queue
// offsets and bandwidth quotas keyed on multi-trust reputation. Prints
// the per-class service levels.
package main

import (
	"fmt"
	"log"

	"mdrep/internal/p2psim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := p2psim.IncentiveConfig()
	cfg.Peers = 300
	cfg.Titles = 400
	cfg.Requests = 15000
	fmt.Printf("simulating %d peers (%d%% free-riders) for %.0f days…\n",
		cfg.Peers, int(cfg.FreeRiderFrac*100), cfg.Duration.Hours()/24)
	res, err := p2psim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("\nsteady-state service by class:")
	fmt.Println("class        mean wait   p90 wait   granted bandwidth   reputation")
	for _, b := range []p2psim.Behavior{p2psim.Honest, p2psim.FreeRider} {
		w := res.WaitByClass[b]
		bw := res.BandwidthByClass[b]
		fmt.Printf("%-11s  %7.0f s  %7.0f s  %12.0f B/s   %.6f\n",
			b, w.Mean(), w.Quantile(0.9), bw.Mean(), res.ReputationByClass[b])
	}
	hw := res.WaitByClass[p2psim.Honest]
	fw := res.WaitByClass[p2psim.FreeRider]
	hb := res.BandwidthByClass[p2psim.Honest]
	fb := res.BandwidthByClass[p2psim.FreeRider]
	fmt.Printf("\nsharers wait %.1fx less and transfer %.1fx faster than free-riders.\n",
		fw.Mean()/hw.Mean(), hb.Mean()/fb.Mean())
	fmt.Println("Uploading real files earns download-volume trust from the peers you")
	fmt.Println("serve; two-step multi-trust propagates that record to uploaders who")
	fmt.Println("never met you — free-riders have no record to propagate.")
	return nil
}
