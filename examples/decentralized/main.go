// Decentralized protocol (§4.1 steps 4–6): no omniscient engine — each
// peer holds only its own evaluations, ledger and ratings, exchanges
// signed evaluation lists with other peers, retrieves a file's
// EvaluationInfo records from a verifying DHT ring, and judges the file
// against its own locally computed trust row.
package main

import (
	"fmt"
	"log"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
	"mdrep/internal/peer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir := identity.NewDirectory()
	exchange := peer.NewExchange()

	// Four participants: alice (us), two honest friends, one polluter.
	names := []string{"alice", "bob", "carol", "mallory"}
	cfg := peer.DefaultConfig()
	cfg.Reputation.Blend = eval.Blend{Eta: 0.4, Rho: 0.6}
	peers := make(map[string]*peer.Peer, len(names))
	for i, name := range names {
		id, err := identity.Generate(identity.NewDeterministicReader(uint64(100 + i)))
		if err != nil {
			return err
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			return err
		}
		p, err := peer.New(id, dir, exchange, cfg)
		if err != nil {
			return err
		}
		exchange.Register(p)
		peers[name] = p
	}
	alice := peers["alice"]

	// Shared history: everyone owns the same three classics; the honest
	// peers kept them (and vote), mallory hates what everyone loves.
	classics := []eval.FileID{"classic-1", "classic-2", "classic-3"}
	for _, f := range classics {
		for _, name := range []string{"alice", "bob", "carol"} {
			peers[name].ObserveRetention(f, 20*24*time.Hour, false)
			peers[name].Vote(f, 0.9)
		}
		peers["mallory"].ObserveRetention(f, time.Hour, true)
		peers["mallory"].Vote(f, 0.05)
	}
	// Alice also downloaded from bob and it was good: download-volume
	// trust.
	if err := alice.RecordDownload(peers["bob"].ID(), "classic-1", 700<<20); err != nil {
		return err
	}
	// And carol is a friend.
	if err := alice.RateUser(peers["carol"].ID(), 1.0); err != nil {
		return err
	}

	// Step 4: alice fetches everyone's signed evaluation lists and builds
	// her one-step trust row locally.
	for _, name := range []string{"bob", "carol", "mallory"} {
		n, err := alice.SyncPeer(peers[name].ID())
		if err != nil {
			return err
		}
		fmt.Printf("alice synced %d signed evaluations from %s\n", n, name)
	}
	row := alice.TrustRow()
	fmt.Println("\nalice's trust row:")
	for _, name := range []string{"bob", "carol", "mallory"} {
		fmt.Printf("  %-8s %.3f\n", name, row[peers[name].ID()])
	}

	// A DHT ring stores the new file's evaluations (§4.1 steps 1–3).
	ring, err := dht.NewRing(8, func(int) dht.NodeConfig {
		return dht.NodeConfig{SuccessorListLen: 3, Storage: dht.NewStorage(0, dir)}
	})
	if err != nil {
		return err
	}
	const newFile eval.FileID = "new-release"
	peers["bob"].Vote(newFile, 0.1)     // bob found it fake
	peers["mallory"].Vote(newFile, 1.0) // mallory promotes it
	key := dht.HashKey(string(newFile))
	for _, name := range []string{"bob", "mallory"} {
		infos, err := peers[name].SignedEvaluations()
		if err != nil {
			return err
		}
		for _, in := range infos {
			if in.FileID == newFile {
				if err := ring.Nodes[0].Publish([]dht.StoredRecord{{Key: key, Info: in}}); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("\nbob and mallory published their evaluations of %q to the DHT\n", newFile)

	// Step 5: alice retrieves the records and judges before downloading.
	stored, err := ring.Nodes[5].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	records := make([]eval.Info, 0, len(stored))
	for _, r := range stored {
		records = append(records, r.Info)
	}
	j, err := alice.JudgeFile(records)
	if err != nil {
		return err
	}
	fmt.Printf("alice retrieved %d records and judges %q: R_f = %.3f, fake = %v\n",
		len(records), newFile, j.Reputation, j.Fake)

	// Step 6: service differentiation at alice's upload queue.
	if err := alice.EnqueueUpload(peers["mallory"].ID(), "classic-1", 1<<20, 0); err != nil {
		return err
	}
	if err := alice.EnqueueUpload(peers["carol"].ID(), "classic-1", 1<<20, time.Minute); err != nil {
		return err
	}
	first, _ := alice.NextUpload()
	fmt.Printf("\nupload queue served first: request arriving at %v (carol overtakes mallory)\n",
		first.Arrival)
	return nil
}
