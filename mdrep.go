package mdrep

import (
	"fmt"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/incentive"
	"mdrep/internal/obs"
)

// FileID identifies a file by content hash.
type FileID = eval.FileID

// OwnerEvaluation is one evaluator's published opinion of a file, as
// retrieved from the file's index peer.
type OwnerEvaluation = core.OwnerEvaluation

// Judgement is the outcome of judging a file before download.
type Judgement = core.Judgement

// Option customises a System.
type Option func(*options) error

type options struct {
	rep    core.Config
	policy incentive.Policy
	reg    *MetricsRegistry
	clock  func() time.Time
	shards int
}

// WithWeights sets the dimension weights α (file), β (download volume) and
// γ (user rating) of Eq. (7); they must sum to 1.
func WithWeights(alpha, beta, gamma float64) Option {
	return func(o *options) error {
		o.rep.Alpha, o.rep.Beta, o.rep.Gamma = alpha, beta, gamma
		return nil
	}
}

// WithBlend sets the implicit/explicit evaluation weights η and ρ of
// Eq. (1); they must sum to 1.
func WithBlend(eta, rho float64) Option {
	return func(o *options) error {
		o.rep.Blend = eval.Blend{Eta: eta, Rho: rho}
		return nil
	}
}

// WithSteps sets the multi-trust depth n of Eq. (8).
func WithSteps(n int) Option {
	return func(o *options) error {
		o.rep.Steps = n
		return nil
	}
}

// WithWindow sets the evaluation retention interval (§4.3); zero keeps
// evaluations forever.
func WithWindow(w time.Duration) Option {
	return func(o *options) error {
		o.rep.Window = w
		return nil
	}
}

// WithFakeThreshold sets the local R_f threshold below which a file is
// judged fake (§3.3).
func WithFakeThreshold(t float64) Option {
	return func(o *options) error {
		o.rep.FakeThreshold = t
		return nil
	}
}

// WithRetention sets the retention-time → implicit-evaluation mapping.
func WithRetention(saturation time.Duration, floor float64) Option {
	return func(o *options) error {
		o.rep.Retention = eval.RetentionModel{Saturation: saturation, Floor: floor}
		return nil
	}
}

// WithMetrics publishes the engine's observability surface — matrix
// build and re-freeze timings, dirty-row counts, reputation-walk
// latency — into reg. Timings use clock; a nil clock reads the wall
// clock, while tests pass a fake clock for deterministic durations.
// Instrumentation never feeds time into reputation state, so results
// stay bit-identical with or without it.
func WithMetrics(reg *MetricsRegistry, clock func() time.Time) Option {
	return func(o *options) error {
		o.reg = reg
		o.clock = clock
		return nil
	}
}

// WithShards partitions the trust core across k shards (consistent
// hash on peer index): mutations for different shards proceed in
// parallel, batches group-commit per shard, and rebuilds run one worker
// per shard — all with bit-identical results to the unsharded engine
// for any k. Values of 0 or 1 keep the single-lock core.Concurrent
// facade.
func WithShards(k int) Option {
	return func(o *options) error {
		if k < 0 || k > core.MaxShards {
			return fmt.Errorf("shard count %d outside [0, %d]", k, core.MaxShards)
		}
		o.shards = k
		return nil
	}
}

// WithIncentivePolicy replaces the service-differentiation policy (§3.4).
func WithIncentivePolicy(p incentive.Policy) Option {
	return func(o *options) error {
		if err := p.Validate(); err != nil {
			return err
		}
		o.policy = p
		return nil
	}
}

// trustCore is the engine surface System depends on. Both facades over
// the trust core satisfy it: core.Concurrent (one writer lock) and
// core.Sharded (K independent shard locks); they produce bit-identical
// results, so which one backs a System is purely a throughput choice.
type trustCore interface {
	N() int
	RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error
	Vote(p int, f eval.FileID, value float64, now time.Duration) error
	ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error
	Evaluation(p int, f eval.FileID, now time.Duration) (float64, bool)
	RateUser(i, j int, value float64) error
	AddFriend(i, j int) error
	Blacklist(i, j int) error
	Reputations(i int, now time.Duration) (map[int]float64, error)
	JudgeFile(i int, owners []core.OwnerEvaluation, now time.Duration) (core.Judgement, error)
	CollectOwnerEvaluations(f eval.FileID, owners []int, now time.Duration) []core.OwnerEvaluation
	Compact(now time.Duration)
}

// System is the public face of the reputation system for a population of
// peers indexed [0, n). It is safe for concurrent use: mutations
// serialise behind a writer lock (per shard when built WithShards) while
// reputation queries walk an immutable frozen snapshot of the trust
// matrix, so queries from many goroutines proceed in parallel.
type System struct {
	engine trustCore
	policy incentive.Policy
}

// NewSystem builds a reputation system for n peers with the paper's
// default parameters, customised by opts.
func NewSystem(n int, opts ...Option) (*System, error) {
	o := options{rep: core.DefaultConfig(), policy: incentive.DefaultPolicy()}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, fmt.Errorf("mdrep: %w", err)
		}
	}
	var clock obs.Clock
	if o.reg != nil {
		clock = obs.Clock(o.clock)
		if o.clock == nil {
			clock = obs.Clock(obs.WallClock)
		}
	}
	if o.shards > 1 {
		engine, err := core.NewSharded(n, o.shards, o.rep)
		if err != nil {
			return nil, err
		}
		if o.reg != nil {
			engine.SetObserver(core.NewEngineObs(o.reg, clock))
			engine.SetShardObserver(core.NewShardedObs(o.reg, clock, o.shards))
		}
		return &System{engine: engine, policy: o.policy}, nil
	}
	engine, err := core.NewConcurrentEngine(n, o.rep)
	if err != nil {
		return nil, err
	}
	if o.reg != nil {
		engine.SetObserver(core.NewEngineObs(o.reg, clock))
	}
	return &System{engine: engine, policy: o.policy}, nil
}

// N returns the population size.
func (s *System) N() int { return s.engine.N() }

// RecordDownload registers that downloader fetched file f (size bytes)
// from uploader at virtual time now.
func (s *System) RecordDownload(downloader, uploader int, f FileID, size int64, now time.Duration) error {
	return s.engine.RecordDownload(downloader, uploader, f, size, now)
}

// Vote records peer p's explicit evaluation (in [0,1]) of file f.
func (s *System) Vote(p int, f FileID, value float64, now time.Duration) error {
	return s.engine.Vote(p, f, value, now)
}

// ObserveRetention records an implicit evaluation from how long peer p
// kept file f and whether it deleted it.
func (s *System) ObserveRetention(p int, f FileID, retention time.Duration, deleted bool, now time.Duration) error {
	return s.engine.ObserveRetention(p, f, retention, deleted, now)
}

// Evaluation returns peer p's current blended evaluation of f.
func (s *System) Evaluation(p int, f FileID, now time.Duration) (float64, bool) {
	return s.engine.Evaluation(p, f, now)
}

// RateUser records an explicit user rating UT (Eq. 6).
func (s *System) RateUser(i, j int, value float64) error {
	return s.engine.RateUser(i, j, value)
}

// AddFriend gives j the friend-list trust in i's view.
func (s *System) AddFriend(i, j int) error { return s.engine.AddFriend(i, j) }

// Blacklist permanently zeroes j's user trust in i's view.
func (s *System) Blacklist(i, j int) error { return s.engine.Blacklist(i, j) }

// Reputations returns peer i's multi-trust reputation view (row i of
// RM = TM^n): a map from peer to trust mass.
func (s *System) Reputations(i int, now time.Duration) (map[int]float64, error) {
	return s.engine.Reputations(i, now)
}

// JudgeFile computes R_f (Eq. 9) for requester i over the file's
// evaluator opinions and applies the fake threshold.
func (s *System) JudgeFile(i int, owners []OwnerEvaluation, now time.Duration) (Judgement, error) {
	return s.engine.JudgeFile(i, owners, now)
}

// CollectOwnerEvaluations gathers the live evaluations of f held by the
// given peers — the simulation-side stand-in for a DHT retrieval.
func (s *System) CollectOwnerEvaluations(f FileID, owners []int, now time.Duration) []OwnerEvaluation {
	return s.engine.CollectOwnerEvaluations(f, owners, now)
}

// Compact drops expired evaluations (§4.3); call periodically in long
// simulations.
func (s *System) Compact(now time.Duration) { s.engine.Compact(now) }

// NewUploadQueue returns a service-differentiation queue (§3.4) under the
// system's incentive policy, for one uploading peer.
func (s *System) NewUploadQueue() (*incentive.Queue, error) {
	return incentive.NewQueue(s.policy)
}

// NewUploadServer returns a serving simulation of one uploader under the
// system's incentive policy.
func (s *System) NewUploadServer() (*incentive.Server, error) {
	return incentive.NewServer(s.policy)
}

// Policy returns the system's incentive policy.
func (s *System) Policy() incentive.Policy { return s.policy }
