package mdrep

import (
	"io"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/peer"
)

// The decentralised face of the library (§4.1 steps 4–6): participants
// that hold only their own state and compute trust over the network. See
// examples/decentralized for an end-to-end walk-through.

// PeerID identifies a participant by the hash of its public key.
type PeerID = identity.PeerID

// Identity is a participant's signing key pair.
type Identity = identity.Identity

// PKIDirectory resolves peer IDs to public keys.
type PKIDirectory = identity.Directory

// EvaluationInfo is the signed per-file evaluation record exchanged
// between peers and stored in the DHT.
type EvaluationInfo = eval.Info

// Participant is a protocol peer: it exchanges signed evaluation lists,
// computes its one-step trust row locally, judges files from DHT records,
// and runs a reputation-ordered upload queue.
type Participant = peer.Peer

// ParticipantConfig parameterises a Participant.
type ParticipantConfig = peer.Config

// PeerNetwork is how a participant fetches other participants' evaluation
// lists.
type PeerNetwork = peer.Network

// EvaluationExchange is the in-memory PeerNetwork for simulations and
// tests.
type EvaluationExchange = peer.Exchange

// NewIdentity generates a participant identity; pass nil to use
// crypto/rand, or a deterministic reader in simulations.
func NewIdentity(rand io.Reader) (*Identity, error) {
	return identity.Generate(rand)
}

// NewPKIDirectory returns an empty PKI directory.
func NewPKIDirectory() *PKIDirectory { return identity.NewDirectory() }

// NewEvaluationExchange returns an empty in-memory exchange.
func NewEvaluationExchange() *EvaluationExchange { return peer.NewExchange() }

// NewParticipant builds a protocol peer with the paper's defaults.
func NewParticipant(id *Identity, dir *PKIDirectory, network PeerNetwork) (*Participant, error) {
	return peer.New(id, dir, network, peer.DefaultConfig())
}

// NewParticipantWithConfig builds a protocol peer with explicit
// configuration.
func NewParticipantWithConfig(id *Identity, dir *PKIDirectory, network PeerNetwork, cfg ParticipantConfig) (*Participant, error) {
	return peer.New(id, dir, network, cfg)
}
