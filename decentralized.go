package mdrep

import (
	"io"
	"sync"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/peer"
)

// The decentralised face of the library (§4.1 steps 4–6): participants
// that hold only their own state and compute trust over the network. See
// examples/decentralized for an end-to-end walk-through.

// PeerID identifies a participant by the hash of its public key.
type PeerID = identity.PeerID

// Identity is a participant's signing key pair.
type Identity = identity.Identity

// PKIDirectory resolves peer IDs to public keys.
type PKIDirectory = identity.Directory

// EvaluationInfo is the signed per-file evaluation record exchanged
// between peers and stored in the DHT.
type EvaluationInfo = eval.Info

// Participant is a protocol peer: it exchanges signed evaluation lists,
// computes its one-step trust row locally, judges files from DHT records,
// and runs a reputation-ordered upload queue.
type Participant = peer.Peer

// ParticipantConfig parameterises a Participant.
type ParticipantConfig = peer.Config

// PeerNetwork is how a participant fetches other participants' evaluation
// lists.
type PeerNetwork = peer.Network

// EvaluationExchange is the in-memory PeerNetwork for simulations and
// tests.
type EvaluationExchange = peer.Exchange

// NewIdentity generates a participant identity; pass nil to use
// crypto/rand, or a deterministic reader in simulations.
func NewIdentity(rand io.Reader) (*Identity, error) {
	return identity.Generate(rand)
}

// NewPKIDirectory returns an empty PKI directory.
func NewPKIDirectory() *PKIDirectory { return identity.NewDirectory() }

// NewEvaluationExchange returns an empty in-memory exchange.
func NewEvaluationExchange() *EvaluationExchange { return peer.NewExchange() }

// NewParticipant builds a protocol peer with the paper's defaults.
func NewParticipant(id *Identity, dir *PKIDirectory, network PeerNetwork) (*Participant, error) {
	return peer.New(id, dir, network, peer.DefaultConfig())
}

// NewParticipantWithConfig builds a protocol peer with explicit
// configuration.
func NewParticipantWithConfig(id *Identity, dir *PKIDirectory, network PeerNetwork, cfg ParticipantConfig) (*Participant, error) {
	return peer.New(id, dir, network, cfg)
}

// RecordSource supplies the signed evaluation records published for a
// file — normally backed by a DHT node's replicated record store.
type RecordSource interface {
	FileEvaluations(f FileID) ([]EvaluationInfo, error)
}

// EventCounter is a monotonic, concurrency-safe counter; the resilience
// layer exposes its degraded-mode decisions through these. Counters are
// registry instruments (see MetricsRegistry) so they double as exported
// series.
type EventCounter = metrics.Counter

// MetricsRegistry collects the library's runtime metrics for export
// (Prometheus text, expvar, or a one-shot Dump).
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// dhtRecordSource adapts a DHT node's Retrieve to RecordSource.
type dhtRecordSource struct{ node *dht.Node }

// DHTRecordSource reads a file's evaluation records from the given DHT
// node (consulting replicas when the root's answer is missing).
func DHTRecordSource(node *dht.Node) RecordSource {
	return dhtRecordSource{node: node}
}

func (s dhtRecordSource) FileEvaluations(f FileID) ([]EvaluationInfo, error) {
	records, err := s.node.Retrieve(obs.SpanContext{}, dht.HashKey(string(f)))
	if err != nil {
		return nil, err
	}
	out := make([]EvaluationInfo, 0, len(records))
	for _, rec := range records {
		if rec.Info.FileID == f {
			out = append(out, rec.Info)
		}
	}
	return out, nil
}

// JudgeMetrics breaks judgement verdicts down by outcome. The counters
// are registry instruments: an un-instrumented judge binds them lazily
// to a private registry, Instrument rebinds them onto a shared one as
// judge_verdicts_total{outcome="dht"|"cache_fallback"|"error"}.
type JudgeMetrics struct {
	// Judged counts verdicts computed from fresh record-source answers.
	Judged *EventCounter
	// Fallbacks counts judgements served from the local cache because
	// the record source was unreachable.
	Fallbacks *EventCounter
	// Errors counts terminal source failures propagated to the caller.
	Errors *EventCounter
}

func bindJudgeMetrics(reg *MetricsRegistry, labels []string) *JudgeMetrics {
	outcome := func(v string) *EventCounter {
		return reg.Counter("judge_verdicts_total", append([]string{"outcome", v}, labels...)...)
	}
	return &JudgeMetrics{
		Judged:    outcome("dht"),
		Fallbacks: outcome("cache_fallback"),
		Errors:    outcome("error"),
	}
}

// ResilientJudge is the degradation policy for pre-download judgement
// (§4.1 step 5): judge from DHT records when the network answers, and
// fall back to the participant's locally cached evaluation lists when
// the DHT is unreachable. Terminal errors — anything that is not a
// transport failure — still propagate, so protocol violations are never
// papered over.
type ResilientJudge struct {
	Participant *Participant
	Source      RecordSource

	mu sync.Mutex
	m  *JudgeMetrics
}

// Instrument publishes the judge's verdict counters into reg with the
// given extra label pairs. Call before the judge is shared across
// goroutines; counts on the lazy private registry are not carried over.
func (r *ResilientJudge) Instrument(reg *MetricsRegistry, labels ...string) {
	if reg == nil {
		return
	}
	m := bindJudgeMetrics(reg, labels)
	r.mu.Lock()
	r.m = m
	r.mu.Unlock()
}

// Metrics returns the judge's verdict counters, binding them to a
// private registry if Instrument has not been called.
func (r *ResilientJudge) Metrics() *JudgeMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = bindJudgeMetrics(metrics.NewRegistry(), nil)
	}
	return r.m
}

// Judge returns the R_f verdict for f, degrading to the local trust
// view on retryable source failures.
func (r *ResilientJudge) Judge(f FileID) (Judgement, error) {
	m := r.Metrics()
	records, err := r.Source.FileEvaluations(f)
	if err != nil {
		if fault.Retryable(err) {
			m.Fallbacks.Inc()
			return r.Participant.JudgeFileFromCache(f), nil
		}
		m.Errors.Inc()
		return Judgement{}, err
	}
	m.Judged.Inc()
	return r.Participant.JudgeFile(records)
}
