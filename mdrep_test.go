package mdrep

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/incentive"
	"mdrep/internal/metrics"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(10)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 10 {
		t.Fatalf("N = %d", sys.N())
	}
}

func TestNewSystemOptionValidation(t *testing.T) {
	cases := [][]Option{
		{WithWeights(0.5, 0.5, 0.5)},
		{WithBlend(0.9, 0.9)},
		{WithSteps(0)},
		{WithWindow(-time.Second)},
		{WithFakeThreshold(2)},
		{WithIncentivePolicy(incentive.Policy{})},
	}
	for i, opts := range cases {
		if _, err := NewSystem(5, opts...); err == nil {
			t.Fatalf("option set %d accepted", i)
		}
	}
}

func TestSystemEndToEndJudgement(t *testing.T) {
	sys, err := NewSystem(4,
		WithWeights(1, 0, 0),
		WithBlend(0, 1),
		WithSteps(1),
		WithFakeThreshold(0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Peers 0 and 1 agree on history; peer 2 is a liar.
	now := time.Duration(0)
	mustVote := func(p int, f FileID, v float64) {
		t.Helper()
		if err := sys.Vote(p, f, v, now); err != nil {
			t.Fatal(err)
		}
	}
	mustVote(0, "shared-a", 0.9)
	mustVote(1, "shared-a", 0.9)
	mustVote(2, "shared-a", 0.1)

	owners := []OwnerEvaluation{
		{Owner: 1, Value: 0.1}, // trusted peer says fake
		{Owner: 2, Value: 1.0}, // liar promotes
	}
	j, err := sys.JudgeFile(0, owners, now)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known || !j.Fake {
		t.Fatalf("fake not identified: %+v", j)
	}
}

func TestSystemReputationsAndRetention(t *testing.T) {
	sys, err := NewSystem(3, WithRetention(24*time.Hour, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	if err := sys.RecordDownload(0, 1, "f", 1000, now); err != nil {
		t.Fatal(err)
	}
	if err := sys.ObserveRetention(0, "f", 48*time.Hour, false, now); err != nil {
		t.Fatal(err)
	}
	v, ok := sys.Evaluation(0, "f", now)
	if !ok || v != 1 {
		t.Fatalf("retention evaluation = %v, %v", v, ok)
	}
	reps, err := sys.Reputations(0, now)
	if err != nil {
		t.Fatal(err)
	}
	if reps[1] <= 0 {
		t.Fatalf("download earned no trust: %v", reps)
	}
}

func TestSystemUserRatings(t *testing.T) {
	sys, err := NewSystem(3, WithWeights(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddFriend(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RateUser(0, 2, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := sys.Blacklist(0, 2); err != nil {
		t.Fatal(err)
	}
	reps, err := sys.Reputations(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reps[1]-1) > 1e-9 {
		t.Fatalf("friend reputation %v, want 1 after blacklist", reps[1])
	}
	if reps[2] != 0 {
		t.Fatalf("blacklisted reputation %v", reps[2])
	}
}

func TestSystemWindowCompact(t *testing.T) {
	sys, err := NewSystem(2, WithWindow(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Vote(0, "f", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Evaluation(0, "f", 2*time.Hour); ok {
		t.Fatal("expired evaluation visible")
	}
	sys.Compact(2 * time.Hour)
	got := sys.CollectOwnerEvaluations("f", []int{0}, 2*time.Hour)
	if len(got) != 0 {
		t.Fatalf("expired evaluation collected: %+v", got)
	}
}

func TestSystemUploadQueue(t *testing.T) {
	sys, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.NewUploadQueue()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Push(incentive.Request{Requester: 1, Arrival: 0, Reputation: 0}); err != nil {
		t.Fatal(err)
	}
	pol := sys.Policy()
	if err := q.Push(incentive.Request{
		Requester: 2, Arrival: pol.MaxOffset / 2, Reputation: pol.RefReputation,
	}); err != nil {
		t.Fatal(err)
	}
	first, ok := q.Pop()
	if !ok || first.Requester != 2 {
		t.Fatalf("reputation offset inert: first = %+v", first)
	}
	srv, err := sys.NewUploadServer()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Enqueue(incentive.Request{Requester: 1, Size: 1 << 20, Reputation: 1}); err != nil {
		t.Fatal(err)
	}
	if done := srv.ServeAll(); len(done) != 1 {
		t.Fatalf("served %d", len(done))
	}
}

func TestSystemWithMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	tick := time.Unix(0, 0)
	clock := func() time.Time {
		tick = tick.Add(25 * time.Microsecond)
		return tick
	}
	sys, err := NewSystem(4, WithMetrics(reg, clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Vote(0, "f", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Vote(1, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Reputations(0, 0); err != nil {
		t.Fatal(err)
	}
	for _, dim := range []string{"fm", "dm", "um"} {
		h := reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", dim)
		if h.Count() == 0 {
			t.Errorf("no %s build spans recorded", dim)
		}
		if h.Sum() <= 0 {
			t.Errorf("%s build time zero with a ticking clock", dim)
		}
	}
	if got := reg.Counter("engine_tm_refreeze_total").Load(); got == 0 {
		t.Error("no TM re-freezes counted")
	}
	if reg.Histogram("engine_reputation_walk_seconds", metrics.DurationBuckets).Count() == 0 {
		t.Error("no reputation walk spans recorded")
	}
}

// shardParityScript drives every System mutator deterministically.
func shardParityScript(t *testing.T, sys *System) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 6; r++ {
		now := time.Duration(r) * time.Minute
		for p := 0; p < sys.N(); p++ {
			f := FileID([]byte{'f', byte('0' + (p+r)%4)})
			must(sys.Vote(p, f, float64((p*7+r)%10)/10, now))
			must(sys.ObserveRetention(p, f, time.Duration(r)*time.Hour, r%3 == 0, now))
			q := (p + 1 + r) % sys.N()
			if q != p {
				must(sys.RecordDownload(p, q, f, int64(1000*(r+1)), now))
				must(sys.RateUser(p, q, float64((p+r)%10)/10))
			}
		}
	}
	must(sys.AddFriend(0, 1))
	must(sys.Blacklist(2, 3))
	sys.Compact(3 * time.Minute)
}

// TestWithShardsParity proves the sharded facade is a drop-in: the same
// script through an unsharded and a 4-shard System yields bit-identical
// reputations, evaluations and judgements.
func TestWithShardsParity(t *testing.T) {
	opts := []Option{WithWindow(2 * time.Hour), WithFakeThreshold(0.4)}
	plain, err := NewSystem(10, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSystem(10, append([]Option{WithShards(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.engine.(*core.Sharded); !ok {
		t.Fatalf("WithShards(4) backed by %T, want *core.Sharded", sharded.engine)
	}
	shardParityScript(t, plain)
	shardParityScript(t, sharded)
	now := 10 * time.Minute
	for p := 0; p < plain.N(); p++ {
		a, err := plain.Reputations(p, now)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Reputations(p, now)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("peer %d: %d vs %d reputation entries", p, len(a), len(b))
		}
		for q, v := range a {
			if b[q] != v {
				t.Fatalf("peer %d: reputation of %d differs: %v vs %v", p, q, v, b[q])
			}
		}
	}
	va, oka := plain.Evaluation(1, FileID("f1"), now)
	vb, okb := sharded.Evaluation(1, FileID("f1"), now)
	if va != vb || oka != okb {
		t.Fatalf("evaluation differs: (%v,%v) vs (%v,%v)", va, oka, vb, okb)
	}
	owners := plain.CollectOwnerEvaluations(FileID("f1"), []int{0, 1, 2}, now)
	ja, err := plain.JudgeFile(4, owners, now)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := sharded.JudgeFile(4, sharded.CollectOwnerEvaluations(FileID("f1"), []int{0, 1, 2}, now), now)
	if err != nil {
		t.Fatal(err)
	}
	if ja != jb {
		t.Fatalf("judgement differs: %+v vs %+v", ja, jb)
	}
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := NewSystem(5, WithShards(-1)); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := NewSystem(5, WithShards(core.MaxShards+1)); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	sys, err := NewSystem(5, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.engine.(*core.Concurrent); !ok {
		t.Fatalf("WithShards(1) backed by %T, want *core.Concurrent", sys.engine)
	}
}

// TestWithShardsMetrics checks the per-shard observability surface is
// wired when both WithShards and WithMetrics are given.
func TestWithShardsMetrics(t *testing.T) {
	reg := NewMetricsRegistry()
	// Parallel shard rebuild workers read the clock concurrently, so the
	// fake must be thread-safe.
	var ticks atomic.Int64
	clock := func() time.Time {
		return time.Unix(0, ticks.Add(1)*int64(25*time.Microsecond))
	}
	sys, err := NewSystem(6, WithShards(3), WithMetrics(reg, clock))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Vote(0, "f", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Reputations(0, 0); err != nil {
		t.Fatal(err)
	}
	if reg.Histogram("sharded_rebuild_seconds", metrics.DurationBuckets).Count() == 0 {
		t.Error("no sharded rebuild spans recorded")
	}
	if reg.Histogram("engine_reputation_walk_seconds", metrics.DurationBuckets).Count() == 0 {
		t.Error("no reputation walk spans recorded")
	}
}
