package main

import "testing"

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunMassim(t *testing.T) {
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "massim", "-scenario", "nosuch", "-n", "500"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	// E6 at small scale is the cheapest end-to-end path.
	if err := run([]string{"-exp", "e6", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMassimShardedMirror(t *testing.T) {
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-seed", "3", "-baselines", "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-shards", "-2"}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
