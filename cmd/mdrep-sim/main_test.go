package main

import (
	"bytes"
	"io"
	"os"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunMassim(t *testing.T) {
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "massim", "-scenario", "nosuch", "-n", "500"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	// E6 at small scale is the cheapest end-to-end path.
	if err := run([]string{"-exp", "e6", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}

// capturedRun executes run with stdout redirected and returns what it
// printed.
func capturedRun(t *testing.T, args []string) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run(args)
	os.Stdout = orig
	w.Close()
	out, readErr := io.ReadAll(r)
	r.Close()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if runErr != nil {
		t.Fatalf("run %v: %v", args, runErr)
	}
	return string(out)
}

func TestRunWalk(t *testing.T) {
	args := []string{"-exp", "walk", "-n", "300", "-seed", "5", "-walks", "2000", "-depth", "3"}
	first := capturedRun(t, args)
	if !bytes.Contains([]byte(first), []byte("walk (E11)")) {
		t.Fatalf("missing E11 header in output:\n%s", first)
	}
	if !bytes.Contains([]byte(first), []byte("2000")) {
		t.Fatalf("missing the swept walk count in output:\n%s", first)
	}
	// The determinism contract holds end to end: a rerun of the same
	// (n, seed, walks, depth) prints byte-identical output.
	if second := capturedRun(t, args); second != first {
		t.Fatalf("walk experiment output changed across reruns:\n--- first\n%s\n--- second\n%s", first, second)
	}
	if err := run([]string{"-exp", "walk", "-walks", "0"}); err == nil {
		t.Fatal("zero walk count accepted")
	}
	if err := run([]string{"-exp", "walk", "-n", "1"}); err == nil {
		t.Fatal("single-user graph accepted")
	}
}

func TestRunMassimShardedMirror(t *testing.T) {
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-seed", "3", "-baselines", "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "massim", "-scenario", "whitewash", "-n", "500", "-shards", "-2"}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
