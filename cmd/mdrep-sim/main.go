// Command mdrep-sim runs the extension experiments E1–E6 (see DESIGN.md):
//
//	E1  fake-file suppression by judgement scheme
//	E2  service differentiation of free-riders vs sharers
//	E3  collusion: clique trust capture by mechanism
//	E4  request-coverage ablation per trust dimension
//	E5  multi-trust depth sweep in the sparse-vote regime
//	E6  DHT lookup/publication overhead and churn resilience
//	e1sweep  E1 across polluter fractions 10–40%
//	E7  dimension-weight (α/β/γ) ablation
//
// Usage:
//
//	mdrep-sim [-exp e1|e1sweep|e2|e3|e4|e5|e6|e7|all] [-scale small|full]
//	          [-metrics]
//
// With -metrics the run instruments the sparse kernels and prints a
// one-shot metrics report at exit; the per-step RM walk timings there
// (sparse_rowvecpow_step_seconds) are how to read the cost of the
// multi-trust depth n (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mdrep/internal/experiments"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdrep-sim", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id: e1..e6 or all")
	scale := fs.String("scale", "small", "experiment scale: small or full")
	withMetrics := fs.Bool("metrics", false, "instrument the sparse kernels and print a metrics report at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *withMetrics {
		reg := metrics.NewRegistry()
		sparse.Instrument(reg, obs.WallClock)
		defer func() {
			sparse.Uninstrument()
			_ = reg.Dump(os.Stderr)
		}()
	}
	sc := experiments.ScaleSmall
	switch *scale {
	case "small":
	case "full":
		sc = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	type renderer interface{ Render() string }
	runners := map[string]func() (renderer, error){
		"e1":      func() (renderer, error) { return experiments.E1FakeFiles(sc) },
		"e2":      func() (renderer, error) { return experiments.E2Incentive(sc) },
		"e3":      func() (renderer, error) { return experiments.E3Collusion(experiments.DefaultE3Config(sc)) },
		"e4":      func() (renderer, error) { return experiments.E4Ablation(sc) },
		"e5":      func() (renderer, error) { return experiments.E5Steps(experiments.DefaultE5Config(sc)) },
		"e6":      func() (renderer, error) { return experiments.E6DHT(experiments.DefaultE6Config(sc)) },
		"e1sweep": func() (renderer, error) { return experiments.E1PolluterSweep(sc) },
		"e7":      func() (renderer, error) { return experiments.E7Weights(sc) },
	}
	order := []string{"e1", "e1sweep", "e2", "e3", "e4", "e5", "e6", "e7"}

	var selected []string
	switch strings.ToLower(*exp) {
	case "all":
		selected = order
	default:
		if _, ok := runners[strings.ToLower(*exp)]; !ok {
			return fmt.Errorf("unknown experiment %q (want e1..e7, e1sweep, or all)", *exp)
		}
		selected = []string{strings.ToLower(*exp)}
	}
	for _, id := range selected {
		fmt.Printf("=== %s ===\n", strings.ToUpper(id))
		res, err := runners[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
	}
	return nil
}
