// Command mdrep-sim runs the extension experiments E1–E6 (see DESIGN.md):
//
//	E1  fake-file suppression by judgement scheme
//	E2  service differentiation of free-riders vs sharers
//	E3  collusion: clique trust capture by mechanism
//	E4  request-coverage ablation per trust dimension
//	E5  multi-trust depth sweep in the sparse-vote regime
//	E6  DHT lookup/publication overhead and churn resilience
//	e1sweep  E1 across polluter fractions 10–40%
//	E7  dimension-weight (α/β/γ) ablation
//	massim   million-peer adversarial scenarios (E9)
//	walk     Monte-Carlo random-walk RM estimation vs exact kernel (E11)
//
// Usage:
//
//	mdrep-sim [-exp e1|e1sweep|e2|e3|e4|e5|e6|e7|all] [-scale small|full]
//	          [-metrics]
//	mdrep-sim -exp massim [-scenario name|all] [-n peers] [-seed s]
//	          [-epochs e] [-baselines] [-shards k] [-metrics]
//	mdrep-sim -exp walk [-n users] [-seed s] [-walks w] [-depth d]
//	          [-dht [-dht-nodes k]] [-flight] [-metrics]
//
// The massim experiment runs the adversarial scenario library of
// internal/massim (collusion-front, whitewash, camouflage, strategic)
// at any population size from thousands to a million peers; -baselines
// adds the EigenTrust / BLUE / mirrored-engine comparison estimators at
// small n. Output is byte-identical for a fixed (scenario, n, seed).
//
// The walk experiment (E11) builds a seeded random trust matrix of -n
// users, runs walk ensembles of -depth steps sweeping walk counts up to
// -walks, and reports max/mean absolute error and top-10 agreement
// against the exact sparse.RowVecPow answer. Output is byte-identical
// for a fixed (n, seed, walks, depth).
//
// With -dht the walk experiment fetches TM rows through an in-memory
// DHT ring (retry layer included) instead of reading the matrix
// locally; the estimate must match the local twin byte for byte. With
// -flight the run enables causal tracing with the always-on flight
// recorder and prints the stitched trace trees at exit — for a
// DHT-sourced walk that is one tree per estimate: walk.estimate >
// walk.row_fetch > dht.retrieve > dht.op > dht.attempt > dht.rpc hops.
//
// With -metrics the run instruments the sparse kernels and prints a
// one-shot metrics report at exit; the per-step RM walk timings there
// (sparse_rowvecpow_step_seconds) are how to read the cost of the
// multi-trust depth n (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"mdrep/internal/chaos"
	"mdrep/internal/dht"
	"mdrep/internal/experiments"
	"mdrep/internal/flight"
	"mdrep/internal/massim"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
	"mdrep/internal/walk"
	"mdrep/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdrep-sim", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id: e1..e7, massim, walk, or all")
	scale := fs.String("scale", "small", "experiment scale: small or full")
	withMetrics := fs.Bool("metrics", false, "instrument the kernels and print a metrics report at exit")
	scenario := fs.String("scenario", "all", "massim scenario name or all")
	n := fs.Int("n", 10000, "massim population size / walk user count")
	seed := fs.Uint64("seed", 1, "massim/walk experiment seed")
	epochs := fs.Int("epochs", 0, "massim epoch count (0 = scenario default)")
	baselines := fs.Bool("baselines", false, "massim: run eigentrust/BLUE/engine comparison baselines")
	shards := fs.Int("shards", 0, "massim: back the mirrored engine with this many shards (0/1 = unsharded)")
	walks := fs.Int("walks", 16000, "walk: largest walk count of the sweep")
	depth := fs.Int("depth", 3, "walk: multi-trust depth n of each walk")
	dhtMode := fs.Bool("dht", false, "walk: fetch TM rows through an in-memory DHT ring instead of the local matrix")
	dhtNodes := fs.Int("dht-nodes", 8, "walk: ring size for -dht")
	withFlight := fs.Bool("flight", false, "enable causal tracing and print the flight recorder's stitched trace trees at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *withFlight {
		rec := flight.NewRecorder(flight.DefaultRingSize, flight.DefaultMaxDumps)
		flight.Install(rec)
		obs.EnableTracing(*seed, obs.WallClock, 1)
		defer func() {
			obs.DisableTracing()
			flight.Install(nil)
			fmt.Fprintln(os.Stderr, "=== flight recorder ===")
			fmt.Fprint(os.Stderr, flight.RenderTraces(rec.Snapshot()))
			for _, d := range rec.Dumps() {
				fmt.Fprint(os.Stderr, flight.RenderDump(d))
			}
		}()
	}
	if *withMetrics {
		reg := metrics.NewRegistry()
		sparse.Instrument(reg, obs.WallClock)
		massim.Instrument(reg, obs.WallClock)
		walk.Instrument(reg, obs.WallClock)
		defer func() {
			sparse.Uninstrument()
			massim.Uninstrument()
			walk.Uninstrument()
			_ = reg.Dump(os.Stderr)
		}()
	}
	if strings.EqualFold(*exp, "massim") {
		return runMassim(*scenario, *n, *seed, *epochs, *baselines, *shards)
	}
	if strings.EqualFold(*exp, "walk") {
		wn, nSet := *n, false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "n" {
				nSet = true
			}
		})
		if !nSet {
			wn = 2000 // the E11 default: cross-validation scale, not massim scale
		}
		if *dhtMode {
			return runWalkDHT(wn, *seed, *walks, *depth, *dhtNodes)
		}
		return runWalk(wn, *seed, *walks, *depth)
	}
	sc := experiments.ScaleSmall
	switch *scale {
	case "small":
	case "full":
		sc = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	type renderer interface{ Render() string }
	runners := map[string]func() (renderer, error){
		"e1":      func() (renderer, error) { return experiments.E1FakeFiles(sc) },
		"e2":      func() (renderer, error) { return experiments.E2Incentive(sc) },
		"e3":      func() (renderer, error) { return experiments.E3Collusion(experiments.DefaultE3Config(sc)) },
		"e4":      func() (renderer, error) { return experiments.E4Ablation(sc) },
		"e5":      func() (renderer, error) { return experiments.E5Steps(experiments.DefaultE5Config(sc)) },
		"e6":      func() (renderer, error) { return experiments.E6DHT(experiments.DefaultE6Config(sc)) },
		"e1sweep": func() (renderer, error) { return experiments.E1PolluterSweep(sc) },
		"e7":      func() (renderer, error) { return experiments.E7Weights(sc) },
	}
	order := []string{"e1", "e1sweep", "e2", "e3", "e4", "e5", "e6", "e7"}

	var selected []string
	switch strings.ToLower(*exp) {
	case "all":
		selected = order
	default:
		if _, ok := runners[strings.ToLower(*exp)]; !ok {
			return fmt.Errorf("unknown experiment %q (want e1..e7, e1sweep, or all)", *exp)
		}
		selected = []string{strings.ToLower(*exp)}
	}
	for _, id := range selected {
		fmt.Printf("=== %s ===\n", strings.ToUpper(id))
		res, err := runners[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
	}
	return nil
}

// runWalk runs E11: one seeded random graph, walk counts swept in
// octaves up to maxWalks, each estimate scored against the exact
// RowVecPow answer.
func runWalk(n int, seed uint64, maxWalks, depth int) error {
	if maxWalks < 1 {
		return fmt.Errorf("walk: -walks must be >= 1, got %d", maxWalks)
	}
	tm, err := walk.RandomTM(n, seed)
	if err != nil {
		return err
	}
	counts := []int{maxWalks}
	for w := maxWalks / 4; w >= 250 && len(counts) < 4; w /= 4 {
		counts = append([]int{w}, counts...)
	}
	points, err := walk.RunSweep(tm, walk.SweepConfig{
		Source:     0,
		Depth:      depth,
		Seed:       seed,
		WalkCounts: counts,
	})
	if err != nil {
		return err
	}
	fmt.Printf("=== walk (E11) n=%d depth=%d seed=%d ===\n", n, depth, seed)
	fmt.Print(walk.RenderSweep(points))
	return nil
}

// walkDHTEpoch pins every published row and the source to one snapshot
// generation; the single-shot experiment never rotates epochs.
const walkDHTEpoch = 1

// runWalkDHT runs the decentralized variant of E11: the same seeded
// graph, but every row the walkers touch is fetched through a fault-free
// in-memory DHT ring behind the retry layer. The estimate must equal the
// LocalSource twin byte for byte — the decentralization property the
// chaos suite asserts under faults, checked here on the happy path.
func runWalkDHT(n int, seed uint64, walks, depth, nodes int) error {
	if nodes < 2 {
		return fmt.Errorf("walk: -dht-nodes must be >= 2, got %d", nodes)
	}
	tm, err := walk.RandomTM(n, seed)
	if err != nil {
		return err
	}
	exact, err := tm.RowVecPow(0, depth)
	if err != nil {
		return err
	}
	rp := dht.DefaultRetryPolicy()
	nw, err := chaos.NewNetwork(chaos.NetworkConfig{
		Nodes:            nodes,
		SuccessorListLen: 3,
		Chaos:            chaos.Config{Seed: seed},
		Retry:            &rp,
	})
	if err != nil {
		return err
	}
	recs := make([]dht.StoredRecord, 0, n)
	for u := 0; u < n; u++ {
		cols, vals := tm.Row(u)
		rec, err := walk.RowRecord(&wire.TMRow{
			User:  int32(u),
			N:     int32(n),
			Epoch: walkDHTEpoch,
			Cols:  cols,
			Vals:  vals,
		})
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	if err := nw.Publish(recs, time.Second); err != nil {
		return err
	}
	nw.Converge(2)

	cfg := walk.Config{Walks: walks, Depth: depth, Seed: seed}
	src, err := walk.NewDHTSource(nw.Nodes[0], n, 0, walkDHTEpoch)
	if err != nil {
		return err
	}
	est, err := walk.New(src, cfg)
	if err != nil {
		return err
	}
	got, err := est.Estimate(0)
	if err != nil {
		return err
	}

	local, err := walk.NewLocalSource(tm)
	if err != nil {
		return err
	}
	twinEst, err := walk.New(local, cfg)
	if err != nil {
		return err
	}
	twin, err := twinEst.Estimate(0)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, twin) {
		return fmt.Errorf("walk: DHT-sourced estimate diverged from the local twin")
	}

	fmt.Printf("=== walk (E11, DHT-sourced) n=%d depth=%d seed=%d nodes=%d walks=%d ===\n", n, depth, seed, nodes, walks)
	fmt.Printf("max_err=%.6f mean_err=%.6f top10=%d/10 local_twin_identical=true\n",
		walk.MaxAbsError(got, exact), walk.MeanAbsError(got, exact), walk.TopKOverlap(got, exact, 10))
	return nil
}

// runMassim executes one or all massim scenarios and fails if any
// scenario's pass bound is violated.
func runMassim(scenario string, n int, seed uint64, epochs int, baselines bool, shards int) error {
	names := []string{scenario}
	if strings.EqualFold(scenario, "all") {
		names = massim.Names()
	}
	failed := 0
	for _, name := range names {
		scn, err := massim.Lookup(name)
		if err != nil {
			return err
		}
		cfg := massim.DefaultConfig()
		cfg.N = n
		cfg.Seed = seed
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		cfg.Baselines = baselines
		cfg.MirrorEngine = baselines
		cfg.MirrorShards = shards
		fmt.Printf("=== massim %s ===\n", name)
		res, err := massim.Run(cfg, scn)
		if err != nil {
			return fmt.Errorf("massim %s: %w", name, err)
		}
		fmt.Print(res.Render())
		if !res.Verdict.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("massim: %d scenario(s) failed their pass bound", failed)
	}
	return nil
}
