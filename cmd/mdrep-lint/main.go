// mdrep-lint is the project's custom static-analysis suite packaged as a
// vet tool. It enforces the invariants the reputation engine's
// correctness rests on but the compiler cannot check: bit-identical
// float accumulation for journal replay (detfloat), the
// sparse.Matrix.Row aliasing contract (rowalias), injected clocks and
// seeded randomness in deterministic packages (wallclock), the
// core.Concurrent locking discipline (locksafe), allocation-free
// //mdrep:hotpath functions (allocfree), fault-taxonomy classification
// at the RPC boundary (faultwrap), bounded metric label cardinality
// (metriclabel), and the goroutine-leak TestMain guard (leakmain). See
// DESIGN.md §10.
//
// Run it through the go tool so package loading, caching and test files
// are handled exactly as in a normal vet invocation:
//
//	go build -o bin/mdrep-lint ./cmd/mdrep-lint
//	go vet -vettool=bin/mdrep-lint ./...
//
// or simply `make lint`.
//
// # Applying suggested fixes
//
// Several analyzers attach machine-applicable fixes (faultwrap's
// fault.Terminal wrapping, for example). The unitchecker protocol that
// vettools speak deliberately ignores vet's -fix flag, so fixes are
// applied out-of-band: run vet in JSON mode and pipe the diagnostics
// back through this binary —
//
//	go vet -vettool=bin/mdrep-lint -json ./... | bin/mdrep-lint -applyfix
//
// or simply `make lint-fix`. The applier takes the first suggested fix
// of each diagnostic, rejects overlapping edits, and rewrites the files
// in place; rerun `make lint` afterwards to confirm the tree is clean.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"mdrep/internal/analysis/suite"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-applyfix" {
		if err := applyFixes(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mdrep-lint -applyfix:", err)
			os.Exit(1)
		}
		return
	}
	unitchecker.Main(suite.Analyzers()...)
}

// jsonEdit mirrors the analysisflags JSONTextEdit schema: zero-based
// half-open byte offsets into the original file.
type jsonEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonDiagnostic struct {
	Posn           string    `json:"posn"`
	Message        string    `json:"message"`
	SuggestedFixes []jsonFix `json:"suggested_fixes"`
}

// applyFixes reads the `go vet -json` stream (one JSON object per
// compilation unit, interleaved with `# package` comment lines emitted
// by the go tool), collects the first suggested fix of every
// diagnostic, and applies the edits file by file.
func applyFixes(in io.Reader, out io.Writer) error {
	edits, err := collectEdits(in)
	if err != nil {
		return err
	}
	if len(edits) == 0 {
		fmt.Fprintln(out, "no suggested fixes in input")
		return nil
	}
	files := map[string][]jsonEdit{}
	for _, e := range edits {
		files[e.Filename] = append(files[e.Filename], e)
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n, err := applyToFile(name, files[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: applied %d edit(s)\n", name, n)
	}
	return nil
}

// collectEdits decodes the concatenated JSON trees, skipping the go
// tool's `# package` lines, and flattens every diagnostic's first
// suggested fix into a single edit list.
func collectEdits(in io.Reader) ([]jsonEdit, error) {
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	var kept []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		kept = append(kept, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(kept, "\n")))
	var edits []jsonEdit
	for {
		// pkg -> analyzer -> []diagnostic (or an error object, which
		// unmarshals to an empty list and is ignored here).
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding vet -json stream: %v", err)
		}
		for _, analyzers := range tree {
			for _, raw := range analyzers {
				var diags []jsonDiagnostic
				if err := json.Unmarshal(raw, &diags); err != nil {
					continue // per-analyzer error object, not a diagnostic list
				}
				for _, d := range diags {
					if len(d.SuggestedFixes) == 0 {
						continue
					}
					edits = append(edits, d.SuggestedFixes[0].Edits...)
				}
			}
		}
	}
	return edits, nil
}

// applyToFile applies edits to one file, back to front so earlier
// offsets stay valid. Overlapping edits abort the whole file: offsets
// were computed against the original bytes and a partial application
// would corrupt it.
func applyToFile(name string, edits []jsonEdit) (int, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return 0, err
	}
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start > edits[j].Start
		}
		return edits[i].End > edits[j].End
	})
	for i, e := range edits {
		if e.Start < 0 || e.End < e.Start || e.End > len(data) {
			return 0, fmt.Errorf("%s: edit [%d,%d) out of range (file is %d bytes; stale diagnostics?)", name, e.Start, e.End, len(data))
		}
		if i > 0 && edits[i-1].Start < e.End {
			return 0, fmt.Errorf("%s: overlapping suggested fixes at byte %d; apply and re-vet in two passes", name, e.Start)
		}
		data = append(data[:e.Start], append([]byte(e.New), data[e.End:]...)...)
	}
	info, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return len(edits), os.WriteFile(name, data, info.Mode().Perm())
}
