// mdrep-lint is the project's custom static-analysis suite packaged as a
// vet tool. It enforces the invariants the reputation engine's
// correctness rests on but the compiler cannot check: bit-identical float
// accumulation for journal replay (detfloat), the sparse.Matrix.Row
// aliasing contract (rowalias), injected clocks and seeded randomness in
// deterministic packages (wallclock), and the core.Concurrent locking
// discipline (locksafe). See DESIGN.md §10.
//
// Run it through the go tool so package loading, caching and test files
// are handled exactly as in a normal vet invocation:
//
//	go build -o bin/mdrep-lint ./cmd/mdrep-lint
//	go vet -vettool=bin/mdrep-lint ./...
//
// or simply `make lint`.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"mdrep/internal/analysis/suite"
)

func main() {
	unitchecker.Main(suite.Analyzers()...)
}
