// Command mdrep-fig1 regenerates the paper's Figure 1: request coverage
// over time for several explicit-evaluation coverages plus the implicit
// (100%) case, on a synthetic Maze-like trace.
//
// Usage:
//
//	mdrep-fig1 [-scale small|full] [-seed N] [-window DUR] [-csv FILE]
//
// The Figure 1 pipeline is a streaming coverage computation
// (core.MeasureCoverage) that never builds trust matrices, so there is
// no -metrics flag here; use mdrep-sim -metrics for kernel timing.
package main

import (
	"flag"
	"fmt"
	"os"

	"mdrep/internal/experiments"
	"mdrep/internal/metrics"
	"mdrep/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-fig1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdrep-fig1", flag.ContinueOnError)
	scale := fs.String("scale", "small", "experiment scale: small or full")
	seed := fs.Uint64("seed", 1, "trace generator seed")
	window := fs.Duration("window", 0, "evaluation retention window (0 = keep forever)")
	csvPath := fs.String("csv", "", "also write the series as CSV to this file")
	tracePath := fs.String("trace", "", "replay a log file (mdrep-tracegen schema) instead of generating one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := experiments.ScaleSmall
	if *scale == "full" {
		sc = experiments.ScaleFull
	} else if *scale != "small" {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg := experiments.DefaultFig1Config(sc)
	cfg.Trace.Seed = *seed
	cfg.Window = *window

	var res *experiments.Fig1Result
	var err error
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			return ferr
		}
		defer func() { _ = f.Close() }()
		tr, terr := trace.Read(f)
		if terr != nil {
			return terr
		}
		res, err = experiments.Figure1OnTrace(tr, cfg)
	} else {
		res, err = experiments.Figure1(cfg)
	}
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := metrics.WriteCSV(f, res.Series...); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
