package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsUnknownScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunRejectsMissingTrace(t *testing.T) {
	if err := run([]string{"-trace", "/nonexistent/file"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full small-scale figure")
	}
	out := filepath.Join(t.TempDir(), "fig1.csv")
	if err := run([]string{"-csv", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}
