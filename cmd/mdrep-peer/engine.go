package main

import (
	"flag"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/journal"
	"mdrep/internal/obs"
)

// engine hosts the sharded, journal-backed trust engine over a data
// directory: it recovers every shard's WAL in parallel, group-commits a
// synthetic ingest batch (one fsync per shard), and prints peer 0's
// reputation row. Re-running against the same -data-dir accumulates
// evidence across invocations — kill it between runs and the recovery
// report shows the per-shard replay. With -crash the process exits
// without closing the journal, leaving only group-committed state for
// the next invocation to recover.
func engineCmd(args []string) error {
	fs := flag.NewFlagSet("engine", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "directory for the sharded journal (required)")
	n := fs.Int("n", 64, "population size")
	shards := fs.Int("shards", 4, "shard count (1..256)")
	events := fs.Int("events", 256, "synthetic events to ingest this run")
	batch := fs.Int("batch", 64, "group-commit batch size")
	seed := fs.Int64("seed", 1, "workload seed")
	crash := fs.Bool("crash", false, "exit without Close (simulated crash; group commits survive)")
	metricsAddr := fs.String("metrics-addr", "", "optional introspection address: Prometheus /metrics, expvar, pprof")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("engine: -data-dir is required")
	}
	reg, msrv, err := startMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer func() { _ = msrv.Close() }()
	}
	var obsFn journal.ShardObsFunc
	if reg != nil {
		obsFn = func(si int) *journal.LogObs {
			return journal.NewLogObs(reg, obs.WallClock, "shard", strconv.Itoa(si))
		}
	}
	eng, infos, err := journal.OpenSharded(*dataDir, *n, *shards, core.DefaultConfig(), journal.DefaultConfig(), obsFn)
	if err != nil {
		return err
	}
	if reg != nil {
		eng.Core().SetShardObserver(core.NewShardedObs(reg, obs.WallClock, *shards))
	}
	var recovered uint64
	for si, info := range infos {
		recovered += info.SnapshotSeq + info.Replayed
		if info.SnapshotSeq+info.Replayed > 0 {
			fmt.Printf("shard %02d: recovered %d events (%d from snapshot, %d replayed)\n",
				si, info.SnapshotSeq+info.Replayed, info.SnapshotSeq, info.Replayed)
		}
	}
	fmt.Printf("engine: %d peers across %d shards, %d events recovered from %s\n",
		*n, eng.K(), recovered, *dataDir)

	base := time.Duration(eng.Seq()) * time.Second
	evs := engineWorkload(*n, *events, *seed, base)
	for len(evs) > 0 {
		b := *batch
		if b > len(evs) {
			b = len(evs)
		}
		if err := eng.ApplyBatch(evs[:b]); err != nil {
			return err
		}
		evs = evs[b:]
	}
	fmt.Printf("engine: ingested %d events in group-committed batches of %d (journal seq %d)\n",
		*events, *batch, eng.Seq())

	reps, err := eng.Core().Reputations(0, base+time.Duration(*events)*time.Second)
	if err != nil {
		return err
	}
	top, val := -1, -1.0
	for j := 0; j < *n; j++ {
		if v, ok := reps[j]; ok && v > val {
			top, val = j, v
		}
	}
	fmt.Printf("engine: peer 0 trusts %d peers; most trusted is peer %d (%.4f)\n", len(reps), top, val)
	if *crash {
		fmt.Println("engine: crashing without close — group-committed batches survive")
		return nil
	}
	return eng.Close()
}

// engineWorkload builds a deterministic mixed event stream: downloads,
// votes, implicit evaluations and user ratings across the population.
func engineWorkload(n, count int, seed int64, base time.Duration) []core.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]core.Event, 0, count)
	for len(evs) < count {
		i, j := rng.Intn(n), rng.Intn(n)
		f := eval.FileID(fmt.Sprintf("file-%03d", rng.Intn(32)))
		now := base + time.Duration(len(evs))*time.Second
		switch rng.Intn(4) {
		case 0:
			evs = append(evs, core.Event{Kind: core.EventVote, I: i, File: f, Value: rng.Float64(), Time: now})
		case 1:
			evs = append(evs, core.Event{Kind: core.EventSetImplicit, I: i, File: f, Value: rng.Float64(), Time: now})
		case 2:
			if i != j {
				evs = append(evs, core.Event{Kind: core.EventDownload, I: i, J: j, File: f, Size: int64(1 + rng.Intn(1<<20)), Time: now})
			}
		case 3:
			if i != j {
				evs = append(evs, core.Event{Kind: core.EventRateUser, I: i, J: j, Value: rng.Float64()})
			}
		}
	}
	return evs
}
