package main

import (
	"math"
	"testing"

	"mdrep/internal/identity"
)

func newTestDirectory() *identity.Directory { return identity.NewDirectory() }

func TestParseVotes(t *testing.T) {
	got, err := parseVotes("a=0.9,b=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got["a"]-0.9) > 1e-12 || math.Abs(got["b"]-0.1) > 1e-12 {
		t.Fatalf("parseVotes = %v", got)
	}
	if got, err := parseVotes(""); err != nil || len(got) != 0 {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"a", "a=x", "=0.5,"} {
		if _, err := parseVotes(bad); err == nil {
			t.Fatalf("malformed spec %q accepted", bad)
		}
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestTrustRequiresSync(t *testing.T) {
	if err := trust([]string{"-seed", "2"}); err == nil {
		t.Fatal("trust without -sync accepted")
	}
}

func TestMakeIdentityDeterministic(t *testing.T) {
	dirA := newTestDirectory()
	a, err := makeIdentity(5, dirA)
	if err != nil {
		t.Fatal(err)
	}
	dirB := newTestDirectory()
	b, err := makeIdentity(5, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("identities not deterministic")
	}
}
