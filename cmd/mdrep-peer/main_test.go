package main

import (
	"math"
	"testing"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/peer"
)

func newTestDirectory() *identity.Directory { return identity.NewDirectory() }

func TestParseVotes(t *testing.T) {
	got, err := parseVotes("a=0.9,b=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || math.Abs(got["a"]-0.9) > 1e-12 || math.Abs(got["b"]-0.1) > 1e-12 {
		t.Fatalf("parseVotes = %v", got)
	}
	if got, err := parseVotes(""); err != nil || len(got) != 0 {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"a", "a=x", "=0.5,"} {
		if _, err := parseVotes(bad); err == nil {
			t.Fatalf("malformed spec %q accepted", bad)
		}
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestTrustRequiresSync(t *testing.T) {
	if err := trust([]string{"-seed", "2"}); err == nil {
		t.Fatal("trust without -sync accepted")
	}
}

func newCLIPeer(t *testing.T, seed uint64) *peer.Peer {
	t.Helper()
	dir := newTestDirectory()
	id, err := makeIdentity(seed, dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := peer.New(id, dir, peer.NewTCPExchange(peer.NewStaticResolver()), peer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDataDirPersistsVotes mirrors what serve/trust do with -data-dir:
// votes recorded in one run survive into the next run's peer state.
func TestDataDirPersistsVotes(t *testing.T) {
	dataDir := t.TempDir()

	jp, err := openJournal(dataDir, newCLIPeer(t, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if jp == nil {
		t.Fatal("openJournal returned nil for a non-empty data dir")
	}
	votes := map[eval.FileID]float64{"a": 0.9, "b": 0.1}
	if err := applyVotes(jp.Base(), jp, votes); err != nil {
		t.Fatal(err)
	}
	if err := jp.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := openJournal(dataDir, newCLIPeer(t, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Base().ExportState()
	for f, want := range votes {
		rec, ok := got.Records[f]
		if !ok || !rec.Voted || math.Abs(rec.Explicit-want) > 1e-12 {
			t.Fatalf("vote on %q not restored: %+v", f, got.Records[f])
		}
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenJournalDisabled(t *testing.T) {
	jp, err := openJournal("", newCLIPeer(t, 8), nil)
	if err != nil || jp != nil {
		t.Fatalf("empty data dir should disable persistence: %v, %v", jp, err)
	}
	// applyVotes must fall back to direct application.
	p := newCLIPeer(t, 9)
	if err := applyVotes(p, nil, map[eval.FileID]float64{"x": 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.ExportState().Records["x"]; !ok {
		t.Fatal("direct vote not applied")
	}
}

func TestMakeIdentityDeterministic(t *testing.T) {
	dirA := newTestDirectory()
	a, err := makeIdentity(5, dirA)
	if err != nil {
		t.Fatal(err)
	}
	dirB := newTestDirectory()
	b, err := makeIdentity(5, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("identities not deterministic")
	}
}

// TestEngineSubcommand drives the sharded journal-backed engine through
// ingest, crash, recovery and clean close against one data directory.
func TestEngineSubcommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"engine"}); err == nil {
		t.Fatal("missing -data-dir accepted")
	}
	base := []string{"engine", "-data-dir", dir, "-n", "32", "-shards", "4", "-events", "120", "-batch", "32"}
	if err := run(append(base, "-crash")); err != nil {
		t.Fatal(err)
	}
	// Crash recovery: everything was group-committed, so the second run
	// must replay all 120 events and then close cleanly.
	if err := run(base); err != nil {
		t.Fatal(err)
	}
	// Clean close left snapshots; a shard-count change must be rejected.
	if err := run([]string{"engine", "-data-dir", dir, "-n", "32", "-shards", "8"}); err == nil {
		t.Fatal("shard count change accepted")
	}
	if err := run(append(base, "-metrics-addr", "127.0.0.1:0")); err != nil {
		t.Fatal(err)
	}
}
