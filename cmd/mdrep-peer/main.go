// Command mdrep-peer runs the decentralised protocol (§4.1 steps 4–6)
// over real TCP: it serves this participant's signed evaluation list,
// syncs other participants' lists, and prints the resulting trust row.
//
// Identities are deterministic from -seed so two invocations can refer to
// each other; a real deployment would persist keys and resolve addresses
// through the DHT.
//
// With -data-dir the participant's own evidence — votes, retention
// signals, downloads, ratings, blacklist — is made durable through a
// write-ahead log plus snapshots (internal/journal): a peer killed and
// restarted from the same data dir resumes with its trust history intact
// instead of whitewashing itself.
//
// Usage:
//
//	mdrep-peer id    -seed 1
//	mdrep-peer serve -seed 1 -listen 127.0.0.1:9100 \
//	                 [-vote FILE=0.9,OTHER=0.1] [-data-dir DIR] \
//	                 [-metrics-addr HOST:PORT]
//	mdrep-peer trust -seed 2 -vote FILE=0.9 \
//	                 -sync SEED@HOST:PORT[,SEED@HOST:PORT…] [-data-dir DIR]
//	mdrep-peer engine -data-dir DIR [-n 64] [-shards 4] [-events 256]
//	                 [-batch 64] [-seed 1] [-crash] [-metrics-addr HOST:PORT]
//
// The engine subcommand hosts the sharded trust engine over a durable
// per-shard journal: each run recovers all shards in parallel, ingests a
// deterministic workload through the group-commit batch path (one fsync
// per shard per batch) and reports peer 0's reputation view. -crash
// exits without a clean close to demonstrate that group-committed
// batches survive and replay on the next run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"mdrep/internal/eval"
	"mdrep/internal/flight"
	"mdrep/internal/identity"
	"mdrep/internal/journal"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/peer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-peer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: mdrep-peer id|serve|trust [flags]")
	}
	switch args[0] {
	case "id":
		return printID(args[1:])
	case "serve":
		return serve(args[1:])
	case "trust":
		return trust(args[1:])
	case "engine":
		return engineCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// makeIdentity derives the deterministic identity for a seed and registers
// it in dir.
func makeIdentity(seed uint64, dir *identity.Directory) (*identity.Identity, error) {
	id, err := identity.Generate(identity.NewDeterministicReader(seed))
	if err != nil {
		return nil, err
	}
	if _, err := dir.Register(id.PublicKey()); err != nil {
		return nil, err
	}
	return id, nil
}

// startMetrics starts the opt-in HTTP introspection endpoint: Prometheus
// text on /metrics, expvar on /debug/vars, pprof under /debug/pprof/. An
// empty addr disables it and returns a nil registry.
func startMetrics(addr string) (*metrics.Registry, *obs.Server, error) {
	if addr == "" {
		return nil, nil, nil
	}
	reg := metrics.NewRegistry()
	srv, err := obs.Serve(addr, reg)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("metrics on http://%s/metrics\n", srv.Addr())
	return reg, srv, nil
}

// startFlight installs the always-on flight recorder and enables causal
// tracing when on; the recorder is visible at /debug/flight when the
// introspection endpoint runs, and dumpFlight prints it at shutdown.
func startFlight(on bool, seed uint64) *flight.Recorder {
	if !on {
		return nil
	}
	rec := flight.NewRecorder(flight.DefaultRingSize, flight.DefaultMaxDumps)
	flight.Install(rec)
	obs.EnableTracing(seed, obs.WallClock, 1)
	return rec
}

// dumpFlight prints the recorder's stitched trace trees plus any
// black-box dumps to stderr, then uninstalls tracing.
func dumpFlight(rec *flight.Recorder) {
	if rec == nil {
		return
	}
	obs.DisableTracing()
	flight.Install(nil)
	fmt.Fprintln(os.Stderr, "=== flight recorder ===")
	fmt.Fprint(os.Stderr, flight.RenderTraces(rec.Snapshot()))
	for _, d := range rec.Dumps() {
		fmt.Fprint(os.Stderr, flight.RenderDump(d))
	}
}

// openJournal recovers the peer's durable state from dataDir; an empty
// dataDir disables persistence and returns a nil journal. With a non-nil
// registry the journal exports append/fsync/snapshot/recovery metrics.
func openJournal(dataDir string, p *peer.Peer, reg *metrics.Registry) (*journal.Peer, error) {
	if dataDir == "" {
		return nil, nil
	}
	cfg := journal.DefaultConfig()
	if reg != nil {
		cfg.Obs = journal.NewLogObs(reg, obs.WallClock)
	}
	jp, info, err := journal.OpenPeer(dataDir, p, cfg)
	if err != nil {
		return nil, err
	}
	if info.TruncatedTail {
		fmt.Println("journal: dropped a torn trailing record (crash mid-write)")
	}
	if info.SnapshotFallback {
		fmt.Println("journal: newest snapshot unreadable, recovered from an older generation")
	}
	if total := info.SnapshotSeq + info.Replayed; total > 0 {
		fmt.Printf("journal: recovered %d events (%d from snapshot, %d replayed) from %s\n",
			total, info.SnapshotSeq, info.Replayed, dataDir)
	}
	return jp, nil
}

// applyVotes records votes through the journal when persistence is on,
// directly otherwise.
func applyVotes(p *peer.Peer, jp *journal.Peer, votes map[eval.FileID]float64) error {
	for f, v := range votes {
		if jp == nil {
			p.Vote(f, v)
			continue
		}
		if err := jp.Vote(f, v); err != nil {
			return err
		}
	}
	return nil
}

// parseVotes parses "file=0.9,other=0.1".
func parseVotes(spec string) (map[eval.FileID]float64, error) {
	out := make(map[eval.FileID]float64)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed vote %q (want FILE=VALUE)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return nil, fmt.Errorf("vote %q: %w", part, err)
		}
		out[eval.FileID(kv[0])] = v
	}
	return out, nil
}

func printID(args []string) error {
	fs := flag.NewFlagSet("id", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "identity seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir := identity.NewDirectory()
	id, err := makeIdentity(*seed, dir)
	if err != nil {
		return err
	}
	fmt.Printf("seed %d → peer ID %s\n", *seed, id.ID())
	return nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "identity seed")
	listen := fs.String("listen", "127.0.0.1:9100", "address to serve the evaluation list on")
	votes := fs.String("vote", "", "comma-separated FILE=VALUE evaluations to publish")
	dataDir := fs.String("data-dir", "", "directory for the durable journal (empty = in-memory only)")
	metricsAddr := fs.String("metrics-addr", "", "optional introspection address (\":0\" = ephemeral): Prometheus /metrics, expvar, pprof")
	withFlight := fs.Bool("flight", false, "enable causal tracing with the flight recorder (served at /debug/flight, dumped at shutdown)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer dumpFlight(startFlight(*withFlight, *seed))
	reg, msrv, err := startMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer func() { _ = msrv.Close() }()
	}
	dir := identity.NewDirectory()
	id, err := makeIdentity(*seed, dir)
	if err != nil {
		return err
	}
	resolver := peer.NewStaticResolver()
	network := peer.NewTCPExchange(resolver)
	xobs := peer.NewExchangeObs(reg)
	network.Instrument(xobs)
	p, err := peer.New(id, dir, network, peer.DefaultConfig())
	if err != nil {
		return err
	}
	jp, err := openJournal(*dataDir, p, reg)
	if err != nil {
		return err
	}
	parsed, err := parseVotes(*votes)
	if err != nil {
		return err
	}
	if err := applyVotes(p, jp, parsed); err != nil {
		return err
	}
	if jp != nil {
		// The startup votes are a one-shot batch that would otherwise sit
		// below the fsync threshold until shutdown; a hard kill must not
		// lose them.
		if err := jp.Sync(); err != nil {
			return err
		}
	}
	srv, err := peer.ServeExchange(*listen, p.SignedEvaluations)
	if err != nil {
		return err
	}
	srv.Instrument(xobs)
	serving, err := p.SignedEvaluations()
	if err != nil {
		return err
	}
	fmt.Printf("peer %s serving %d evaluations on %s\n", p.ID(), len(serving), srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	// Graceful shutdown: stop accepting exchange requests first so no new
	// evidence arrives, then flush the journal and take a final snapshot so
	// the next start recovers instantly.
	fmt.Println("shutting down: closing exchange listener")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-peer: exchange close:", err)
	}
	if jp != nil {
		fmt.Println("shutting down: flushing journal and taking final snapshot")
		if err := jp.Close(); err != nil {
			return fmt.Errorf("journal close: %w", err)
		}
	}
	fmt.Println("shutdown complete")
	return nil
}

func trust(args []string) error {
	fs := flag.NewFlagSet("trust", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2, "identity seed")
	votes := fs.String("vote", "", "comma-separated FILE=VALUE evaluations of our own")
	syncSpec := fs.String("sync", "", "comma-separated SEED@HOST:PORT peers to sync with")
	dataDir := fs.String("data-dir", "", "directory for the durable journal (empty = in-memory only)")
	withFlight := fs.Bool("flight", false, "enable causal tracing with the flight recorder, dumped at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer dumpFlight(startFlight(*withFlight, *seed))
	if *syncSpec == "" {
		return fmt.Errorf("trust: -sync is required")
	}
	dir := identity.NewDirectory()
	id, err := makeIdentity(*seed, dir)
	if err != nil {
		return err
	}
	resolver := peer.NewStaticResolver()
	p, err := peer.New(id, dir, peer.NewTCPExchange(resolver), peer.DefaultConfig())
	if err != nil {
		return err
	}
	jp, err := openJournal(*dataDir, p, nil)
	if err != nil {
		return err
	}
	parsed, err := parseVotes(*votes)
	if err != nil {
		return err
	}
	if err := applyVotes(p, jp, parsed); err != nil {
		return err
	}

	names := make(map[identity.PeerID]string)
	for _, part := range strings.Split(*syncSpec, ",") {
		kv := strings.SplitN(part, "@", 2)
		if len(kv) != 2 {
			return fmt.Errorf("malformed sync target %q (want SEED@HOST:PORT)", part)
		}
		peerSeed, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil {
			return fmt.Errorf("sync target %q: %w", part, err)
		}
		otherID, err := makeIdentity(peerSeed, dir)
		if err != nil {
			return err
		}
		resolver.Set(otherID.ID(), kv[1])
		names[otherID.ID()] = part
		n, err := p.SyncPeer(otherID.ID())
		if err != nil {
			fmt.Printf("sync %s: %v\n", part, err)
			continue
		}
		fmt.Printf("synced %d evaluations from %s\n", n, part)
	}
	row := p.TrustRow()
	type entry struct {
		name  string
		trust float64
	}
	entries := make([]entry, 0, len(row))
	for pid, v := range row {
		entries = append(entries, entry{name: names[pid], trust: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].trust > entries[j].trust })
	fmt.Println("\ntrust row:")
	for _, e := range entries {
		fmt.Printf("  %-24s %.3f\n", e.name, e.trust)
	}
	if jp != nil {
		if err := jp.Close(); err != nil {
			return fmt.Errorf("journal close: %w", err)
		}
	}
	return nil
}
