package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/dht"
	"mdrep/internal/identity"
	"mdrep/internal/journal"
	"mdrep/internal/obs"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// sampleValue extracts one series' value from a Prometheus exposition.
func sampleValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v); err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s missing from exposition:\n%s", series, exposition)
	return 0
}

// TestMetricsEndpointServesWorkloadSeries is the PR's acceptance test:
// the -metrics-addr endpoint (startMetrics, exactly what `serve` wires
// up) must expose Prometheus text, expvar and pprof, and after a
// workload the engine build-time, journal append, and DHT RPC-latency
// series must all have nonzero samples.
func TestMetricsEndpointServesWorkloadSeries(t *testing.T) {
	reg, msrv, err := startMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = msrv.Close() }()
	base := "http://" + msrv.Addr()

	// Engine + journal workload: a journal-backed reputation engine with
	// both observers attached, driven through a few events and a TM build.
	jcfg := journal.DefaultConfig()
	jcfg.Obs = journal.NewLogObs(reg, obs.WallClock)
	je, _, err := journal.OpenEngine(t.TempDir(), 4, core.DefaultConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	je.Core().SetObserver(core.NewEngineObs(reg, obs.WallClock))
	if err := je.Vote(0, "f", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if err := je.RecordDownload(1, 0, "f", 1024, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := je.Core().Reputations(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}

	// DHT workload: a single-node ring over real TCP, driven through an
	// instrumented retry client.
	client := dht.NewRetryClient(dht.NewTCPClient(), dht.DefaultRetryPolicy(), 1)
	client.Instrument(reg, obs.WallClock)
	ncfg := dht.DefaultNodeConfig()
	ncfg.Storage = dht.NewStorage(0, nil)
	dsrv, err := dht.ServeTCPNode("127.0.0.1:0", client, ncfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dsrv.Close() }()
	owner, err := identity.Generate(identity.NewDeterministicReader(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := dht.StoredRecord{Key: dht.HashKey("scraped-file")}
	rec.Info.FileID = "scraped-file"
	rec.Info.OwnerID = owner.ID()
	rec.Info.Evaluation = 0.9
	if err := rec.Info.Sign(owner); err != nil {
		t.Fatal(err)
	}
	if err := client.Store(obs.SpanContext{}, dsrv.Addr(), []dht.StoredRecord{rec}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Retrieve(obs.SpanContext{}, dsrv.Addr(), rec.Key); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition: all three families must have nonzero counts.
	code, exposition := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		`engine_build_seconds_count{dim="fm"}`,
		`engine_build_seconds_count{dim="dm"}`,
		`engine_build_seconds_count{dim="um"}`,
		`journal_append_seconds_count`,
		`dht_rpc_seconds_count{op="store"}`,
		`dht_rpc_seconds_count{op="retrieve"}`,
	} {
		if v := sampleValue(t, exposition, series); v == 0 {
			t.Errorf("%s = 0 after workload", series)
		}
	}
	if v := sampleValue(t, exposition, "journal_append_total"); v == 0 {
		t.Error("journal_append_total = 0 after journaled events")
	}

	// expvar: the registry snapshot is published as mdrep_metrics.
	code, vars := httpGet(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	if !strings.Contains(vars, "mdrep_metrics") || !strings.Contains(vars, "journal_append_total") {
		t.Error("/debug/vars missing the registry export")
	}

	// pprof: the index and a cheap profile endpoint must answer.
	if code, _ := httpGet(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := httpGet(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestHealthzAndFlightEndpoints is the readiness + black-box acceptance
// test: /healthz answers 200 once startMetrics has bound a registry, and
// /debug/flight serves the recorder installed by startFlight — the ring
// view while healthy, rendered dumps once a fault triggers one.
func TestHealthzAndFlightEndpoints(t *testing.T) {
	rec := startFlight(true, 7)
	defer dumpFlight(rec)
	_, msrv, err := startMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = msrv.Close() }()
	base := "http://" + msrv.Addr()

	code, body := httpGet(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	// No dumps yet: the endpoint must say so rather than 404.
	code, body = httpGet(t, base+"/debug/flight")
	if code != http.StatusOK || !strings.Contains(body, "no flight dumps recorded") {
		t.Fatalf("/debug/flight (no dumps) = %d %q", code, body)
	}

	// A traced span pair shows up in the live ring view.
	root := obs.StartRoot("peer.sync")
	child := obs.StartChild(root.Context(), "peer.fetch_evaluations")
	child.End()
	root.End()
	code, body = httpGet(t, base+"/debug/flight?ring=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight?ring= status %d", code)
	}
	if !strings.Contains(body, "peer.sync") || !strings.Contains(body, "  peer.fetch_evaluations") {
		t.Errorf("ring view missing the stitched spans:\n%s", body)
	}

	// A triggered dump replaces the placeholder with a rendered black box.
	rec.Trigger("test: simulated fault")
	code, body = httpGet(t, base+"/debug/flight")
	if code != http.StatusOK || !strings.Contains(body, "flight dump #1: test: simulated fault") {
		t.Fatalf("/debug/flight (dumped) = %d %q", code, body)
	}
	if !strings.Contains(body, "peer.sync") {
		t.Errorf("dump body missing recorded spans:\n%s", body)
	}
}
