// Command mdrep-tracegen writes a synthetic Maze-like download log in the
// paper's schema (uploader id, downloader id, global time, content hash,
// filename), suitable for replay by the Figure 1 harness or external
// tools.
//
// Usage:
//
//	mdrep-tracegen [-peers N] [-files N] [-downloads N] [-days N]
//	               [-seed N] [-zipf S] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdrep/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mdrep-tracegen", flag.ContinueOnError)
	cfg := trace.DefaultGenConfig()
	peers := fs.Int("peers", cfg.Peers, "population size")
	files := fs.Int("files", cfg.Files, "catalogue size")
	downloads := fs.Int("downloads", cfg.Downloads, "download records to generate")
	days := fs.Int("days", 30, "log duration in days")
	seed := fs.Uint64("seed", cfg.Seed, "generator seed")
	zipf := fs.Float64("zipf", cfg.ZipfExponent, "file popularity Zipf exponent")
	out := fs.String("o", "-", "output file (- for stdout)")
	statsPath := fs.String("stats", "", "analyse an existing log instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *statsPath != "" {
		return printStats(*statsPath)
	}
	cfg.Peers = *peers
	cfg.Files = *files
	cfg.Downloads = *downloads
	cfg.Duration = time.Duration(*days) * 24 * time.Hour
	cfg.Seed = *seed
	cfg.ZipfExponent = *zipf

	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		return err
	}
	s := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %d downloads, %d active peers, %d active files over %.0f days\n",
		s.Downloads, s.ActivePeers, s.ActiveFiles, s.Duration.Hours()/24)
	return nil
}

// printStats reads a log and prints the structural summary that drives
// request coverage.
func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := tr.ComputeStats()
	fmt.Printf("peers           %d (%d active)\n", s.Peers, s.ActivePeers)
	fmt.Printf("files           %d (%d active)\n", s.Files, s.ActiveFiles)
	fmt.Printf("downloads       %d over %.1f days\n", s.Downloads, s.Duration.Hours()/24)
	fmt.Printf("top 1%% files    %.1f%% of downloads\n", s.TopFileShare*100)
	fmt.Printf("top 1%% peers    %.1f%% of downloads\n", s.TopPeerShare*100)
	fmt.Printf("per active peer %.1f mean / %.0f median downloads\n", s.MeanPerPeer, s.MedianPerPeer)
	fmt.Printf("owners per file %.1f mean\n", s.MeanOwnersFile)
	return nil
}
