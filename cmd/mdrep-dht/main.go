// Command mdrep-dht runs a DHT node over real TCP, or drives one from the
// command line. It demonstrates §4.1: a file's signed evaluation is
// published with its index entry, republished, and retrieved by any node.
//
// Usage:
//
//	mdrep-dht serve -listen 127.0.0.1:9000 [-join HOST:PORT] [-ttl DUR]
//	                [-metrics-addr HOST:PORT]
//	mdrep-dht put   -node HOST:PORT -file HASH -value 0.9 [-keyseed N]
//	mdrep-dht get   -node HOST:PORT -file HASH
//	mdrep-dht demo  [-nodes N]
//
// serve blocks until interrupted; put/get talk to a running node; demo
// spins an in-process TCP ring, publishes a signed evaluation, retrieves
// it from another node, and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-dht:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: mdrep-dht serve|put|get|demo [flags]")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "put":
		return put(args[1:])
	case "get":
		return get(args[1:])
	case "demo":
		return demo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9000", "address to listen on")
	join := fs.String("join", "", "address of an existing ring member")
	ttl := fs.Duration("ttl", time.Hour, "stored record TTL")
	stabilize := fs.Duration("stabilize", 500*time.Millisecond, "stabilisation interval")
	metricsAddr := fs.String("metrics-addr", "", "optional introspection address (\":0\" = ephemeral): Prometheus /metrics, expvar, pprof")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := dht.NewRetryClient(dht.NewTCPClient(), dht.DefaultRetryPolicy(), uint64(os.Getpid()))
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer func() { _ = msrv.Close() }()
		client.Instrument(reg, obs.WallClock)
		fmt.Printf("metrics on http://%s/metrics\n", msrv.Addr())
	}
	cfg := dht.DefaultNodeConfig()
	cfg.Storage = dht.NewStorage(*ttl, nil)
	srv, err := dht.ServeTCPNode(*listen, client, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	node := srv.Node()
	node.Instrument(reg)
	fmt.Printf("node %s listening on %s\n", node.Self().ID, node.Self().Addr)
	if *join != "" {
		if err := node.Join(*join); err != nil {
			return err
		}
		fmt.Printf("joined ring via %s\n", *join)
	}

	maint, err := dht.Maintain(node, *stabilize)
	if err != nil {
		return err
	}
	defer maint.Stop()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return nil
}

func put(args []string) error {
	fs := flag.NewFlagSet("put", flag.ContinueOnError)
	node := fs.String("node", "127.0.0.1:9000", "any ring member")
	file := fs.String("file", "", "file content hash")
	value := fs.Float64("value", 0.9, "evaluation in [0,1]")
	keySeed := fs.Uint64("keyseed", 1, "deterministic identity seed for the publishing owner")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("put: -file is required")
	}
	owner, err := identity.Generate(identity.NewDeterministicReader(*keySeed))
	if err != nil {
		return err
	}
	info := eval.Info{
		FileID:     eval.FileID(*file),
		OwnerID:    owner.ID(),
		Evaluation: *value,
		Timestamp:  time.Duration(time.Now().UnixNano()),
	}
	if err := info.Sign(owner); err != nil {
		return err
	}
	client := dht.NewRetryClient(dht.NewTCPClient(), dht.DefaultRetryPolicy(), uint64(os.Getpid()))
	key := dht.HashKey(*file)
	root, err := client.FindSuccessor(obs.SpanContext{}, *node, key)
	if err != nil {
		return err
	}
	if err := client.Store(obs.SpanContext{}, root.Addr, []dht.StoredRecord{{Key: key, Info: info}}, true); err != nil {
		return err
	}
	fmt.Printf("stored evaluation %.2f of %s by %s at %s\n", *value, *file, owner.ID(), root.Addr)
	return nil
}

func get(args []string) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	node := fs.String("node", "127.0.0.1:9000", "any ring member")
	file := fs.String("file", "", "file content hash")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("get: -file is required")
	}
	client := dht.NewRetryClient(dht.NewTCPClient(), dht.DefaultRetryPolicy(), uint64(os.Getpid()))
	key := dht.HashKey(*file)
	root, err := client.FindSuccessor(obs.SpanContext{}, *node, key)
	if err != nil {
		return err
	}
	recs, err := client.Retrieve(obs.SpanContext{}, root.Addr, key)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("no evaluations stored for %s\n", *file)
		return nil
	}
	for _, r := range recs {
		fmt.Printf("owner %s evaluated %s: %.2f\n", r.Info.OwnerID, r.Info.FileID, r.Info.Evaluation)
	}
	return nil
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	nodes := fs.Int("nodes", 5, "ring size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 {
		return fmt.Errorf("demo needs at least 2 nodes")
	}
	client := dht.NewRetryClient(dht.NewTCPClient(), dht.DefaultRetryPolicy(), uint64(os.Getpid()))
	ring := make([]*dht.TCPNodeServer, 0, *nodes)
	defer func() {
		for _, srv := range ring {
			_ = srv.Close()
		}
	}()
	for i := 0; i < *nodes; i++ {
		cfg := dht.DefaultNodeConfig()
		cfg.Storage = dht.NewStorage(0, nil)
		srv, err := dht.ServeTCPNode("127.0.0.1:0", client, cfg)
		if err != nil {
			return err
		}
		ring = append(ring, srv)
		if i > 0 {
			if err := srv.Node().Join(ring[0].Node().Self().Addr); err != nil {
				return err
			}
		}
		fmt.Printf("node %d: %s (%s)\n", i, srv.Node().Self().Addr, srv.Node().Self().ID)
	}
	for round := 0; round < 2**nodes+6; round++ {
		for _, srv := range ring {
			srv.Node().Stabilize()
		}
	}
	for _, srv := range ring {
		srv.Node().FixAllFingers()
	}
	fmt.Println("ring stabilised")

	owner, err := identity.Generate(identity.NewDeterministicReader(42))
	if err != nil {
		return err
	}
	info := eval.Info{
		FileID:     "demo-file-hash",
		OwnerID:    owner.ID(),
		Evaluation: 0.87,
		Timestamp:  time.Duration(time.Now().UnixNano()),
	}
	if err := info.Sign(owner); err != nil {
		return err
	}
	key := dht.HashKey(string(info.FileID))
	if err := ring[0].Node().Publish([]dht.StoredRecord{{Key: key, Info: info}}); err != nil {
		return err
	}
	fmt.Printf("node 0 published signed evaluation %.2f of %q\n", info.Evaluation, info.FileID)

	recs, err := ring[*nodes-1].Node().Retrieve(obs.SpanContext{}, key)
	if err != nil {
		return err
	}
	for _, r := range recs {
		fmt.Printf("node %d retrieved: owner %s evaluated %q as %.2f\n",
			*nodes-1, r.Info.OwnerID, r.Info.FileID, r.Info.Evaluation)
	}
	return nil
}
