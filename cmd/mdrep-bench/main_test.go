package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mdrep/internal/massim
cpu: AMD EPYC 7543 32-Core Processor
BenchmarkMassimStep-8   	 2000000	       612.1 ns/op	      15 B/op	       0 allocs/op
BenchmarkMassimEpoch-8  	      50	  22334455 ns/op
ok  	mdrep/internal/massim	3.21s
pkg: mdrep
BenchmarkJournalAppend-8	  100000	     10444 ns/op	        95.61 MB/s
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "EPYC") {
		t.Fatalf("header mis-parsed: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	// Results sort by (package, name).
	if rep.Results[0].Name != "BenchmarkJournalAppend-8" || rep.Results[0].Package != "mdrep" {
		t.Fatalf("sort order wrong: %+v", rep.Results[0])
	}
	var found *float64
	for _, b := range rep.Results {
		if b.Name == "BenchmarkMassimStep-8" {
			if b.Package != "mdrep/internal/massim" || b.Iterations != 2000000 || b.NsPerOp != 612.1 {
				t.Fatalf("step mis-parsed: %+v", b)
			}
			if b.BytesPerOp == nil || *b.BytesPerOp != 15 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
				t.Fatalf("benchmem fields mis-parsed: %+v", b)
			}
			found = &b.NsPerOp
		}
		if b.Name == "BenchmarkJournalAppend-8" {
			if b.Extra["MB/s"] != 95.61 {
				t.Fatalf("extra metric mis-parsed: %+v", b)
			}
		}
	}
	if found == nil {
		t.Fatal("BenchmarkMassimStep missing")
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
}

func TestParseFailuresAndGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("--- FAIL: TestX\nFAIL\tmdrep/internal/x\t0.1s\nBenchmarkBroken-8 notanumber ns/op\nrandom chatter\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("failures = %v, want 2 lines", rep.Failures)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed as results: %+v", rep.Results)
	}
}
