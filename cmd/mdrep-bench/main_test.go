package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mdrep/internal/massim
cpu: AMD EPYC 7543 32-Core Processor
BenchmarkMassimStep-8   	 2000000	       612.1 ns/op	      15 B/op	       0 allocs/op
BenchmarkMassimEpoch-8  	      50	  22334455 ns/op
ok  	mdrep/internal/massim	3.21s
pkg: mdrep
BenchmarkJournalAppend-8	  100000	     10444 ns/op	        95.61 MB/s
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "EPYC") {
		t.Fatalf("header mis-parsed: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(rep.Results), rep.Results)
	}
	// Results sort by (package, name).
	if rep.Results[0].Name != "BenchmarkJournalAppend-8" || rep.Results[0].Package != "mdrep" {
		t.Fatalf("sort order wrong: %+v", rep.Results[0])
	}
	var found *float64
	for _, b := range rep.Results {
		if b.Name == "BenchmarkMassimStep-8" {
			if b.Package != "mdrep/internal/massim" || b.Iterations != 2000000 || b.NsPerOp != 612.1 {
				t.Fatalf("step mis-parsed: %+v", b)
			}
			if b.BytesPerOp == nil || *b.BytesPerOp != 15 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
				t.Fatalf("benchmem fields mis-parsed: %+v", b)
			}
			found = &b.NsPerOp
		}
		if b.Name == "BenchmarkJournalAppend-8" {
			if b.Extra["MB/s"] != 95.61 {
				t.Fatalf("extra metric mis-parsed: %+v", b)
			}
		}
	}
	if found == nil {
		t.Fatal("BenchmarkMassimStep missing")
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
}

func TestParseCountCollapsesToFastest(t *testing.T) {
	const repeated = `pkg: mdrep
BenchmarkX-8	 1000	 120.0 ns/op
BenchmarkX-8	 1000	 100.0 ns/op
BenchmarkX-8	 1000	 135.0 ns/op
BenchmarkY-8	 1000	  50.0 ns/op
`
	rep, err := parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2 (repeats collapsed): %+v", len(rep.Results), rep.Results)
	}
	for _, b := range rep.Results {
		if b.Name == "BenchmarkX-8" && b.NsPerOp != 100.0 {
			t.Fatalf("BenchmarkX kept %v ns/op, want the 100.0 minimum", b.NsPerOp)
		}
	}
}

func TestParseFailuresAndGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("--- FAIL: TestX\nFAIL\tmdrep/internal/x\t0.1s\nBenchmarkBroken-8 notanumber ns/op\nrandom chatter\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("failures = %v, want 2 lines", rep.Failures)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed as results: %+v", rep.Results)
	}
}

func TestBenchKey(t *testing.T) {
	if k := benchKey("mdrep", "BenchmarkX-8"); k != "mdrep BenchmarkX" {
		t.Fatalf("suffix not stripped: %q", k)
	}
	if k := benchKey("mdrep", "BenchmarkSystemIngest"); k != "mdrep BenchmarkSystemIngest" {
		t.Fatalf("bare name mangled: %q", k)
	}
	if k := benchKey("mdrep", "BenchmarkShardedApplyBatch/k=8-4"); k != "mdrep BenchmarkShardedApplyBatch/k=8" {
		t.Fatalf("sub-benchmark suffix not stripped: %q", k)
	}
}

func TestGate(t *testing.T) {
	baseline := `{"results":[
		{"package":"mdrep","name":"BenchmarkA-8","iterations":1,"ns_per_op":100},
		{"package":"mdrep","name":"BenchmarkB-8","iterations":1,"ns_per_op":100},
		{"package":"mdrep","name":"BenchmarkGone-8","iterations":1,"ns_per_op":5}]}`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := &Report{Results: []Benchmark{
		{Package: "mdrep", Name: "BenchmarkA-4", NsPerOp: 110},  // +10%: within gate
		{Package: "mdrep", Name: "BenchmarkB-4", NsPerOp: 120},  // +20%: regression
		{Package: "mdrep", Name: "BenchmarkNew-4", NsPerOp: 50}, // no baseline: ignored
	}}
	var out strings.Builder
	ok, err := runGate(&out, fresh, path, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("20%% regression passed the 15%% gate:\n%s", out.String())
	}
	for _, want := range []string{"REGRESSED", "BenchmarkB", "new ", "BenchmarkNew", "retired", "BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
	// Loosening the threshold past the worst delta must pass.
	out.Reset()
	ok, err = runGate(&out, fresh, path, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("25%% gate rejected a 20%% delta:\n%s", out.String())
	}
	if _, err := runGate(&out, fresh, path, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := runGate(&out, fresh, filepath.Join(t.TempDir(), "missing.json"), 0.15); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
