// Command mdrep-bench converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the canonical benchmark snapshot
// format committed as BENCH_<date>.json (see `make bench-json`). Keeping
// the converter in-repo means the trajectory files share one schema
// across PRs, so perf claims can be diffed instead of re-argued.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | mdrep-bench > BENCH_2026-01-02.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Package is the import path the result came from.
	Package string `json:"package"`
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. MB/s).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos     string      `json:"goos,omitempty"`
	Goarch   string      `json:"goarch,omitempty"`
	CPU      string      `json:"cpu,omitempty"`
	Results  []Benchmark `json:"results"`
	Failures []string    `json:"failures,omitempty"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-bench:", err)
		os.Exit(1)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Lines it does not
// recognise are ignored, so piped `ok`/`PASS` chatter is harmless.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			rep.Failures = append(rep.Failures, line)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(pkg, line); ok {
				rep.Results = append(rep.Results, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(rep.Results, func(i, j int) bool {
		if rep.Results[i].Package != rep.Results[j].Package {
			return rep.Results[i].Package < rep.Results[j].Package
		}
		return rep.Results[i].Name < rep.Results[j].Name
	})
	return rep, nil
}

// parseBench parses one result line:
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  2 allocs/op  9.5 MB/s
func parseBench(pkg, line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: f[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, seenNs
}
