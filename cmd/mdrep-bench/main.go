// Command mdrep-bench converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the canonical benchmark snapshot
// format committed as BENCH_<date>.json (see `make bench-json`). Keeping
// the converter in-repo means the trajectory files share one schema
// across PRs, so perf claims can be diffed instead of re-argued.
//
// With -gate the command becomes the CI perf regression gate: instead of
// emitting JSON it compares the fresh run on stdin against a committed
// baseline snapshot and fails when any shared benchmark's ns/op regressed
// by more than -threshold (default 15%). Benchmarks present on only one
// side are reported but never fail the gate, so adding or retiring a
// benchmark does not require regenerating history in the same commit.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | mdrep-bench > BENCH_2026-01-02.json
//	go test -run '^$' -bench . -benchmem ./... | mdrep-bench -gate BENCH_2026-01-02.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Package is the import path the result came from.
	Package string `json:"package"`
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. MB/s).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos     string      `json:"goos,omitempty"`
	Goarch   string      `json:"goarch,omitempty"`
	CPU      string      `json:"cpu,omitempty"`
	Results  []Benchmark `json:"results"`
	Failures []string    `json:"failures,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("mdrep-bench", flag.ContinueOnError)
	gate := fs.String("gate", "", "baseline BENCH_*.json to gate the fresh run on stdin against")
	threshold := fs.Float64("threshold", 0.15, "maximum tolerated fractional ns/op regression")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-bench:", err)
		os.Exit(1)
	}
	if *gate != "" {
		ok, err := runGate(os.Stdout, rep, *gate, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdrep-bench:", err)
			os.Exit(1)
		}
		if !ok || len(rep.Failures) > 0 {
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "mdrep-bench:", err)
		os.Exit(1)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

// benchKey identifies a benchmark across machines: package plus name
// with the -GOMAXPROCS suffix stripped, so a snapshot taken at -8
// still gates a single-core CI runner.
func benchKey(pkg, name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return pkg + " " + name
}

// runGate compares fresh against the baseline snapshot and reports per
// benchmark; it returns false when any shared benchmark's ns/op exceeds
// baseline by more than threshold.
func runGate(w io.Writer, fresh *Report, baselinePath string, threshold float64) (bool, error) {
	if threshold <= 0 {
		return false, fmt.Errorf("threshold %v must be positive", threshold)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var baseline Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return false, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	base := make(map[string]float64, len(baseline.Results))
	for _, b := range baseline.Results {
		base[benchKey(b.Package, b.Name)] = b.NsPerOp
	}
	fmt.Fprintf(w, "gate: fresh run vs %s (threshold %+.0f%%)\n", baselinePath, threshold*100)
	seen := make(map[string]bool, len(fresh.Results))
	regressions := 0
	for _, b := range fresh.Results {
		key := benchKey(b.Package, b.Name)
		seen[key] = true
		old, ok := base[key]
		if !ok {
			fmt.Fprintf(w, "  new     %-60s %12.1f ns/op (no baseline)\n", key, b.NsPerOp)
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (b.NsPerOp - old) / old
		}
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "  %-7s %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", verdict, key, old, b.NsPerOp, delta*100)
	}
	for _, b := range baseline.Results {
		if key := benchKey(b.Package, b.Name); !seen[key] {
			fmt.Fprintf(w, "  retired %-60s (in baseline only)\n", key)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "gate: FAIL — %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold*100)
		return false, nil
	}
	fmt.Fprintln(w, "gate: PASS")
	return true, nil
}

// parse reads `go test -bench` text output. Lines it does not
// recognise are ignored, so piped `ok`/`PASS` chatter is harmless.
// Repeated result lines for one benchmark (-count=N) collapse to the
// fastest run.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "--- FAIL") || strings.HasPrefix(line, "FAIL"):
			rep.Failures = append(rep.Failures, line)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(pkg, line); ok {
				rep.Results = append(rep.Results, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Collapse repeated runs of one benchmark (go test -count=N) to the
	// fastest. Min ns/op is the noise-robust estimate on shared hardware:
	// scheduler interference only ever slows a run down, so the minimum
	// is the closest sample to the code's true cost.
	index := make(map[string]int, len(rep.Results))
	kept := rep.Results[:0]
	for _, b := range rep.Results {
		key := b.Package + " " + b.Name
		if i, ok := index[key]; ok {
			if b.NsPerOp < kept[i].NsPerOp {
				kept[i] = b
			}
			continue
		}
		index[key] = len(kept)
		kept = append(kept, b)
	}
	rep.Results = kept
	sort.Slice(rep.Results, func(i, j int) bool {
		if rep.Results[i].Package != rep.Results[j].Package {
			return rep.Results[i].Package < rep.Results[j].Package
		}
		return rep.Results[i].Name < rep.Results[j].Name
	})
	return rep, nil
}

// parseBench parses one result line:
//
//	BenchmarkName-8  1000  1234 ns/op  56 B/op  2 allocs/op  9.5 MB/s
func parseBench(pkg, line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: f[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, seenNs
}
