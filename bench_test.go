// Benchmarks regenerating the paper's evaluation (Figure 1) and the
// extension experiments E1–E7 of DESIGN.md, plus micro-benchmarks of the
// kernels they stand on. Run with:
//
//	go test -bench=. -benchmem
//
// Scales are the "small" experiment scales so a full sweep completes in
// minutes; EXPERIMENTS.md records full-scale numbers from cmd/mdrep-sim.
package mdrep_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"mdrep"
	"mdrep/internal/core"
	"mdrep/internal/dht"
	"mdrep/internal/eigentrust"
	"mdrep/internal/eval"
	"mdrep/internal/experiments"
	"mdrep/internal/identity"
	"mdrep/internal/journal"
	"mdrep/internal/obs"
	"mdrep/internal/p2psim"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
	"mdrep/internal/trace"
)

// --- Figure 1 -------------------------------------------------------------

// BenchmarkFigure1Coverage regenerates the whole of Figure 1 (trace
// generation plus five coverage replays) per iteration.
func BenchmarkFigure1Coverage(b *testing.B) {
	cfg := experiments.DefaultFig1Config(experiments.ScaleSmall)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Steady[len(res.Steady)-1] < 0.8 {
			b.Fatalf("implicit coverage %v below the paper's band", res.Steady[len(res.Steady)-1])
		}
	}
}

// --- Extension experiments E1–E7 ------------------------------------------

func benchP2PConfig(scheme p2psim.Scheme) p2psim.Config {
	cfg := p2psim.DefaultConfig()
	cfg.Peers = 150
	cfg.Titles = 200
	cfg.Requests = 5000
	cfg.Scheme = scheme
	return cfg
}

// BenchmarkE1FakeFiles runs the pollution scenario once per scheme per
// iteration and reports the resulting fake-download ratios.
func BenchmarkE1FakeFiles(b *testing.B) {
	for _, scheme := range []p2psim.Scheme{
		p2psim.SchemeMDRep, p2psim.SchemeLIP, p2psim.SchemeNaiveVoting, p2psim.SchemeNone,
	} {
		b.Run(scheme.String(), func(b *testing.B) {
			var lastRatio float64
			for i := 0; i < b.N; i++ {
				res, err := p2psim.Run(benchP2PConfig(scheme))
				if err != nil {
					b.Fatal(err)
				}
				lastRatio = res.FakeFraction()
			}
			b.ReportMetric(lastRatio, "fake-ratio")
		})
	}
}

// BenchmarkE2Incentive runs the free-riding scenario and reports the
// bandwidth advantage sharers enjoy over free-riders.
func BenchmarkE2Incentive(b *testing.B) {
	cfg := p2psim.IncentiveConfig()
	cfg.Peers = 150
	cfg.Titles = 200
	cfg.Requests = 5000
	var advantage float64
	for i := 0; i < b.N; i++ {
		res, err := p2psim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		free := res.BandwidthByClass[p2psim.FreeRider].Mean()
		if free > 0 {
			advantage = res.BandwidthByClass[p2psim.Honest].Mean() / free
		}
	}
	b.ReportMetric(advantage, "bw-advantage")
}

// BenchmarkE3Collusion runs the clique experiment and reports EigenTrust's
// amplification next to MDRep's suppression.
func BenchmarkE3Collusion(b *testing.B) {
	cfg := experiments.DefaultE3Config(experiments.ScaleSmall)
	var et, md float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3Collusion(cfg)
		if err != nil {
			b.Fatal(err)
		}
		et = res.EigenTrustShare / res.ServiceShare
		md = res.MDRepShare / res.ServiceShare
	}
	b.ReportMetric(et, "eigentrust-amp")
	b.ReportMetric(md, "mdrep-amp")
}

// BenchmarkE4Ablation measures the per-dimension coverage ablation.
func BenchmarkE4Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4Ablation(experiments.ScaleSmall); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Steps measures the multi-trust depth sweep.
func BenchmarkE5Steps(b *testing.B) {
	cfg := experiments.DefaultE5Config(experiments.ScaleSmall)
	var oneStep, deep float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5Steps(cfg)
		if err != nil {
			b.Fatal(err)
		}
		oneStep = res.Coverage[0]
		deep = res.Coverage[len(res.Coverage)-1]
	}
	b.ReportMetric(oneStep, "coverage-1step")
	b.ReportMetric(deep, "coverage-6step")
}

// BenchmarkE6DHT measures the DHT sweep (lookup hops, publish overhead,
// churn resilience).
func BenchmarkE6DHT(b *testing.B) {
	cfg := experiments.DefaultE6Config(experiments.ScaleSmall)
	var hops float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6DHT(cfg)
		if err != nil {
			b.Fatal(err)
		}
		hops = res.Rows[len(res.Rows)-1].MeanLookupHops
	}
	b.ReportMetric(hops, "hops-at-64")
}

// --- Kernels ---------------------------------------------------------------

// buildLoadedEngine returns an engine with a realistic evidence load.
func buildLoadedEngine(b *testing.B, peers, downloads int) *core.Engine {
	b.Helper()
	tc := trace.DefaultGenConfig()
	tc.Peers = peers
	tc.Files = peers * 4
	tc.Downloads = downloads
	tr, err := trace.Generate(tc)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := core.NewEngine(peers, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, rec := range tr.Records {
		f := eval.FileID(trace.FileHash(rec.File))
		if err := engine.RecordDownload(rec.Downloader, rec.Uploader, f, rec.Size, rec.Time); err != nil {
			b.Fatal(err)
		}
		if err := engine.SetImplicit(rec.Downloader, f, 0.9, rec.Time); err != nil {
			b.Fatal(err)
		}
		if err := engine.SetImplicit(rec.Uploader, f, 0.9, rec.Time); err != nil {
			b.Fatal(err)
		}
	}
	return engine
}

// BenchmarkTrustMatrixBuild measures building TM (FM + DM + UM) from a
// loaded engine — the per-epoch cost of the system.
func BenchmarkTrustMatrixBuild(b *testing.B) {
	engine := buildLoadedEngine(b, 300, 20000)
	now := 30 * 24 * time.Hour
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.BuildTM(now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReputationQuery measures one peer's multi-trust row against a
// prebuilt TM — the per-request cost of the system.
func BenchmarkReputationQuery(b *testing.B) {
	engine := buildLoadedEngine(b, 300, 20000)
	now := 30 * 24 * time.Hour
	tm, err := engine.BuildTM(now)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ReputationsFromTM(tm, i%300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileJudgement measures Eq. (9) over a 50-evaluator opinion set.
func BenchmarkFileJudgement(b *testing.B) {
	engine := buildLoadedEngine(b, 300, 20000)
	now := 30 * 24 * time.Hour
	tm, err := engine.BuildTM(now)
	if err != nil {
		b.Fatal(err)
	}
	owners := make([]core.OwnerEvaluation, 50)
	for i := range owners {
		owners[i] = core.OwnerEvaluation{Owner: i * 3, Value: float64(i%10) / 10}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := engine.JudgeFileFromTM(tm, i%300, owners); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseMatMul measures TM·TM on a Maze-sized sparse matrix.
func BenchmarkSparseMatMul(b *testing.B) {
	rng := sim.NewRNG(1)
	n := 1000
	m := sparse.New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 20; k++ {
			m.Set(i, rng.Intn(n), rng.Float64())
		}
	}
	m.RowNormalize()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mul(m); err != nil {
			b.Fatal(err)
		}
	}
}

// randomStochastic builds an n×n row-stochastic matrix at Maze density
// (~20 nnz/row), the same fill as BenchmarkSparseMatMul.
func randomStochastic(seed uint64, n int) *sparse.Matrix {
	rng := sim.NewRNG(seed)
	m := sparse.New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 20; k++ {
			m.Set(i, rng.Intn(n), rng.Float64())
		}
	}
	return m.RowNormalize()
}

// BenchmarkRMPowParallel compares RM = TM^k (Eq. 8) on the seed's
// map-backed Pow against the CSR worker-pool Pow. k = 2 keeps the power
// sparse enough (~400 nnz/row) that the map path fits in memory at
// n = 10k; higher powers densify and only widen the gap.
func BenchmarkRMPowParallel(b *testing.B) {
	const steps = 2
	for _, n := range []int{1000, 10000} {
		m := randomStochastic(uint64(n), n)
		c := m.Freeze()
		b.Run(fmt.Sprintf("map/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Pow(steps); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("csr/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Pow(steps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildTMIncremental compares the per-event cost of refreshing
// TM: the incremental path re-derives only the rows dirtied by one new
// evaluation, the full path recomputes every row from the same evidence.
func BenchmarkBuildTMIncremental(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		engine, err := core.NewEngine(n, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		var now time.Duration
		for _, ev := range journalWorkload(n, n*20) {
			if err := engine.ApplyEvent(ev); err != nil {
				b.Fatal(err)
			}
			if ev.Time > now {
				now = ev.Time
			}
		}
		if _, err := engine.BuildTM(now); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.InvalidateCaches()
				if _, err := engine.BuildTM(now); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := core.Event{
					Kind:  core.EventSetImplicit,
					I:     i % n,
					File:  eval.FileID(fmt.Sprintf("f-%d", i%n)),
					Value: 0.5,
					Time:  now,
				}
				if err := engine.ApplyEvent(ev); err != nil {
					b.Fatal(err)
				}
				if _, err := engine.BuildTM(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEigenTrust measures the baseline's power iteration at n=1000.
func BenchmarkEigenTrust(b *testing.B) {
	rng := sim.NewRNG(2)
	n := 1000
	m := sparse.New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 20; k++ {
			m.Set(i, rng.Intn(n), rng.Float64())
		}
	}
	m.RowNormalize()
	cfg := eigentrust.DefaultConfig([]int{0, 1, 2})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eigentrust.Compute(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDHTLookup measures a single routed lookup on a 64-node ring.
func BenchmarkDHTLookup(b *testing.B) {
	ring, err := dht.NewRing(64, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := dht.HashKey(fmt.Sprintf("bench-%d", i))
		if _, err := ring.Nodes[i%64].Lookup(obs.SpanContext{}, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDHTPublish measures a replicated publish on a 64-node ring.
func BenchmarkDHTPublish(b *testing.B) {
	ring, err := dht.NewRing(64, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench-file-%d", i)
		rec := dht.StoredRecord{
			Key: dht.HashKey(name),
			Info: eval.Info{
				FileID:     eval.FileID(name),
				OwnerID:    "bench-owner",
				Evaluation: 0.9,
				Timestamp:  time.Duration(i),
			},
		}
		if err := ring.Nodes[i%64].Publish([]dht.StoredRecord{rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthesising the Figure 1 workload.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.DefaultGenConfig()
	cfg.Peers = 200
	cfg.Files = 1000
	cfg.Downloads = 20000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignVerify measures the EvaluationInfo signature round trip.
func BenchmarkSignVerify(b *testing.B) {
	id, err := identity.Generate(identity.NewDeterministicReader(1))
	if err != nil {
		b.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(id.PublicKey()); err != nil {
		b.Fatal(err)
	}
	info := eval.Info{FileID: "f", OwnerID: id.ID(), Evaluation: 0.9, Timestamp: 1}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		info.Timestamp = time.Duration(i)
		if err := info.Sign(id); err != nil {
			b.Fatal(err)
		}
		if err := info.Verify(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Journal ---------------------------------------------------------------

// journalWorkload returns a deterministic stream of valid engine events
// with the mix a live peer journals: retention re-observations dominate
// (they overwrite store records, so state stays bounded while the log
// grows), with downloads and votes sprinkled in.
func journalWorkload(peers, count int) []core.Event {
	rng := sim.NewRNG(7)
	events := make([]core.Event, 0, count)
	for i := 0; len(events) < count; i++ {
		now := time.Duration(i) * time.Second
		p := rng.Intn(peers)
		f := eval.FileID(fmt.Sprintf("f-%d", rng.Intn(peers)))
		events = append(events, core.Event{Kind: core.EventSetImplicit, I: p, File: f, Value: rng.Float64(), Time: now})
		if i%8 == 0 {
			to := rng.Intn(peers - 1)
			if to >= p {
				to++
			}
			events = append(events, core.Event{Kind: core.EventDownload, I: p, J: to, File: f, Size: 1 << 20, Time: now})
		}
		if i%5 == 0 {
			events = append(events, core.Event{Kind: core.EventVote, I: p, File: f, Value: rng.Float64(), Time: now})
		}
	}
	return events[:count]
}

// BenchmarkJournalAppend measures the durable write path — apply + encode +
// WAL append — at two fsync batch sizes. The gap between sync=1 and
// sync=64 is the price of per-event durability.
func BenchmarkJournalAppend(b *testing.B) {
	const peers = 100
	for _, syncEvery := range []int{1, 64} {
		b.Run(fmt.Sprintf("sync=%d", syncEvery), func(b *testing.B) {
			jcfg := journal.Config{SyncEvery: syncEvery, SnapshotEvery: 0, KeepSnapshots: 2}
			jeng, _, err := journal.OpenEngine(b.TempDir(), peers, core.DefaultConfig(), jcfg)
			if err != nil {
				b.Fatal(err)
			}
			events := journalWorkload(peers, 4096)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := events[i%len(events)]
				ev.Time = time.Duration(i) * time.Second
				if err := jeng.Apply(ev); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := jeng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// journalState adapts a core engine to journal.State so BenchmarkRecovery
// can reopen a prepared data dir without mutating it (Log.Close takes no
// snapshot, unlike the typed engine wrapper's Close).
type journalState struct {
	eng *core.Engine
	n   int
}

func (s *journalState) Apply(payload []byte) error {
	ev, err := journal.DecodeEvent(payload)
	if err != nil {
		return err
	}
	return s.eng.ApplyEvent(ev)
}

func (s *journalState) Snapshot() ([]byte, error) {
	return json.Marshal(s.eng.ExportState())
}

func (s *journalState) Restore(snapshot []byte) error {
	var st core.EngineState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return err
	}
	eng, err := core.NewEngineFromState(&st, core.DefaultConfig())
	if err != nil {
		return err
	}
	s.eng = eng
	return nil
}

// buildJournalDir writes a 100k-event journal into dir, snapshotting at
// the configured interval (0 = never, leaving a WAL that must be fully
// replayed).
func buildJournalDir(b *testing.B, dir string, events []core.Event, snapshotEvery uint64) {
	b.Helper()
	eng, err := core.NewEngine(100, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := journal.Config{SyncEvery: 1024, SnapshotEvery: snapshotEvery, KeepSnapshots: 2}
	state := &journalState{eng: eng, n: 100}
	log, _, err := journal.Open(dir, cfg, state)
	if err != nil {
		b.Fatal(err)
	}
	for _, ev := range events {
		if err := eng.ApplyEvent(ev); err != nil {
			b.Fatal(err)
		}
		if err := log.Append(journal.EncodeEvent(ev)); err != nil {
			b.Fatal(err)
		}
		if log.SnapshotDue() {
			if err := log.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery measures crash recovery of a 100k-event journal. The
// full-replay case re-applies every event; the snapshot case loads the
// newest snapshot (taken at 90k with a 15k interval) and replays only the
// 10k-event tail — bounded by SnapshotEvery regardless of history length.
func BenchmarkRecovery(b *testing.B) {
	events := journalWorkload(100, 100_000)
	for _, tc := range []struct {
		name          string
		snapshotEvery uint64
	}{
		{"full-replay", 0},
		{"snapshot-tail", 15_000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			buildJournalDir(b, dir, events, tc.snapshotEvery)
			cfg := journal.Config{SyncEvery: 1024, SnapshotEvery: tc.snapshotEvery, KeepSnapshots: 2}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(100, core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				log, info, err := journal.Open(dir, cfg, &journalState{eng: eng, n: 100})
				if err != nil {
					b.Fatal(err)
				}
				if info.SnapshotSeq+info.Replayed != uint64(len(events)) {
					b.Fatalf("recovered %d+%d events, want %d", info.SnapshotSeq, info.Replayed, len(events))
				}
				if err := log.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSystemIngest measures the public-API write path: one download
// record plus one vote.
func BenchmarkSystemIngest(b *testing.B) {
	sys, err := mdrep.NewSystem(100)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Second
		f := mdrep.FileID(fmt.Sprintf("f-%d", i%500))
		if err := sys.RecordDownload(i%100, (i+1)%100, f, 1<<20, now); err != nil {
			b.Fatal(err)
		}
		if err := sys.Vote(i%100, f, 0.9, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemJudge measures the public-API read path — a fresh
// multi-trust judgement including matrix construction — on a fixed
// evidence load.
func BenchmarkSystemJudge(b *testing.B) {
	sys, err := mdrep.NewSystem(100)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * time.Second
		f := mdrep.FileID(fmt.Sprintf("f-%d", i%200))
		if err := sys.RecordDownload(i%100, (i+1)%100, f, 1<<20, now); err != nil {
			b.Fatal(err)
		}
		if err := sys.Vote(i%100, f, 0.9, now); err != nil {
			b.Fatal(err)
		}
	}
	owners := []mdrep.OwnerEvaluation{{Owner: 1, Value: 0.9}, {Owner: 2, Value: 0.1}}
	now := 2000 * time.Second
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.JudgeFile(i%100, owners, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedApplyBatch measures group-commit ingest through the
// sharded facade as the shard count grows. Each iteration applies one
// pre-built 256-event batch; with k shards the batch fans out to k
// workers that each take only their own shard's lock. On a single-core
// host the curve reads as lock-partitioning overhead; on multi-core it
// reads as ingest scaling.
func BenchmarkShardedApplyBatch(b *testing.B) {
	const n, batchLen = 2000, 256
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			eng, err := core.NewSharded(n, k, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			batches := make([][]core.Event, 8)
			for bi := range batches {
				evs := make([]core.Event, 0, batchLen)
				for i := 0; len(evs) < batchLen; i++ {
					p, q := (bi*batchLen+i*7)%n, (bi*batchLen+i*13+1)%n
					f := eval.FileID(fmt.Sprintf("f-%d", i%64))
					now := time.Duration(bi*batchLen+i) * time.Second
					switch i % 3 {
					case 0:
						evs = append(evs, core.Event{Kind: core.EventVote, I: p, File: f, Value: 0.9, Time: now})
					case 1:
						if p != q {
							evs = append(evs, core.Event{Kind: core.EventDownload, I: p, J: q, File: f, Size: 1 << 20, Time: now})
						}
					case 2:
						if p != q {
							evs = append(evs, core.Event{Kind: core.EventRateUser, I: p, J: q, Value: 0.8})
						}
					}
				}
				batches[bi] = evs
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.ApplyBatch(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedRebuild measures the parallel per-shard TM rebuild
// after a full ingest: every iteration dirties one peer per shard and
// re-freezes, so the work is the incremental recompute plus the k-way
// row-set merge.
func BenchmarkShardedRebuild(b *testing.B) {
	const n = 2000
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			eng, err := core.NewSharded(n, k, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 4*n; i++ {
				f := eval.FileID(fmt.Sprintf("f-%d", i%256))
				if err := eng.Vote(i%n, f, 0.9, time.Duration(i)*time.Second); err != nil {
					b.Fatal(err)
				}
			}
			now := time.Duration(4*n) * time.Second
			if _, err := eng.TM(now); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Vote(i%n, "hot", 0.5, now); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.TM(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
