package trace

import (
	"bufio"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The on-disk schema mirrors the Maze log server's fields (§3.2:
// "uploading user-id, downloading user-id, global time, files content
// hash, and filename") as tab-separated lines:
//
//	H	<peers>	<files>                          header
//	F	<hash>	<name>	<size>                   one per file, in index order
//	D	<uploader>	<downloader>	<timeNanos>	<hash>	<name>	<size>
//
// User IDs are "u%06d"; content hashes are SHA-1 of the synthetic file
// name. A real Maze log converts into this schema with a one-line awk.

// PeerName formats a peer index as its log user-id.
func PeerName(i int) string { return fmt.Sprintf("u%06d", i) }

// FileName formats a file index as its log filename.
func FileName(f int) string { return fmt.Sprintf("file-%06d.dat", f) }

// FileHash returns the content hash of file index f.
func FileHash(f int) string {
	sum := sha1.Sum([]byte(FileName(f)))
	return hex.EncodeToString(sum[:])
}

// Write serialises the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "H\t%d\t%d\n", t.Peers, t.Files); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for f := 0; f < t.Files; f++ {
		if _, err := fmt.Fprintf(bw, "F\t%s\t%s\t%d\n", FileHash(f), FileName(f), t.FileSizes[f]); err != nil {
			return fmt.Errorf("trace: write file %d: %w", f, err)
		}
	}
	for i, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "D\t%s\t%s\t%d\t%s\t%s\t%d\n",
			PeerName(r.Uploader), PeerName(r.Downloader), int64(r.Time),
			FileHash(r.File), FileName(r.File), r.Size); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write (or converted from a real log).
// Unknown line types are skipped so logs may carry comments.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var t Trace
	hashToFile := make(map[string]int)
	nameToPeer := make(map[string]int)
	peerIndex := func(name string) (int, error) {
		if i, ok := nameToPeer[name]; ok {
			return i, nil
		}
		// Accept only ids we can map densely; synthetic ids embed the
		// index, foreign ids get the next free slot.
		i := len(nameToPeer)
		if strings.HasPrefix(name, "u") {
			if v, err := strconv.Atoi(name[1:]); err == nil {
				i = v
			}
		}
		if i >= t.Peers {
			return 0, fmt.Errorf("trace: peer %q outside declared population %d", name, t.Peers)
		}
		nameToPeer[name] = i
		return i, nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "H":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed header", lineNo)
			}
			peers, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: peers: %w", lineNo, err)
			}
			files, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: files: %w", lineNo, err)
			}
			t.Peers, t.Files = peers, files
			t.FileSizes = make([]int64, 0, files)
		case "F":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: malformed file entry", lineNo)
			}
			size, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: size: %w", lineNo, err)
			}
			hashToFile[fields[1]] = len(t.FileSizes)
			t.FileSizes = append(t.FileSizes, size)
		case "D":
			if len(fields) != 7 {
				return nil, fmt.Errorf("trace: line %d: malformed download entry", lineNo)
			}
			up, err := peerIndex(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			down, err := peerIndex(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			ns, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: time: %w", lineNo, err)
			}
			file, ok := hashToFile[fields[4]]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown content hash %s", lineNo, fields[4])
			}
			size, err := strconv.ParseInt(fields[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: size: %w", lineNo, err)
			}
			t.Records = append(t.Records, Record{
				Time:       time.Duration(ns),
				Uploader:   up,
				Downloader: down,
				File:       file,
				Size:       size,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
