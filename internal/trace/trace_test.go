package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func smallConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Peers = 100
	cfg.Files = 500
	cfg.Downloads = 5000
	return cfg
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) < 4000 {
		t.Fatalf("generated only %d records, want ≳4000 of 5000 requested", len(tr.Records))
	}
	if tr.Duration() > 30*24*time.Hour {
		t.Fatalf("trace exceeds duration: %v", tr.Duration())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		if a.Records[i] == b.Records[i] {
			same++
		}
	}
	if same > n/10 {
		t.Fatalf("different seeds share %d/%d records", same, n)
	}
}

func TestGenerateSkewMatchesMaze(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := tr.ComputeStats()
	// The top 1% of files should carry a large share of downloads (Zipf
	// 1.0 over 500 files gives the top 5 files roughly 20-40%).
	if s.TopFileShare < 0.10 {
		t.Fatalf("top-file share %v too low for Zipf workload", s.TopFileShare)
	}
	// Heavy-tailed peers: the top 1% of peers issue well above 1% of
	// downloads.
	if s.TopPeerShare < 0.02 {
		t.Fatalf("top-peer share %v shows no activity skew", s.TopPeerShare)
	}
	if s.MeanOwnersFile < 1 {
		t.Fatalf("mean owners per file %v", s.MeanOwnersFile)
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	mutations := []func(*GenConfig){
		func(c *GenConfig) { c.Peers = 1 },
		func(c *GenConfig) { c.Files = 0 },
		func(c *GenConfig) { c.Downloads = -1 },
		func(c *GenConfig) { c.Duration = 0 },
		func(c *GenConfig) { c.ZipfExponent = -1 },
		func(c *GenConfig) { c.ActivityAlpha = 0 },
		func(c *GenConfig) { c.ActivityMax = 1 },
		func(c *GenConfig) { c.SeedersPerFile = 0 },
		func(c *GenConfig) { c.ColdStartFraction = 1.5 },
		func(c *GenConfig) { c.MinFileSize = 0 },
		func(c *GenConfig) { c.MaxFileSize = 1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultGenConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	good := &Trace{
		Peers:     2,
		Files:     1,
		FileSizes: []int64{100},
		Records: []Record{
			{Time: 1, Uploader: 0, Downloader: 1, File: 0, Size: 100},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	bad := []*Trace{
		{Peers: 0, Files: 1, FileSizes: []int64{1}},
		{Peers: 2, Files: 2, FileSizes: []int64{1}},
		{Peers: 2, Files: 1, FileSizes: []int64{1},
			Records: []Record{{Uploader: 5, Downloader: 1, File: 0}}},
		{Peers: 2, Files: 1, FileSizes: []int64{1},
			Records: []Record{{Uploader: 0, Downloader: 0, File: 0}}},
		{Peers: 2, Files: 1, FileSizes: []int64{1},
			Records: []Record{{Uploader: 0, Downloader: 1, File: 3}}},
		{Peers: 2, Files: 1, FileSizes: []int64{1}, Records: []Record{
			{Time: 5, Uploader: 0, Downloader: 1, File: 0},
			{Time: 2, Uploader: 0, Downloader: 1, File: 0},
		}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("bad trace %d validated", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Downloads = 1000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Peers != tr.Peers || got.Files != tr.Files {
		t.Fatalf("population mismatch: %d/%d vs %d/%d", got.Peers, got.Files, tr.Peers, tr.Files)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
	for f := range got.FileSizes {
		if got.FileSizes[f] != tr.FileSizes[f] {
			t.Fatalf("file %d size %d vs %d", f, got.FileSizes[f], tr.FileSizes[f])
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# converted from maze log\nH\t2\t1\nF\t" + FileHash(0) + "\t" + FileName(0) + "\t100\n" +
		"D\tu000000\tu000001\t5\t" + FileHash(0) + "\t" + FileName(0) + "\t100\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"H\t2\n",
		"H\t2\t1\nF\tabc\tname\n",
		"H\t2\t1\nF\tabc\tname\tNaNsize\n",
		"H\t2\t1\nF\t" + FileHash(0) + "\t" + FileName(0) + "\t10\nD\tu000000\tu000001\t5\tWRONGHASH\tx\t10\n",
		"H\t2\t1\nF\t" + FileHash(0) + "\t" + FileName(0) + "\t10\nD\tu000000\tu000009\t5\t" + FileHash(0) + "\tx\t10\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("malformed input %d accepted", i)
		}
	}
}

func TestComputeStatsEmptyTrace(t *testing.T) {
	tr := &Trace{Peers: 5, Files: 3, FileSizes: []int64{1, 2, 3}}
	s := tr.ComputeStats()
	if s.Downloads != 0 || s.ActivePeers != 0 || s.ActiveFiles != 0 {
		t.Fatalf("empty trace stats: %+v", s)
	}
}

func TestFileHashStable(t *testing.T) {
	if FileHash(1) != FileHash(1) {
		t.Fatal("FileHash not deterministic")
	}
	if FileHash(1) == FileHash(2) {
		t.Fatal("FileHash collision between adjacent indices")
	}
	if len(FileHash(0)) != 40 {
		t.Fatalf("FileHash length %d, want 40 hex chars", len(FileHash(0)))
	}
}
