// Package trace models the Maze download log that drives the paper's
// Figure 1 experiment.
//
// The real Maze log (30 days, ~115k users, 24.6M downloads) is
// proprietary, so this package supplies the substitution documented in
// DESIGN.md §3: a synthetic generator with the structural properties that
// determine request coverage — Zipf file popularity, heavy-tailed user
// activity, user session churn, and file birth/death — plus a reader and
// writer for the paper's log schema (uploader id, downloader id, global
// time, content hash, filename) so a real log can be replayed unchanged.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// Record is one download action from the log. Peers and files are dense
// integer indices; the I/O layer maps them to the textual IDs and content
// hashes of the on-disk schema.
type Record struct {
	// Time is the global time of the download relative to the log start.
	Time time.Duration
	// Uploader is the serving peer.
	Uploader int
	// Downloader is the requesting peer.
	Downloader int
	// File is the downloaded file.
	File int
	// Size is the file size in bytes.
	Size int64
}

// Trace is an ordered download log with its population sizes.
type Trace struct {
	// Peers is the number of distinct peers (indices [0, Peers)).
	Peers int
	// Files is the number of distinct files (indices [0, Files)).
	Files int
	// FileSizes holds the size in bytes of each file.
	FileSizes []int64
	// Records are the downloads in non-decreasing time order.
	Records []Record
}

// Validate checks index ranges and time ordering.
func (t *Trace) Validate() error {
	if t.Peers <= 0 || t.Files <= 0 {
		return fmt.Errorf("trace: empty population (peers=%d files=%d)", t.Peers, t.Files)
	}
	if len(t.FileSizes) != t.Files {
		return fmt.Errorf("trace: %d file sizes for %d files", len(t.FileSizes), t.Files)
	}
	var prev time.Duration
	for i, r := range t.Records {
		if r.Uploader < 0 || r.Uploader >= t.Peers ||
			r.Downloader < 0 || r.Downloader >= t.Peers {
			return fmt.Errorf("trace: record %d has peer out of range", i)
		}
		if r.File < 0 || r.File >= t.Files {
			return fmt.Errorf("trace: record %d has file out of range", i)
		}
		if r.Uploader == r.Downloader {
			return fmt.Errorf("trace: record %d is a self-download", i)
		}
		if r.Time < prev {
			return fmt.Errorf("trace: record %d out of time order", i)
		}
		prev = r.Time
	}
	return nil
}

// Duration returns the time of the last record (zero for an empty trace).
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time
}

// Stats summarises the structural properties that drive request coverage.
type Stats struct {
	Peers          int
	Files          int
	Downloads      int
	Duration       time.Duration
	ActivePeers    int     // peers appearing at least once
	ActiveFiles    int     // files downloaded at least once
	TopFileShare   float64 // fraction of downloads going to the top 1% of files
	TopPeerShare   float64 // fraction of downloads issued by the top 1% of peers
	MeanPerPeer    float64 // mean downloads per active peer
	MedianPerPeer  float64
	MeanOwnersFile float64 // mean distinct downloaders per active file
}

// ComputeStats scans the trace once and returns its summary.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Peers: t.Peers, Files: t.Files, Downloads: len(t.Records), Duration: t.Duration()}
	perPeer := make([]int, t.Peers)
	perFile := make([]int, t.Files)
	owners := make(map[int]map[int]struct{})
	for _, r := range t.Records {
		perPeer[r.Downloader]++
		perFile[r.File]++
		m := owners[r.File]
		if m == nil {
			m = make(map[int]struct{})
			owners[r.File] = m
		}
		m[r.Downloader] = struct{}{}
	}
	active := make([]int, 0, t.Peers)
	for _, c := range perPeer {
		if c > 0 {
			active = append(active, c)
		}
	}
	s.ActivePeers = len(active)
	sort.Sort(sort.Reverse(sort.IntSlice(active)))
	s.TopPeerShare = topShare(active, len(t.Records))
	if len(active) > 0 {
		s.MeanPerPeer = float64(len(t.Records)) / float64(len(active))
		s.MedianPerPeer = float64(active[len(active)/2])
	}
	fileCounts := make([]int, 0, t.Files)
	for _, c := range perFile {
		if c > 0 {
			fileCounts = append(fileCounts, c)
		}
	}
	s.ActiveFiles = len(fileCounts)
	sort.Sort(sort.Reverse(sort.IntSlice(fileCounts)))
	s.TopFileShare = topShare(fileCounts, len(t.Records))
	if len(owners) > 0 {
		total := 0
		for _, m := range owners {
			total += len(m)
		}
		s.MeanOwnersFile = float64(total) / float64(len(owners))
	}
	return s
}

// topShare returns the fraction of total mass held by the top 1% (at least
// one) of the sorted-descending counts.
func topShare(sorted []int, total int) float64 {
	if len(sorted) == 0 || total == 0 {
		return 0
	}
	k := len(sorted) / 100
	if k < 1 {
		k = 1
	}
	sum := 0
	for _, c := range sorted[:k] {
		sum += c
	}
	return float64(sum) / float64(total)
}
