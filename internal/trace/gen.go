package trace

import (
	"errors"
	"fmt"
	"time"

	"mdrep/internal/dist"
	"mdrep/internal/sim"
)

// GenConfig parameterises the synthetic Maze-like workload. The defaults
// are scaled down from the paper's trace (115k users, 24.6M downloads)
// while preserving the skew ratios that determine request coverage.
type GenConfig struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed uint64
	// Peers is the population size.
	Peers int
	// Files is the catalogue size.
	Files int
	// Downloads is the number of download records to produce.
	Downloads int
	// Duration is the log length (the paper uses 30 days).
	Duration time.Duration
	// ZipfExponent is the file-popularity skew (≈1.0 in measured P2P
	// systems).
	ZipfExponent float64
	// ActivityAlpha is the bounded-Pareto shape of per-peer activity;
	// smaller is heavier-tailed.
	ActivityAlpha float64
	// ActivityMax is the ratio between the heaviest and lightest peer.
	ActivityMax float64
	// SeedersPerFile is the mean number of initial owners per file.
	SeedersPerFile int
	// ColdStartFraction is the fraction of files already published at
	// time zero; the remainder are born uniformly over the run (file
	// churn).
	ColdStartFraction float64
	// MeanFileLifetime bounds how long a file stays downloadable after
	// birth ("most files have a small life cycle", §4.3). Zero disables
	// file death.
	MeanFileLifetime time.Duration
	// MinFileSize and MaxFileSize bound the bounded-Pareto file sizes.
	MinFileSize, MaxFileSize int64
}

// DefaultGenConfig returns the configuration used by the Figure 1
// reproduction: 2 000 peers, 10 000 files, 30 days.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:              1,
		Peers:             2000,
		Files:             10000,
		Downloads:         200000,
		Duration:          30 * 24 * time.Hour,
		ZipfExponent:      1.0,
		ActivityAlpha:     0.9,
		ActivityMax:       500,
		SeedersPerFile:    2,
		ColdStartFraction: 0.6,
		MeanFileLifetime:  20 * 24 * time.Hour,
		MinFileSize:       1 << 20, // 1 MiB
		MaxFileSize:       1 << 32, // 4 GiB
	}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	switch {
	case c.Peers < 2:
		return errors.New("trace: need at least 2 peers")
	case c.Files < 1:
		return errors.New("trace: need at least 1 file")
	case c.Downloads < 0:
		return errors.New("trace: negative download count")
	case c.Duration <= 0:
		return errors.New("trace: non-positive duration")
	case c.ZipfExponent < 0:
		return errors.New("trace: negative Zipf exponent")
	case c.ActivityAlpha <= 0 || c.ActivityMax <= 1:
		return errors.New("trace: invalid activity distribution")
	case c.SeedersPerFile < 1:
		return errors.New("trace: need at least 1 seeder per file")
	case c.ColdStartFraction < 0 || c.ColdStartFraction > 1:
		return errors.New("trace: cold-start fraction outside [0,1]")
	case c.MinFileSize <= 0 || c.MaxFileSize < c.MinFileSize:
		return errors.New("trace: invalid file size bounds")
	}
	return nil
}

// Generate produces a synthetic trace. Generation is single-pass: events
// arrive on a Poisson process; each picks an active file by Zipf
// popularity, a downloader by Pareto activity, and an uploader among the
// file's current owners, then the downloader joins the owner set — the
// replication dynamic that makes popular files widely co-owned and drives
// up co-evaluation coverage, exactly as in Maze.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)

	// Per-peer activity weights (heavy-tailed).
	activity, err := dist.NewBoundedPareto(cfg.ActivityAlpha, 1, cfg.ActivityMax)
	if err != nil {
		return nil, fmt.Errorf("trace: activity dist: %w", err)
	}
	actRNG := rng.DeriveStream("activity")
	weights := make([]float64, cfg.Peers)
	for i := range weights {
		weights[i] = activity.Sample(actRNG)
	}
	peerPicker, err := dist.NewWeighted(weights)
	if err != nil {
		return nil, fmt.Errorf("trace: peer picker: %w", err)
	}

	// File popularity, sizes, lifetimes.
	pop, err := dist.NewZipf(cfg.Files, cfg.ZipfExponent)
	if err != nil {
		return nil, fmt.Errorf("trace: popularity dist: %w", err)
	}
	sizeDist, err := dist.NewBoundedPareto(1.1, float64(cfg.MinFileSize), float64(cfg.MaxFileSize))
	if err != nil {
		return nil, fmt.Errorf("trace: size dist: %w", err)
	}
	fileRNG := rng.DeriveStream("files")
	sizes := make([]int64, cfg.Files)
	birth := make([]time.Duration, cfg.Files)
	death := make([]time.Duration, cfg.Files)
	coldStart := int(float64(cfg.Files) * cfg.ColdStartFraction)
	for f := 0; f < cfg.Files; f++ {
		sizes[f] = int64(sizeDist.Sample(fileRNG))
		if f >= coldStart {
			birth[f] = time.Duration(fileRNG.Int63n(int64(cfg.Duration)))
		}
		if cfg.MeanFileLifetime > 0 {
			life := time.Duration(fileRNG.ExpFloat64() * float64(cfg.MeanFileLifetime))
			death[f] = birth[f] + life
		} else {
			death[f] = birth[f] + 2*cfg.Duration // never dies within the run
		}
	}

	// Initial owners: heavy peers seed more files, matching Maze where a
	// few dedicated sharers hold most content.
	ownRNG := rng.DeriveStream("owners")
	owners := make([][]int32, cfg.Files)
	isOwner := make([]map[int32]struct{}, cfg.Files)
	addOwner := func(f int, p int32) {
		if isOwner[f] == nil {
			isOwner[f] = make(map[int32]struct{}, 4)
		}
		if _, ok := isOwner[f][p]; ok {
			return
		}
		isOwner[f][p] = struct{}{}
		owners[f] = append(owners[f], p)
	}
	for f := 0; f < cfg.Files; f++ {
		n := 1 + ownRNG.Intn(2*cfg.SeedersPerFile-1)
		for k := 0; k < n; k++ {
			addOwner(f, int32(peerPicker.Index(ownRNG)))
		}
	}

	// Poisson arrivals over the duration.
	evRNG := rng.DeriveStream("events")
	records := make([]Record, 0, cfg.Downloads)
	var now time.Duration
	meanGap := float64(cfg.Duration) / float64(cfg.Downloads+1)
	for len(records) < cfg.Downloads {
		now += time.Duration(evRNG.ExpFloat64() * meanGap)
		if now > cfg.Duration {
			break
		}
		// Pick an active file by popularity; resample on inactive files.
		file := -1
		for try := 0; try < 64; try++ {
			f := pop.Rank(evRNG)
			if birth[f] <= now && now < death[f] && len(owners[f]) > 0 {
				file = f
				break
			}
		}
		if file < 0 {
			continue // catalogue momentarily thin; skip this arrival
		}
		downloader := peerPicker.Index(evRNG)
		// Pick an uploader among current owners other than the
		// downloader.
		own := owners[file]
		uploader := -1
		for try := 0; try < 8; try++ {
			cand := int(own[evRNG.Intn(len(own))])
			if cand != downloader {
				uploader = cand
				break
			}
		}
		if uploader < 0 {
			continue // downloader is effectively the only owner
		}
		records = append(records, Record{
			Time:       now,
			Uploader:   uploader,
			Downloader: downloader,
			File:       file,
			Size:       sizes[file],
		})
		addOwner(file, int32(downloader))
	}

	tr := &Trace{Peers: cfg.Peers, Files: cfg.Files, FileSizes: sizes, Records: records}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated invalid trace: %w", err)
	}
	return tr, nil
}
