package flight

import (
	"strings"
	"testing"
)

func TestRenderTracesStitchesTree(t *testing.T) {
	recs := []Record{
		{Trace: 0xa, Span: 3, Parent: 1, Kind: KindSpan, Start: 30, Duration: 5, Name: "dht.rpc.retrieve", Status: StatusOK,
			Attrs: []Attr{{Key: "addr", Str: "mem://node-02"}}},
		{Trace: 0xa, Span: 1, Parent: 0, Kind: KindSpan, Start: 10, Duration: 100, Name: "walk.estimate", Status: StatusOK},
		{Trace: 0xa, Span: 2, Parent: 1, Kind: KindSpan, Start: 20, Duration: 50, Name: "walk.row_fetch", Status: StatusRetryable,
			Attrs: []Attr{{Key: "user", Val: 7}}},
		{Trace: 0xa, Span: 4, Parent: 2, Kind: KindSpan, Start: 25, Duration: 10, Name: "dht.attempt", Status: StatusError,
			Attrs: []Attr{{Key: "attempt", Val: 1}}},
	}
	out := RenderTraces(recs)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	want := []string{
		"trace 000000000000000a",
		"  walk.estimate 100ns [ok]",
		"    walk.row_fetch 50ns [retryable] user=7",
		"      dht.attempt 10ns [error] attempt=1",
		"    dht.rpc.retrieve 5ns [ok] addr=mem://node-02",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, lines[i], want[i])
		}
	}
}

func TestRenderTracesOrphanAndMultiTrace(t *testing.T) {
	recs := []Record{
		// Trace 0xb starts later: must render second.
		{Trace: 0xb, Span: 9, Parent: 777, Kind: KindSpan, Start: 99, Name: "orphan.child", Status: StatusOK},
		{Trace: 0xa, Span: 1, Parent: 0, Kind: KindSpan, Start: 1, Name: "root", Status: StatusOK},
		{Trace: 0xa, Span: 1, Parent: 1, Kind: KindEvent, Start: 2, Name: "marker"},
	}
	out := RenderTraces(recs)
	ia := strings.Index(out, "trace 000000000000000a")
	ib := strings.Index(out, "trace 000000000000000b")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("trace ordering wrong:\n%s", out)
	}
	if !strings.Contains(out, "  orphan.child") {
		t.Errorf("orphan span (missing parent) not promoted to root:\n%s", out)
	}
	if !strings.Contains(out, "    * marker") {
		t.Errorf("event not rendered under its span:\n%s", out)
	}
}

func TestRenderDumpHeader(t *testing.T) {
	d := Dump{Seq: 4, Reason: "fault.terminal: dht.rpc.store", Records: []Record{
		{Trace: 1, Span: 1, Kind: KindSpan, Name: "dht.rpc.store", Status: StatusError},
	}}
	out := RenderDump(d)
	if !strings.Contains(out, "=== flight dump #4: fault.terminal: dht.rpc.store (1 records) ===") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "dht.rpc.store 0s [error]") {
		t.Errorf("record missing:\n%s", out)
	}
}
