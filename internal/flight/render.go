package flight

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTraces prints records as stitched trace trees: records are
// grouped by trace ID, parent/child edges are resolved by span ID, and
// each tree is indented in causal order. Spans whose parent is missing
// from the record set (sampled-out ancestors, or ring wrap) render as
// roots of their trace. Output is deterministic: traces order by first
// start time, siblings by start time then span ID.
func RenderTraces(recs []Record) string {
	byTrace := make(map[uint64][]Record)
	var order []uint64
	for _, r := range recs {
		if _, ok := byTrace[r.Trace]; !ok {
			order = append(order, r.Trace)
		}
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := earliest(byTrace[order[i]]), earliest(byTrace[order[j]])
		if a != b {
			return a < b
		}
		return order[i] < order[j]
	})
	var b strings.Builder
	for _, tid := range order {
		fmt.Fprintf(&b, "trace %016x\n", tid)
		renderTree(&b, byTrace[tid])
	}
	return b.String()
}

// RenderDump prints one black-box dump: a header naming the trigger,
// then the captured records as trace trees.
func RenderDump(d Dump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== flight dump #%d: %s (%d records) ===\n", d.Seq, d.Reason, len(d.Records))
	b.WriteString(RenderTraces(d.Records))
	return b.String()
}

func earliest(recs []Record) int64 {
	min := recs[0].Start
	for _, r := range recs[1:] {
		if r.Start < min {
			min = r.Start
		}
	}
	return min
}

// renderTree stitches one trace's records into parent→child trees and
// writes them indented.
func renderTree(b *strings.Builder, recs []Record) {
	present := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if r.Kind == KindSpan {
			present[r.Span] = true
		}
	}
	children := make(map[uint64][]int, len(recs))
	var roots []int
	for i, r := range recs {
		orphan := r.Parent == 0 || !present[r.Parent] || (r.Kind == KindSpan && r.Parent == r.Span)
		if orphan {
			roots = append(roots, i)
		} else {
			children[r.Parent] = append(children[r.Parent], i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(i, j int) bool {
			a, c := recs[idx[i]], recs[idx[j]]
			if a.Start != c.Start {
				return a.Start < c.Start
			}
			return a.Span < c.Span
		})
	}
	byStart(roots)
	var walk func(i, depth int)
	walk = func(i, depth int) {
		r := recs[i]
		b.WriteString(strings.Repeat("  ", depth+1))
		if r.Kind == KindEvent {
			fmt.Fprintf(b, "* %s", r.Name)
		} else {
			fmt.Fprintf(b, "%s %s [%s]", r.Name, time.Duration(r.Duration), r.Status)
		}
		for _, a := range r.Attrs {
			if a.Str != "" {
				fmt.Fprintf(b, " %s=%s", a.Key, a.Str)
			} else {
				fmt.Fprintf(b, " %s=%d", a.Key, a.Val)
			}
		}
		b.WriteByte('\n')
		if r.Kind != KindSpan {
			return
		}
		kids := children[r.Span]
		byStart(kids)
		for _, k := range kids {
			if k != i {
				walk(k, depth+1)
			}
		}
	}
	for _, i := range roots {
		walk(i, 0)
	}
}
