// Package flight is the always-on flight recorder of the observability
// layer: a fixed-size lock-free ring of recent span and event records
// that costs nothing to keep running, plus fault-triggered "black box"
// dumps. The tracing layer (internal/obs) streams every sampled span
// into the ring; when something goes terminally wrong — a
// fault.Terminal error, an exhausted retry budget, a chaos crash — the
// ring is snapshotted into a bounded dump list, preserving the last
// moments of traffic leading up to the fault for the /debug/flight
// endpoint and the daemons' dump flags.
//
// The ring is wait-free for writers and safe for concurrent readers:
// every slot is a fixed layout of atomic words guarded by a per-slot
// sequence number (odd while a writer is inside, even and equal to the
// slot's claim index once stable), so a snapshot detects and drops torn
// or recycled slots instead of blocking the hot path. Strings are
// packed into fixed byte windows — truncated, never allocated — which
// is what keeps the steady-state record path at 0 B/op (enforced by
// BenchmarkRingRecord under the make flight guard).
//
// Nothing here reads a clock or randomness: timestamps arrive in the
// Entry, stamped by the caller's injected clock, so recording changes
// no deterministic replay.
package flight

import (
	"sync"
	"sync/atomic"

	"mdrep/internal/fault"
)

// Status classifies how a span ended, following the internal/fault
// taxonomy.
type Status uint8

const (
	// StatusOK is a span that ended without error.
	StatusOK Status = iota
	// StatusRetryable is a span that failed with a transient,
	// fault.Retryable error.
	StatusRetryable
	// StatusError is a span that failed terminally (fault.Terminal or
	// an unclassified error).
	StatusError
)

// String renders the status for the text dump.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetryable:
		return "retryable"
	default:
		return "error"
	}
}

// StatusOf maps an error to its span status: nil is OK, fault.Retryable
// errors are transient, and everything else — fault.Terminal pins and
// unclassified failures alike — is an error.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case fault.Retryable(err):
		return StatusRetryable
	default:
		return StatusError
	}
}

// Kind distinguishes record types in the ring.
type Kind uint8

const (
	// KindSpan is a completed span (has a duration).
	KindSpan Kind = iota
	// KindEvent is a point-in-time marker attached to a span.
	KindEvent
)

// MaxAttrs bounds the attributes a record carries; extras are dropped
// at the writer, keeping the slot layout fixed.
const MaxAttrs = 4

// Byte windows for the packed strings. Longer inputs are truncated —
// span names are short package-level constants, and the widest dynamic
// attr values in the tree are ring addresses.
const (
	nameWords = 3 // 24-byte span name
	keyWords  = 2 // 16-byte attr key
	strWords  = 3 // 24-byte attr string value
)

// Attr is one key→value pair on a record. When Str is non-empty the
// attr is a string attr and Val is ignored.
type Attr struct {
	Key string
	Val int64
	Str string
}

// Entry is the writer-side record: fixed-size, built on the caller's
// stack, and copied field by field into a slot. Start and Duration are
// nanoseconds on whatever clock the tracing layer was given.
type Entry struct {
	Trace    uint64
	Span     uint64
	Parent   uint64
	Kind     Kind
	Status   Status
	Start    int64
	Duration int64
	Name     string
	Attrs    [MaxAttrs]Attr
	NAttrs   int
}

// Record is the reader-side decoded form of a slot.
type Record struct {
	Trace    uint64
	Span     uint64
	Parent   uint64
	Kind     Kind
	Status   Status
	Start    int64
	Duration int64
	Name     string
	Attrs    []Attr
}

// attrSlot is one attribute's atomic storage.
type attrSlot struct {
	key [keyWords]atomic.Uint64
	val atomic.Uint64
	str [strWords]atomic.Uint64
}

// slot is one ring cell. seq is the per-slot seqlock: 0 = never
// written, 2i+1 = the writer of claim i is inside, 2i+2 = claim i is
// stable. Readers reject odd or mismatched sequences.
type slot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	meta   atomic.Uint64 // kind | status<<8 | nattrs<<16
	start  atomic.Uint64
	dur    atomic.Uint64
	name   [nameWords]atomic.Uint64
	attrs  [MaxAttrs]attrSlot
}

// Ring is the fixed-size record buffer. Writers are wait-free (one
// atomic claim plus field stores); readers snapshot without blocking
// writers and drop slots that were mid-write or recycled under them.
type Ring struct {
	mask  uint64
	head  atomic.Uint64
	slots []slot
}

// DefaultRingSize is the ring capacity when the caller passes 0: enough
// to hold the last few thousand RPC spans — several seconds of traffic
// at simulation rates — in ~300 KiB.
const DefaultRingSize = 1024

// NewRing builds a ring of at least size slots (rounded up to a power
// of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// storeStr packs s into dst little-endian, zero-padded, truncating past
// the window. No allocation.
func storeStr(dst []atomic.Uint64, s string) {
	for w := range dst {
		var v uint64
		for b := 0; b < 8; b++ {
			i := w*8 + b
			if i >= len(s) {
				break
			}
			v |= uint64(s[i]) << (8 * b)
		}
		dst[w].Store(v)
	}
}

// loadStr unpacks a byte window back into a string (cold path only).
func loadStr(src []atomic.Uint64) string {
	buf := make([]byte, 0, len(src)*8)
	for w := range src {
		v := src[w].Load()
		for b := 0; b < 8; b++ {
			c := byte(v >> (8 * b))
			if c == 0 {
				return string(buf)
			}
			buf = append(buf, c)
		}
	}
	return string(buf)
}

// Record appends one entry. Wait-free: claim a slot index, mark it
// dirty, store the fields, mark it stable. A reader overlapping the
// write sees the odd sequence (or a mismatched one after wrap) and
// skips the slot.
func (r *Ring) Record(e *Entry) {
	i := r.head.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1)
	s.trace.Store(e.Trace)
	s.span.Store(e.Span)
	s.parent.Store(e.Parent)
	n := e.NAttrs
	if n < 0 {
		n = 0
	}
	if n > MaxAttrs {
		n = MaxAttrs
	}
	s.meta.Store(uint64(e.Kind) | uint64(e.Status)<<8 | uint64(n)<<16)
	s.start.Store(uint64(e.Start))
	s.dur.Store(uint64(e.Duration))
	storeStr(s.name[:], e.Name)
	for a := 0; a < n; a++ {
		storeStr(s.attrs[a].key[:], e.Attrs[a].Key)
		s.attrs[a].val.Store(uint64(e.Attrs[a].Val))
		storeStr(s.attrs[a].str[:], e.Attrs[a].Str)
	}
	s.seq.Store(2*i + 2)
}

// Len returns how many records have ever been written (not the ring
// occupancy).
func (r *Ring) Len() uint64 { return r.head.Load() }

// Snapshot decodes the current ring contents, oldest first. Slots being
// written or recycled during the scan are dropped, never blocked on.
func (r *Ring) Snapshot() []Record {
	head := r.head.Load()
	size := uint64(len(r.slots))
	lo := uint64(0)
	if head > size {
		lo = head - size
	}
	out := make([]Record, 0, head-lo)
	for i := lo; i < head; i++ {
		s := &r.slots[i&r.mask]
		want := 2*i + 2
		if s.seq.Load() != want {
			continue // mid-write, or recycled by a later claim
		}
		rec := Record{
			Trace:  s.trace.Load(),
			Span:   s.span.Load(),
			Parent: s.parent.Load(),
			Start:  int64(s.start.Load()),
			Name:   loadStr(s.name[:]),
		}
		meta := s.meta.Load()
		rec.Kind = Kind(meta & 0xff)
		rec.Status = Status(meta >> 8 & 0xff)
		n := int(meta >> 16 & 0xff)
		rec.Duration = int64(s.dur.Load())
		for a := 0; a < n && a < MaxAttrs; a++ {
			rec.Attrs = append(rec.Attrs, Attr{
				Key: loadStr(s.attrs[a].key[:]),
				Val: int64(s.attrs[a].val.Load()),
				Str: loadStr(s.attrs[a].str[:]),
			})
		}
		if s.seq.Load() != want {
			continue // torn: a writer recycled the slot mid-decode
		}
		out = append(out, rec)
	}
	return out
}

// Dump is one black-box snapshot: the ring contents at the moment a
// fault fired.
type Dump struct {
	// Seq numbers dumps in trigger order, starting at 1.
	Seq uint64
	// Reason names the fault that triggered the dump.
	Reason string
	// Records is the ring snapshot, oldest first.
	Records []Record
}

// DefaultMaxDumps bounds the retained dump list when the caller passes
// 0; older dumps fall off the front.
const DefaultMaxDumps = 8

// Recorder couples a ring with the dump list. The Record path touches
// only the ring; Trigger and the accessors take a mutex (they are cold
// by construction — faults, endpoints, exits).
type Recorder struct {
	ring *Ring

	mu       sync.Mutex
	maxDumps int
	seq      uint64
	dumps    []Dump
}

// NewRecorder builds a recorder with the given ring size and retained
// dump bound (0 picks the defaults).
func NewRecorder(ringSize, maxDumps int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	if maxDumps <= 0 {
		maxDumps = DefaultMaxDumps
	}
	return &Recorder{ring: NewRing(ringSize), maxDumps: maxDumps}
}

// Record appends one entry to the ring.
func (r *Recorder) Record(e *Entry) { r.ring.Record(e) }

// Snapshot returns the current ring contents, oldest first.
func (r *Recorder) Snapshot() []Record { return r.ring.Snapshot() }

// Trigger snapshots the ring as a new dump and returns it. Concurrent
// triggers serialize; the dump list keeps the newest maxDumps.
func (r *Recorder) Trigger(reason string) Dump {
	recs := r.ring.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	d := Dump{Seq: r.seq, Reason: reason, Records: recs}
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > r.maxDumps {
		r.dumps = append(r.dumps[:0], r.dumps[len(r.dumps)-r.maxDumps:]...)
	}
	return d
}

// Dumps returns the retained dumps, oldest first.
func (r *Recorder) Dumps() []Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Dump, len(r.dumps))
	copy(out, r.dumps)
	return out
}

// LastDump returns the newest dump, if any.
func (r *Recorder) LastDump() (Dump, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.dumps) == 0 {
		return Dump{}, false
	}
	return r.dumps[len(r.dumps)-1], true
}

// Triggered returns how many dumps have ever been triggered (including
// ones that have since rotated out of the retained list).
func (r *Recorder) Triggered() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// The process-wide recorder. One atomic pointer load when disabled, so
// un-instrumented binaries and deterministic replay pay one branch.
var active atomic.Pointer[Recorder]

// Install makes r the process recorder (nil uninstalls).
func Install(r *Recorder) {
	if r == nil {
		active.Store(nil)
		return
	}
	active.Store(r)
}

// Active returns the installed recorder, or nil.
func Active() *Recorder { return active.Load() }

// Emit appends e to the installed recorder's ring; a no-op when none is
// installed.
func Emit(e *Entry) {
	if r := active.Load(); r != nil {
		r.ring.Record(e)
	}
}

// TriggerDump snapshots the installed recorder; a no-op returning false
// when none is installed.
func TriggerDump(reason string) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	r.Trigger(reason)
	return true
}
