package flight

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mdrep/internal/fault"
)

func spanEntry(trace, span, parent uint64, name string, status Status) *Entry {
	return &Entry{
		Trace:  trace,
		Span:   span,
		Parent: parent,
		Kind:   KindSpan,
		Status: status,
		Start:  int64(span),
		Name:   name,
	}
}

func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{fault.Unreachable(errors.New("down")), StatusRetryable},
		{fault.Timeout(errors.New("slow")), StatusRetryable},
		{fault.Terminal(errors.New("bad")), StatusError},
		{errors.New("plain"), StatusError},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if StatusOK.String() != "ok" || StatusRetryable.String() != "retryable" || StatusError.String() != "error" {
		t.Errorf("status strings wrong: %v %v %v", StatusOK, StatusRetryable, StatusError)
	}
}

func TestRingRoundTrip(t *testing.T) {
	r := NewRing(16)
	e := &Entry{
		Trace:    0xaaaa,
		Span:     0xbbbb,
		Parent:   0xcccc,
		Kind:     KindSpan,
		Status:   StatusRetryable,
		Start:    123,
		Duration: 456,
		Name:     "dht.rpc.find_successor",
		NAttrs:   2,
	}
	e.Attrs[0] = Attr{Key: "addr", Str: "mem://node-01"}
	e.Attrs[1] = Attr{Key: "attempt", Val: 3}
	r.Record(e)
	recs := r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	got := recs[0]
	if got.Trace != e.Trace || got.Span != e.Span || got.Parent != e.Parent {
		t.Errorf("IDs round-trip: got %+v", got)
	}
	if got.Kind != KindSpan || got.Status != StatusRetryable {
		t.Errorf("meta round-trip: got kind=%v status=%v", got.Kind, got.Status)
	}
	if got.Start != 123 || got.Duration != 456 {
		t.Errorf("times round-trip: got start=%d dur=%d", got.Start, got.Duration)
	}
	if got.Name != "dht.rpc.find_successor" {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Attrs) != 2 {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	if got.Attrs[0].Key != "addr" || got.Attrs[0].Str != "mem://node-01" {
		t.Errorf("attr 0 = %+v", got.Attrs[0])
	}
	if got.Attrs[1].Key != "attempt" || got.Attrs[1].Val != 3 {
		t.Errorf("attr 1 = %+v", got.Attrs[1])
	}
}

func TestRingNameTruncated(t *testing.T) {
	r := NewRing(16)
	long := strings.Repeat("x", nameWords*8+10)
	r.Record(&Entry{Trace: 1, Span: 1, Name: long})
	recs := r.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if want := long[:nameWords*8]; recs[0].Name != want {
		t.Errorf("name = %q, want %q", recs[0].Name, want)
	}
}

func TestRingAttrOverflowDropped(t *testing.T) {
	r := NewRing(16)
	e := &Entry{Trace: 1, Span: 1, Name: "n", NAttrs: MaxAttrs + 7}
	for i := range e.Attrs {
		e.Attrs[i] = Attr{Key: "k", Val: int64(i)}
	}
	r.Record(e)
	recs := r.Snapshot()
	if len(recs) != 1 || len(recs[0].Attrs) != MaxAttrs {
		t.Fatalf("got %+v, want %d attrs", recs, MaxAttrs)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16) // rounds to 16 slots
	const total = 50
	for i := 0; i < total; i++ {
		r.Record(spanEntry(uint64(i+1), uint64(i+1), 0, "s", StatusOK))
	}
	if r.Len() != total {
		t.Fatalf("Len = %d, want %d", r.Len(), total)
	}
	recs := r.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("got %d records after wrap, want 16", len(recs))
	}
	for k, rec := range recs {
		if want := uint64(total - 16 + k + 1); rec.Trace != want {
			t.Errorf("record %d: trace %d, want %d (oldest-first order)", k, rec.Trace, want)
		}
	}
}

func TestRingConcurrentWritersAndReaders(t *testing.T) {
	r := NewRing(64)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				e := spanEntry(uint64(w+1), uint64(i+1), 0, "concurrent", StatusOK)
				e.NAttrs = 1
				e.Attrs[0] = Attr{Key: "w", Val: int64(w)}
				r.Record(e)
			}
		}(w)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			for _, rec := range r.Snapshot() {
				if rec.Name != "concurrent" {
					t.Errorf("torn record leaked: %+v", rec)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("final snapshot has %d records, want full ring 64", got)
	}
}

func TestRecorderDumpRotation(t *testing.T) {
	rec := NewRecorder(16, 3)
	for i := 0; i < 5; i++ {
		rec.Record(spanEntry(uint64(i+1), uint64(i+1), 0, "s", StatusOK))
		d := rec.Trigger(fmt.Sprintf("fault %d", i))
		if d.Seq != uint64(i+1) {
			t.Errorf("dump %d: seq %d", i, d.Seq)
		}
		if len(d.Records) != i+1 {
			t.Errorf("dump %d: %d records, want %d", i, len(d.Records), i+1)
		}
	}
	dumps := rec.Dumps()
	if len(dumps) != 3 {
		t.Fatalf("retained %d dumps, want 3", len(dumps))
	}
	if dumps[0].Seq != 3 || dumps[2].Seq != 5 {
		t.Errorf("dump seqs = %d..%d, want 3..5", dumps[0].Seq, dumps[2].Seq)
	}
	if rec.Triggered() != 5 {
		t.Errorf("Triggered = %d, want 5", rec.Triggered())
	}
	last, ok := rec.LastDump()
	if !ok || last.Seq != 5 || last.Reason != "fault 4" {
		t.Errorf("LastDump = %+v ok=%v", last, ok)
	}
}

func TestRecorderLastDumpEmpty(t *testing.T) {
	rec := NewRecorder(0, 0)
	if _, ok := rec.LastDump(); ok {
		t.Error("LastDump reported a dump on a fresh recorder")
	}
	if len(rec.Dumps()) != 0 {
		t.Error("Dumps non-empty on a fresh recorder")
	}
}

func TestGlobalInstallEmitTrigger(t *testing.T) {
	defer Install(nil)
	Install(nil)
	Emit(spanEntry(1, 1, 0, "dropped", StatusOK)) // no recorder: no-op
	if TriggerDump("no recorder") {
		t.Error("TriggerDump succeeded with no recorder installed")
	}
	rec := NewRecorder(16, 2)
	Install(rec)
	if Active() != rec {
		t.Fatal("Active did not return the installed recorder")
	}
	Emit(spanEntry(7, 7, 0, "kept", StatusOK))
	if !TriggerDump("boom") {
		t.Fatal("TriggerDump failed with recorder installed")
	}
	d, ok := rec.LastDump()
	if !ok || d.Reason != "boom" || len(d.Records) != 1 || d.Records[0].Name != "kept" {
		t.Errorf("dump = %+v ok=%v", d, ok)
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(DefaultRingSize)
	e := Entry{
		Trace:    0x1234,
		Span:     0x5678,
		Parent:   0x9abc,
		Kind:     KindSpan,
		Status:   StatusOK,
		Start:    1,
		Duration: 2,
		Name:     "dht.rpc.retrieve",
		NAttrs:   2,
	}
	e.Attrs[0] = Attr{Key: "addr", Str: "mem://node-03"}
	e.Attrs[1] = Attr{Key: "attempt", Val: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(&e)
	}
}
