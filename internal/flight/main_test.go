package flight

import (
	"testing"

	"mdrep/internal/testutil"
)

func TestMain(m *testing.M) { testutil.RunMain(m) }
