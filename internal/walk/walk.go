// Package walk estimates multi-trust reputations RM_i· = (TM^n)_i· by
// seeded Monte-Carlo random walks instead of the exact matrix power,
// following the random-walk trust ranking of Stannat & Pouwelse and the
// probabilistic reading of EigenTrust: a row-normalized trust matrix is a
// transition kernel, so the endpoint distribution of depth-n walks started
// at user i *is* row i of TM^n. Each of W walks restarts at the source,
// steps n times through rows fetched from a RowSource — a local frozen
// snapshot, or per-user records retrieved through the Chord DHT — and the
// estimate is endpoint visit counts divided by W. A walk that reaches a
// dangling user (an empty row) dies and contributes nothing, which is
// exactly the mass TM^n loses through that row.
//
// Determinism contract: walk w draws from the splitmix64 substream
// sim.RNG.At(w) of the estimator seed, endpoint tallies are integer
// counts merged with commutative atomic adds, and the final division by W
// is per-entry — so the estimate is byte-identical for a fixed
// (source, seed, walks, depth) at any GOMAXPROCS and across reruns, the
// same contract the exact kernels honour. Row *content* must be identical
// across sources for the estimates to match; the DHT source guarantees
// this by fetching the same wire-encoded rows a LocalSource reads from
// the snapshot directly.
package walk

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/fault"
	"mdrep/internal/obs"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
)

// Causal-tracing span names and attribute keys (const table per the
// metriclabel analyzer's span-attribute contract).
const (
	spanEstimate = "walk.estimate"
	spanRowFetch = "walk.row_fetch"

	attrUser   = "user"
	attrSource = "source"
	attrWalks  = "walks"
)

// RowSource supplies normalized trust-matrix rows. Implementations must
// be safe for concurrent use; the returned slices are read-only and must
// stay valid for the duration of the estimate.
type RowSource interface {
	// N is the matrix dimension (the user-ID space).
	N() int
	// Row returns user's outgoing trust row: ascending column indices
	// and matching transition weights summing to at most 1. An empty
	// row is a dangling user, not an error; errors mean the row could
	// not be obtained (and carry the internal/fault taxonomy). The span
	// context is the estimate's causal trace; sources that fetch over
	// the network continue it, local sources ignore it.
	Row(sc obs.SpanContext, user int) (cols []int32, vals []float64, err error)
}

// LocalSource serves rows from a frozen sparse.CSR snapshot — typically
// core.Concurrent.TM(now), which is already row-normalized. It is the
// exact-kernel twin the DHT source is cross-validated against.
type LocalSource struct {
	tm *sparse.CSR
}

// NewLocalSource wraps a frozen row-normalized matrix.
func NewLocalSource(tm *sparse.CSR) (*LocalSource, error) {
	if tm == nil {
		return nil, fault.Terminal(errors.New("walk: nil trust matrix"))
	}
	return &LocalSource{tm: tm}, nil
}

// N implements RowSource.
func (s *LocalSource) N() int { return s.tm.N() }

// Row implements RowSource; the slices alias the snapshot's storage.
//
//mdrep:hotpath
func (s *LocalSource) Row(_ obs.SpanContext, user int) ([]int32, []float64, error) {
	if user < 0 || user >= s.tm.N() {
		return nil, nil, fault.Terminal(fmt.Errorf("walk: user %d outside [0, %d)", user, s.tm.N()))
	}
	cols, vals := s.tm.Row(user)
	return cols, vals, nil
}

var _ RowSource = (*LocalSource)(nil)

// NewConcurrentSource snapshots a live engine's trust matrix at time now
// and wraps it as a LocalSource: the bridge from the core engine to the
// walk estimator (and, via PublishRows on the same snapshot, to the
// DHT). The snapshot is frozen — later engine writes do not leak into a
// running estimate.
func NewConcurrentSource(eng *core.Concurrent, now time.Duration) (*LocalSource, error) {
	if eng == nil {
		return nil, fault.Terminal(errors.New("walk: nil engine"))
	}
	tm, err := eng.TM(now)
	if err != nil {
		return nil, fmt.Errorf("walk: snapshot trust matrix: %w", err)
	}
	return NewLocalSource(tm)
}

// Config tunes one estimator.
type Config struct {
	// Walks is the number of independent walks W; the standard error of
	// each estimated entry shrinks as 1/sqrt(W).
	Walks int
	// Depth is the multi-trust depth n of Eq. (8) — the exact answer the
	// estimate converges to is RowVecPow(source, Depth).
	Depth int
	// Seed derives every walk's RNG substream.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Walks < 1 {
		return fault.Terminal(fmt.Errorf("walk: need at least 1 walk, got %d", c.Walks))
	}
	if c.Depth < 1 {
		return fault.Terminal(fmt.Errorf("walk: need depth >= 1, got %d", c.Depth))
	}
	return nil
}

// Estimator runs seeded walk ensembles against one RowSource.
type Estimator struct {
	src RowSource
	cfg Config
}

// New builds an estimator.
func New(src RowSource, cfg Config) (*Estimator, error) {
	if src == nil {
		return nil, fault.Terminal(errors.New("walk: nil row source"))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{src: src, cfg: cfg}, nil
}

// Estimate returns the walk estimate of RM_source· as a sparse
// column→value map (entries with zero visit count are omitted). A row
// fetch failure aborts the whole estimate with the underlying
// fault-classified error — a partial ensemble must never masquerade as a
// converged estimate.
func (e *Estimator) Estimate(source int) (map[int]float64, error) {
	n := e.src.N()
	if source < 0 || source >= n {
		return nil, fault.Terminal(fmt.Errorf("walk: source %d outside [0, %d)", source, n))
	}
	wo := wobs.Load()
	sp := wo.spanEstimate()
	tsp := obs.StartRoot(spanEstimate)
	tsp.Attr(attrSource, int64(source))
	tsp.Attr(attrWalks, int64(e.cfg.Walks))
	tsc := tsp.Context()
	counts := make([]int64, n)
	base := sim.NewRNG(e.cfg.Seed).DeriveStream("walk")
	var (
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		died     atomic.Uint64
		steps    atomic.Uint64
	)
	parallelWalkBlocks(e.cfg.Walks, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			if failed.Load() {
				return
			}
			rng := base.At(uint64(w))
			cur := source
			alive := true
			for d := 0; d < e.cfg.Depth; d++ {
				cols, vals, err := e.src.Row(tsc, cur)
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						errMu.Lock()
						firstErr = fmt.Errorf("walk: walk %d step %d at user %d: %w", w, d, cur, err)
						errMu.Unlock()
					}
					return
				}
				steps.Add(1)
				next := stepFrom(cols, vals, rng.Float64())
				if next < 0 {
					alive = false
					break
				}
				cur = int(next)
			}
			if alive {
				atomic.AddInt64(&counts[cur], 1)
			} else {
				died.Add(1)
			}
		}
	})
	wo.addWalkWork(uint64(e.cfg.Walks), steps.Load(), died.Load())
	sp.End()
	if failed.Load() {
		errMu.Lock()
		defer errMu.Unlock()
		wo.countAborted()
		tsp.EndErr(firstErr)
		return nil, firstErr
	}
	wo.countEstimate()
	tsp.End()
	out := make(map[int]float64)
	total := float64(e.cfg.Walks)
	for j, c := range counts {
		if c > 0 {
			out[j] = float64(c) / total
		}
	}
	return out, nil
}

// stepFrom inverse-transform samples the next hop from a normalized row:
// the cumulative sum runs in ascending column order (the same order every
// exact kernel accumulates in), and a draw beyond the row's total mass —
// an empty row, or a row summing below 1 — kills the walk.
//
//mdrep:hotpath
func stepFrom(cols []int32, vals []float64, u float64) int32 {
	acc := 0.0
	for k, v := range vals {
		acc += v
		if u < acc {
			return cols[k]
		}
	}
	return -1
}

// walkBlock is the scheduling granule: coarse enough to amortise the
// atomic cursor, fine enough to balance workers when row fetches stall.
const walkBlock = 256

// parallelWalkBlocks runs fn over walk indices [0, walks) in disjoint
// blocks across GOMAXPROCS workers, mirroring the sparse kernels' pool.
// Each walk index is processed exactly once and owns its own RNG
// substream, so the tally is scheduling-independent.
func parallelWalkBlocks(walks int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if walks <= walkBlock || workers <= 1 {
		fn(0, walks)
		return
	}
	if max := (walks + walkBlock - 1) / walkBlock; workers > max {
		workers = max
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, walkBlock)) - walkBlock
				if lo >= walks {
					return
				}
				hi := lo + walkBlock
				if hi > walks {
					hi = walks
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MaxAbsError returns the largest |est - exact| over the union support of
// the two maps. Keys are visited in ascending order so the scan is
// deterministic.
func MaxAbsError(est, exact map[int]float64) float64 {
	max := 0.0
	for _, j := range unionKeys(est, exact) {
		d := est[j] - exact[j]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// MeanAbsError returns the mean |est - exact| over the union support.
func MeanAbsError(est, exact map[int]float64) float64 {
	keys := unionKeys(est, exact)
	if len(keys) == 0 {
		return 0
	}
	sum := 0.0
	for _, j := range keys {
		d := est[j] - exact[j]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(keys))
}

// TopKOverlap returns how many of the exact top-k users (by value, ties
// broken by ascending index) also appear in the estimate's top-k.
func TopKOverlap(est, exact map[int]float64, k int) int {
	estTop := topK(est, k)
	overlap := 0
	for j := range topK(exact, k) {
		if _, ok := estTop[j]; ok {
			overlap++
		}
	}
	return overlap
}

// topK returns the k highest-valued keys as a set, with the value-desc,
// index-asc order making the cut deterministic.
func topK(m map[int]float64, k int) map[int]struct{} {
	keys := sortedKeys(m)
	type kv struct {
		j int
		v float64
	}
	best := make([]kv, 0, k+1)
	for _, j := range keys {
		e := kv{j: j, v: m[j]}
		pos := len(best)
		for pos > 0 && (best[pos-1].v < e.v) {
			pos--
		}
		if pos >= k {
			continue
		}
		best = append(best, kv{})
		copy(best[pos+1:], best[pos:])
		best[pos] = e
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make(map[int]struct{}, len(best))
	for _, e := range best {
		out[e.j] = struct{}{}
	}
	return out
}

// unionKeys returns the sorted union of both maps' keys.
func unionKeys(a, b map[int]float64) []int {
	seen := make(map[int]struct{}, len(a)+len(b))
	for j := range a {
		seen[j] = struct{}{}
	}
	for j := range b {
		seen[j] = struct{}{}
	}
	keys := make([]int, 0, len(seen))
	for j := range seen {
		keys = append(keys, j)
	}
	slices.Sort(keys)
	return keys
}

// sortedKeys returns m's keys ascending.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for j := range m {
		keys = append(keys, j)
	}
	slices.Sort(keys)
	return keys
}
