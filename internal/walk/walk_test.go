package walk

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/fault"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
)

// chain4 is a hand-checkable 4-user matrix:
//
//	0 → 1 (1.0)
//	1 → 2 (0.5), 3 (0.5)
//	2 → 0 (1.0)
//	3 is dangling
func chain4(t *testing.T) *sparse.CSR {
	t.Helper()
	return sparse.FreezeNormalized(4, []map[int]float64{
		{1: 1},
		{2: 1, 3: 1},
		{0: 1},
		nil,
	})
}

func TestConfigValidation(t *testing.T) {
	src, err := NewLocalSource(chain4(t))
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"zero walks": {Walks: 0, Depth: 1},
		"zero depth": {Walks: 1, Depth: 0},
	} {
		if _, err := New(src, cfg); !fault.IsTerminal(err) {
			t.Fatalf("%s: err = %v, want fault.Terminal", name, err)
		}
	}
	if _, err := New(nil, Config{Walks: 1, Depth: 1}); !fault.IsTerminal(err) {
		t.Fatalf("nil source: err = %v, want fault.Terminal", err)
	}
	if _, err := NewLocalSource(nil); !fault.IsTerminal(err) {
		t.Fatalf("nil matrix: err = %v, want fault.Terminal", err)
	}
	est, err := New(src, Config{Walks: 8, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(-1); !fault.IsTerminal(err) {
		t.Fatalf("source -1: err = %v, want fault.Terminal", err)
	}
	if _, err := est.Estimate(4); !fault.IsTerminal(err) {
		t.Fatalf("source 4: err = %v, want fault.Terminal", err)
	}
}

// Depth-1 walks from a deterministic row reproduce the row exactly: user
// 0's only transition is to user 1, so every walk ends there.
func TestEstimateDeterministicRow(t *testing.T) {
	src, err := NewLocalSource(chain4(t))
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(src, Config{Walks: 1000, Depth: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[1] != 1.0 {
		t.Fatalf("estimate = %v, want {1: 1}", got)
	}
}

// Walks that reach the dangling user die, so the estimate's mass matches
// the exact row's mass loss, not 1.
func TestDanglingRowsLoseMass(t *testing.T) {
	tm := chain4(t)
	src, err := NewLocalSource(tm)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(src, Config{Walks: 64000, Depth: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: 0 → 1 → {2, 3}; the half that reached 3 dies on step 3, the
	// half at 2 returns to 0 — so (TM³)₀. = {0: 0.5}.
	exact, err := tm.RowVecPow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxAbsError(got, exact); e > 0.02 {
		t.Fatalf("max error %v vs exact %v (estimate %v)", e, exact, got)
	}
	mass := 0.0
	for _, j := range sortedKeys(got) {
		mass += got[j]
	}
	if mass < 0.45 || mass > 0.55 {
		t.Fatalf("surviving mass = %v, want ≈ 0.5 (half the walks die at the dangling user)", mass)
	}
}

func TestEstimateAbortsOnRowError(t *testing.T) {
	rowErr := fault.Unreachable(errors.New("row store down"))
	src := &stubSource{n: 4, fail: map[int]error{2: rowErr}}
	est, err := New(src, Config{Walks: 500, Depth: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(0)
	if got != nil {
		t.Fatalf("aborted estimate must return nil, got %v", got)
	}
	if !errors.Is(err, rowErr) {
		t.Fatalf("err = %v, want the row error preserved", err)
	}
	if !fault.Retryable(err) {
		t.Fatalf("err = %v must keep its retryable classification", err)
	}
}

// stubSource serves chain4-shaped rows with injectable per-user failures.
type stubSource struct {
	n    int
	fail map[int]error
}

func (s *stubSource) N() int { return s.n }

func (s *stubSource) Row(_ obs.SpanContext, user int) ([]int32, []float64, error) {
	if err := s.fail[user]; err != nil {
		return nil, nil, err
	}
	next := int32((user + 1) % s.n)
	return []int32{next}, []float64{1}, nil
}

// The determinism contract: a fixed (seed, walks, depth, source) yields a
// byte-identical estimate across reruns and across GOMAXPROCS values.
func TestEstimateByteReproducible(t *testing.T) {
	tm, err := RandomTM(500, 99)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewLocalSource(tm)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(src, Config{Walks: 4000, Depth: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() map[int]float64 {
		got, err := est.Estimate(1)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	baseline := runOnce()
	for _, procs := range []int{1, 2, prev, 16} {
		runtime.GOMAXPROCS(procs)
		for rerun := 0; rerun < 2; rerun++ {
			if got := runOnce(); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("estimate changed at GOMAXPROCS=%d rerun %d", procs, rerun)
			}
		}
	}
}

// Different seeds must actually sample different ensembles — otherwise
// the reproducibility test above proves nothing.
func TestEstimateSeedSensitive(t *testing.T) {
	tm, err := RandomTM(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewLocalSource(tm)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) map[int]float64 {
		est, err := New(src, Config{Walks: 500, Depth: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.Estimate(0)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("seeds 1 and 2 produced identical estimates")
	}
}

// The engine bridge: a source snapshotted from a live core.Concurrent
// walks the same matrix the engine's exact kernels use.
func TestNewConcurrentSource(t *testing.T) {
	eng, err := core.NewConcurrentEngine(3, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RateUser(0, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := eng.RateUser(1, 2, 0.8); err != nil {
		t.Fatal(err)
	}
	src, err := NewConcurrentSource(eng, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(src, Config{Walks: 20000, Depth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.Estimate(0)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := eng.TM(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := tm.RowVecPow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The engine's TM folds dimension weights in (rows sum below 1, so
	// most walks die) — the estimate converges to the exact kernel's
	// answer statistically, 20k walks putting 0.01 at ≈ 7σ.
	if e := MaxAbsError(got, exact); e > 0.01 {
		t.Fatalf("engine-sourced estimate %v diverges from exact %v (max err %v)", got, exact, e)
	}
	if _, err := NewConcurrentSource(nil, 0); !fault.IsTerminal(err) {
		t.Fatalf("nil engine: err = %v, want fault.Terminal", err)
	}
}

// Cross-validation property over random graphs: for every size and seed,
// the estimate converges toward the exact RowVecPow answer as the walk
// count grows 1k→16k, and at 16k the top-10 ranking substantially agrees
// with the exact one.
func TestCrossValidationAgainstExactKernel(t *testing.T) {
	for _, n := range []int{100, 500, 2000} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 3; seed++ {
				tm, err := RandomTM(n, seed)
				if err != nil {
					t.Fatal(err)
				}
				points, err := RunSweep(tm, SweepConfig{
					Source:     int(seed) % n,
					Depth:      3,
					Seed:       seed + 1,
					WalkCounts: []int{1000, 4000, 16000},
				})
				if err != nil {
					t.Fatal(err)
				}
				first, last := points[0], points[len(points)-1]
				if last.MaxErr >= first.MaxErr {
					t.Errorf("seed %d: max error did not shrink: %v", seed, points)
				}
				if last.Top10 < 8 {
					t.Errorf("seed %d: top-10 overlap at 16k walks = %d/10, want >= 8", seed, last.Top10)
				}
			}
		})
	}
}

// E11 acceptance bound: mean absolute error vs the exact kernel at 16k
// walks on n=2000 graphs stays under 5% of the value scale.
func TestE11MeanErrorBound(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		tm, err := RandomTM(2000, seed)
		if err != nil {
			t.Fatal(err)
		}
		points, err := RunSweep(tm, SweepConfig{
			Source:     7,
			Depth:      3,
			Seed:       seed,
			WalkCounts: []int{16000},
		})
		if err != nil {
			t.Fatal(err)
		}
		if points[0].MeanErr > 0.05 {
			t.Fatalf("seed %d: mean abs error %v above the 0.05 E11 bound", seed, points[0].MeanErr)
		}
	}
}

func TestErrorHelpers(t *testing.T) {
	est := map[int]float64{1: 0.5, 2: 0.25}
	exact := map[int]float64{1: 0.4, 3: 0.1}
	if got := MaxAbsError(est, exact); got != 0.25 {
		t.Fatalf("MaxAbsError = %v, want 0.25", got)
	}
	want := (0.1 + 0.25 + 0.1) / 3
	if got := MeanAbsError(est, exact); got < want-1e-15 || got > want+1e-15 {
		t.Fatalf("MeanAbsError = %v, want %v", got, want)
	}
	if got := MaxAbsError(nil, nil); got != 0 {
		t.Fatalf("MaxAbsError(nil, nil) = %v, want 0", got)
	}
	if got := MeanAbsError(nil, nil); got != 0 {
		t.Fatalf("MeanAbsError(nil, nil) = %v, want 0", got)
	}
	if got := TopKOverlap(map[int]float64{1: 0.9, 2: 0.8, 3: 0.1}, map[int]float64{1: 0.7, 2: 0.2, 4: 0.9}, 2); got != 1 {
		t.Fatalf("TopKOverlap = %v, want 1 (only user 1 is in both top-2 sets)", got)
	}
}

func TestRenderSweep(t *testing.T) {
	out := RenderSweep([]SweepPoint{{Walks: 1000, MaxErr: 0.01, MeanErr: 0.001, Top10: 9}})
	if out == "" {
		t.Fatal("empty render")
	}
}

// Instrumented estimates surface walk totals and outcomes on the
// registry; uninstrumented runs must stay silent and not crash.
func TestWalkMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := obs.WallClock
	Instrument(reg, clock)
	defer Uninstrument()
	src, err := NewLocalSource(chain4(t))
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(src, Config{Walks: 100, Depth: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(0); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range reg.Snapshot() {
		if s.Name == "walk_walks_total" && s.Counter == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("walk_walks_total != 100 after a 100-walk estimate")
	}
	Uninstrument()
	if _, err := est.Estimate(0); err != nil {
		t.Fatal(err)
	}
}
