package walk

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"mdrep/internal/chaos"
	"mdrep/internal/dht"
	"mdrep/internal/fault"
	"mdrep/internal/sparse"
	"mdrep/internal/wire"
)

const (
	walkChaosNodes = 8
	walkChaosUsers = 24
	walkChaosEpoch = 1
)

func walkChaosConfig(seed uint64) chaos.NetworkConfig {
	rp := dht.DefaultRetryPolicy()
	return chaos.NetworkConfig{
		Nodes:            walkChaosNodes,
		SuccessorListLen: 3,
		Chaos: chaos.Config{
			Seed:          seed,
			RequestLoss:   0.03,
			ReplyLoss:     0.03,
			DupRate:       0.05,
			DeferRate:     0.05,
			LatencyBase:   time.Millisecond,
			LatencyJitter: 3 * time.Millisecond,
			OpTimeout:     3500 * time.Microsecond,
		},
		Retry: &rp,
	}
}

// walkChaosRecords builds every row record of tm at walkChaosEpoch, in
// ascending user order so Publish's chaos RNG draw sequence is stable.
func walkChaosRecords(t *testing.T, tm *sparse.CSR) []dht.StoredRecord {
	t.Helper()
	recs := make([]dht.StoredRecord, 0, tm.N())
	for u := 0; u < tm.N(); u++ {
		cols, vals := tm.Row(u)
		rec, err := RowRecord(&wire.TMRow{
			User:  int32(u),
			N:     int32(tm.N()),
			Epoch: walkChaosEpoch,
			Cols:  cols,
			Vals:  vals,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestWalkUnderChaos is the decentralized estimator's fault-injection
// property, over 50 seeded schedules mixing message loss, op timeouts,
// crash-restart churn and partitions: every DHT-sourced estimate either
// equals the fault-free LocalSource twin byte for byte — the estimator
// reads the same rows, so being "within the twin's error bound" means
// being the twin — or fails loudly with a fault-tagged retryable error.
// Silent degradation (a wrong-but-returned estimate) is the one outcome
// that must never happen, and after the schedule heals the estimate must
// succeed.
func TestWalkUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules are long")
	}
	for seed := uint64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			t.Parallel()
			tm, err := RandomTM(walkChaosUsers, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Walks: 192, Depth: 3, Seed: seed + 1}
			source := int(seed) % walkChaosUsers

			local, err := NewLocalSource(tm)
			if err != nil {
				t.Fatal(err)
			}
			twinEst, err := New(local, cfg)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := twinEst.Estimate(source)
			if err != nil {
				t.Fatal(err)
			}

			nw, err := chaos.NewNetwork(walkChaosConfig(seed))
			if err != nil {
				t.Fatalf("build network: %v", err)
			}
			recs := walkChaosRecords(t, tm)
			published := false
			for try := 0; try < 20 && !published; try++ {
				// Publish is idempotent (stores merge by owner/timestamp),
				// so retrying a partial publish under op timeouts is safe.
				published = nw.Publish(recs, time.Second) == nil
			}
			if !published {
				t.Fatalf("initial publish failed 20 times")
			}
			nw.Converge(2)

			// One estimate attempt through the given node; returns whether
			// it succeeded. A failure must carry the taxonomy.
			attemptVia := func(round int, via *dht.Node) bool {
				t.Helper()
				src, err := NewDHTSource(via, walkChaosUsers, 0, walkChaosEpoch)
				if err != nil {
					t.Fatal(err)
				}
				est, err := New(src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := est.Estimate(source)
				if err != nil {
					if got != nil {
						t.Fatalf("round %d: estimate returned both a value and an error", round)
					}
					if !fault.Retryable(err) {
						t.Fatalf("round %d: untagged failure %v — retryable taxonomy required", round, err)
					}
					t.Logf("round %d: tagged retryable failure: %v", round, err)
					return false
				}
				if !reflect.DeepEqual(got, twin) {
					t.Fatalf("round %d: estimate silently degraded:\n got %v\nwant %v", round, got, twin)
				}
				return true
			}

			sched := chaos.Generate(seed, walkChaosNodes, chaos.Profile{
				Rounds:          4,
				CrashesPerRound: 1,
				RestartAfter:    1,
				PartitionProb:   0.3,
				PartitionRounds: 1,
				Protected:       []int{0},
			})
			byRound := make(map[int][]chaos.Event)
			maxRound := 0
			for _, ev := range sched.Events {
				byRound[ev.Round] = append(byRound[ev.Round], ev)
				if ev.Round > maxRound {
					maxRound = ev.Round
				}
			}
			for round := 0; round <= maxRound; round++ {
				for _, ev := range byRound[round] {
					if err := nw.Apply(ev); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				nw.Converge(4)
				// Republication is §4.1's repair path: restarted slots come
				// back empty and are re-filled here.
				if err := nw.Publish(recs, time.Duration(round+2)*time.Second); err != nil {
					t.Logf("round %d: republish under faults failed (retried next round): %v", round, err)
				}
				nw.Converge(1)
				// Every live node attempts its own estimate: nodes on the
				// minority side of a partition are the ones that must fail
				// loudly instead of answering from a partial view.
				for _, via := range nw.LiveNodes() {
					attemptVia(round, via)
				}
			}

			// Healed and quiesced, the estimate must succeed and equal the
			// twin — chaos may delay the answer, never change it. Latency
			// timeouts stay active after Heal, so success is reached the
			// way a real client would: by retrying the retryable failures.
			nw.Chaos.Heal()
			nw.Chaos.SetLoss(0, 0)
			nw.Chaos.Flush()
			nw.Converge(2*walkChaosNodes + 4)
			healed := false
			for try := 0; try < 20 && !healed; try++ {
				if err := nw.Publish(recs, time.Hour); err != nil {
					continue
				}
				nw.Converge(1)
				healed = attemptVia(maxRound+1, nw.LiveNodes()[0])
			}
			if !healed {
				t.Fatalf("healed network still cannot serve the estimate")
			}
		})
	}
}
