package walk

import (
	"fmt"
	"strings"

	"mdrep/internal/dist"
	"mdrep/internal/fault"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
)

// RandomTM builds a seeded random row-normalized trust matrix shaped
// like the workloads the paper models: out-degrees are bounded-Pareto
// (a few heavy raters dominate), targets are Zipf-skewed (popular users
// collect most trust edges), and a small fraction of users are dangling
// — they rated nobody, so their row is empty and walks through them
// die, exercising the estimator's lost-mass path.
func RandomTM(n int, seed uint64) (*sparse.CSR, error) {
	if n < 2 {
		return nil, fault.Terminal(fmt.Errorf("walk: random TM needs n >= 2, got %d", n))
	}
	rng := sim.NewRNG(seed).DeriveStream("walk/randomtm")
	zipf, err := dist.NewZipf(n, 0.9)
	if err != nil {
		return nil, fmt.Errorf("walk: random TM: %w", err)
	}
	maxDeg := 32.0
	if float64(n) < maxDeg {
		maxDeg = float64(n)
	}
	deg, err := dist.NewBoundedPareto(1.5, 2, maxDeg)
	if err != nil {
		return nil, fmt.Errorf("walk: random TM: %w", err)
	}
	rows := make([]map[int]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.02 {
			continue // dangling user
		}
		d := int(deg.Sample(rng))
		row := make(map[int]float64, d)
		for len(row) < d {
			j := zipf.Rank(rng)
			if j == i {
				continue
			}
			if _, dup := row[j]; dup {
				continue
			}
			row[j] = 0.1 + 0.9*rng.Float64()
		}
		rows[i] = row
	}
	return sparse.FreezeNormalized(n, rows), nil
}

// SweepPoint is one row of an error-vs-walk-count sweep.
type SweepPoint struct {
	Walks   int
	MaxErr  float64
	MeanErr float64
	Top10   int // overlap of walk vs exact top-10
}

// SweepConfig drives RunSweep: one source user, one depth, walk counts
// swept in order against the same exact answer.
type SweepConfig struct {
	Source     int
	Depth      int
	Seed       uint64
	WalkCounts []int
}

// RunSweep computes the exact RM_source· row by RowVecPow, then runs one
// walk estimate per walk count and reports max/mean absolute error and
// top-10 agreement against it. This is experiment E11 — the walk
// estimator's convergence evidence — shared by the CLI and the CI test.
func RunSweep(tm *sparse.CSR, cfg SweepConfig) ([]SweepPoint, error) {
	if len(cfg.WalkCounts) == 0 {
		return nil, fault.Terminal(fmt.Errorf("walk: sweep needs at least one walk count"))
	}
	exact, err := tm.RowVecPow(cfg.Source, cfg.Depth)
	if err != nil {
		return nil, fmt.Errorf("walk: sweep exact kernel: %w", err)
	}
	src, err := NewLocalSource(tm)
	if err != nil {
		return nil, err
	}
	points := make([]SweepPoint, 0, len(cfg.WalkCounts))
	for _, w := range cfg.WalkCounts {
		est, err := New(src, Config{Walks: w, Depth: cfg.Depth, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		got, err := est.Estimate(cfg.Source)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			Walks:   w,
			MaxErr:  MaxAbsError(got, exact),
			MeanErr: MeanAbsError(got, exact),
			Top10:   TopKOverlap(got, exact, 10),
		})
	}
	return points, nil
}

// RenderSweep formats sweep points as the aligned text table E11 embeds.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %12s  %12s  %7s\n", "walks", "max_err", "mean_err", "top10")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d  %12.3e  %12.3e  %4d/10\n", p.Walks, p.MaxErr, p.MeanErr, p.Top10)
	}
	return b.String()
}
