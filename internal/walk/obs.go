package walk

import (
	"sync/atomic"

	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// Walk instrumentation follows the sparse-kernel pattern: an atomically
// installed package singleton so un-instrumented estimators pay one
// pointer load and a nil check per estimate (not per step). Counters
// accumulate per estimate and flush once, keeping the per-step sampling
// loop untouched.
type walkObs struct {
	tracer   *obs.Tracer
	estimate *metrics.Histogram // one full walk ensemble
	fetch    *metrics.Histogram // one DHT row fetch (cache misses only)
	walks    *metrics.Counter   // walks launched
	steps    *metrics.Counter   // row transitions sampled
	died     *metrics.Counter   // walks that hit a dangling row
	done     *metrics.Counter   // estimates completed
	aborted  *metrics.Counter   // estimates aborted by a row-fetch error
	hits     *metrics.Counter   // row-cache hits
	misses   *metrics.Counter   // row-cache misses
	evicted  *metrics.Counter   // row-cache evictions
	fetchErr *metrics.Counter   // row fetches that failed
	cacheLen *metrics.Gauge     // rows currently cached
	hitRatio *metrics.Gauge     // hits / (hits + misses), derived on update
}

var wobs atomic.Pointer[walkObs]

// Instrument publishes walk metrics into reg, timed by clock. A nil
// registry (or Uninstrument) turns instrumentation back off.
func Instrument(reg *metrics.Registry, clock obs.Clock) {
	if reg == nil {
		wobs.Store(nil)
		return
	}
	wobs.Store(&walkObs{
		tracer:   obs.NewTracer(clock),
		estimate: reg.Histogram("walk_estimate_seconds", metrics.DurationBuckets),
		fetch:    reg.Histogram("walk_row_fetch_seconds", metrics.DurationBuckets),
		walks:    reg.Counter("walk_walks_total"),
		steps:    reg.Counter("walk_steps_total"),
		died:     reg.Counter("walk_died_total"),
		done:     reg.Counter("walk_estimates_total"),
		aborted:  reg.Counter("walk_estimates_aborted_total"),
		hits:     reg.Counter("walk_row_cache_hits_total"),
		misses:   reg.Counter("walk_row_cache_misses_total"),
		evicted:  reg.Counter("walk_row_cache_evictions_total"),
		fetchErr: reg.Counter("walk_row_fetch_errors_total"),
		cacheLen: reg.Gauge("walk_cache_size"),
		hitRatio: reg.Gauge("walk_cache_hit_ratio"),
	})
}

// Uninstrument disables walk instrumentation.
func Uninstrument() { wobs.Store(nil) }

// The helpers are nil-safe: a nil observer yields inert spans and no-ops.
func (w *walkObs) spanEstimate() obs.Span {
	if w == nil {
		return obs.Span{}
	}
	return w.tracer.Start(w.estimate)
}

func (w *walkObs) spanFetch() obs.Span {
	if w == nil {
		return obs.Span{}
	}
	return w.tracer.Start(w.fetch)
}

// addWalkWork flushes one estimate's ensemble tallies.
func (w *walkObs) addWalkWork(walks, steps, died uint64) {
	if w == nil {
		return
	}
	w.walks.Add(walks)
	w.steps.Add(steps)
	w.died.Add(died)
}

func (w *walkObs) countEstimate() {
	if w == nil {
		return
	}
	w.done.Inc()
}

func (w *walkObs) countAborted() {
	if w == nil {
		return
	}
	w.aborted.Inc()
}

func (w *walkObs) countHit() {
	if w == nil {
		return
	}
	w.hits.Inc()
	w.updateHitRatio()
}

func (w *walkObs) countMiss() {
	if w == nil {
		return
	}
	w.misses.Inc()
	w.updateHitRatio()
}

// updateHitRatio derives hits/(hits+misses) so cache effectiveness is a
// scrapeable gauge instead of two counters to divide by hand.
func (w *walkObs) updateHitRatio() {
	h, m := w.hits.Load(), w.misses.Load()
	if total := h + m; total > 0 {
		w.hitRatio.Set(float64(h) / float64(total))
	}
}

// setCacheSize reports the LRU's current occupancy.
func (w *walkObs) setCacheSize(n int) {
	if w == nil {
		return
	}
	w.cacheLen.Set(float64(n))
}

func (w *walkObs) countEvicted() {
	if w == nil {
		return
	}
	w.evicted.Inc()
}

func (w *walkObs) countFetchErr() {
	if w == nil {
		return
	}
	w.fetchErr.Inc()
}
