package walk

import (
	"container/list"
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
	"mdrep/internal/wire"
)

// rowKeyPrefix names and versions the DHT keyspace TM rows live in; the
// key of user u's row is HashKey(rowKeyPrefix + u).
const rowKeyPrefix = "mdrep/tmrow/v1/"

// RowOwner is the OwnerID every TM-row record is published under. Row
// records are snapshot artifacts of the walk subsystem, not per-peer
// evaluations, so they share one synthetic owner: Storage's
// (key, owner) merge then makes republication supersede by epoch.
const RowOwner identity.PeerID = "walk/tm"

// rowPayloadPrefix marks an Info.FileID as carrying a TM-row payload.
const rowPayloadPrefix = "tmrow:"

// RowKey is the ring position of user's TM row.
func RowKey(user int) dht.ID {
	return dht.HashKey(rowKeyPrefix + strconv.Itoa(user))
}

// RowRecord wraps an encoded TM row as a publishable DHT record. The
// binary row is base64-coded into the FileID field — the one payload
// slot §4.1 records carry that survives both the in-memory and the
// JSON TCP transports — and the snapshot epoch doubles as the record
// timestamp so Storage's newest-wins merge prefers fresher snapshots.
func RowRecord(r *wire.TMRow) (dht.StoredRecord, error) {
	raw, err := wire.EncodeTMRow(r)
	if err != nil {
		return dht.StoredRecord{}, err
	}
	return dht.StoredRecord{
		Key: RowKey(int(r.User)),
		Info: eval.Info{
			FileID:    eval.FileID(rowPayloadPrefix + base64.RawStdEncoding.EncodeToString(raw)),
			OwnerID:   RowOwner,
			Timestamp: time.Duration(r.Epoch),
		},
	}, nil
}

// DecodeRowRecord recovers the TM row carried by a record produced by
// RowRecord. A malformed payload is terminal — re-fetching the same
// corrupt record cannot help.
func DecodeRowRecord(rec dht.StoredRecord) (*wire.TMRow, error) {
	payload, ok := strings.CutPrefix(string(rec.Info.FileID), rowPayloadPrefix)
	if !ok {
		return nil, fault.Terminal(fmt.Errorf("walk: record %q is not a TM row", rec.Info.FileID))
	}
	raw, err := base64.RawStdEncoding.DecodeString(payload)
	if err != nil {
		return nil, fault.Terminal(fmt.Errorf("walk: TM row payload: %w", err))
	}
	row, err := wire.DecodeTMRow(raw)
	if err != nil {
		return nil, fault.Terminal(fmt.Errorf("walk: TM row payload: %w", err))
	}
	return row, nil
}

// RowPublisher publishes records to the DHT; *dht.Node implements it.
type RowPublisher interface {
	Publish(recs []dht.StoredRecord) error
}

// PublishRows publishes every row of a frozen normalized snapshot —
// dangling users included, as explicitly empty records, so a fetcher can
// tell "trusts nobody" from "record lost". Rows are published one per
// call in ascending user order to keep routing deterministic.
func PublishRows(pub RowPublisher, tm *sparse.CSR, epoch uint64) error {
	if pub == nil {
		return fault.Terminal(fmt.Errorf("walk: nil publisher"))
	}
	if tm == nil {
		return fault.Terminal(fmt.Errorf("walk: nil trust matrix"))
	}
	n := tm.N()
	for user := 0; user < n; user++ {
		// RowCopy, not Row: the record (and its TMRow) may outlive this
		// loop in caller hands, so it must not alias the snapshot.
		cols, vals := tm.RowCopy(user)
		rec, err := RowRecord(&wire.TMRow{
			User:  int32(user),
			N:     int32(n),
			Epoch: epoch,
			Cols:  cols,
			Vals:  vals,
		})
		if err != nil {
			return fmt.Errorf("walk: encode row %d: %w", user, err)
		}
		if err := pub.Publish([]dht.StoredRecord{rec}); err != nil {
			return fmt.Errorf("walk: publish row %d: %w", user, err)
		}
	}
	return nil
}

// Fetcher retrieves the records stored under a key; *dht.Node implements
// it (with dht.RetryClient underneath when the ring is built on one).
// The span context carries the walk estimate's trace into the DHT.
type Fetcher interface {
	Retrieve(sc obs.SpanContext, key dht.ID) ([]dht.StoredRecord, error)
}

// DHTSource serves TM rows fetched through the DHT, the decentralized
// twin of LocalSource. Fetches are serialized under one mutex together
// with an LRU row cache: walk workers hitting the same hot rows (Zipf
// graphs concentrate mass quickly) pay one network fetch per distinct
// row per cache generation, and serialization means the estimator's
// byte-reproducibility only needs row *content* to be stable, which the
// epoch pin guarantees.
type DHTSource struct {
	fetcher Fetcher
	n       int
	epoch   uint64

	mu    sync.Mutex
	cap   int
	cache map[int]*list.Element // user → entry
	order *list.List            // front = most recently used
}

type cacheEntry struct {
	user int
	cols []int32
	vals []float64
}

// DefaultRowCache is the row-cache capacity when the caller passes 0.
const DefaultRowCache = 1024

// NewDHTSource builds a source over n users pinned to one snapshot
// epoch. A fetched row from any other epoch is treated as not-yet-
// republished (retryable), never silently substituted: mixing epochs
// would make the estimate diverge from every exact snapshot.
func NewDHTSource(fetcher Fetcher, n int, cacheCap int, epoch uint64) (*DHTSource, error) {
	if fetcher == nil {
		return nil, fault.Terminal(fmt.Errorf("walk: nil fetcher"))
	}
	if n < 1 {
		return nil, fault.Terminal(fmt.Errorf("walk: need at least 1 user, got %d", n))
	}
	if cacheCap <= 0 {
		cacheCap = DefaultRowCache
	}
	return &DHTSource{
		fetcher: fetcher,
		n:       n,
		epoch:   epoch,
		cap:     cacheCap,
		cache:   make(map[int]*list.Element, cacheCap),
		order:   list.New(),
	}, nil
}

// N implements RowSource.
func (s *DHTSource) N() int { return s.n }

// SetEpoch repins the source to a new snapshot epoch and drops every
// cached row — entries from the old snapshot must not leak into
// estimates against the new one.
func (s *DHTSource) SetEpoch(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
	s.cache = make(map[int]*list.Element, s.cap)
	s.order.Init()
	wobs.Load().setCacheSize(0)
}

// Row implements RowSource. A missing or stale-epoch record is
// fault.Unreachable — republication repairs it, so retrying is sound. A
// record that decodes to the wrong shape is fault.Terminal. A transport
// error keeps whatever fault class the retry layer assigned it.
func (s *DHTSource) Row(sc obs.SpanContext, user int) ([]int32, []float64, error) {
	if user < 0 || user >= s.n {
		return nil, nil, fault.Terminal(fmt.Errorf("walk: user %d outside [0, %d)", user, s.n))
	}
	wo := wobs.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[user]; ok {
		wo.countHit()
		s.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.cols, e.vals, nil
	}
	wo.countMiss()
	cols, vals, err := s.fetchRow(sc, user, wo)
	if err != nil {
		wo.countFetchErr()
		return nil, nil, err
	}
	s.cache[user] = s.order.PushFront(&cacheEntry{user: user, cols: cols, vals: vals})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.cache, oldest.Value.(*cacheEntry).user)
		wo.countEvicted()
	}
	wo.setCacheSize(s.order.Len())
	return cols, vals, nil
}

// fetchRow retrieves, selects, and decodes user's row record — a
// "walk.row_fetch" span on the estimate's trace, parenting the DHT
// retrieve and its retry attempts. Called with the cache mutex held.
func (s *DHTSource) fetchRow(sc obs.SpanContext, user int, wo *walkObs) (cols []int32, vals []float64, err error) {
	sp := wo.spanFetch()
	tsp := obs.StartChild(sc, spanRowFetch)
	tsp.Attr(attrUser, int64(user))
	defer func() { tsp.EndErr(err) }()
	recs, err := s.fetcher.Retrieve(tsp.Context(), RowKey(user))
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("walk: fetch row %d: %w", user, err)
	}
	best, found := dht.StoredRecord{}, false
	for _, rec := range recs {
		if rec.Info.OwnerID != RowOwner {
			continue
		}
		if !found || rec.Info.Timestamp > best.Info.Timestamp {
			best, found = rec, true
		}
	}
	if !found {
		return nil, nil, fault.Unreachable(fmt.Errorf("walk: row %d not found", user))
	}
	row, err := DecodeRowRecord(best)
	if err != nil {
		return nil, nil, fmt.Errorf("walk: row %d: %w", user, err)
	}
	if row.Epoch != s.epoch {
		return nil, nil, fault.Unreachable(fmt.Errorf("walk: row %d at epoch %d, want %d", user, row.Epoch, s.epoch))
	}
	if int(row.User) != user || int(row.N) != s.n {
		return nil, nil, fault.Terminal(fmt.Errorf("walk: row record (user %d, n %d) under key of user %d of %d", row.User, row.N, user, s.n))
	}
	return row.Cols, row.Vals, nil
}

var _ RowSource = (*DHTSource)(nil)
