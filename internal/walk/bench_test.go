package walk

import "testing"

// BenchmarkWalkEstimate times one full walk ensemble at E11's
// cross-validation scale: 4k walks of depth 3 over an n=2000 Zipf graph
// served by a LocalSource. Part of the canonical bench-json suite.
func BenchmarkWalkEstimate(b *testing.B) {
	tm, err := RandomTM(2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	src, err := NewLocalSource(tm)
	if err != nil {
		b.Fatal(err)
	}
	est, err := New(src, Config{Walks: 4000, Depth: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(0); err != nil {
			b.Fatal(err)
		}
	}
}
