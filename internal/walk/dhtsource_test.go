package walk

import (
	"errors"
	"reflect"
	"testing"

	"mdrep/internal/dht"
	"mdrep/internal/fault"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
	"mdrep/internal/wire"
)

// ringSource publishes tm's rows into a fresh in-memory ring and returns
// a DHTSource reading them back through a non-publishing node.
func ringSource(t *testing.T, tm *sparse.CSR, epoch uint64) *DHTSource {
	t.Helper()
	ring, err := dht.NewRing(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := PublishRows(ring.Nodes[0], tm, epoch); err != nil {
		t.Fatal(err)
	}
	src, err := NewDHTSource(ring.Nodes[3], tm.N(), 0, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// The headline property: an estimate through the DHT is byte-identical
// to the LocalSource twin — the decentralized path changes where rows
// come from, never what they contain.
func TestDHTSourceMatchesLocalTwin(t *testing.T) {
	tm, err := RandomTM(64, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Walks: 2000, Depth: 3, Seed: 5}
	local, err := NewLocalSource(tm)
	if err != nil {
		t.Fatal(err)
	}
	localEst, err := New(local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := localEst.Estimate(2)
	if err != nil {
		t.Fatal(err)
	}
	dhtEst, err := New(ringSource(t, tm, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dhtEst.Estimate(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DHT estimate diverged from local twin:\n got %v\nwant %v", got, want)
	}
}

// Dangling users are published as explicitly empty records, so fetching
// one succeeds with an empty row instead of "not found".
func TestDHTSourceServesEmptyRows(t *testing.T) {
	tm := sparse.FreezeNormalized(3, []map[int]float64{{1: 1}, nil, {0: 1}})
	src := ringSource(t, tm, 4)
	cols, vals, err := src.Row(obs.SpanContext{}, 1)
	if err != nil {
		t.Fatalf("empty row fetch: %v", err)
	}
	if len(cols) != 0 || len(vals) != 0 {
		t.Fatalf("row 1 = (%v, %v), want empty", cols, vals)
	}
}

// stubFetcher counts retrieves and serves canned responses per key.
type stubFetcher struct {
	calls int
	recs  map[dht.ID][]dht.StoredRecord
	err   error
}

func (f *stubFetcher) Retrieve(_ obs.SpanContext, key dht.ID) ([]dht.StoredRecord, error) {
	f.calls++
	if f.err != nil {
		return nil, f.err
	}
	return f.recs[key], nil
}

func rowRecords(t *testing.T, tm *sparse.CSR, epoch uint64) map[dht.ID][]dht.StoredRecord {
	t.Helper()
	recs := make(map[dht.ID][]dht.StoredRecord, tm.N())
	for u := 0; u < tm.N(); u++ {
		cols, vals := tm.Row(u)
		rec, err := RowRecord(&wire.TMRow{User: int32(u), N: int32(tm.N()), Epoch: epoch, Cols: cols, Vals: vals})
		if err != nil {
			t.Fatal(err)
		}
		recs[rec.Key] = append(recs[rec.Key], rec)
	}
	return recs
}

func TestDHTSourceCachesAndEvicts(t *testing.T) {
	tm := sparse.FreezeNormalized(4, []map[int]float64{{1: 1}, {2: 1}, {3: 1}, {0: 1}})
	fetcher := &stubFetcher{recs: rowRecords(t, tm, 1)}
	src, err := NewDHTSource(fetcher, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustRow := func(u int) {
		t.Helper()
		if _, _, err := src.Row(obs.SpanContext{}, u); err != nil {
			t.Fatalf("row %d: %v", u, err)
		}
	}
	mustRow(0)
	mustRow(0)
	mustRow(0)
	if fetcher.calls != 1 {
		t.Fatalf("fetches = %d, want 1 (repeat hits served from cache)", fetcher.calls)
	}
	mustRow(1) // cache now {1, 0}
	mustRow(2) // evicts 0 → {2, 1}
	if fetcher.calls != 3 {
		t.Fatalf("fetches = %d, want 3", fetcher.calls)
	}
	mustRow(1) // still cached
	if fetcher.calls != 3 {
		t.Fatalf("fetches = %d, want 3 (row 1 must still be cached)", fetcher.calls)
	}
	mustRow(0) // was evicted → refetch
	if fetcher.calls != 4 {
		t.Fatalf("fetches = %d, want 4 (row 0 was evicted)", fetcher.calls)
	}
}

func TestDHTSourceSetEpochDropsCache(t *testing.T) {
	tm := sparse.FreezeNormalized(2, []map[int]float64{{1: 1}, {0: 1}})
	fetcher := &stubFetcher{recs: rowRecords(t, tm, 1)}
	src, err := NewDHTSource(fetcher, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.Row(obs.SpanContext{}, 0); err != nil {
		t.Fatal(err)
	}
	// The snapshot moves on: epoch 2 is republished over epoch 1.
	fetcher.recs = rowRecords(t, tm, 2)
	src.SetEpoch(2)
	if _, _, err := src.Row(obs.SpanContext{}, 0); err != nil {
		t.Fatal(err)
	}
	if fetcher.calls != 2 {
		t.Fatalf("fetches = %d, want 2 (epoch change must invalidate the cache)", fetcher.calls)
	}
}

// The fault taxonomy: absence and staleness are retryable (republication
// repairs them); corruption and shape mismatches are terminal.
func TestDHTSourceFaultTaxonomy(t *testing.T) {
	tm := sparse.FreezeNormalized(2, []map[int]float64{{1: 1}, {0: 1}})
	goodRecs := rowRecords(t, tm, 1)

	t.Run("missing row is retryable", func(t *testing.T) {
		src, err := NewDHTSource(&stubFetcher{}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = src.Row(obs.SpanContext{}, 0)
		if !errors.Is(err, fault.ErrUnreachable) || !fault.Retryable(err) {
			t.Fatalf("err = %v, want retryable fault.ErrUnreachable", err)
		}
	})
	t.Run("stale epoch is retryable", func(t *testing.T) {
		src, err := NewDHTSource(&stubFetcher{recs: goodRecs}, 2, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = src.Row(obs.SpanContext{}, 0)
		if !errors.Is(err, fault.ErrUnreachable) || !fault.Retryable(err) {
			t.Fatalf("err = %v, want retryable fault.ErrUnreachable", err)
		}
	})
	t.Run("transport error keeps its class", func(t *testing.T) {
		cause := fault.Timeout(errors.New("ring unresponsive"))
		src, err := NewDHTSource(&stubFetcher{err: cause}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = src.Row(obs.SpanContext{}, 0)
		if !errors.Is(err, cause) || !fault.Retryable(err) {
			t.Fatalf("err = %v, want the wrapped retryable transport error", err)
		}
	})
	t.Run("corrupt payload is terminal", func(t *testing.T) {
		rec := dht.StoredRecord{Key: RowKey(0)}
		rec.Info.OwnerID = RowOwner
		rec.Info.FileID = "tmrow:!!!not-base64!!!"
		src, err := NewDHTSource(&stubFetcher{recs: map[dht.ID][]dht.StoredRecord{rec.Key: {rec}}}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := src.Row(obs.SpanContext{}, 0); !fault.IsTerminal(err) {
			t.Fatalf("err = %v, want fault.Terminal", err)
		}
	})
	t.Run("foreign record under key is missing row", func(t *testing.T) {
		rec := dht.StoredRecord{Key: RowKey(0)}
		rec.Info.OwnerID = "some-peer"
		rec.Info.FileID = "ordinary-file"
		src, err := NewDHTSource(&stubFetcher{recs: map[dht.ID][]dht.StoredRecord{rec.Key: {rec}}}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := src.Row(obs.SpanContext{}, 0); !errors.Is(err, fault.ErrUnreachable) {
			t.Fatalf("err = %v, want fault.ErrUnreachable (foreign owners are not rows)", err)
		}
	})
	t.Run("wrong shape is terminal", func(t *testing.T) {
		rec, err := RowRecord(&wire.TMRow{User: 1, N: 2, Epoch: 1, Cols: []int32{0}, Vals: []float64{1}})
		if err != nil {
			t.Fatal(err)
		}
		rec.Key = RowKey(0) // row 1's record parked under row 0's key
		src, err := NewDHTSource(&stubFetcher{recs: map[dht.ID][]dht.StoredRecord{rec.Key: {rec}}}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := src.Row(obs.SpanContext{}, 0); !fault.IsTerminal(err) {
			t.Fatalf("err = %v, want fault.Terminal", err)
		}
	})
	t.Run("out of range user is terminal", func(t *testing.T) {
		src, err := NewDHTSource(&stubFetcher{}, 2, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := src.Row(obs.SpanContext{}, 2); !fault.IsTerminal(err) {
			t.Fatalf("err = %v, want fault.Terminal", err)
		}
	})
}

// Newer epochs supersede: when replicas hold both, the source must pick
// the record with the highest timestamp, not whichever arrives first.
func TestDHTSourcePrefersNewestRecord(t *testing.T) {
	old, err := RowRecord(&wire.TMRow{User: 0, N: 2, Epoch: 1, Cols: []int32{1}, Vals: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := RowRecord(&wire.TMRow{User: 0, N: 2, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	fetcher := &stubFetcher{recs: map[dht.ID][]dht.StoredRecord{RowKey(0): {old, cur}}}
	src, err := NewDHTSource(fetcher, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols, _, err := src.Row(obs.SpanContext{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 0 {
		t.Fatalf("row 0 = %v, want the empty epoch-2 row", cols)
	}
}

func TestNewDHTSourceValidation(t *testing.T) {
	if _, err := NewDHTSource(nil, 2, 0, 1); !fault.IsTerminal(err) {
		t.Fatalf("nil fetcher: err = %v, want fault.Terminal", err)
	}
	if _, err := NewDHTSource(&stubFetcher{}, 0, 0, 1); !fault.IsTerminal(err) {
		t.Fatalf("n=0: err = %v, want fault.Terminal", err)
	}
	if err := PublishRows(nil, nil, 1); !fault.IsTerminal(err) {
		t.Fatalf("nil publisher: err = %v, want fault.Terminal", err)
	}
}
