package security

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/sim"
)

func list(vals ...float64) map[eval.FileID]float64 {
	out := make(map[eval.FileID]float64, len(vals))
	for i, v := range vals {
		out[eval.FileID(fmt.Sprintf("f%d", i))] = v
	}
	return out
}

func TestExaminerValidation(t *testing.T) {
	if _, err := NewExaminer(0, 1); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := NewExaminer(1.5, 1); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	if _, err := NewExaminer(0.2, 0); err == nil {
		t.Fatal("zero overlap accepted")
	}
}

func TestExaminerFirstExaminationNoVerdict(t *testing.T) {
	x, err := NewExaminer(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := x.Examine(1, list(0.9, 0.8, 0.7))
	if !math.IsNaN(v.Drift) || v.Flagged {
		t.Fatalf("first examination produced verdict: %+v", v)
	}
}

func TestExaminerHonestPeerPasses(t *testing.T) {
	x, err := NewExaminer(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x.Examine(1, list(0.9, 0.8, 0.7))
	// Small honest drift: one re-vote.
	v := x.Examine(1, list(0.9, 0.75, 0.7))
	if v.Flagged {
		t.Fatalf("honest peer flagged: %+v", v)
	}
	if v.Compared != 3 {
		t.Fatalf("compared %d files", v.Compared)
	}
}

func TestExaminerCatchesMimic(t *testing.T) {
	x, err := NewExaminer(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	victimA := list(0.9, 0.9, 0.9)
	victimB := list(0.1, 0.1, 0.1)
	x.Examine(7, MimicList(victimA))
	v := x.Examine(7, MimicList(victimB))
	if !v.Flagged {
		t.Fatalf("mimic not flagged: %+v", v)
	}
	if !x.IsFlagged(7) || x.FlaggedPeers() != 1 {
		t.Fatal("flag not recorded")
	}
}

func TestExaminerFlagIsSticky(t *testing.T) {
	x, err := NewExaminer(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x.Examine(1, list(1.0))
	x.Examine(1, list(0.0)) // flagged
	v := x.Examine(1, list(0.0))
	if !v.Flagged {
		t.Fatal("flag cleared by later consistent behaviour")
	}
}

func TestExaminerInsufficientOverlap(t *testing.T) {
	x, err := NewExaminer(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	x.Examine(1, list(1.0, 1.0))
	v := x.Examine(1, list(0.0, 0.0)) // only 2 shared files, need 3
	if v.Flagged {
		t.Fatal("flagged despite insufficient overlap")
	}
	if !math.IsNaN(v.Drift) {
		t.Fatalf("drift computed on insufficient overlap: %v", v.Drift)
	}
}

func TestMimicListIsCopy(t *testing.T) {
	victim := list(0.5)
	m := MimicList(victim)
	m["f0"] = 0.9
	if victim["f0"] != 0.5 {
		t.Fatal("MimicList aliases victim storage")
	}
}

func TestCliqueConfigValidation(t *testing.T) {
	good := DefaultCliqueConfig([]int{1, 2, 3})
	if err := good.Validate(); err != nil {
		t.Fatalf("default clique invalid: %v", err)
	}
	mutations := []func(*CliqueConfig){
		func(c *CliqueConfig) { c.Members = []int{1} },
		func(c *CliqueConfig) { c.MutualRating = 2 },
		func(c *CliqueConfig) { c.FakeDownloads = -1 },
		func(c *CliqueConfig) { c.AgreeOnFiles = -1 },
		func(c *CliqueConfig) { c.FakeDownloadSize = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultCliqueConfig([]int{1, 2, 3})
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d validated", i)
		}
	}
}

// TestCliqueCannotBuyOutsideTrust is the heart of E3: a clique can trade
// evidence internally, but an honest observer with no edge into the clique
// assigns it no reputation, because all three matrices are built from the
// observer's own (or transitively reachable) evidence.
func TestCliqueCannotBuyOutsideTrust(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Steps = 2
	e, err := core.NewEngine(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	// Honest world: observer 0 co-evaluates with peers 1 and 2.
	for _, p := range []int{0, 1, 2} {
		if err := e.Vote(p, "real-1", 0.9, now); err != nil {
			t.Fatal(err)
		}
		if err := e.Vote(p, "real-2", 0.8, now); err != nil {
			t.Fatal(err)
		}
	}
	// Clique 5..9 self-inflates.
	rng := sim.NewRNG(1)
	if _, err := InjectClique(e, DefaultCliqueConfig([]int{5, 6, 7, 8, 9}), rng, now); err != nil {
		t.Fatal(err)
	}
	reps, err := e.Reputations(0, now)
	if err != nil {
		t.Fatal(err)
	}
	gain := CliqueGain(reps, []int{5, 6, 7, 8, 9}, []int{1, 2})
	if gain > 0.01 {
		t.Fatalf("clique bought %v of honest reputation from an outside observer", gain)
	}
}

// TestCliqueInflatesInsideViews confirms the attack does work from inside:
// a member sees fellow members as highly reputable, which is exactly why
// Eq. (9) weights evaluator reputation from the requester's own view.
func TestCliqueInflatesInsideViews(t *testing.T) {
	cfg := core.DefaultConfig()
	e, err := core.NewEngine(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	if _, err := InjectClique(e, DefaultCliqueConfig([]int{3, 4, 5}), rng, 0); err != nil {
		t.Fatal(err)
	}
	reps, err := e.Reputations(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reps[4] <= 0 || reps[5] <= 0 {
		t.Fatalf("clique member sees no fellow-member reputation: %v", reps)
	}
}

func TestInjectCliqueErrors(t *testing.T) {
	e, err := core.NewEngine(3, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InjectClique(e, DefaultCliqueConfig([]int{0, 1}), nil, 0); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := DefaultCliqueConfig([]int{0})
	if _, err := InjectClique(e, bad, sim.NewRNG(1), 0); err == nil {
		t.Fatal("invalid clique accepted")
	}
	outOfRange := DefaultCliqueConfig([]int{0, 99})
	if _, err := InjectClique(e, outOfRange, sim.NewRNG(1), 0); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestCliqueGainEdgeCases(t *testing.T) {
	reps := map[int]float64{1: 0.5, 2: 0.5}
	if g := CliqueGain(reps, []int{1}, nil); !math.IsInf(g, 1) {
		t.Fatalf("gain with no honest peers = %v, want +Inf", g)
	}
	if g := CliqueGain(reps, []int{1}, []int{2}); g != 1 {
		t.Fatalf("gain = %v, want 1", g)
	}
}
