// Package security implements the attack and defence machinery of §4.2:
//
//   - Attack 3 (mimicry): a peer forges its published evaluation list to
//     match a victim's, buying file-based trust it did not earn.
//     Defence: proactive random examination (Swamynathan et al., IPTPS
//     2006) — a virtual user samples a peer's evaluation list repeatedly;
//     "if there are great differences between two examinations, it means
//     this user has forged his evaluations and he should be punished."
//   - Attack 4 (collusion): a clique mutually inflates user ratings and
//     download volumes (analysed in Lian et al.); helpers inject such
//     cliques into a trust engine so experiments can measure how far they
//     get (E3).
//
// Attack 1 (forged records) is defended in internal/eval (signatures) and
// internal/dht (verifying storage); attack 2 (routing) is out of the
// paper's scope.
package security

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/sim"
)

// Examiner performs proactive random examinations of peers' published
// evaluation lists and flags peers whose answers drift implausibly between
// examinations.
type Examiner struct {
	// Threshold is the mean absolute per-file difference between two
	// examinations above which the peer is flagged. Honest re-votes move
	// a few files slightly; a mimic tracking different victims rewrites
	// wholesale.
	threshold float64
	// MinOverlap is the minimum number of co-present files two snapshots
	// must share before a verdict is issued.
	minOverlap int
	history    map[int]map[eval.FileID]float64
	flagged    map[int]struct{}
}

// NewExaminer builds an examiner. threshold must lie in (0, 1];
// minOverlap >= 1.
func NewExaminer(threshold float64, minOverlap int) (*Examiner, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, errors.New("security: threshold outside (0, 1]")
	}
	if minOverlap < 1 {
		return nil, errors.New("security: minOverlap must be >= 1")
	}
	return &Examiner{
		threshold:  threshold,
		minOverlap: minOverlap,
		history:    make(map[int]map[eval.FileID]float64),
		flagged:    make(map[int]struct{}),
	}, nil
}

// Verdict is the outcome of one examination.
type Verdict struct {
	// Drift is the mean absolute difference on co-present files; NaN on
	// the first examination or insufficient overlap.
	Drift float64
	// Compared is the number of co-present files.
	Compared int
	// Flagged reports whether the peer is now considered a forger.
	Flagged bool
}

// Examine compares the peer's currently published list against the
// previous examination and records the new snapshot. Once flagged, a peer
// stays flagged (the paper's "he should be punished").
func (x *Examiner) Examine(peer int, list map[eval.FileID]float64) Verdict {
	prev, seen := x.history[peer]
	snap := make(map[eval.FileID]float64, len(list))
	for f, v := range list {
		snap[f] = v
	}
	x.history[peer] = snap

	v := Verdict{Drift: math.NaN()}
	if seen {
		var sum float64
		for f, old := range prev {
			cur, ok := snap[f]
			if !ok {
				continue
			}
			sum += math.Abs(cur - old)
			v.Compared++
		}
		if v.Compared >= x.minOverlap {
			v.Drift = sum / float64(v.Compared)
			if v.Drift > x.threshold {
				x.flagged[peer] = struct{}{}
			}
		}
	}
	_, bad := x.flagged[peer]
	v.Flagged = bad
	return v
}

// IsFlagged reports whether a peer has ever been flagged.
func (x *Examiner) IsFlagged(peer int) bool {
	_, bad := x.flagged[peer]
	return bad
}

// FlaggedPeers returns the number of flagged peers.
func (x *Examiner) FlaggedPeers() int { return len(x.flagged) }

// MimicList is attack 3's behaviour model: it forges an evaluation list
// equal to the victim's, buying undeserved file-based similarity. A mimic
// that rotates victims between probes is what the Examiner catches.
func MimicList(victim map[eval.FileID]float64) map[eval.FileID]float64 {
	out := make(map[eval.FileID]float64, len(victim))
	for f, v := range victim {
		out[f] = v
	}
	return out
}

// CliqueConfig describes a collusion clique for experiment E3.
type CliqueConfig struct {
	// Members are the colluding peers.
	Members []int
	// MutualRating is the UT value members assign each other.
	MutualRating float64
	// FakeDownloads is how many fabricated download reports each ordered
	// member pair files to inflate DM.
	FakeDownloads int
	// FakeDownloadSize is the claimed size of each fabricated download.
	FakeDownloadSize int64
	// AgreeOnFiles makes members publish identical evaluations for the
	// given number of synthetic files, manufacturing FM similarity.
	AgreeOnFiles int
}

// DefaultCliqueConfig returns an aggressive clique: maximum mutual
// ratings, heavy fabricated traffic, and manufactured file agreement.
func DefaultCliqueConfig(members []int) CliqueConfig {
	return CliqueConfig{
		Members:          members,
		MutualRating:     1.0,
		FakeDownloads:    10,
		FakeDownloadSize: 1 << 28, // 256 MiB per claimed download
		AgreeOnFiles:     20,
	}
}

// Validate checks the clique configuration.
func (c CliqueConfig) Validate() error {
	if len(c.Members) < 2 {
		return errors.New("security: clique needs at least 2 members")
	}
	if c.MutualRating < 0 || c.MutualRating > 1 {
		return errors.New("security: mutual rating outside [0,1]")
	}
	if c.FakeDownloads < 0 || c.AgreeOnFiles < 0 {
		return errors.New("security: negative attack intensity")
	}
	if c.FakeDownloads > 0 && c.FakeDownloadSize <= 0 {
		return errors.New("security: fake downloads need a positive size")
	}
	return nil
}

// InjectClique wires the clique's forged evidence into the trust engine:
// mutual top ratings (UM), fabricated download volume (DM), and identical
// evaluations on synthetic files (FM). Returns the synthetic file IDs so
// the experiment can exclude them from legitimate catalogues.
func InjectClique(e *core.Engine, cfg CliqueConfig, rng *sim.RNG, now time.Duration) ([]eval.FileID, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("security: nil rng")
	}
	for _, i := range cfg.Members {
		for _, j := range cfg.Members {
			if i == j {
				continue
			}
			if cfg.MutualRating > 0 {
				if err := e.RateUser(i, j, cfg.MutualRating); err != nil {
					return nil, fmt.Errorf("security: clique rating: %w", err)
				}
			}
			for d := 0; d < cfg.FakeDownloads; d++ {
				f := eval.FileID(fmt.Sprintf("clique-traffic-%d-%d-%d", i, j, d))
				if err := e.RecordDownload(i, j, f, cfg.FakeDownloadSize, now); err != nil {
					return nil, fmt.Errorf("security: clique download: %w", err)
				}
				if err := e.Vote(i, f, 1.0, now); err != nil {
					return nil, fmt.Errorf("security: clique vote: %w", err)
				}
			}
		}
	}
	files := make([]eval.FileID, 0, cfg.AgreeOnFiles)
	for k := 0; k < cfg.AgreeOnFiles; k++ {
		f := eval.FileID(fmt.Sprintf("clique-agreement-%d", k))
		files = append(files, f)
		value := rng.Float64()
		for _, m := range cfg.Members {
			if err := e.Vote(m, f, value, now); err != nil {
				return nil, fmt.Errorf("security: clique agreement: %w", err)
			}
		}
	}
	return files, nil
}

// CliqueGain measures how much reputation an honest observer assigns to
// clique members versus honest peers: the ratio of the mean clique
// reputation to the mean honest reputation in the observer's multi-trust
// view. A gain near zero means the attack failed.
func CliqueGain(reps map[int]float64, clique, honest []int) float64 {
	mean := func(peers []int) float64 {
		if len(peers) == 0 {
			return 0
		}
		sum := 0.0
		for _, p := range peers {
			sum += reps[p]
		}
		return sum / float64(len(peers))
	}
	h := mean(honest)
	if h == 0 {
		return math.Inf(1)
	}
	return mean(clique) / h
}
