package wire

import (
	"errors"
	"math"
	"slices"
	"testing"
)

func sampleRow() *TMRow {
	return &TMRow{
		User:  3,
		N:     100,
		Epoch: 42,
		Cols:  []int32{0, 7, 41, 99},
		Vals:  []float64{0.25, 0.25, 0.125, 0.375},
	}
}

func TestTMRowRoundTrip(t *testing.T) {
	for name, row := range map[string]*TMRow{
		"typical":  sampleRow(),
		"empty":    {User: 5, N: 10, Epoch: 1},
		"single":   {User: 0, N: 2, Epoch: 0, Cols: []int32{1}, Vals: []float64{1}},
		"boundary": {User: 1, N: 2, Epoch: math.MaxUint64, Cols: []int32{0}, Vals: []float64{0}},
	} {
		t.Run(name, func(t *testing.T) {
			raw, err := EncodeTMRow(row)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if len(raw) != EncodedRowSize(len(row.Cols)) {
				t.Fatalf("encoded %d bytes, want %d", len(raw), EncodedRowSize(len(row.Cols)))
			}
			back, err := DecodeTMRow(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.User != row.User || back.N != row.N || back.Epoch != row.Epoch {
				t.Fatalf("header changed: %+v vs %+v", back, row)
			}
			if !slices.Equal(back.Cols, row.Cols) || !slices.Equal(back.Vals, row.Vals) {
				t.Fatalf("entries changed: %+v vs %+v", back, row)
			}
			// Canonical: re-encoding the decoded row is byte-identical.
			again, err := EncodeTMRow(back)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !slices.Equal(again, raw) {
				t.Fatal("encoding is not canonical across a round-trip")
			}
		})
	}
}

// TestTMRowTruncation decodes the record cut at every byte offset — all
// must be rejected cleanly (no panic, ErrRowCodec), the same exhaustive
// sweep the frame codec gets.
func TestTMRowTruncation(t *testing.T) {
	raw, err := EncodeTMRow(sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeTMRow(raw[:cut]); !errors.Is(err, ErrRowCodec) {
			t.Fatalf("truncated at %d of %d: err = %v, want ErrRowCodec", cut, len(raw), err)
		}
	}
	if _, err := DecodeTMRow(append(slices.Clone(raw), 0)); !errors.Is(err, ErrRowCodec) {
		t.Fatalf("one trailing byte: err = %v, want ErrRowCodec", err)
	}
}

func TestTMRowCorruptionDetected(t *testing.T) {
	raw, err := EncodeTMRow(sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit must be caught by magic, structure, CRC, or
	// semantic validation.
	for i := range raw {
		for bit := 0; bit < 8; bit++ {
			mut := slices.Clone(raw)
			mut[i] ^= 1 << bit
			if _, err := DecodeTMRow(mut); !errors.Is(err, ErrRowCodec) {
				t.Fatalf("bit %d of byte %d flipped: err = %v, want ErrRowCodec", bit, i, err)
			}
		}
	}
}

func TestTMRowEncodeRejectsInvalid(t *testing.T) {
	for name, row := range map[string]*TMRow{
		"nil":            nil,
		"zero dimension": {User: 0, N: 0},
		"user outside":   {User: 5, N: 5},
		"negative user":  {User: -1, N: 5},
		"len mismatch":   {User: 0, N: 5, Cols: []int32{1}, Vals: nil},
		"unsorted cols":  {User: 0, N: 5, Cols: []int32{2, 1}, Vals: []float64{0.5, 0.5}},
		"duplicate cols": {User: 0, N: 5, Cols: []int32{1, 1}, Vals: []float64{0.5, 0.5}},
		"col outside":    {User: 0, N: 5, Cols: []int32{5}, Vals: []float64{1}},
		"nan value":      {User: 0, N: 5, Cols: []int32{1}, Vals: []float64{math.NaN()}},
		"inf value":      {User: 0, N: 5, Cols: []int32{1}, Vals: []float64{math.Inf(1)}},
		"above one":      {User: 0, N: 5, Cols: []int32{1}, Vals: []float64{1.5}},
		"negative value": {User: 0, N: 5, Cols: []int32{1}, Vals: []float64{-0.1}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := EncodeTMRow(row); !errors.Is(err, ErrRowCodec) {
				t.Fatalf("err = %v, want ErrRowCodec", err)
			}
		})
	}
}

func TestTMRowDecodeRejectsOversizedCount(t *testing.T) {
	raw, err := EncodeTMRow(&TMRow{User: 0, N: 5, Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Declare MaxTMRowEntries+1 entries without supplying them: the cap
	// check must fire before any count-proportional allocation.
	raw[20], raw[21], raw[22], raw[23] = 0x00, 0x10, 0x00, 0x01
	if _, err := DecodeTMRow(raw); !errors.Is(err, ErrRowCodec) {
		t.Fatalf("err = %v, want ErrRowCodec", err)
	}
}
