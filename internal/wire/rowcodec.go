package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// TM-row records are the payload the decentralized reputation walk
// (internal/walk) publishes to the DHT: one user's normalized trust-matrix
// row, self-describing and checksummed so a replica-fetched copy is
// provably the row that was published. Unlike the JSON frames of the TCP
// protocols this is a fixed binary layout — rows are re-decoded on every
// cache miss of every walk, and the encoding must be canonical so two
// publications of the same snapshot are byte-identical:
//
//	[4]  magic "TMR1"
//	[4]  user  (uint32, the row index)
//	[4]  n     (uint32, matrix dimension)
//	[8]  epoch (uint64, snapshot epoch; republication supersedes by epoch)
//	[4]  count (uint32, number of stored entries)
//	[4k] cols  (uint32 each, strictly ascending, < n)
//	[8k] vals  (float64 bits, finite, in [0,1])
//	[4]  CRC32-C over everything above
//
// An empty row (count = 0) is a valid record: publishers emit one for
// every user, dangling rows included, so a fetcher can distinguish "this
// user trusts nobody" from "the record was lost".

// MaxTMRowEntries bounds a single row record; a decoded count above it is
// rejected before any allocation proportional to it happens.
const MaxTMRowEntries = 1 << 20

// tmRowMagic identifies and versions the encoding.
var tmRowMagic = [4]byte{'T', 'M', 'R', '1'}

// tmRowHeaderSize is the fixed prefix: magic + user + n + epoch + count.
const tmRowHeaderSize = 24

// tmRowCRCSize is the trailing checksum.
const tmRowCRCSize = 4

// ErrRowCodec reports a structurally invalid TM-row record; every decode
// failure wraps it.
var ErrRowCodec = errors.New("wire: invalid TM row record")

// TMRow is one user's normalized trust-matrix row in decoded form. Cols
// are ascending column indices, Vals the matching transition weights.
type TMRow struct {
	User  int32
	N     int32
	Epoch uint64
	Cols  []int32
	Vals  []float64
}

// validate checks the semantic invariants shared by encode and decode, so
// a publisher cannot emit a record a fetcher would reject.
func (r *TMRow) validate() error {
	if r.N <= 0 {
		return fmt.Errorf("%w: dimension %d", ErrRowCodec, r.N)
	}
	if r.User < 0 || r.User >= r.N {
		return fmt.Errorf("%w: user %d outside [0, %d)", ErrRowCodec, r.User, r.N)
	}
	if len(r.Cols) != len(r.Vals) {
		return fmt.Errorf("%w: %d cols vs %d vals", ErrRowCodec, len(r.Cols), len(r.Vals))
	}
	if len(r.Cols) > MaxTMRowEntries {
		return fmt.Errorf("%w: %d entries above cap %d", ErrRowCodec, len(r.Cols), MaxTMRowEntries)
	}
	prev := int32(-1)
	for k, j := range r.Cols {
		if j <= prev || j >= r.N {
			return fmt.Errorf("%w: column %d at position %d (prev %d, n %d)", ErrRowCodec, j, k, prev, r.N)
		}
		prev = j
		v := r.Vals[k]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return fmt.Errorf("%w: value %v at column %d outside [0,1]", ErrRowCodec, v, j)
		}
	}
	return nil
}

// EncodedRowSize returns the encoded size of a row with k entries.
func EncodedRowSize(k int) int { return tmRowHeaderSize + 12*k + tmRowCRCSize }

// EncodeTMRow renders the row in its canonical binary form.
func EncodeTMRow(r *TMRow) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: nil row", ErrRowCodec)
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, EncodedRowSize(len(r.Cols)))
	buf = append(buf, tmRowMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.User))
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.N))
	buf = binary.BigEndian.AppendUint64(buf, r.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Cols)))
	for _, j := range r.Cols {
		buf = binary.BigEndian.AppendUint32(buf, uint32(j))
	}
	for _, v := range r.Vals {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// DecodeTMRow parses a TM-row record. Any truncation, checksum mismatch,
// or semantic violation (unsorted columns, out-of-range values) returns an
// error wrapping ErrRowCodec; the decoder never panics on hostile input.
func DecodeTMRow(data []byte) (*TMRow, error) {
	if len(data) < tmRowHeaderSize+tmRowCRCSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrRowCodec, len(data), tmRowHeaderSize+tmRowCRCSize)
	}
	if [4]byte(data[:4]) != tmRowMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrRowCodec, data[:4])
	}
	count := binary.BigEndian.Uint32(data[20:24])
	if count > MaxTMRowEntries {
		return nil, fmt.Errorf("%w: declared %d entries above cap %d", ErrRowCodec, count, MaxTMRowEntries)
	}
	want := EncodedRowSize(int(count))
	if len(data) != want {
		return nil, fmt.Errorf("%w: %d bytes, want %d for %d entries", ErrRowCodec, len(data), want, count)
	}
	body, crc := data[:want-tmRowCRCSize], binary.BigEndian.Uint32(data[want-tmRowCRCSize:])
	if crc32.Checksum(body, crcTable) != crc {
		return nil, fmt.Errorf("%w: %v", ErrRowCodec, ErrChecksum)
	}
	r := &TMRow{
		User:  int32(binary.BigEndian.Uint32(data[4:8])),
		N:     int32(binary.BigEndian.Uint32(data[8:12])),
		Epoch: binary.BigEndian.Uint64(data[12:20]),
		Cols:  make([]int32, count),
		Vals:  make([]float64, count),
	}
	off := tmRowHeaderSize
	for k := range r.Cols {
		r.Cols[k] = int32(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
	}
	for k := range r.Vals {
		r.Vals[k] = math.Float64frombits(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8
	}
	if err := r.validate(); err != nil {
		return nil, err
	}
	return r, nil
}
