package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadRecord feeds hostile bytes to the binary record decoder: it
// must never panic, and whatever it accepts must round-trip. This fuzz
// target surfaced the decoder's original allocation bound — a hostile
// 8-byte header could demand a MaxRecord-sized buffer against an empty
// stream; ReadRecord now grows the buffer only as payload bytes actually
// arrive (readBounded).
func FuzzReadRecord(f *testing.F) {
	seed := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteRecord(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed(nil))
	f.Add(seed([]byte("hello")))
	f.Add(seed(bytes.Repeat([]byte{0x7F}, 1000)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadRecord(r)
			if err != nil {
				break
			}
			// Anything the decoder accepts must re-encode to bytes the
			// decoder accepts again with the same payload.
			var buf bytes.Buffer
			if err := WriteRecord(&buf, payload); err != nil {
				t.Fatalf("re-encode accepted payload: %v", err)
			}
			back, err := ReadRecord(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !bytes.Equal(back, payload) {
				t.Fatal("payload changed across round-trip")
			}
		}
	})
}

// FuzzRecordRoundTrip checks write→read over arbitrary payloads.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > MaxRecord {
			t.Skip()
		}
		var buf bytes.Buffer
		if err := WriteRecord(&buf, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadRecord(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload changed across round-trip")
		}
		if _, err := ReadRecord(bytes.NewReader(buf.Bytes()[:buf.Len()-1])); err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated read: got %v", err)
		}
	})
}

// FuzzReadFrame feeds hostile bytes to the JSON frame decoder used by the
// TCP protocols: it must error or succeed, never panic.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, map[string]string{"method": "evaluations"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v map[string]any
		_ = ReadFrame(bytes.NewReader(data), &v)
	})
}

// FuzzTMRowCodec feeds hostile bytes to the TM-row decoder: it must never
// panic, and anything it accepts must be a semantically valid row that
// re-encodes to the exact input bytes (the encoding is canonical).
func FuzzTMRowCodec(f *testing.F) {
	seed := func(r *TMRow) []byte {
		raw, err := EncodeTMRow(r)
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add([]byte{})
	f.Add(seed(&TMRow{User: 0, N: 1, Epoch: 7}))
	f.Add(seed(&TMRow{User: 1, N: 4, Epoch: 9, Cols: []int32{0, 2, 3}, Vals: []float64{0.5, 0.25, 0.25}}))
	f.Add([]byte("TMR1 but far too short"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeTMRow(data)
		if err != nil {
			return
		}
		raw, err := EncodeTMRow(row)
		if err != nil {
			t.Fatalf("re-encode accepted row: %v", err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatal("accepted bytes are not the canonical encoding")
		}
	})
}

// FuzzTraceContext feeds hostile bytes to the trace-context decoder: it
// must never panic, and anything it accepts must re-encode to the exact
// input bytes (the encoding is canonical).
func FuzzTraceContext(f *testing.F) {
	seed := func(tc TraceContext) []byte {
		raw, err := tc.Encode()
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}
	f.Add([]byte{})
	f.Add(seed(TraceContext{Trace: 1, Span: 1}))
	f.Add(seed(TraceContext{Trace: 0xdeadbeef, Span: 0xcafe, Sampled: true}))
	f.Add([]byte("TRC1 but far too short"))
	f.Add(make([]byte, EncodedTraceContextSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		tc, err := DecodeTraceContext(data)
		if err != nil {
			return
		}
		raw, err := tc.Encode()
		if err != nil {
			t.Fatalf("re-encode accepted context: %v", err)
		}
		if !bytes.Equal(raw, data) {
			t.Fatal("accepted bytes are not the canonical encoding")
		}
	})
}
