package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// A trace context is the causal-tracing header a frame carries so the
// receiving side can continue the sender's trace: which trace the
// request belongs to and which span is its parent. Like TM rows it is a
// fixed canonical binary layout — two encodings of the same context are
// byte-identical, and anything the decoder accepts re-encodes to the
// input bytes:
//
//	[4]  magic "TRC1"
//	[8]  trace (uint64, nonzero)
//	[8]  span  (uint64, nonzero — the sender's current span)
//	[1]  flags (bit 0 = sampled; remaining bits must be zero)
//	[4]  CRC32-C over everything above
//
// A corrupt or truncated header must never fail the request it rides
// on; callers treat any decode error as "no trace context".

// trcMagic identifies and versions the encoding.
var trcMagic = [4]byte{'T', 'R', 'C', '1'}

// EncodedTraceContextSize is the fixed wire size of a trace context.
const EncodedTraceContextSize = 4 + 8 + 8 + 1 + 4

// trcSampledFlag is bit 0 of the flags byte.
const trcSampledFlag = 0x01

// ErrTraceCtx reports a structurally invalid trace-context header;
// every decode failure wraps it.
var ErrTraceCtx = errors.New("wire: invalid trace context")

// TraceContext is the decoded header.
type TraceContext struct {
	Trace   uint64
	Span    uint64
	Sampled bool
}

// validate checks the invariants shared by encode and decode.
func (tc TraceContext) validate() error {
	if tc.Trace == 0 {
		return fmt.Errorf("%w: zero trace ID", ErrTraceCtx)
	}
	if tc.Span == 0 {
		return fmt.Errorf("%w: zero span ID", ErrTraceCtx)
	}
	return nil
}

// Encode emits the canonical byte form.
func (tc TraceContext) Encode() ([]byte, error) {
	if err := tc.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, EncodedTraceContextSize)
	buf = append(buf, trcMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tc.Trace)
	buf = binary.BigEndian.AppendUint64(buf, tc.Span)
	flags := byte(0)
	if tc.Sampled {
		flags |= trcSampledFlag
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// DecodeTraceContext parses and verifies a header. It rejects wrong
// magic, wrong length, unknown flag bits, zero IDs, and checksum
// mismatches.
func DecodeTraceContext(buf []byte) (TraceContext, error) {
	if len(buf) != EncodedTraceContextSize {
		return TraceContext{}, fmt.Errorf("%w: %d bytes, want %d", ErrTraceCtx, len(buf), EncodedTraceContextSize)
	}
	if [4]byte(buf[:4]) != trcMagic {
		return TraceContext{}, fmt.Errorf("%w: bad magic %q", ErrTraceCtx, buf[:4])
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return TraceContext{}, fmt.Errorf("%w: checksum mismatch", ErrTraceCtx)
	}
	flags := buf[20]
	if flags&^byte(trcSampledFlag) != 0 {
		return TraceContext{}, fmt.Errorf("%w: unknown flag bits %#x", ErrTraceCtx, flags)
	}
	tc := TraceContext{
		Trace:   binary.BigEndian.Uint64(buf[4:12]),
		Span:    binary.BigEndian.Uint64(buf[12:20]),
		Sampled: flags&trcSampledFlag != 0,
	}
	if err := tc.validate(); err != nil {
		return TraceContext{}, err
	}
	return tc, nil
}
