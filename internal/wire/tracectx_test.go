package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{Trace: 1, Span: 1, Sampled: false},
		{Trace: 0xdeadbeefcafe, Span: 0x1234, Sampled: true},
		{Trace: ^uint64(0), Span: ^uint64(0), Sampled: true},
	}
	for _, tc := range cases {
		buf, err := tc.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", tc, err)
		}
		if len(buf) != EncodedTraceContextSize {
			t.Fatalf("encoded %d bytes, want %d", len(buf), EncodedTraceContextSize)
		}
		got, err := DecodeTraceContext(buf)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", tc, err)
		}
		if got != tc {
			t.Errorf("round-trip: got %+v, want %+v", got, tc)
		}
		again, err := tc.Encode()
		if err != nil || !bytes.Equal(again, buf) {
			t.Errorf("encoding not canonical: %v", err)
		}
	}
}

func TestTraceContextRejectsZeroIDs(t *testing.T) {
	for _, tc := range []TraceContext{{Trace: 0, Span: 5}, {Trace: 5, Span: 0}, {}} {
		if _, err := tc.Encode(); !errors.Is(err, ErrTraceCtx) {
			t.Errorf("Encode(%+v) err = %v, want ErrTraceCtx", tc, err)
		}
	}
}

func TestTraceContextDecodeRejects(t *testing.T) {
	good, err := TraceContext{Trace: 7, Span: 9, Sampled: true}.Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, err := DecodeTraceContext(good[:n]); !errors.Is(err, ErrTraceCtx) {
				t.Errorf("len %d: err = %v, want ErrTraceCtx", n, err)
			}
		}
		if _, err := DecodeTraceContext(append(bytes.Clone(good), 0)); !errors.Is(err, ErrTraceCtx) {
			t.Errorf("trailing byte: err = %v, want ErrTraceCtx", err)
		}
	})

	t.Run("bit flips", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(good)
				mut[i] ^= 1 << bit
				if _, err := DecodeTraceContext(mut); !errors.Is(err, ErrTraceCtx) {
					t.Fatalf("flip byte %d bit %d accepted: %v", i, bit, err)
				}
			}
		}
	})

	t.Run("unknown flags", func(t *testing.T) {
		mut := bytes.Clone(good)
		mut[20] |= 0x80
		// Re-checksum so the flag check, not the CRC, rejects it.
		fixed, err := reChecksum(mut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeTraceContext(fixed); !errors.Is(err, ErrTraceCtx) {
			t.Errorf("unknown flag bits accepted: %v", err)
		}
	})

	t.Run("zero trace with valid crc", func(t *testing.T) {
		mut := bytes.Clone(good)
		for i := 4; i < 12; i++ {
			mut[i] = 0
		}
		fixed, err := reChecksum(mut)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeTraceContext(fixed); !errors.Is(err, ErrTraceCtx) {
			t.Errorf("zero trace ID accepted: %v", err)
		}
	})
}

// reChecksum recomputes the trailing CRC over a mutated header so tests
// can reach the semantic checks behind it.
func reChecksum(buf []byte) ([]byte, error) {
	if len(buf) != EncodedTraceContextSize {
		return nil, errors.New("bad length")
	}
	out := bytes.Clone(buf[:len(buf)-4])
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(out, crcTable)), nil
}
