package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := payload{Name: "x", Value: 0.5}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		var out payload
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.Value != float64(i) {
			t.Fatalf("frame %d: %v", i, out.Value)
		}
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	big := payload{Name: strings.Repeat("a", MaxFrame)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversize frame written")
	}
}

func TestReadFrameRejectsOversizeHeader(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out payload
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("oversize header accepted")
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}") // only 2 of 100 bytes
	var out payload
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	var out payload
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestWriteFrameUnmarshalableValue(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make(chan int)); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}
