// Package wire provides the length-prefixed JSON framing shared by the
// project's TCP protocols (the DHT transport and the peer evaluation
// exchange): a 4-byte big-endian length followed by a JSON body, with a
// hard frame-size cap against memory exhaustion.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds inbound and outbound frames.
const MaxFrame = 4 << 20

// WriteFrame marshals v and writes one frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one frame and unmarshals it into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: inbound frame too large (%d bytes)", n)
	}
	// readBounded grows the buffer as bytes actually arrive: a hostile
	// 4-byte header must not be able to demand a MaxFrame allocation
	// against a near-empty stream.
	body, err := readBounded(r, int(n))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
