package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("the quick brown fox"),
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestRecordTornWrite(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	intact := buf.Len()
	if err := WriteRecord(&buf, []byte("this one is torn")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the stream at every point inside the second record: the first
	// must still read, the second must report a torn write.
	for cut := intact + 1; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, err := ReadRecord(r); err != nil {
			t.Fatalf("cut %d: first record: %v", cut, err)
		}
		if _, err := ReadRecord(r); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: torn record: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestRecordCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, []byte("checksummed payload")); err != nil {
		t.Fatal(err)
	}
	// Flip one bit anywhere in the CRC or payload: must be detected.
	for i := 4; i < buf.Len(); i++ {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[i] ^= 0x01
		if _, err := ReadRecord(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

func TestRecordHostileLength(t *testing.T) {
	// A header declaring MaxRecord+1 must be rejected before any read.
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], MaxRecord+1)
	if _, err := ReadRecord(bytes.NewReader(hdr[:])); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversize: got %v, want ErrRecordTooLarge", err)
	}
	// A header declaring MaxRecord on an 8-byte stream must fail with a
	// torn-write error, not attempt a 64MB read into memory it trusts.
	binary.BigEndian.PutUint32(hdr[0:4], MaxRecord)
	if _, err := ReadRecord(bytes.NewReader(hdr[:])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("hostile length: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestWriteRecordTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, make([]byte, MaxRecord+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("got %v, want ErrRecordTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatal("oversize write left bytes in the stream")
	}
}
