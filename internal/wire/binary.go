package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary records are the framing of the durable-state subsystem
// (internal/journal): unlike the JSON frames of the TCP protocols, a
// record that is read back must be *provably* the record that was
// written, because a crash can tear a write anywhere. Each record is
//
//	[4-byte big-endian payload length][4-byte CRC32-C of payload][payload]
//
// The checksum uses the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64). A reader distinguishes three outcomes a write-ahead log
// cares about: a clean end of stream (io.EOF), a torn record
// (io.ErrUnexpectedEOF — the stream ends mid-header or mid-payload), and
// a corrupt record (ErrChecksum / ErrRecordTooLarge — the bytes are all
// there but wrong).

// MaxRecord bounds a single binary record's payload. Snapshots of large
// engines are the biggest records written, so this is far above MaxFrame.
const MaxRecord = 64 << 20

// crcTable is the Castagnoli table shared by writer and reader.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a record whose payload does not match its CRC.
var ErrChecksum = errors.New("wire: record checksum mismatch")

// ErrRecordTooLarge reports a declared payload length above MaxRecord —
// on a log replay this means the length field itself is garbage.
var ErrRecordTooLarge = errors.New("wire: record too large")

// recordHeaderSize is the fixed prefix: length + CRC.
const recordHeaderSize = 8

// RecordSize returns the encoded size of a record with a payload of n
// bytes.
func RecordSize(n int) int { return recordHeaderSize + n }

// WriteRecord writes one checksummed binary record.
func WriteRecord(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w (%d bytes)", ErrRecordTooLarge, len(payload))
	}
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRecord reads one binary record and returns its payload. Errors:
//
//   - io.EOF: the stream ended cleanly before any byte of this record;
//   - io.ErrUnexpectedEOF: the stream ended inside the record (a torn
//     write — the caller may truncate the log here);
//   - ErrRecordTooLarge, ErrChecksum: the record is corrupt.
//
// The payload is read in bounded chunks so a hostile length prefix on a
// short stream cannot force a MaxRecord-sized allocation up front.
func ReadRecord(r io.Reader) ([]byte, error) {
	var hdr [recordHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			// Distinguish "no record at all" from "torn header".
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxRecord {
		return nil, fmt.Errorf("%w (declared %d bytes)", ErrRecordTooLarge, n)
	}
	payload, err := readBounded(r, int(n))
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// readBounded reads exactly n bytes, growing the buffer as data actually
// arrives instead of trusting the declared length. An earlier decoder
// allocated n bytes before reading — an 8-byte hostile header could then
// demand a MaxRecord allocation against a near-empty stream.
func readBounded(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		return buf, nil
	}
	var buf bytes.Buffer
	buf.Grow(chunk)
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}
