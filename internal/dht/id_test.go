package dht

import (
	"testing"
	"testing/quick"
)

func TestHashKeyStable(t *testing.T) {
	if HashKey("abc") != HashKey("abc") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("abc") == HashKey("abd") {
		t.Fatal("HashKey collision on adjacent strings")
	}
}

func TestBetweenSimpleInterval(t *testing.T) {
	// (10, 20]
	cases := []struct {
		id   ID
		want bool
	}{
		{10, false}, {11, true}, {15, true}, {20, true}, {21, false}, {5, false},
	}
	for _, c := range cases {
		if got := Between(c.id, 10, 20); got != c.want {
			t.Fatalf("Between(%d, 10, 20) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestBetweenWrappedInterval(t *testing.T) {
	// (2^64-10, 5] wraps zero.
	a := ^ID(9)
	cases := []struct {
		id   ID
		want bool
	}{
		{a, false}, {a + 1, true}, {0, true}, {5, true}, {6, false}, {100, false},
	}
	for _, c := range cases {
		if got := Between(c.id, a, 5); got != c.want {
			t.Fatalf("Between(%d, %d, 5) = %v, want %v", c.id, a, got, c.want)
		}
	}
}

func TestBetweenFullRing(t *testing.T) {
	if !Between(42, 7, 7) {
		t.Fatal("(a, a] must span the whole ring")
	}
	if !Between(7, 7, 7) {
		t.Fatal("(a, a] must include a itself (it is the successor of everything)")
	}
}

func TestBetweenOpen(t *testing.T) {
	if BetweenOpen(20, 10, 20) {
		t.Fatal("open interval must exclude the upper bound")
	}
	if BetweenOpen(10, 10, 20) {
		t.Fatal("open interval must exclude the lower bound")
	}
	if !BetweenOpen(15, 10, 20) {
		t.Fatal("open interval must include the middle")
	}
	if !BetweenOpen(0, ^ID(4), 5) {
		t.Fatal("wrapped open interval must include zero")
	}
	if BetweenOpen(7, 7, 7) {
		t.Fatal("(a, a) must exclude a")
	}
	if !BetweenOpen(8, 7, 7) {
		t.Fatal("(a, a) must include everything else")
	}
}

func TestBetweenComplementProperty(t *testing.T) {
	// For a != b, every id other than the endpoints is in exactly one of
	// (a, b] and (b, a].
	f := func(id, a, b uint64) bool {
		x, y, z := ID(id), ID(a), ID(b)
		if y == z {
			return true
		}
		inAB := Between(x, y, z)
		inBA := Between(x, z, y)
		return inAB != inBA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerStartWraps(t *testing.T) {
	self := ^ID(0)
	if got := fingerStart(self, 0); got != 0 {
		t.Fatalf("fingerStart wrap = %v, want 0", got)
	}
	if got := fingerStart(0, 3); got != 8 {
		t.Fatalf("fingerStart(0, 3) = %v, want 8", got)
	}
}

func TestIDStringFixedWidth(t *testing.T) {
	if s := ID(5).String(); len(s) != 16 {
		t.Fatalf("ID string %q not fixed width", s)
	}
	if s := ID(0).String(); s != "0000000000000000" {
		t.Fatalf("zero ID string %q", s)
	}
}

func TestRefFromAddr(t *testing.T) {
	r := RefFromAddr("127.0.0.1:9000")
	if r.IsZero() {
		t.Fatal("ref from address is zero")
	}
	if r.ID != HashKey("127.0.0.1:9000") {
		t.Fatal("ref ID does not match address hash")
	}
	if !(NodeRef{}).IsZero() {
		t.Fatal("zero ref not detected")
	}
}
