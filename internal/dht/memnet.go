package dht

import (
	"sync"
	"sync/atomic"

	"mdrep/internal/obs"
)

// MemNet is a deterministic in-memory transport: RPCs are direct function
// calls on registered nodes, with per-call message accounting for the
// overhead experiment (E6). Nodes can be failed to simulate churn.
type MemNet struct {
	mu     sync.RWMutex
	nodes  map[string]handler
	failed map[string]struct{}
	// lossRate drops that fraction of messages (deterministically, from
	// lossState) to inject loss. Requests and replies are separate
	// messages: a request drop fails the RPC before the handler runs, a
	// reply drop fails it after — the remote side effect happened but
	// the caller cannot tell.
	lossRate  float64
	lossState uint64
	// messages counts every RPC issued over the network.
	messages atomic.Uint64
	// requestDrops and replyDrops split injected losses by path.
	requestDrops atomic.Uint64
	replyDrops   atomic.Uint64
}

// NewMemNet returns an empty network.
func NewMemNet() *MemNet {
	return &MemNet{
		nodes:  make(map[string]handler),
		failed: make(map[string]struct{}),
	}
}

// Register attaches a node at addr.
func (m *MemNet) Register(addr string, h handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[addr] = h
	delete(m.failed, addr)
}

// Fail marks addr unreachable (simulated crash); its state survives so
// Recover can bring it back.
func (m *MemNet) Fail(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed[addr] = struct{}{}
}

// Recover clears a failure.
func (m *MemNet) Recover(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.failed, addr)
}

// Messages returns the RPC count so far.
func (m *MemNet) Messages() uint64 { return m.messages.Load() }

// ResetMessages zeroes the RPC counter.
func (m *MemNet) ResetMessages() { m.messages.Store(0) }

// SetLossRate makes the network drop the given fraction of messages on
// each path — request and reply independently — so the effective RPC
// failure probability is 1-(1-rate)². 0 disables loss. Drops are
// deterministic under a fixed call sequence and seed (SetLossSeed).
func (m *MemNet) SetLossRate(rate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	m.lossRate = rate
}

// SetLossSeed repositions the deterministic loss stream; the drop
// pattern is a pure function of (seed, call sequence).
func (m *MemNet) SetLossSeed(seed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lossState = seed
}

// RequestDrops returns the number of request-path messages dropped.
func (m *MemNet) RequestDrops() uint64 { return m.requestDrops.Load() }

// ReplyDrops returns the number of reply-path messages dropped.
func (m *MemNet) ReplyDrops() uint64 { return m.replyDrops.Load() }

// dropLocked consumes one draw from the loss stream; callers hold mu.
func (m *MemNet) dropLocked() bool {
	if m.lossRate <= 0 {
		return false
	}
	m.lossState += 0x9e3779b97f4a7c15
	z := m.lossState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < m.lossRate
}

func (m *MemNet) lookup(addr string) (handler, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dropLocked() {
		m.requestDrops.Add(1)
		return nil, ErrNodeUnreachable
	}
	if _, down := m.failed[addr]; down {
		return nil, ErrNodeUnreachable
	}
	h, ok := m.nodes[addr]
	if !ok {
		return nil, ErrNodeUnreachable
	}
	return h, nil
}

// dropReply consumes one loss draw for the reply path. It runs after
// the handler, so a dropped reply means the remote state change (if
// any) already happened — exactly the ambiguity a real network has.
func (m *MemNet) dropReply() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dropLocked() {
		m.replyDrops.Add(1)
		return ErrNodeUnreachable
	}
	return nil
}

// FindSuccessor implements Client.
func (m *MemNet) FindSuccessor(sc obs.SpanContext, addr string, id ID) (ref NodeRef, err error) {
	sp := obs.StartSpan(sc, spanRPCFindSuccessor)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return NodeRef{}, err
	}
	ref, err = h.HandleFindSuccessor(sp.Context(), id)
	if err != nil {
		return NodeRef{}, err
	}
	if err := m.dropReply(); err != nil {
		return NodeRef{}, err
	}
	return ref, nil
}

// Successors implements Client.
func (m *MemNet) Successors(sc obs.SpanContext, addr string) (refs []NodeRef, err error) {
	sp := obs.StartSpan(sc, spanRPCSuccessors)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return nil, err
	}
	refs = h.HandleSuccessors()
	if err := m.dropReply(); err != nil {
		return nil, err
	}
	return refs, nil
}

// Predecessor implements Client.
func (m *MemNet) Predecessor(sc obs.SpanContext, addr string) (ref NodeRef, ok bool, err error) {
	sp := obs.StartSpan(sc, spanRPCPredecessor)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return NodeRef{}, false, err
	}
	ref, ok = h.HandlePredecessor()
	if err := m.dropReply(); err != nil {
		return NodeRef{}, false, err
	}
	return ref, ok, nil
}

// Notify implements Client.
func (m *MemNet) Notify(sc obs.SpanContext, addr string, self NodeRef) (err error) {
	sp := obs.StartSpan(sc, spanRPCNotify)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return err
	}
	h.HandleNotify(self)
	return m.dropReply()
}

// Ping implements Client.
func (m *MemNet) Ping(sc obs.SpanContext, addr string) (err error) {
	sp := obs.StartSpan(sc, spanRPCPing)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	_, err = m.lookup(addr)
	if err != nil {
		return err
	}
	return m.dropReply()
}

// Store implements Client.
func (m *MemNet) Store(sc obs.SpanContext, addr string, recs []StoredRecord, replicate bool) (err error) {
	sp := obs.StartSpan(sc, spanRPCStore)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return err
	}
	h.HandleStore(sp.Context(), recs, replicate)
	return m.dropReply()
}

// Retrieve implements Client.
func (m *MemNet) Retrieve(sc obs.SpanContext, addr string, key ID) (recs []StoredRecord, err error) {
	sp := obs.StartSpan(sc, spanRPCRetrieve)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	m.messages.Add(1)
	h, err := m.lookup(addr)
	if err != nil {
		return nil, err
	}
	recs = h.HandleRetrieve(key)
	if err := m.dropReply(); err != nil {
		return nil, err
	}
	return recs, nil
}

var _ Client = (*MemNet)(nil)

// Ring is a convenience wrapper building and stabilising an in-memory ring
// of nodes for simulations and tests.
type Ring struct {
	Net   *MemNet
	Nodes []*Node
}

// NewRing builds n nodes, joins them through the first, and runs enough
// stabilisation rounds for the ring to converge.
func NewRing(n int, mkConfig func(i int) NodeConfig) (*Ring, error) {
	net := NewMemNet()
	r := &Ring{Net: net}
	for i := 0; i < n; i++ {
		cfg := DefaultNodeConfig()
		if mkConfig != nil {
			cfg = mkConfig(i)
		}
		// Each node needs its own storage: a shared default would alias.
		if cfg.Storage == nil {
			cfg.Storage = NewStorage(0, nil)
		}
		node, err := NewNode(ringAddr(i), net, cfg)
		if err != nil {
			return nil, err
		}
		net.Register(node.Self().Addr, node)
		if i > 0 {
			if err := node.Join(r.Nodes[0].Self().Addr); err != nil {
				return nil, err
			}
		}
		r.Nodes = append(r.Nodes, node)
	}
	r.Converge(2*n + 8)
	return r, nil
}

func ringAddr(i int) string {
	return "mem://node-" + ID(uint64(i)).String()
}

// Converge runs rounds of stabilisation plus finger repair across all
// nodes.
func (r *Ring) Converge(rounds int) {
	for round := 0; round < rounds; round++ {
		for _, n := range r.Nodes {
			n.Stabilize()
		}
	}
	for _, n := range r.Nodes {
		n.FixAllFingers()
	}
}
