package dht

import (
	"sync"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
)

// Republisher keeps a peer's own evaluation records alive in the ring:
// §4.1 step 2, "update of a file's evaluation: this can be done with the
// regular republication", which also refreshes replica TTLs and re-places
// records after ring churn. It is driven either by its own ticker (Start /
// Stop) or manually via RepublishNow for deterministic tests.
type Republisher struct {
	node *Node
	id   *identity.Identity

	// now is the clock used to stamp republished records, injectable so
	// tests can drive rounds without wall-clock sleeps (same pattern as
	// Storage.now).
	now func() time.Time

	mu      sync.Mutex
	records map[eval.FileID]float64

	stop chan struct{}
	done chan struct{}
}

// NewRepublisher wraps a node and the identity that signs its records.
func NewRepublisher(node *Node, id *identity.Identity) *Republisher {
	return &Republisher{
		node:    node,
		id:      id,
		now:     time.Now,
		records: make(map[eval.FileID]float64),
	}
}

// SetEvaluation stages (or updates) the peer's evaluation of a file; it is
// published on the next republication round. Use RepublishNow to push
// immediately.
func (r *Republisher) SetEvaluation(f eval.FileID, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.records[f] = value
}

// Withdraw stops republishing a file's evaluation; replicas expire it at
// their TTL (the churn-pruning behaviour of §4.3).
func (r *Republisher) Withdraw(f eval.FileID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.records, f)
}

// Len returns the number of staged evaluations.
func (r *Republisher) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records)
}

// RepublishNow signs and publishes every staged evaluation with a fresh
// timestamp. It returns the first publish error, after attempting all
// records.
func (r *Republisher) RepublishNow(now time.Duration) error {
	r.mu.Lock()
	staged := make(map[eval.FileID]float64, len(r.records))
	for f, v := range r.records {
		staged[f] = v
	}
	r.mu.Unlock()

	recs := make([]StoredRecord, 0, len(staged))
	for f, v := range staged {
		info := eval.Info{
			FileID:     f,
			OwnerID:    r.id.ID(),
			Evaluation: v,
			Timestamp:  now,
		}
		if err := info.Sign(r.id); err != nil {
			return err
		}
		recs = append(recs, StoredRecord{Key: HashKey(string(f)), Info: info})
	}
	if len(recs) == 0 {
		return nil
	}
	return r.node.Publish(recs)
}

// Start launches a background loop republishing every interval, stamping
// records with the clock offset since start. Call Stop to halt it; Start
// after Stop is not supported.
func (r *Republisher) Start(interval time.Duration) {
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		epoch := r.now()
		for {
			select {
			case <-ticker.C:
				r.tick(epoch)
			case <-r.stop:
				return
			}
		}
	}()
}

// tick runs one republication round against epoch. Errors are transient
// ring conditions; the next round retries.
func (r *Republisher) tick(epoch time.Time) {
	_ = r.RepublishNow(r.now().Sub(epoch))
}

// Stop halts the background loop and waits for it to exit.
func (r *Republisher) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop = nil
}
