package dht

import (
	"fmt"
	"sync"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/flight"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sim"
)

// RetryPolicy tunes the RetryClient's capped exponential backoff. Every
// DHT operation is idempotent — stores merge by (owner, timestamp),
// lookups and list reads are pure — so re-sending after an ambiguous
// failure is always safe.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (1 = no
	// retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step.
	MaxDelay time.Duration
	// OpBudget bounds the summed backoff spent on one operation; when
	// the next delay would exceed the remaining budget the operation
	// fails with a fault.ErrTimeout-classified error. Zero means no
	// budget (MaxAttempts alone limits the loop). A negative budget is
	// a configuration error: operations fail fast with fault.Terminal
	// before the first attempt.
	OpBudget time.Duration
	// JitterFrac spreads each delay uniformly over
	// [1-JitterFrac, 1) × delay so synchronized clients do not retry in
	// lockstep. Zero disables jitter.
	JitterFrac float64
}

// DefaultRetryPolicy retries up to 4 times starting at 25ms, capped at
// 400ms per step and 2s per operation, with 50% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		OpBudget:    2 * time.Second,
		JitterFrac:  0.5,
	}
}

// RetryMetrics exposes what the retry layer actually did. The counters
// are registry instruments: NewRetryClient binds them to a private
// registry so an un-instrumented client still counts, and Instrument
// rebinds them onto a shared registry for export.
type RetryMetrics struct {
	// Attempts counts every RPC issued, including first tries.
	Attempts *metrics.Counter
	// Retries counts re-issued RPCs (attempts beyond the first).
	Retries *metrics.Counter
	// Exhausted counts operations that failed after the last attempt
	// or ran out of backoff budget.
	Exhausted *metrics.Counter
}

// Snapshot returns the counters as a name→count map for logging.
func (m *RetryMetrics) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"attempts":  m.Attempts.Load(),
		"retries":   m.Retries.Load(),
		"exhausted": m.Exhausted.Load(),
	}
}

// RetryClient decorates a Client with capped exponential backoff on
// transient failures (fault.Retryable: unreachable peers, timeouts).
// Terminal errors — protocol violations, fault.Terminal pins — pass
// through immediately. Jitter is drawn from a seeded generator and the
// sleep function is injectable, so a fixed seed reproduces the exact
// backoff schedule in tests without wall-clock sleeps.
type RetryClient struct {
	inner  Client
	policy RetryPolicy

	mu  sync.Mutex
	rng *sim.RNG

	// sleep is the delay hook; NewRetryClient defaults it to time.Sleep.
	sleep func(time.Duration)

	// Metrics counts attempts, retries and exhausted operations.
	Metrics RetryMetrics

	// obs is the optional per-op latency surface (see Instrument).
	obs *rpcObs
}

// NewRetryClient wraps inner with the given policy. The seed drives
// jitter only; two clients with the same seed back off identically.
func NewRetryClient(inner Client, policy RetryPolicy, seed uint64) *RetryClient {
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	own := metrics.NewRegistry()
	return &RetryClient{
		inner:  inner,
		policy: policy,
		rng:    sim.NewRNG(seed),
		sleep:  time.Sleep,
		Metrics: RetryMetrics{
			Attempts:  own.Counter("dht_rpc_attempts_total"),
			Retries:   own.Counter("dht_rpc_retries_total"),
			Exhausted: own.Counter("dht_rpc_exhausted_total"),
		},
	}
}

// SetSleep replaces the delay hook (tests inject a virtual clock or a
// recorder). A nil fn makes backoff a no-op wait.
func (c *RetryClient) SetSleep(fn func(time.Duration)) {
	if fn == nil {
		fn = func(time.Duration) {}
	}
	c.sleep = fn
}

// nextDelay returns the backoff before retry number retry (1-based),
// with deterministic jitter.
func (c *RetryClient) nextDelay(retry int) time.Duration {
	d := c.policy.BaseDelay << uint(retry-1)
	if c.policy.BaseDelay > 0 && (d > c.policy.MaxDelay || d < c.policy.BaseDelay) {
		d = c.policy.MaxDelay // also catches shift overflow
	}
	if c.policy.JitterFrac > 0 && d > 0 {
		c.mu.Lock()
		u := c.rng.Float64()
		c.mu.Unlock()
		scale := 1 - c.policy.JitterFrac*u
		d = time.Duration(float64(d) * scale)
	}
	return d
}

// do runs op with retries. op must capture its own result variables and
// issue its RPC under the span context it is handed, so each attempt's
// transport span stitches under its attempt span. The latency span
// covers the whole logical call: every attempt plus the backoff between
// them; the causal "dht.op" span mirrors it on the trace side.
func (c *RetryClient) do(sc obs.SpanContext, name string, op func(obs.SpanContext) error) error {
	sp := c.obs.span(name)
	defer sp.End()
	osp := obs.StartSpan(sc, spanOp)
	osp.AttrStr(attrOp, name)
	err := c.attempts(&osp, name, op)
	osp.EndErr(err)
	return err
}

// attempts is do's retry loop. Exhaustion — the attempt cap or the
// backoff budget — triggers a flight-recorder dump: the ring then holds
// every attempt span of the doomed operation plus whatever else the
// node was doing while it starved.
func (c *RetryClient) attempts(osp *obs.TSpan, name string, op func(obs.SpanContext) error) error {
	if c.policy.OpBudget < 0 {
		// A negative budget can never be satisfied; treating it like
		// "no budget" would silently retry forever under a policy that
		// asked for the opposite. Fail before issuing any RPC, and make
		// it terminal so no outer layer retries the misconfiguration.
		return fault.Terminal(fmt.Errorf("dht: %s: negative backoff budget %v", name, c.policy.OpBudget))
	}
	var spent time.Duration
	var err error
	for attempt := 1; ; attempt++ {
		c.Metrics.Attempts.Inc()
		asp := obs.StartChild(osp.Context(), spanAttempt)
		asp.Attr(attrAttempt, int64(attempt))
		err = op(asp.Context())
		asp.EndErr(err)
		if err == nil || !fault.Retryable(err) {
			return err
		}
		if attempt >= c.policy.MaxAttempts {
			c.Metrics.Exhausted.Inc()
			flight.TriggerDump(dumpReasonExhausted + name)
			return fmt.Errorf("dht: %s failed after %d attempts: %w", name, attempt, err)
		}
		d := c.nextDelay(attempt)
		if c.policy.OpBudget > 0 && spent+d > c.policy.OpBudget {
			c.Metrics.Exhausted.Inc()
			flight.TriggerDump(dumpReasonExhausted + name)
			return fmt.Errorf("dht: %s backoff budget exhausted after %d attempts: %w",
				name, attempt, fault.Timeout(err))
		}
		spent += d
		c.Metrics.Retries.Inc()
		c.sleep(d)
	}
}

// FindSuccessor implements Client.
func (c *RetryClient) FindSuccessor(sc obs.SpanContext, addr string, id ID) (NodeRef, error) {
	var ref NodeRef
	err := c.do(sc, "find_successor", func(asc obs.SpanContext) error {
		var e error
		ref, e = c.inner.FindSuccessor(asc, addr, id)
		return e
	})
	return ref, err
}

// Successors implements Client.
func (c *RetryClient) Successors(sc obs.SpanContext, addr string) ([]NodeRef, error) {
	var refs []NodeRef
	err := c.do(sc, "successors", func(asc obs.SpanContext) error {
		var e error
		refs, e = c.inner.Successors(asc, addr)
		return e
	})
	return refs, err
}

// Predecessor implements Client.
func (c *RetryClient) Predecessor(sc obs.SpanContext, addr string) (NodeRef, bool, error) {
	var ref NodeRef
	var ok bool
	err := c.do(sc, "predecessor", func(asc obs.SpanContext) error {
		var e error
		ref, ok, e = c.inner.Predecessor(asc, addr)
		return e
	})
	return ref, ok, err
}

// Notify implements Client.
func (c *RetryClient) Notify(sc obs.SpanContext, addr string, self NodeRef) error {
	return c.do(sc, "notify", func(asc obs.SpanContext) error { return c.inner.Notify(asc, addr, self) })
}

// Ping implements Client. Liveness probes are how the ring *detects*
// dead nodes, so a failed ping is not retried: stabilisation must see
// the failure promptly and route around it.
func (c *RetryClient) Ping(sc obs.SpanContext, addr string) error {
	sp := c.obs.span("ping")
	defer sp.End()
	c.Metrics.Attempts.Inc()
	return c.inner.Ping(sc, addr)
}

// Store implements Client.
func (c *RetryClient) Store(sc obs.SpanContext, addr string, recs []StoredRecord, replicate bool) error {
	return c.do(sc, "store", func(asc obs.SpanContext) error { return c.inner.Store(asc, addr, recs, replicate) })
}

// Retrieve implements Client.
func (c *RetryClient) Retrieve(sc obs.SpanContext, addr string, key ID) ([]StoredRecord, error) {
	var recs []StoredRecord
	err := c.do(sc, "retrieve", func(asc obs.SpanContext) error {
		var e error
		recs, e = c.inner.Retrieve(asc, addr, key)
		return e
	})
	return recs, err
}

var _ Client = (*RetryClient)(nil)
