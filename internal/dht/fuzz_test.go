package dht

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"

	"mdrep/internal/obs"
	"mdrep/internal/wire"
)

// frame wraps body in a wire frame with the given declared length,
// which need not match the actual body size.
func frame(declared uint32, body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], declared)
	return append(hdr[:], body...)
}

// FuzzWireRequestDecode throws arbitrary bytes at the server-side frame
// decode + dispatch path: whatever arrives, the server must either
// serve the request or return an error — never panic.
func FuzzWireRequestDecode(f *testing.F) {
	valid, _ := encodeFrame(wireRequest{Method: "find_successor", ID: 42})
	f.Add(valid)
	store, _ := encodeFrame(wireRequest{Method: "store", Records: []StoredRecord{{Key: 7}}, Replicate: true})
	f.Add(store)
	f.Add(frame(12, []byte(`{"method":1}`)))       // wrong type
	f.Add(frame(100, []byte(`{"method":"ping"}`))) // truncated body
	f.Add(frame(wire.MaxFrame+1, nil))             // oversize declaration
	f.Add(frame(3, []byte(`{"unterminated`)))      // declared < actual
	f.Add([]byte{0xff})                            // truncated header
	f.Add(frame(2, []byte("{}")))                  // empty object

	srv := &TCPServer{}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req wireRequest
		if err := wire.ReadFrame(bytes.NewReader(data), &req); err != nil {
			return // malformed frames must error, and they did
		}
		// Whatever decoded must dispatch without panicking.
		_ = srv.dispatch(nullHandler{}, req, obs.SpanContext{})
	})
}

func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	err := wire.WriteFrame(&buf, v)
	return buf.Bytes(), err
}

// TestReadFrameBoundedAllocation pins the anti-over-allocation
// property: a hostile header declaring a MaxFrame body against a
// near-empty stream must not cost a MaxFrame allocation.
func TestReadFrameBoundedAllocation(t *testing.T) {
	hostile := frame(wire.MaxFrame, []byte("tiny"))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 16
	for i := 0; i < rounds; i++ {
		var req wireRequest
		err := wire.ReadFrame(bytes.NewReader(hostile), &req)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
		}
	}
	runtime.ReadMemStats(&after)
	spent := after.TotalAlloc - before.TotalAlloc
	// An eager decoder would allocate rounds × 4MB = 64MB here; the
	// bounded reader stays under one chunk (64KB) per attempt.
	if limit := uint64(rounds * 1 << 20); spent > limit {
		t.Fatalf("decoding %d hostile frames allocated %d bytes, want < %d", rounds, spent, limit)
	}
}
