package dht

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/obs"
)

// NodeConfig parameterises one DHT node.
type NodeConfig struct {
	// SuccessorListLen is the fault-tolerance depth r; records are
	// replicated to the key's first r successors.
	SuccessorListLen int
	// Storage is the node's record store (required).
	Storage *Storage
}

// DefaultNodeConfig returns r=4 and an unverified store with a 1-hour
// TTL. Lookup termination needs no hop bound: every forwarding step
// strictly shrinks the ring distance to the target.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		SuccessorListLen: 4,
		Storage:          NewStorage(time.Hour, nil),
	}
}

// Validate checks the configuration.
func (c NodeConfig) Validate() error {
	if c.SuccessorListLen < 1 {
		return fault.Terminal(errors.New("dht: successor list length must be >= 1"))
	}
	if c.Storage == nil {
		return fault.Terminal(errors.New("dht: nil storage"))
	}
	return nil
}

// Node is one Chord participant. All exported methods are safe for
// concurrent use; internal state is guarded by mu, and no RPC is issued
// while mu is held (transports may call back into the node).
type Node struct {
	self   NodeRef
	client Client
	cfg    NodeConfig

	mu      sync.RWMutex
	succs   []NodeRef // succs[0] is the immediate successor
	pred    NodeRef
	hasPred bool
	fingers [Bits]NodeRef

	// Lookups counts FindSuccessor hops served, for experiment E6.
	lookupHops uint64

	// obs is the optional ring-metrics surface (see Instrument).
	obs *nodeObs
}

// NewNode builds a node addressed at addr using the given client.
func NewNode(addr string, client Client, cfg NodeConfig) (*Node, error) {
	if addr == "" {
		return nil, fault.Terminal(errors.New("dht: empty address"))
	}
	if client == nil {
		return nil, fault.Terminal(errors.New("dht: nil client"))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{self: RefFromAddr(addr), client: client, cfg: cfg}
	// A fresh node is its own ring.
	n.succs = []NodeRef{n.self}
	return n, nil
}

// Self returns the node's ref.
func (n *Node) Self() NodeRef { return n.self }

// Successor returns the immediate successor.
func (n *Node) Successor() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.succs[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeRef, len(n.succs))
	copy(out, n.succs)
	return out
}

// PredecessorRef returns the predecessor, if known.
func (n *Node) PredecessorRef() (NodeRef, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pred, n.hasPred
}

// LookupHops returns the number of FindSuccessor hops this node has
// served.
func (n *Node) LookupHops() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lookupHops
}

// Join points the node at an existing ring member and resolves its
// successor. The periodic Stabilize calls then integrate it fully.
func (n *Node) Join(bootstrap string) error {
	succ, err := n.client.FindSuccessor(obs.SpanContext{}, bootstrap, n.self.ID)
	if err != nil {
		return fmt.Errorf("dht: join via %s: %w", bootstrap, err)
	}
	if succ.Addr == n.self.Addr {
		// A stale entry for our own address is still circulating (we
		// crashed and came back); joining "through ourselves" would leave
		// the node outside the ring.
		return fault.Terminal(fmt.Errorf("dht: join via %s resolved to self", bootstrap))
	}
	n.mu.Lock()
	n.succs = []NodeRef{succ}
	n.hasPred = false
	n.mu.Unlock()
	// Deepen the successor list right away: a fresh node with a single
	// successor is orphaned if that successor dies before the first
	// stabilisation round. Failure is fine — Stabilize deepens it later.
	if list, err := n.client.Successors(obs.SpanContext{}, succ.Addr); err == nil {
		n.mergeSuccessorList(succ, list)
	}
	return nil
}

// closestPreceding returns the ring-closest known node strictly between
// self and id, consulting fingers and the successor list.
func (n *Node) closestPreceding(id ID) NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for i := Bits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if !f.IsZero() && BetweenOpen(f.ID, n.self.ID, id) {
			return f
		}
	}
	for i := len(n.succs) - 1; i >= 0; i-- {
		s := n.succs[i]
		if !s.IsZero() && BetweenOpen(s.ID, n.self.ID, id) {
			return s
		}
	}
	return n.self
}

// HandleFindSuccessor implements the server side of lookups: if id falls
// between self and successor, the successor owns it; otherwise forward to
// the closest preceding finger — on the caller's trace, so multi-hop
// lookups stitch into one tree.
func (n *Node) HandleFindSuccessor(sc obs.SpanContext, id ID) (NodeRef, error) {
	n.mu.Lock()
	n.lookupHops++
	succ := n.succs[0]
	n.mu.Unlock()
	if n.obs != nil {
		n.obs.lookupHops.Inc()
	}
	if Between(id, n.self.ID, succ.ID) {
		return succ, nil
	}
	next := n.closestPreceding(id)
	if next.Addr == n.self.Addr {
		return succ, nil
	}
	ref, err := n.client.FindSuccessor(sc, next.Addr, id)
	if err != nil {
		// Routing hole during churn: fall back to the successor walk.
		return succ, nil
	}
	return ref, nil
}

// HandleSuccessors returns the successor list.
func (n *Node) HandleSuccessors() []NodeRef { return n.SuccessorList() }

// HandlePredecessor returns the predecessor.
func (n *Node) HandlePredecessor() (NodeRef, bool) { return n.PredecessorRef() }

// HandleNotify accepts a predecessor candidate (Chord's notify).
func (n *Node) HandleNotify(candidate NodeRef) {
	if candidate.IsZero() || candidate.Addr == n.self.Addr {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.hasPred || BetweenOpen(candidate.ID, n.pred.ID, n.self.ID) {
		n.pred = candidate
		n.hasPred = true
	}
}

// HandleStore merges records locally; when replicate is set it forwards
// unreplicated copies to the successor list, on the caller's trace.
func (n *Node) HandleStore(sc obs.SpanContext, recs []StoredRecord, replicate bool) {
	n.cfg.Storage.Put(recs)
	if !replicate {
		return
	}
	for _, s := range n.SuccessorList() {
		if s.Addr == n.self.Addr {
			continue
		}
		// Replica write failures are tolerated; stabilisation repairs.
		_ = n.client.Store(sc, s.Addr, recs, false)
	}
}

// HandleRetrieve reads the records stored under key.
func (n *Node) HandleRetrieve(key ID) []StoredRecord {
	return n.cfg.Storage.Get(key)
}

var _ handler = (*Node)(nil)

// Stabilize runs one round of Chord stabilisation: verify the successor,
// adopt a closer one if its predecessor sits between, refresh the
// successor list, and notify the successor of our existence.
func (n *Node) Stabilize() {
	if n.obs != nil {
		n.obs.stabilizations.Inc()
	}
	succ := n.Successor()
	if succ.Addr == n.self.Addr {
		// Bootstrap case: a node that is its own successor adopts its
		// predecessor (set by a joiner's notify) to close the ring.
		if pred, ok := n.PredecessorRef(); ok && pred.Addr != n.self.Addr {
			if n.client.Ping(obs.SpanContext{}, pred.Addr) == nil {
				n.adoptSuccessor(pred)
				succ = pred
			}
		}
		if succ.Addr == n.self.Addr {
			// Still alone with no predecessor: we fell out of the ring
			// (every successor died during churn). Re-enter through any
			// live finger instead of waiting for a notify that cannot
			// come — no other node's successor list names us anymore.
			succ = n.rejoinViaFinger()
		}
	} else {
		if pred, ok, err := n.client.Predecessor(obs.SpanContext{}, succ.Addr); err != nil {
			n.dropSuccessor(succ)
			succ = n.Successor()
		} else if ok && BetweenOpen(pred.ID, n.self.ID, succ.ID) && pred.Addr != n.self.Addr {
			if n.client.Ping(obs.SpanContext{}, pred.Addr) == nil {
				n.adoptSuccessor(pred)
				succ = pred
			}
		}
	}
	// Refresh the successor list from the (possibly new) successor.
	if succ.Addr != n.self.Addr {
		if list, err := n.client.Successors(obs.SpanContext{}, succ.Addr); err == nil {
			n.mergeSuccessorList(succ, list)
			_ = n.client.Notify(obs.SpanContext{}, succ.Addr, n.self)
		} else {
			n.dropSuccessor(succ)
		}
	}
	n.checkPredecessor()
}

// rejoinViaFinger resolves our own ID through the first live finger and
// adopts the result as successor, returning it (or self when no finger
// helps). Fingers are the only pointers that survive total successor
// loss, so this is the last resort of an isolated node.
func (n *Node) rejoinViaFinger() NodeRef {
	n.mu.RLock()
	fingers := n.fingers
	n.mu.RUnlock()
	for _, f := range fingers {
		if f.IsZero() || f.Addr == n.self.Addr {
			continue
		}
		succ, err := n.client.FindSuccessor(obs.SpanContext{}, f.Addr, n.self.ID)
		if err != nil || succ.IsZero() || succ.Addr == n.self.Addr {
			continue
		}
		n.adoptSuccessor(succ)
		return succ
	}
	return n.self
}

func (n *Node) adoptSuccessor(s NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.succs = append([]NodeRef{s}, n.succs...)
	n.trimSuccessorsLocked()
}

func (n *Node) dropSuccessor(dead NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.succs[:0]
	for _, s := range n.succs {
		if s.Addr != dead.Addr {
			kept = append(kept, s)
		}
	}
	n.succs = kept
	if len(n.succs) == 0 {
		n.succs = []NodeRef{n.self}
	}
}

func (n *Node) mergeSuccessorList(succ NodeRef, theirList []NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	list := make([]NodeRef, 0, n.cfg.SuccessorListLen+1)
	list = append(list, succ)
	for _, s := range theirList {
		if s.Addr == n.self.Addr || s.Addr == succ.Addr {
			continue
		}
		list = append(list, s)
		if len(list) >= n.cfg.SuccessorListLen {
			break
		}
	}
	n.succs = list
	n.trimSuccessorsLocked()
}

func (n *Node) trimSuccessorsLocked() {
	seen := make(map[string]struct{}, len(n.succs))
	kept := n.succs[:0]
	for _, s := range n.succs {
		if _, dup := seen[s.Addr]; dup {
			continue
		}
		seen[s.Addr] = struct{}{}
		kept = append(kept, s)
		if len(kept) >= n.cfg.SuccessorListLen {
			break
		}
	}
	n.succs = kept
	if len(n.succs) == 0 {
		n.succs = []NodeRef{n.self}
	}
}

func (n *Node) checkPredecessor() {
	pred, ok := n.PredecessorRef()
	if !ok || pred.Addr == n.self.Addr {
		return
	}
	if n.client.Ping(obs.SpanContext{}, pred.Addr) != nil {
		n.mu.Lock()
		n.hasPred = false
		n.mu.Unlock()
	}
}

// FixFinger refreshes finger i by looking up its target.
func (n *Node) FixFinger(i int) {
	if i < 0 || i >= Bits {
		return
	}
	target := fingerStart(n.self.ID, i)
	ref, err := n.HandleFindSuccessor(obs.SpanContext{}, target)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.fingers[i] = ref
	n.mu.Unlock()
}

// FixAllFingers refreshes every finger; tests and freshly joined nodes use
// it to converge quickly.
func (n *Node) FixAllFingers() {
	for i := 0; i < Bits; i++ {
		n.FixFinger(i)
	}
}

// Lookup resolves the node responsible for key.
func (n *Node) Lookup(sc obs.SpanContext, key ID) (NodeRef, error) {
	return n.HandleFindSuccessor(sc, key)
}

// Publish stores records under their keys at the responsible nodes with
// replication (§4.1 steps 1–2: publication and republication both land
// here). Records with distinct keys are routed independently.
func (n *Node) Publish(recs []StoredRecord) error {
	// Publish is its own trace root: republication and daemon publish
	// paths call it without a caller span, and the lookup + store fan-out
	// below all stitches under it.
	sp := obs.StartRoot(spanPublish)
	sc := sp.Context()
	byKey := make(map[ID][]StoredRecord)
	for _, r := range recs {
		byKey[r.Key] = append(byKey[r.Key], r)
	}
	var firstErr error
	for key, group := range byKey {
		root, err := n.Lookup(sc, key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if root.Addr == n.self.Addr {
			n.HandleStore(sc, group, true)
			continue
		}
		if err := n.client.Store(sc, root.Addr, group, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sp.EndErr(firstErr)
	return firstErr
}

// Retrieve fetches the records stored under key (§4.1 step 3), trying the
// root and then its replicas.
func (n *Node) Retrieve(sc obs.SpanContext, key ID) (out []StoredRecord, err error) {
	tsp := obs.StartSpan(sc, spanRetrieve)
	walked := 1 // the root is always consulted
	defer func() {
		if n.obs != nil {
			n.obs.walkDepth.Observe(float64(walked))
		}
		tsp.Attr(attrWalked, int64(walked))
		tsp.EndErr(err)
	}()
	sc = tsp.Context()
	root, err := n.Lookup(sc, key)
	if err != nil {
		return nil, err
	}
	var recs []StoredRecord
	var rootErr error
	if root.Addr == n.self.Addr {
		recs = n.HandleRetrieve(key)
	} else {
		recs, rootErr = n.client.Retrieve(sc, root.Addr, key)
	}
	if rootErr == nil && len(recs) > 0 {
		return recs, nil
	}
	// Root unreachable or empty-handed: an empty answer may just mean
	// the root rejoined after a crash and has not been repaired yet, so
	// ask its replicas before concluding the records do not exist.
	list, lerr := n.client.Successors(sc, root.Addr)
	if lerr != nil {
		list = n.SuccessorList()
	}
	for _, s := range list {
		if s.Addr == root.Addr || s.Addr == n.self.Addr {
			continue
		}
		walked++
		if rrecs, rerr := n.client.Retrieve(sc, s.Addr, key); rerr == nil && len(rrecs) > 0 {
			return rrecs, nil
		}
	}
	if rootErr != nil {
		return nil, rootErr
	}
	return recs, nil
}

// Leave gracefully removes the node from the ring: its stored records are
// handed to its successor (which replicates them onward), and its
// predecessor is pointed past it. The caller must stop routing to the
// node afterwards (close its transport / unregister it).
func (n *Node) Leave() error {
	succ := n.Successor()
	if succ.Addr == n.self.Addr {
		return nil // last node; nothing to hand off
	}
	records := n.cfg.Storage.All()
	if len(records) > 0 {
		if err := n.client.Store(obs.SpanContext{}, succ.Addr, records, true); err != nil {
			return fmt.Errorf("dht: hand off %d records to %s: %w", len(records), succ.Addr, err)
		}
	}
	// Tell the successor who its new predecessor should be, so the ring
	// closes without waiting for failure detection.
	if pred, ok := n.PredecessorRef(); ok && pred.Addr != n.self.Addr {
		_ = n.client.Notify(obs.SpanContext{}, succ.Addr, pred)
	}
	return nil
}
