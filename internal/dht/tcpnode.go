package dht

// TCPNodeServer couples a Node with the TCP server exposing it: the
// listener is bound first so the node's ring ID derives from its real
// address, then the node is attached as the handler.
type TCPNodeServer struct {
	srv  *TCPServer
	node *Node
}

// ServeTCPNode binds listen (use ":0" for an ephemeral port), creates a
// node addressed at the bound address, and starts serving it.
func ServeTCPNode(listen string, client Client, cfg NodeConfig) (*TCPNodeServer, error) {
	srv, err := ServeTCP(listen, nil)
	if err != nil {
		return nil, err
	}
	node, err := NewNode(srv.Addr(), client, cfg)
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	srv.setHandler(node)
	return &TCPNodeServer{srv: srv, node: node}, nil
}

// Node returns the served node.
func (s *TCPNodeServer) Node() *Node { return s.node }

// Addr returns the bound listen address.
func (s *TCPNodeServer) Addr() string { return s.srv.Addr() }

// Close stops the server.
func (s *TCPNodeServer) Close() error { return s.srv.Close() }
