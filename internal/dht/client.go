package dht

import (
	"mdrep/internal/fault"
	"mdrep/internal/obs"
)

// Client is the RPC surface a node uses to talk to other nodes. The
// in-memory network and the TCP transport both implement it; the node
// logic is transport-agnostic. Every call takes the caller's span
// context first: transports open one RPC span per call under it and
// propagate it across the wire, which is how a walk estimate's DHT hops
// stitch into one trace. Callers without a trace pass the zero
// obs.SpanContext — the transport then roots a trace of its own, so
// maintenance traffic still reaches the flight recorder.
type Client interface {
	// FindSuccessor asks the node at addr for the successor of id.
	FindSuccessor(sc obs.SpanContext, addr string, id ID) (NodeRef, error)
	// Successors returns the successor list of the node at addr.
	Successors(sc obs.SpanContext, addr string) ([]NodeRef, error)
	// Predecessor returns the predecessor of the node at addr; ok is
	// false when unset.
	Predecessor(sc obs.SpanContext, addr string) (NodeRef, bool, error)
	// Notify tells the node at addr that self may be its predecessor.
	Notify(sc obs.SpanContext, addr string, self NodeRef) error
	// Ping checks liveness.
	Ping(sc obs.SpanContext, addr string) error
	// Store writes records to the node at addr. When replicate is true
	// the receiving node forwards copies to its successor list.
	Store(sc obs.SpanContext, addr string, recs []StoredRecord, replicate bool) error
	// Retrieve reads the records stored under key at addr.
	Retrieve(sc obs.SpanContext, addr string, key ID) ([]StoredRecord, error)
}

// unreachableError is the concrete type behind ErrNodeUnreachable. It
// classifies as fault.ErrUnreachable so retry loops and the peer
// exchange share one taxonomy without changing this sentinel's text or
// the errors.Is(err, ErrNodeUnreachable) checks spread through the ring
// code.
type unreachableError struct{}

func (unreachableError) Error() string { return "dht: node unreachable" }

func (unreachableError) Is(target error) bool { return target == fault.ErrUnreachable }

// ErrNodeUnreachable is returned by transports when the remote node is
// gone; the caller routes around it via the successor list. It is
// retryable under the internal/fault taxonomy.
var ErrNodeUnreachable error = unreachableError{}

// handler is the server-side surface; *Node implements it, and both
// transports dispatch inbound requests through it. The methods that can
// fan out further RPCs (lookup forwarding, store replication) receive
// the inbound span context so the continuation stays on the caller's
// trace.
type handler interface {
	HandleFindSuccessor(sc obs.SpanContext, id ID) (NodeRef, error)
	HandleSuccessors() []NodeRef
	HandlePredecessor() (NodeRef, bool)
	HandleNotify(candidate NodeRef)
	HandleStore(sc obs.SpanContext, recs []StoredRecord, replicate bool)
	HandleRetrieve(key ID) []StoredRecord
}
