package dht

import "mdrep/internal/fault"

// Client is the RPC surface a node uses to talk to other nodes. The
// in-memory network and the TCP transport both implement it; the node
// logic is transport-agnostic.
type Client interface {
	// FindSuccessor asks the node at addr for the successor of id.
	FindSuccessor(addr string, id ID) (NodeRef, error)
	// Successors returns the successor list of the node at addr.
	Successors(addr string) ([]NodeRef, error)
	// Predecessor returns the predecessor of the node at addr; ok is
	// false when unset.
	Predecessor(addr string) (NodeRef, bool, error)
	// Notify tells the node at addr that self may be its predecessor.
	Notify(addr string, self NodeRef) error
	// Ping checks liveness.
	Ping(addr string) error
	// Store writes records to the node at addr. When replicate is true
	// the receiving node forwards copies to its successor list.
	Store(addr string, recs []StoredRecord, replicate bool) error
	// Retrieve reads the records stored under key at addr.
	Retrieve(addr string, key ID) ([]StoredRecord, error)
}

// unreachableError is the concrete type behind ErrNodeUnreachable. It
// classifies as fault.ErrUnreachable so retry loops and the peer
// exchange share one taxonomy without changing this sentinel's text or
// the errors.Is(err, ErrNodeUnreachable) checks spread through the ring
// code.
type unreachableError struct{}

func (unreachableError) Error() string { return "dht: node unreachable" }

func (unreachableError) Is(target error) bool { return target == fault.ErrUnreachable }

// ErrNodeUnreachable is returned by transports when the remote node is
// gone; the caller routes around it via the successor list. It is
// retryable under the internal/fault taxonomy.
var ErrNodeUnreachable error = unreachableError{}

// handler is the server-side surface; *Node implements it, and both
// transports dispatch inbound requests through it.
type handler interface {
	HandleFindSuccessor(id ID) (NodeRef, error)
	HandleSuccessors() []NodeRef
	HandlePredecessor() (NodeRef, bool)
	HandleNotify(candidate NodeRef)
	HandleStore(recs []StoredRecord, replicate bool)
	HandleRetrieve(key ID) []StoredRecord
}
