package dht

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/obs"
	"mdrep/internal/wire"
)

// The TCP transport frames each message with internal/wire (length-
// prefixed JSON). One request/response pair per connection keeps the
// protocol trivially robust to peer churn; the dial cost is irrelevant
// next to file transfer times in the target workload. Sampled requests
// carry a wire.TraceContext header in the Trace field, so the server
// side continues the caller's trace.

type wireRequest struct {
	Method    string         `json:"method"`
	ID        ID             `json:"id,omitempty"`
	Node      NodeRef        `json:"node,omitempty"`
	Records   []StoredRecord `json:"records,omitempty"`
	Replicate bool           `json:"replicate,omitempty"`
	Trace     []byte         `json:"trace,omitempty"`
}

type wireResponse struct {
	Error   string         `json:"error,omitempty"`
	Node    NodeRef        `json:"nodeRef,omitempty"`
	HasNode bool           `json:"hasNode,omitempty"`
	Nodes   []NodeRef      `json:"nodes,omitempty"`
	Records []StoredRecord `json:"records,omitempty"`
}

// TCPClient implements Client over TCP.
type TCPClient struct {
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange.
	CallTimeout time.Duration
}

// NewTCPClient returns a client with 2s dial and 5s call timeouts.
func NewTCPClient() *TCPClient {
	return &TCPClient{DialTimeout: 2 * time.Second, CallTimeout: 5 * time.Second}
}

// call runs one framed exchange inside an RPC span: a child of sc when
// the caller is traced, a fresh root otherwise, with the span context
// propagated in the request's Trace header.
func (c *TCPClient) call(sc obs.SpanContext, spanName, addr string, req wireRequest) (resp *wireResponse, err error) {
	sp := obs.StartSpan(sc, spanName)
	sp.AttrStr(attrAddr, addr)
	defer func() { sp.EndErr(err) }()
	req.Trace = sp.Context().MarshalWire()

	conn, err := net.DialTimeout("tcp", addr, c.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrNodeUnreachable, addr, err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(c.CallTimeout)); err != nil { //mdrep:allow wallclock: I/O deadline on a live socket, not replayed state
		return nil, err
	}
	if err := wire.WriteFrame(conn, req); err != nil {
		return nil, fmt.Errorf("%w: send to %s: %v", ErrNodeUnreachable, addr, err)
	}
	var r wireResponse
	if err := wire.ReadFrame(conn, &r); err != nil {
		return nil, fmt.Errorf("%w: recv from %s: %v", ErrNodeUnreachable, addr, err)
	}
	if r.Error != "" {
		return nil, fault.Terminal(errors.New(r.Error))
	}
	return &r, nil
}

// FindSuccessor implements Client.
func (c *TCPClient) FindSuccessor(sc obs.SpanContext, addr string, id ID) (NodeRef, error) {
	resp, err := c.call(sc, spanRPCFindSuccessor, addr, wireRequest{Method: "find_successor", ID: id})
	if err != nil {
		return NodeRef{}, err
	}
	return resp.Node, nil
}

// Successors implements Client.
func (c *TCPClient) Successors(sc obs.SpanContext, addr string) ([]NodeRef, error) {
	resp, err := c.call(sc, spanRPCSuccessors, addr, wireRequest{Method: "successors"})
	if err != nil {
		return nil, err
	}
	return resp.Nodes, nil
}

// Predecessor implements Client.
func (c *TCPClient) Predecessor(sc obs.SpanContext, addr string) (NodeRef, bool, error) {
	resp, err := c.call(sc, spanRPCPredecessor, addr, wireRequest{Method: "predecessor"})
	if err != nil {
		return NodeRef{}, false, err
	}
	return resp.Node, resp.HasNode, nil
}

// Notify implements Client.
func (c *TCPClient) Notify(sc obs.SpanContext, addr string, self NodeRef) error {
	_, err := c.call(sc, spanRPCNotify, addr, wireRequest{Method: "notify", Node: self})
	return err
}

// Ping implements Client.
func (c *TCPClient) Ping(sc obs.SpanContext, addr string) error {
	_, err := c.call(sc, spanRPCPing, addr, wireRequest{Method: "ping"})
	return err
}

// Store implements Client.
func (c *TCPClient) Store(sc obs.SpanContext, addr string, recs []StoredRecord, replicate bool) error {
	_, err := c.call(sc, spanRPCStore, addr, wireRequest{Method: "store", Records: recs, Replicate: replicate})
	return err
}

// Retrieve implements Client.
func (c *TCPClient) Retrieve(sc obs.SpanContext, addr string, key ID) ([]StoredRecord, error) {
	resp, err := c.call(sc, spanRPCRetrieve, addr, wireRequest{Method: "retrieve", ID: key})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

var _ Client = (*TCPClient)(nil)

// TCPServer serves a node's handler over TCP.
type TCPServer struct {
	listener net.Listener

	mu      sync.Mutex
	handler handler
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
}

// setHandler attaches (or replaces) the handler; requests arriving while
// no handler is set are dropped.
func (s *TCPServer) setHandler(h handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

func (s *TCPServer) getHandler() handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handler
}

// ServeTCP starts serving h on addr (e.g. "127.0.0.1:0") and returns the
// running server; Addr reports the bound address. The caller must Close.
func ServeTCP(addr string, h handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dht: listen %s: %w", addr, err)
	}
	s := &TCPServer{listener: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and all in-flight connections, then waits for
// the serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closing = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second)) //mdrep:allow wallclock: I/O deadline on a live socket, not replayed state
	var req wireRequest
	if err := wire.ReadFrame(conn, &req); err != nil {
		return
	}
	// A corrupt or absent trace header yields the zero context, and the
	// serve span roots a trace of its own — tracing never fails a
	// request.
	sp := obs.StartSpan(obs.SpanContextFromWire(req.Trace), spanServe)
	sp.AttrStr(attrMethod, req.Method)
	h := s.getHandler()
	if h == nil {
		sp.EndErr(errors.New("dht: node not attached yet")) //mdrep:allow faultwrap: feeds the serve span's status only, never returned to a retry loop
		_ = wire.WriteFrame(conn, wireResponse{Error: "dht: node not attached yet"})
		return
	}
	resp := s.dispatch(h, req, sp.Context())
	if resp.Error != "" {
		sp.EndErr(errors.New(resp.Error)) //mdrep:allow faultwrap: feeds the serve span's status only; the client re-tags the wire error
	} else {
		sp.End()
	}
	_ = wire.WriteFrame(conn, resp)
}

func (s *TCPServer) dispatch(h handler, req wireRequest, sc obs.SpanContext) wireResponse {
	switch req.Method {
	case "find_successor":
		ref, err := h.HandleFindSuccessor(sc, req.ID)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{Node: ref}
	case "successors":
		return wireResponse{Nodes: h.HandleSuccessors()}
	case "predecessor":
		ref, ok := h.HandlePredecessor()
		return wireResponse{Node: ref, HasNode: ok}
	case "notify":
		h.HandleNotify(req.Node)
		return wireResponse{}
	case "ping":
		return wireResponse{}
	case "store":
		h.HandleStore(sc, req.Records, req.Replicate)
		return wireResponse{}
	case "retrieve":
		return wireResponse{Records: h.HandleRetrieve(req.ID)}
	default:
		return wireResponse{Error: fmt.Sprintf("dht: unknown method %q", req.Method)}
	}
}
