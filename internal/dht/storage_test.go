package dht

import (
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
)

func rec(key ID, owner string, value float64, ts time.Duration) StoredRecord {
	return StoredRecord{
		Key: key,
		Info: eval.Info{
			FileID:     "f",
			OwnerID:    identity.PeerID(owner),
			Evaluation: value,
			Timestamp:  ts,
		},
	}
}

func TestStoragePutGet(t *testing.T) {
	s := NewStorage(0, nil)
	if n := s.Put([]StoredRecord{rec(1, "a", 0.9, 0), rec(1, "b", 0.5, 0), rec(2, "a", 0.1, 0)}); n != 3 {
		t.Fatalf("Put accepted %d, want 3", n)
	}
	got := s.Get(1)
	if len(got) != 2 {
		t.Fatalf("Get(1) returned %d records", len(got))
	}
	if got[0].Info.OwnerID != "a" || got[1].Info.OwnerID != "b" {
		t.Fatalf("records not sorted by owner: %+v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Get(9) != nil {
		t.Fatal("missing key returned records")
	}
}

func TestStorageNewerTimestampWins(t *testing.T) {
	s := NewStorage(0, nil)
	s.Put([]StoredRecord{rec(1, "a", 0.9, 10)})
	s.Put([]StoredRecord{rec(1, "a", 0.1, 5)}) // stale replay
	got := s.Get(1)
	if len(got) != 1 || got[0].Info.Evaluation != 0.9 {
		t.Fatalf("stale record overwrote newer: %+v", got)
	}
	s.Put([]StoredRecord{rec(1, "a", 0.2, 20)}) // genuine update
	got = s.Get(1)
	if got[0].Info.Evaluation != 0.2 {
		t.Fatalf("republication did not supersede: %+v", got)
	}
}

func TestStorageTTLExpiry(t *testing.T) {
	s := NewStorage(time.Hour, nil)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.Put([]StoredRecord{rec(1, "a", 0.9, 0)})
	if len(s.Get(1)) != 1 {
		t.Fatal("fresh record missing")
	}
	now = now.Add(2 * time.Hour)
	if len(s.Get(1)) != 0 {
		t.Fatal("expired record still returned")
	}
	if removed := s.Sweep(); removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	if s.Len() != 0 {
		t.Fatal("swept store not empty")
	}
}

func TestStorageRepublicationRefreshesTTL(t *testing.T) {
	s := NewStorage(time.Hour, nil)
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }
	s.Put([]StoredRecord{rec(1, "a", 0.9, 0)})
	now = now.Add(50 * time.Minute)
	s.Put([]StoredRecord{rec(1, "a", 0.9, time.Duration(now.UnixNano()))})
	now = now.Add(50 * time.Minute) // 100m after first put, 50m after refresh
	if len(s.Get(1)) != 1 {
		t.Fatal("republished record expired")
	}
}

func TestStorageSignatureVerification(t *testing.T) {
	id, err := identity.Generate(identity.NewDeterministicReader(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	s := NewStorage(0, dir)

	signed := eval.Info{FileID: "f", OwnerID: id.ID(), Evaluation: 0.7, Timestamp: 1}
	if err := signed.Sign(id); err != nil {
		t.Fatal(err)
	}
	forged := signed
	forged.Evaluation = 1.0 // signature now invalid

	n := s.Put([]StoredRecord{
		{Key: 1, Info: signed},
		{Key: 1, Info: forged},
	})
	if n != 1 {
		t.Fatalf("Put accepted %d records, want only the signed one", n)
	}
	got := s.Get(1)
	if len(got) != 1 || got[0].Info.Evaluation != 0.7 {
		t.Fatalf("stored record wrong: %+v", got)
	}
}

func TestStorageRecordsInRange(t *testing.T) {
	s := NewStorage(0, nil)
	s.Put([]StoredRecord{rec(5, "a", 1, 0), rec(15, "a", 1, 0), rec(25, "a", 1, 0)})
	got := s.RecordsInRange(10, 20)
	if len(got) != 1 || got[0].Key != 15 {
		t.Fatalf("RecordsInRange(10, 20) = %+v", got)
	}
	all := s.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key > all[i].Key {
			t.Fatal("All not sorted by key")
		}
	}
}

func TestStorageRangeWraps(t *testing.T) {
	s := NewStorage(0, nil)
	high := ^ID(4)
	s.Put([]StoredRecord{rec(high, "a", 1, 0), rec(3, "a", 1, 0), rec(1000, "a", 1, 0)})
	got := s.RecordsInRange(^ID(9), 10)
	if len(got) != 2 {
		t.Fatalf("wrapped range returned %d records, want 2", len(got))
	}
}
