package dht

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mdrep/internal/obs"
)

// nullHandler accepts every RPC so loss is the only failure source.
type nullHandler struct{}

func (nullHandler) HandleFindSuccessor(_ obs.SpanContext, id ID) (NodeRef, error) {
	return NodeRef{Addr: "x"}, nil
}
func (nullHandler) HandleSuccessors() []NodeRef                                        { return nil }
func (nullHandler) HandlePredecessor() (NodeRef, bool)                                 { return NodeRef{}, false }
func (nullHandler) HandleNotify(candidate NodeRef)                                     {}
func (nullHandler) HandleStore(_ obs.SpanContext, recs []StoredRecord, replicate bool) {}
func (nullHandler) HandleRetrieve(key ID) []StoredRecord                               { return nil }

// lossTrace pings through a lossy MemNet and returns the outcome
// pattern plus the split drop counters.
func lossTrace(seed uint64, rate float64, calls int) string {
	net := NewMemNet()
	net.Register("mem://a", nullHandler{})
	net.SetLossRate(rate)
	net.SetLossSeed(seed)
	var sb strings.Builder
	for i := 0; i < calls; i++ {
		if err := net.Ping(obs.SpanContext{}, "mem://a"); err != nil {
			sb.WriteByte('x')
		} else {
			sb.WriteByte('.')
		}
	}
	fmt.Fprintf(&sb, " req=%d reply=%d", net.RequestDrops(), net.ReplyDrops())
	return sb.String()
}

// TestMemNetLossSequencePinned is a regression pin: the drop pattern is
// a pure function of (seed, call sequence), and loss is injected on
// BOTH paths — the reply-path counter must move, not just the request
// one. If the loss-stream implementation changes, this fails loudly
// instead of silently re-seeding every downstream experiment.
func TestMemNetLossSequencePinned(t *testing.T) {
	got := lossTrace(7, 0.3, 40)
	const want = "x.x.xx.....x..x..xx.xxx.xx...xxx.......x " +
		"req=8 reply=9"
	if got != want {
		t.Fatalf("loss trace changed:\n got %q\nwant %q", got, want)
	}
	if again := lossTrace(7, 0.3, 40); again != got {
		t.Fatalf("same seed, different trace:\n%q\n%q", got, again)
	}
	if other := lossTrace(8, 0.3, 40); other == got {
		t.Fatalf("different seeds produced the identical trace")
	}
}

// TestMemNetReplyLossAfterSideEffect asserts the reply path drops after
// the handler ran: the caller sees ErrNodeUnreachable, yet the store
// side effect happened.
func TestMemNetReplyLossAfterSideEffect(t *testing.T) {
	net := NewMemNet()
	stored := 0
	net.Register("mem://a", storeCounter{&stored})
	net.SetLossRate(0.5)
	net.SetLossSeed(3)
	attempts, failures := 0, 0
	for net.ReplyDrops() == 0 {
		attempts++
		if attempts > 1000 {
			t.Fatalf("no reply drop within 1000 attempts at 50%% loss")
		}
		if err := net.Store(obs.SpanContext{}, "mem://a", nil, false); err != nil {
			if !errors.Is(err, ErrNodeUnreachable) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	// Every delivered request reached the handler, including the one
	// whose reply was then dropped.
	wantStored := attempts - int(net.RequestDrops())
	if stored != wantStored {
		t.Fatalf("handler ran %d times, want %d (attempts %d - request drops %d)",
			stored, wantStored, attempts, net.RequestDrops())
	}
	if failures != int(net.RequestDrops()+net.ReplyDrops()) {
		t.Fatalf("failures %d != request drops %d + reply drops %d",
			failures, net.RequestDrops(), net.ReplyDrops())
	}
}

type storeCounter struct{ n *int }

func (s storeCounter) HandleFindSuccessor(_ obs.SpanContext, id ID) (NodeRef, error) {
	return NodeRef{}, nil
}
func (s storeCounter) HandleSuccessors() []NodeRef                                        { return nil }
func (s storeCounter) HandlePredecessor() (NodeRef, bool)                                 { return NodeRef{}, false }
func (s storeCounter) HandleNotify(candidate NodeRef)                                     {}
func (s storeCounter) HandleStore(_ obs.SpanContext, recs []StoredRecord, replicate bool) { *s.n++ }
func (s storeCounter) HandleRetrieve(key ID) []StoredRecord                               { return nil }
