package dht

// Causal-tracing span names and attribute keys. Keys must come from
// this const table (metriclabel analyzer: span attribute keys are
// cardinality-bounded like metric labels); values are free per-trace
// data.
const (
	spanRPCFindSuccessor = "dht.rpc.find_successor"
	spanRPCSuccessors    = "dht.rpc.successors"
	spanRPCPredecessor   = "dht.rpc.predecessor"
	spanRPCNotify        = "dht.rpc.notify"
	spanRPCPing          = "dht.rpc.ping"
	spanRPCStore         = "dht.rpc.store"
	spanRPCRetrieve      = "dht.rpc.retrieve"
	spanServe            = "dht.serve"
	spanOp               = "dht.op"
	spanAttempt          = "dht.attempt"
	spanRetrieve         = "dht.retrieve"
	spanPublish          = "dht.publish"

	attrAddr    = "addr"
	attrMethod  = "method"
	attrOp      = "op"
	attrAttempt = "attempt"
	attrWalked  = "walked"
)

// dumpReasonExhausted prefixes the flight-dump reason when a retry loop
// runs out of attempts or backoff budget.
const dumpReasonExhausted = "dht: retry budget exhausted: "
