package dht

import (
	"sort"
	"sync"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
)

// StoredRecord is one replica-stored item: a file's index entry from one
// owner, carrying the owner's signed evaluation (§4.1 step 1:
// "EvaluationInfo = <FileID, OwnerID, Evaluation, Signature>").
type StoredRecord struct {
	// Key is the ring position of the file (HashKey of the content
	// hash).
	Key ID `json:"key"`
	// Info is the signed evaluation bundle.
	Info eval.Info `json:"info"`
	// StoredAt is the local wall-clock time the replica accepted the
	// record; TTL expiry runs against it.
	StoredAt time.Time `json:"-"`
}

// Storage is a replica's record store: key → owner → newest record.
// Records expire TTL after their last (re)publication, implementing §4.3's
// "preserve the evaluations within an interval" and garbage-collecting
// departed owners.
type Storage struct {
	mu  sync.RWMutex
	ttl time.Duration
	// verify, when non-nil, rejects records whose signature does not
	// check out against the directory (§4.2 attack 1).
	verify  *identity.Directory
	records map[ID]map[identity.PeerID]StoredRecord
	now     func() time.Time
}

// NewStorage builds a store. ttl of zero disables expiry; dir of nil
// disables signature verification (used by pure-simulation rings where
// records are synthesised unsigned).
func NewStorage(ttl time.Duration, dir *identity.Directory) *Storage {
	return &Storage{
		ttl:     ttl,
		verify:  dir,
		records: make(map[ID]map[identity.PeerID]StoredRecord),
		now:     time.Now,
	}
}

// Put merges records into the store. A record replaces an existing one
// from the same owner only if its evaluation timestamp is not older
// (republication refreshes; replayed stale records are ignored). It
// returns the number of records accepted.
func (s *Storage) Put(recs []StoredRecord) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	accepted := 0
	now := s.now()
	for _, r := range recs {
		if s.verify != nil {
			if err := r.Info.Verify(s.verify); err != nil {
				continue
			}
		}
		perOwner := s.records[r.Key]
		if perOwner == nil {
			perOwner = make(map[identity.PeerID]StoredRecord, 4)
			s.records[r.Key] = perOwner
		}
		if old, ok := perOwner[r.Info.OwnerID]; ok && old.Info.Timestamp > r.Info.Timestamp {
			continue
		}
		r.StoredAt = now
		perOwner[r.Info.OwnerID] = r
		accepted++
	}
	return accepted
}

// Get returns the live records under key, sorted by owner for determinism.
func (s *Storage) Get(key ID) []StoredRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	perOwner := s.records[key]
	if len(perOwner) == 0 {
		return nil
	}
	now := s.now()
	out := make([]StoredRecord, 0, len(perOwner))
	for _, r := range perOwner {
		if s.expired(r, now) {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.OwnerID < out[j].Info.OwnerID })
	return out
}

func (s *Storage) expired(r StoredRecord, now time.Time) bool {
	return s.ttl > 0 && now.Sub(r.StoredAt) > s.ttl
}

// Sweep drops expired records; call periodically. Returns removals.
func (s *Storage) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	removed := 0
	for key, perOwner := range s.records {
		for owner, r := range perOwner {
			if s.expired(r, now) {
				delete(perOwner, owner)
				removed++
			}
		}
		if len(perOwner) == 0 {
			delete(s.records, key)
		}
	}
	return removed
}

// Len returns the number of stored records (including not-yet-swept
// expired ones).
func (s *Storage) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, perOwner := range s.records {
		n += len(perOwner)
	}
	return n
}

// RecordsInRange returns records whose key falls in the ring interval
// (from, to]; used to hand off keys when a node joins or leaves.
func (s *Storage) RecordsInRange(from, to ID) []StoredRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	now := s.now()
	var out []StoredRecord
	for key, perOwner := range s.records {
		if !Between(key, from, to) {
			continue
		}
		for _, r := range perOwner {
			if !s.expired(r, now) {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Info.OwnerID < out[j].Info.OwnerID
	})
	return out
}

// All returns every live record; used for replication repair.
func (s *Storage) All() []StoredRecord {
	return s.RecordsInRange(0, 0) // (a, a] spans the whole ring
}
