// Package dht implements the distributed hash table of §4.1: a
// Chord-style ring that stores each file's index entry together with its
// owners' signed EvaluationInfo records, so publishing, updating and
// retrieving evaluations piggybacks on the index operations the system
// performs anyway ("the system will not need more lookup messages when a
// user publishes and retrieves a file's evaluation with this file's index
// information").
//
// The ring uses 64-bit identifiers (SHA-1 truncated), successor lists for
// fault tolerance, finger tables for O(log N) lookups, and periodic
// stabilisation. Two transports are provided: a deterministic in-memory
// network for simulation and tests, and a length-prefixed-JSON TCP
// transport (stdlib only) for real deployments.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"strconv"
)

// ID is a position on the 2^64 ring.
type ID uint64

// Bits is the ring's identifier width; finger tables have one entry per
// bit.
const Bits = 64

// HashKey maps an arbitrary string key (a content hash, a node address)
// onto the ring.
func HashKey(s string) ID {
	sum := sha1.Sum([]byte(s))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// Between reports whether id lies in the half-open ring interval (a, b].
// When a == b the interval spans the whole ring (a single-node ring owns
// everything).
func Between(id, a, b ID) bool {
	if a == b {
		return true
	}
	if a < b {
		return a < id && id <= b
	}
	// Interval wraps zero.
	return id > a || id <= b
}

// BetweenOpen reports whether id lies in the open ring interval (a, b).
func BetweenOpen(id, a, b ID) bool {
	if a == b {
		return id != a
	}
	if a < b {
		return a < id && id < b
	}
	return id > a || id < b
}

// fingerStart returns the i-th finger's target: self + 2^i (mod 2^64).
func fingerStart(self ID, i int) ID {
	return self + ID(1)<<uint(i)
}

// String renders the ID as fixed-width hex for logs.
func (id ID) String() string {
	const hexDigits = 16
	s := strconv.FormatUint(uint64(id), 16)
	for len(s) < hexDigits {
		s = "0" + s
	}
	return s
}

// NodeRef identifies a DHT node: its ring position and transport address.
type NodeRef struct {
	ID   ID     `json:"id"`
	Addr string `json:"addr"`
}

// IsZero reports whether the ref is unset.
func (r NodeRef) IsZero() bool { return r.Addr == "" }

// RefFromAddr derives a node's ring position from its address.
func RefFromAddr(addr string) NodeRef {
	return NodeRef{ID: HashKey(addr), Addr: addr}
}
