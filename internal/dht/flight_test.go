package dht

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/flight"
	"mdrep/internal/obs"
)

// withFlightTracing installs a recorder plus sample-everything tracing
// on a deterministic clock for the test's duration.
func withFlightTracing(t *testing.T, seed uint64) *flight.Recorder {
	t.Helper()
	rec := flight.NewRecorder(256, 8)
	flight.Install(rec)
	tick := time.Unix(0, 0)
	obs.EnableTracing(seed, func() time.Time {
		tick = tick.Add(time.Millisecond)
		return tick
	}, 1)
	t.Cleanup(func() {
		obs.DisableTracing()
		flight.Install(nil)
	})
	return rec
}

// TestRetryExhaustionTriggersDump: a retry loop that runs out of
// attempts is exactly the moment the black box must be written — the
// ring then holds every attempt span of the failed operation.
func TestRetryExhaustionTriggersDump(t *testing.T) {
	rec := withFlightTracing(t, 3)
	inner := &flakyClient{failures: 99, err: fault.Unreachable(errors.New("down"))}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, 1)
	rc.SetSleep(func(time.Duration) {})
	if err := rc.Notify(obs.SpanContext{}, "a", NodeRef{}); err == nil {
		t.Fatal("exhausted retries succeeded")
	}
	d, ok := rec.LastDump()
	if !ok {
		t.Fatal("retry exhaustion did not trigger a flight dump")
	}
	if want := dumpReasonExhausted + "notify"; d.Reason != want {
		t.Errorf("dump reason = %q, want %q", d.Reason, want)
	}
	attempts := 0
	for _, r := range d.Records {
		if r.Name == spanAttempt {
			attempts++
		}
	}
	if attempts != 3 {
		t.Errorf("dump holds %d attempt spans, want 3", attempts)
	}
}

// TestRetrySuccessDoesNotDump: a retry that eventually lands must not
// spend a black box — dumps are for evidence of failure, not noise.
func TestRetrySuccessDoesNotDump(t *testing.T) {
	rec := withFlightTracing(t, 4)
	inner := &flakyClient{failures: 2, err: fault.Unreachable(errors.New("down"))}
	rc := NewRetryClient(inner, DefaultRetryPolicy(), 1)
	rc.SetSleep(func(time.Duration) {})
	if err := rc.Notify(obs.SpanContext{}, "a", NodeRef{}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Triggered(); got != 0 {
		t.Errorf("successful retry triggered %d dumps", got)
	}
}

// TestWireTracePropagation: a traced Retrieve through the in-memory
// transport must land the server-side handler spans on the caller's
// trace — one stitched tree, not a forest.
func TestWireTracePropagation(t *testing.T) {
	rec := withFlightTracing(t, 5)
	r, err := NewRing(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := HashKey("traced-file")
	root := obs.StartRoot("walk.row_fetch")
	if _, err := r.Nodes[0].Retrieve(root.Context(), key); err != nil {
		t.Fatal(err)
	}
	root.End()
	trace := root.Context().Trace
	recs := rec.Snapshot()
	onTrace := 0
	for _, rr := range recs {
		if rr.Trace == trace {
			onTrace++
		}
	}
	if onTrace < 3 {
		t.Fatalf("stitched trace holds %d records, want root + retrieve + rpc hops:\n%s",
			onTrace, flight.RenderTraces(recs))
	}
	rendered := flight.RenderTraces(recs)
	for _, want := range []string{"walk.row_fetch", "  " + spanRetrieve, spanRPCFindSuccessor} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, rendered)
		}
	}
}
