package dht

import (
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

func newRepublisherRing(t *testing.T, ttl time.Duration) (*Ring, *Republisher, *identity.Directory) {
	t.Helper()
	owner, err := identity.Generate(identity.NewDeterministicReader(77))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(owner.PublicKey()); err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(8, func(int) NodeConfig {
		return NodeConfig{SuccessorListLen: 3, Storage: NewStorage(ttl, dir)}
	})
	if err != nil {
		t.Fatal(err)
	}
	return ring, NewRepublisher(ring.Nodes[0], owner), dir
}

func TestRepublisherPublishesStagedRecords(t *testing.T) {
	ring, rep, _ := newRepublisherRing(t, 0)
	rep.SetEvaluation("file-a", 0.8)
	rep.SetEvaluation("file-b", 0.3)
	if rep.Len() != 2 {
		t.Fatalf("staged %d", rep.Len())
	}
	if err := rep.RepublishNow(time.Second); err != nil {
		t.Fatal(err)
	}
	for _, f := range []eval.FileID{"file-a", "file-b"} {
		recs, err := ring.Nodes[5].Retrieve(obs.SpanContext{}, HashKey(string(f)))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("%s: %d records", f, len(recs))
		}
	}
}

func TestRepublisherUpdatesEvaluation(t *testing.T) {
	ring, rep, _ := newRepublisherRing(t, 0)
	rep.SetEvaluation("f", 0.9)
	if err := rep.RepublishNow(time.Second); err != nil {
		t.Fatal(err)
	}
	rep.SetEvaluation("f", 0.2) // user revised their opinion
	if err := rep.RepublishNow(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	recs, err := ring.Nodes[3].Retrieve(obs.SpanContext{}, HashKey("f"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Info.Evaluation != 0.2 {
		t.Fatalf("update not applied: %+v", recs)
	}
}

func TestRepublisherWithdraw(t *testing.T) {
	_, rep, _ := newRepublisherRing(t, 0)
	rep.SetEvaluation("f", 0.9)
	rep.Withdraw("f")
	if rep.Len() != 0 {
		t.Fatal("withdrawn record still staged")
	}
	if err := rep.RepublishNow(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRepublisherRefreshesTTL(t *testing.T) {
	// Storage with a short TTL driven by a fake clock on every node.
	owner, err := identity.Generate(identity.NewDeterministicReader(78))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(owner.PublicKey()); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	stores := make([]*Storage, 0, 8)
	ring, err := NewRing(8, func(int) NodeConfig {
		st := NewStorage(time.Hour, dir)
		st.now = func() time.Time { return now }
		stores = append(stores, st)
		return NodeConfig{SuccessorListLen: 3, Storage: st}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewRepublisher(ring.Nodes[0], owner)
	rep.SetEvaluation("f", 0.7)
	if err := rep.RepublishNow(time.Second); err != nil {
		t.Fatal(err)
	}
	key := HashKey("f")

	// 50 minutes later: refresh. 50 more minutes: still alive only
	// because of the refresh.
	now = now.Add(50 * time.Minute)
	if err := rep.RepublishNow(51 * time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(50 * time.Minute)
	recs, err := ring.Nodes[4].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("refreshed record expired: %d records", len(recs))
	}

	// Without further refresh it expires.
	now = now.Add(2 * time.Hour)
	recs, err = ring.Nodes[4].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("stale record survived TTL: %+v", recs)
	}
}

func TestRepublisherBackgroundLoop(t *testing.T) {
	ring, rep, _ := newRepublisherRing(t, 0)
	rep.SetEvaluation("bg", 0.6)
	rep.Start(10 * time.Millisecond)
	defer rep.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		recs, err := ring.Nodes[6].Retrieve(obs.SpanContext{}, HashKey("bg"))
		if err == nil && len(recs) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background republisher never published")
}

func TestRepublisherInjectedClock(t *testing.T) {
	// The republisher stamps records via its injectable clock, so a round
	// can be driven — and its timestamps asserted — without sleeping.
	ring, rep, _ := newRepublisherRing(t, 0)
	epoch := time.Unix(9000, 0)
	now := epoch
	rep.now = func() time.Time { return now }

	rep.SetEvaluation("clocked", 0.4)
	now = now.Add(42 * time.Second)
	rep.tick(epoch)

	recs, err := ring.Nodes[2].Retrieve(obs.SpanContext{}, HashKey("clocked"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if got := recs[0].Info.Timestamp; got != 42*time.Second {
		t.Fatalf("timestamp %v, want 42s", got)
	}
}

func TestRepublisherStopIdempotent(t *testing.T) {
	_, rep, _ := newRepublisherRing(t, 0)
	rep.Stop() // never started: no-op
	rep.Start(time.Hour)
	rep.Stop()
	rep.Stop()
}
