package dht

import (
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

// startTCPRing launches n nodes on loopback TCP, joins them, and
// stabilises. It returns the nodes and a cleanup function.
func startTCPRing(t *testing.T, n int) []*Node {
	t.Helper()
	client := NewTCPClient()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		cfg := DefaultNodeConfig()
		cfg.Storage = NewStorage(0, nil)
		// Bind first so the node's address (and ring ID) is the real
		// listen address.
		srv, err := ServeTCP("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(srv.Addr(), client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.setHandler(node)
		t.Cleanup(func() { _ = srv.Close() })
		if i > 0 {
			if err := node.Join(nodes[0].Self().Addr); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, node)
	}
	for round := 0; round < 2*n+6; round++ {
		for _, node := range nodes {
			node.Stabilize()
		}
	}
	for _, node := range nodes {
		node.FixAllFingers()
	}
	return nodes
}

func TestTCPRingPublishRetrieve(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping TCP ring test in -short mode")
	}
	nodes := startTCPRing(t, 6)
	key := HashKey("tcp-file")
	if err := nodes[1].Publish([]StoredRecord{rec(key, "owner", 0.75, 1)}); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[4].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Info.Evaluation != 0.75 {
		t.Fatalf("retrieved %+v", got)
	}
}

func TestTCPRingLookupConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping TCP ring test in -short mode")
	}
	nodes := startTCPRing(t, 5)
	key := HashKey("consistency-check")
	want, err := nodes[0].Lookup(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:] {
		got, err := n.Lookup(obs.SpanContext{}, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.Addr != want.Addr {
			t.Fatalf("nodes disagree on owner of %v: %s vs %s", key, got.Addr, want.Addr)
		}
	}
}

func TestTCPSignedRecordVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping TCP ring test in -short mode")
	}
	owner, err := identity.Generate(identity.NewDeterministicReader(9))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(owner.PublicKey()); err != nil {
		t.Fatal(err)
	}
	client := NewTCPClient()
	cfg := NodeConfig{SuccessorListLen: 2, Storage: NewStorage(0, dir)}
	srv, err := ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(srv.Addr(), client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.setHandler(node)
	t.Cleanup(func() { _ = srv.Close() })

	info := eval.Info{FileID: "xyz", OwnerID: owner.ID(), Evaluation: 0.6, Timestamp: 3}
	if err := info.Sign(owner); err != nil {
		t.Fatal(err)
	}
	key := HashKey(string(info.FileID))
	// Store via real TCP round trip (signature survives JSON framing).
	if err := client.Store(obs.SpanContext{}, node.Self().Addr, []StoredRecord{{Key: key, Info: info}}, false); err != nil {
		t.Fatal(err)
	}
	got, err := client.Retrieve(obs.SpanContext{}, node.Self().Addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Info.Evaluation != 0.6 {
		t.Fatalf("retrieved %+v", got)
	}
	// A forged record must be dropped by the verifying store.
	forged := info
	forged.Timestamp = 99
	if err := client.Store(obs.SpanContext{}, node.Self().Addr, []StoredRecord{{Key: key, Info: forged}}, false); err != nil {
		t.Fatal(err)
	}
	got, err = client.Retrieve(obs.SpanContext{}, node.Self().Addr, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Info.Timestamp != 3 {
		t.Fatalf("forged record accepted over TCP: %+v", got)
	}
}

func TestTCPClientUnreachable(t *testing.T) {
	c := &TCPClient{DialTimeout: 200 * time.Millisecond, CallTimeout: 200 * time.Millisecond}
	if err := c.Ping(obs.SpanContext{}, "127.0.0.1:1"); err == nil {
		t.Fatal("ping to closed port succeeded")
	}
}

func TestTCPServerRejectsUnknownMethod(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	net := NewMemNet()
	node, err := NewNode(srv.Addr(), net, DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.setHandler(node)
	t.Cleanup(func() { _ = srv.Close() })
	c := NewTCPClient()
	if _, err := c.call(obs.SpanContext{}, spanServe, srv.Addr(), wireRequest{Method: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
