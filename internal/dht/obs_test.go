package dht

import (
	"strings"
	"testing"
	"time"

	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

func fakeObsClock() func() time.Time {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(50 * time.Microsecond)
		return now
	}
}

func TestRetryClientInstrument(t *testing.T) {
	inner := &flakyClient{failures: 2, err: ErrNodeUnreachable}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}, 1)
	rc.SetSleep(nil)
	reg := metrics.NewRegistry()
	rc.Instrument(reg, fakeObsClock())

	if err := rc.Store(obs.SpanContext{}, "a", nil, false); err != nil {
		t.Fatalf("store should succeed on 3rd attempt: %v", err)
	}
	if _, err := rc.Retrieve(obs.SpanContext{}, "a", 1); err != nil {
		t.Fatal(err)
	}

	// Counters are registry-backed now: the client view and the exported
	// series are the same instrument.
	if got := reg.Counter("dht_rpc_attempts_total").Load(); got != rc.Metrics.Attempts.Load() {
		t.Errorf("registry attempts %d != client attempts %d", got, rc.Metrics.Attempts.Load())
	}
	if got := reg.Counter("dht_rpc_retries_total").Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}

	// Per-op latency: one span per logical call, covering all attempts.
	if got := reg.Histogram("dht_rpc_seconds", metrics.DurationBuckets, "op", "store").Count(); got != 1 {
		t.Errorf("store spans = %d, want 1", got)
	}
	if got := reg.Histogram("dht_rpc_seconds", metrics.DurationBuckets, "op", "retrieve").Count(); got != 1 {
		t.Errorf("retrieve spans = %d, want 1", got)
	}
	if sum := reg.Histogram("dht_rpc_seconds", metrics.DurationBuckets, "op", "store").Sum(); sum <= 0 {
		t.Errorf("store latency sum = %v, want > 0 with the fake clock", sum)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `dht_rpc_seconds_count{op="store"} 1`) {
		t.Errorf("exposition missing store latency series:\n%s", b.String())
	}
}

func TestNodeInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	r := buildRing(t, 5)
	for _, n := range r.Nodes {
		n.Instrument(reg)
	}
	key := HashKey("obs-file")
	if err := r.Nodes[0].Publish([]StoredRecord{rec(key, "o", 0.9, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Nodes[4].Retrieve(obs.SpanContext{}, key); err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes {
		n.Stabilize()
	}
	if got := reg.Counter("dht_stabilize_rounds_total").Load(); got != 5 {
		t.Errorf("stabilize rounds = %d, want 5", got)
	}
	wd := reg.Histogram("dht_replica_walk_depth", []float64{1, 2, 3, 4, 6, 8, 12, 16})
	if wd.Count() == 0 {
		t.Error("replica walk depth never observed")
	}
	if q := wd.Quantile(0.5); q > 16 {
		t.Errorf("median walk depth %v out of range", q)
	}
}
