package dht

import (
	"sort"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

// ringSuccessorOracle computes, by brute force, the node that should own
// key among the given refs.
func ringSuccessorOracle(refs []NodeRef, key ID) NodeRef {
	sorted := make([]NodeRef, len(refs))
	copy(sorted, refs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, r := range sorted {
		if r.ID >= key {
			return r
		}
	}
	return sorted[0] // wrap
}

func buildRing(t *testing.T, n int) *Ring {
	t.Helper()
	r, err := NewRing(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewNodeValidation(t *testing.T) {
	net := NewMemNet()
	if _, err := NewNode("", net, DefaultNodeConfig()); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewNode("a", nil, DefaultNodeConfig()); err == nil {
		t.Fatal("nil client accepted")
	}
	if _, err := NewNode("a", net, NodeConfig{SuccessorListLen: 0, Storage: NewStorage(0, nil)}); err == nil {
		t.Fatal("bad successor list length accepted")
	}
	if _, err := NewNode("a", net, NodeConfig{SuccessorListLen: 2}); err == nil {
		t.Fatal("nil storage accepted")
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	net := NewMemNet()
	n, err := NewNode("solo", net, DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.Register(n.Self().Addr, n)
	for _, key := range []ID{0, 1, 1 << 40, ^ID(0)} {
		ref, err := n.Lookup(obs.SpanContext{}, key)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Addr != n.Self().Addr {
			t.Fatalf("single node does not own key %v", key)
		}
	}
}

func TestRingLookupMatchesOracle(t *testing.T) {
	r := buildRing(t, 24)
	refs := make([]NodeRef, len(r.Nodes))
	for i, n := range r.Nodes {
		refs[i] = n.Self()
	}
	keys := []ID{0, 1, 1 << 20, 1 << 40, 1 << 60, ^ID(0)}
	for i := 0; i < 64; i++ {
		keys = append(keys, HashKey(ID(uint64(i*7919)).String()))
	}
	for _, key := range keys {
		want := ringSuccessorOracle(refs, key)
		for _, start := range []*Node{r.Nodes[0], r.Nodes[7], r.Nodes[23]} {
			got, err := start.Lookup(obs.SpanContext{}, key)
			if err != nil {
				t.Fatal(err)
			}
			if got.Addr != want.Addr {
				t.Fatalf("Lookup(%v) from %s = %s, oracle says %s",
					key, start.Self().Addr, got.Addr, want.Addr)
			}
		}
	}
}

func TestRingSuccessorsFormCycle(t *testing.T) {
	r := buildRing(t, 12)
	// Following successor pointers from any node must visit all 12 nodes
	// and return to the start.
	start := r.Nodes[0].Self()
	seen := map[string]struct{}{start.Addr: {}}
	cur := r.Nodes[0].Successor()
	for steps := 0; steps < 20 && cur.Addr != start.Addr; steps++ {
		seen[cur.Addr] = struct{}{}
		var node *Node
		for _, n := range r.Nodes {
			if n.Self().Addr == cur.Addr {
				node = n
				break
			}
		}
		if node == nil {
			t.Fatalf("successor %s is not a ring member", cur.Addr)
		}
		cur = node.Successor()
	}
	if cur.Addr != start.Addr {
		t.Fatal("successor pointers do not close the cycle")
	}
	if len(seen) != 12 {
		t.Fatalf("cycle visited %d of 12 nodes", len(seen))
	}
}

func TestPublishRetrieve(t *testing.T) {
	r := buildRing(t, 16)
	key := HashKey("some-file-hash")
	recs := []StoredRecord{rec(key, "owner-1", 0.8, 1), rec(key, "owner-2", 0.3, 1)}
	if err := r.Nodes[3].Publish(recs); err != nil {
		t.Fatal(err)
	}
	// Any node can retrieve.
	for _, n := range []*Node{r.Nodes[0], r.Nodes[9], r.Nodes[15]} {
		got, err := n.Retrieve(obs.SpanContext{}, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("retrieved %d records from %s", len(got), n.Self().Addr)
		}
	}
}

func TestPublishReplicates(t *testing.T) {
	r := buildRing(t, 16)
	key := HashKey("replicated-file")
	if err := r.Nodes[0].Publish([]StoredRecord{rec(key, "o", 0.9, 1)}); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, n := range r.Nodes {
		if len(n.cfg.Storage.Get(key)) > 0 {
			holders++
		}
	}
	// Root + up to r-1 successors (default r = 4).
	if holders < 2 {
		t.Fatalf("record held by %d nodes, want replication", holders)
	}
}

func TestRetrieveSurvivesRootFailure(t *testing.T) {
	r := buildRing(t, 16)
	key := HashKey("fault-tolerant-file")
	if err := r.Nodes[0].Publish([]StoredRecord{rec(key, "o", 0.9, 1)}); err != nil {
		t.Fatal(err)
	}
	root, err := r.Nodes[0].Lookup(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if root.Addr == r.Nodes[0].Self().Addr {
		t.Skip("publisher is the root; pick a different key layout")
	}
	r.Net.Fail(root.Addr)
	// Survivors stabilise; the first replica becomes the key's new root.
	for round := 0; round < 30; round++ {
		for _, n := range r.Nodes {
			if n.Self().Addr != root.Addr {
				n.Stabilize()
			}
		}
	}
	for _, n := range r.Nodes {
		if n.Self().Addr != root.Addr {
			n.FixAllFingers()
		}
	}
	got, err := r.Nodes[0].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatalf("retrieve after root failure: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("retrieved %d records after root failure", len(got))
	}
}

func TestRingHealsAfterNodeFailure(t *testing.T) {
	r := buildRing(t, 12)
	// Kill three nodes, then stabilise.
	for _, i := range []int{2, 5, 8} {
		r.Net.Fail(r.Nodes[i].Self().Addr)
	}
	alive := make([]*Node, 0, 9)
	var aliveRefs []NodeRef
	for i, n := range r.Nodes {
		if i == 2 || i == 5 || i == 8 {
			continue
		}
		alive = append(alive, n)
		aliveRefs = append(aliveRefs, n.Self())
	}
	for round := 0; round < 30; round++ {
		for _, n := range alive {
			n.Stabilize()
		}
	}
	for _, n := range alive {
		n.FixAllFingers()
	}
	// Lookups from every survivor must agree with the oracle over
	// survivors.
	for _, key := range []ID{1 << 10, 1 << 30, 1 << 50, ^ID(2)} {
		want := ringSuccessorOracle(aliveRefs, key)
		got, err := alive[0].Lookup(obs.SpanContext{}, key)
		if err != nil {
			t.Fatal(err)
		}
		if got.Addr != want.Addr {
			t.Fatalf("post-failure Lookup(%v) = %s, want %s", key, got.Addr, want.Addr)
		}
	}
}

func TestJoinAfterStart(t *testing.T) {
	r := buildRing(t, 8)
	// A 9th node joins late.
	cfg := DefaultNodeConfig()
	cfg.Storage = NewStorage(0, nil)
	late, err := NewNode("mem://late-joiner", r.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Net.Register(late.Self().Addr, late)
	if err := late.Join(r.Nodes[0].Self().Addr); err != nil {
		t.Fatal(err)
	}
	r.Nodes = append(r.Nodes, late)
	r.Converge(30)

	refs := make([]NodeRef, len(r.Nodes))
	for i, n := range r.Nodes {
		refs[i] = n.Self()
	}
	key := late.Self().ID // the joiner must own its own ID
	want := ringSuccessorOracle(refs, key)
	got, err := r.Nodes[0].Lookup(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != want.Addr {
		t.Fatalf("lookup of joiner's ID = %s, want %s", got.Addr, want.Addr)
	}
}

func TestSignedEndToEndPublish(t *testing.T) {
	// Full §4.1 flow: signed EvaluationInfo published into a verifying
	// ring; forged records are rejected by replicas.
	owner, err := identity.Generate(identity.NewDeterministicReader(42))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(owner.PublicKey()); err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(8, func(int) NodeConfig {
		return NodeConfig{SuccessorListLen: 3, Storage: NewStorage(0, dir)}
	})
	if err != nil {
		t.Fatal(err)
	}
	info := eval.Info{FileID: "abc", OwnerID: owner.ID(), Evaluation: 0.8, Timestamp: 5}
	if err := info.Sign(owner); err != nil {
		t.Fatal(err)
	}
	key := HashKey(string(info.FileID))
	if err := ring.Nodes[0].Publish([]StoredRecord{{Key: key, Info: info}}); err != nil {
		t.Fatal(err)
	}
	got, err := ring.Nodes[5].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Info.Evaluation != 0.8 {
		t.Fatalf("signed record not retrievable: %+v", got)
	}

	forged := info
	forged.Evaluation = 0.1
	if err := ring.Nodes[0].Publish([]StoredRecord{{Key: key, Info: forged}}); err != nil {
		t.Fatal(err)
	}
	got, err = ring.Nodes[5].Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Info.Evaluation != 0.8 {
		t.Fatalf("forged record accepted: %+v", got)
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := buildRing(t, 64)
	r.Net.ResetMessages()
	for _, n := range r.Nodes {
		n.mu.Lock()
		n.lookupHops = 0
		n.mu.Unlock()
	}
	const lookups = 200
	for i := 0; i < lookups; i++ {
		if _, err := r.Nodes[i%64].Lookup(obs.SpanContext{}, HashKey(time.Duration(i).String())); err != nil {
			t.Fatal(err)
		}
	}
	var totalHops uint64
	for _, n := range r.Nodes {
		totalHops += n.LookupHops()
	}
	meanHops := float64(totalHops) / lookups
	// log2(64) = 6; allow generous slack but reject linear scans.
	if meanHops > 12 {
		t.Fatalf("mean lookup hops %v, want O(log n) ≈ 6", meanHops)
	}
}

func TestLeaveHandsOffRecords(t *testing.T) {
	r := buildRing(t, 10)
	key := HashKey("handoff-file")
	if err := r.Nodes[0].Publish([]StoredRecord{rec(key, "o", 0.9, 1)}); err != nil {
		t.Fatal(err)
	}
	root, err := r.Nodes[0].Lookup(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	var leaving *Node
	for _, n := range r.Nodes {
		if n.Self().Addr == root.Addr {
			leaving = n
			break
		}
	}
	if leaving == nil {
		t.Fatal("root not in ring")
	}
	if err := leaving.Leave(); err != nil {
		t.Fatal(err)
	}
	r.Net.Fail(leaving.Self().Addr)
	// Survivors stabilise quickly because Leave pre-notified.
	for round := 0; round < 30; round++ {
		for _, n := range r.Nodes {
			if n.Self().Addr != leaving.Self().Addr {
				n.Stabilize()
			}
		}
	}
	for _, n := range r.Nodes {
		if n.Self().Addr != leaving.Self().Addr {
			n.FixAllFingers()
		}
	}
	start := r.Nodes[0]
	if start.Self().Addr == leaving.Self().Addr {
		start = r.Nodes[1]
	}
	got, err := start.Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("record lost on graceful leave: %d records", len(got))
	}
}

func TestLeaveLastNodeNoop(t *testing.T) {
	net := NewMemNet()
	n, err := NewNode("solo", net, DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	net.Register(n.Self().Addr, n)
	if err := n.Leave(); err != nil {
		t.Fatal(err)
	}
}

// TestRingSurvivesMessageLoss: with 10% of RPCs dropped, stabilisation
// still converges and publish/retrieve still succeeds (the successor-list
// design tolerates transient failures).
func TestRingSurvivesMessageLoss(t *testing.T) {
	r := buildRing(t, 12)
	r.Net.SetLossRate(0.1)
	// Extra stabilisation under loss.
	r.Converge(40)
	key := HashKey("lossy-file")
	var publishErr error
	for attempt := 0; attempt < 5; attempt++ {
		if publishErr = r.Nodes[2].Publish([]StoredRecord{rec(key, "o", 0.9, 1)}); publishErr == nil {
			break
		}
	}
	if publishErr != nil {
		t.Fatalf("publish never succeeded under 10%% loss: %v", publishErr)
	}
	got := 0
	for attempt := 0; attempt < 10 && got == 0; attempt++ {
		if recs, err := r.Nodes[9].Retrieve(obs.SpanContext{}, key); err == nil {
			got = len(recs)
		}
	}
	if got == 0 {
		t.Fatal("record unreachable under 10% message loss")
	}
	r.Net.SetLossRate(0)
}

func TestMaintainerIntegratesJoiner(t *testing.T) {
	// Two nodes, no manual Stabilize calls: the maintainers must close
	// the ring on their own.
	net := NewMemNet()
	mk := func(name string) *Node {
		cfg := DefaultNodeConfig()
		cfg.Storage = NewStorage(0, nil)
		n, err := NewNode(name, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.Register(n.Self().Addr, n)
		return n
	}
	a := mk("mem://maint-a")
	b := mk("mem://maint-b")
	if err := b.Join(a.Self().Addr); err != nil {
		t.Fatal(err)
	}
	ma, err := Maintain(a, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Stop()
	mb, err := Maintain(b, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if a.Successor().Addr == b.Self().Addr && b.Successor().Addr == a.Self().Addr {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("maintainers never closed the ring: a.succ=%s b.succ=%s",
		a.Successor().Addr, b.Successor().Addr)
}

func TestMaintainValidation(t *testing.T) {
	if _, err := Maintain(nil, time.Second); err == nil {
		t.Fatal("nil node accepted")
	}
	net := NewMemNet()
	n, err := NewNode("mem://maint-v", net, DefaultNodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Maintain(n, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}
