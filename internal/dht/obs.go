package dht

import (
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// rpcObs is the RetryClient's latency surface: one histogram per RPC op
// (spanning all attempts and backoff of one logical call), plus the
// retry counters that Instrument rebinds onto the shared registry.
type rpcObs struct {
	tracer   *obs.Tracer
	find     *metrics.Histogram
	succ     *metrics.Histogram
	pred     *metrics.Histogram
	notify   *metrics.Histogram
	ping     *metrics.Histogram
	store    *metrics.Histogram
	retrieve *metrics.Histogram
}

// hist maps an op name from do() to its histogram.
func (o *rpcObs) hist(name string) *metrics.Histogram {
	switch name {
	case "find_successor":
		return o.find
	case "successors":
		return o.succ
	case "predecessor":
		return o.pred
	case "notify":
		return o.notify
	case "ping":
		return o.ping
	case "store":
		return o.store
	case "retrieve":
		return o.retrieve
	}
	return nil
}

func (o *rpcObs) span(name string) obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.hist(name))
}

// Instrument rebinds the client's retry counters onto reg — as
// dht_rpc_attempts_total, dht_rpc_retries_total, dht_rpc_exhausted_total
// with the given extra label pairs — and starts recording per-op latency
// into dht_rpc_seconds{op=...}, timed by clock. Call before the client
// is shared across goroutines; earlier counts (on the construction-time
// private registry) are not carried over.
func (c *RetryClient) Instrument(reg *metrics.Registry, clock obs.Clock, labels ...string) {
	if reg == nil {
		return
	}
	c.Metrics = RetryMetrics{
		Attempts:  reg.Counter("dht_rpc_attempts_total", labels...),
		Retries:   reg.Counter("dht_rpc_retries_total", labels...),
		Exhausted: reg.Counter("dht_rpc_exhausted_total", labels...),
	}
	h := func(op string) *metrics.Histogram {
		return reg.Histogram("dht_rpc_seconds", metrics.DurationBuckets, append([]string{"op", op}, labels...)...)
	}
	c.obs = &rpcObs{
		tracer:   obs.NewTracer(clock),
		find:     h("find_successor"),
		succ:     h("successors"),
		pred:     h("predecessor"),
		notify:   h("notify"),
		ping:     h("ping"),
		store:    h("store"),
		retrieve: h("retrieve"),
	}
}

// nodeObs is the ring-maintenance surface of a Node: stabilisation
// rounds, forwarded lookup hops, and how many nodes a Retrieve had to
// walk (root plus replicas) before answering.
type nodeObs struct {
	stabilizations *metrics.Counter   // dht_stabilize_rounds_total
	lookupHops     *metrics.Counter   // dht_lookup_hops_total
	walkDepth      *metrics.Histogram // dht_replica_walk_depth
}

// Instrument publishes the node's ring metrics into reg. Call before the
// node starts serving.
func (n *Node) Instrument(reg *metrics.Registry, labels ...string) {
	if reg == nil {
		return
	}
	n.obs = &nodeObs{
		stabilizations: reg.Counter("dht_stabilize_rounds_total", labels...),
		lookupHops:     reg.Counter("dht_lookup_hops_total", labels...),
		walkDepth:      reg.Histogram("dht_replica_walk_depth", []float64{1, 2, 3, 4, 6, 8, 12, 16}, labels...),
	}
}
