package dht

import (
	"errors"
	"testing"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/obs"
)

// flakyClient fails the first failures calls of each op, then succeeds.
type flakyClient struct {
	failures int
	calls    int
	err      error
}

func (f *flakyClient) attempt() error {
	f.calls++
	if f.calls <= f.failures {
		return f.err
	}
	return nil
}

func (f *flakyClient) FindSuccessor(_ obs.SpanContext, addr string, id ID) (NodeRef, error) {
	return NodeRef{Addr: addr}, f.attempt()
}
func (f *flakyClient) Successors(_ obs.SpanContext, addr string) ([]NodeRef, error) {
	return nil, f.attempt()
}
func (f *flakyClient) Predecessor(_ obs.SpanContext, addr string) (NodeRef, bool, error) {
	return NodeRef{}, false, f.attempt()
}
func (f *flakyClient) Notify(_ obs.SpanContext, addr string, self NodeRef) error { return f.attempt() }
func (f *flakyClient) Ping(_ obs.SpanContext, addr string) error                 { return f.attempt() }
func (f *flakyClient) Store(_ obs.SpanContext, addr string, recs []StoredRecord, replicate bool) error {
	return f.attempt()
}
func (f *flakyClient) Retrieve(_ obs.SpanContext, addr string, key ID) ([]StoredRecord, error) {
	return nil, f.attempt()
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	inner := &flakyClient{failures: 2, err: ErrNodeUnreachable}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}, 1)
	rc.SetSleep(nil)
	if err := rc.Ping(obs.SpanContext{}, "a"); err == nil {
		t.Fatalf("ping is a liveness probe and must not retry")
	}
	inner.calls = 0
	if err := rc.Notify(obs.SpanContext{}, "a", NodeRef{}); err != nil {
		t.Fatalf("notify should succeed on 3rd attempt, got %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3 (two failures + success)", inner.calls)
	}
	snap := rc.Metrics.Snapshot()
	if snap["retries"] != 2 {
		t.Fatalf("retries = %d, want 2", snap["retries"])
	}
	if snap["exhausted"] != 0 {
		t.Fatalf("exhausted = %d, want 0", snap["exhausted"])
	}
}

func TestRetryExhaustionKeepsCause(t *testing.T) {
	inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 1)
	rc.SetSleep(nil)
	err := rc.Store(obs.SpanContext{}, "a", nil, false)
	if err == nil {
		t.Fatalf("store should exhaust retries")
	}
	if !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("exhausted error %v should still wrap ErrNodeUnreachable", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want MaxAttempts=3", inner.calls)
	}
	if got := rc.Metrics.Exhausted.Load(); got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
}

func TestRetryTerminalErrorPassesThrough(t *testing.T) {
	terminal := fault.Terminal(errors.New("protocol violation"))
	inner := &flakyClient{failures: 100, err: terminal}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, 1)
	rc.SetSleep(nil)
	if _, err := rc.Retrieve(obs.SpanContext{}, "a", 1); !errors.Is(err, terminal) {
		t.Fatalf("error = %v, want the terminal error itself", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (terminal errors are not retried)", inner.calls)
	}
}

func TestRetryBudgetExhaustionClassifiesAsTimeout(t *testing.T) {
	inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
	rc := NewRetryClient(inner, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   40 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		OpBudget:    100 * time.Millisecond,
	}, 1)
	var slept time.Duration
	rc.SetSleep(func(d time.Duration) { slept += d })
	err := rc.Notify(obs.SpanContext{}, "a", NodeRef{})
	if !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("error = %v, want fault.ErrTimeout classification", err)
	}
	if slept > 100*time.Millisecond {
		t.Fatalf("slept %v, beyond the 100ms budget", slept)
	}
	// 40ms steps: two fit in the budget, the third would exceed it.
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3", inner.calls)
	}
}

// Regression for the zero/negative-budget edge: a negative OpBudget must
// fail fast with fault.Terminal before any RPC is issued (it can never be
// satisfied, and retrying a misconfiguration forever is the failure mode
// this pins down), while zero keeps its documented "no budget" meaning
// and a positive-but-unusable budget still terminates without looping.
func TestRetryZeroAndNegativeBudgetEdges(t *testing.T) {
	t.Run("negative fails fast and terminal", func(t *testing.T) {
		inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
		rc := NewRetryClient(inner, RetryPolicy{
			MaxAttempts: 10,
			BaseDelay:   time.Millisecond,
			OpBudget:    -time.Nanosecond,
		}, 1)
		var slept int
		rc.SetSleep(func(time.Duration) { slept++ })
		err := rc.Notify(obs.SpanContext{}, "a", NodeRef{})
		if err == nil {
			t.Fatalf("negative budget must fail")
		}
		if !fault.IsTerminal(err) {
			t.Fatalf("error = %v, want fault.Terminal (misconfiguration, not retryable)", err)
		}
		if inner.calls != 0 {
			t.Fatalf("inner calls = %d, want 0 (fail before the first attempt)", inner.calls)
		}
		if slept != 0 {
			t.Fatalf("slept %d times, want 0", slept)
		}
	})
	t.Run("zero means no budget", func(t *testing.T) {
		inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
		rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 1)
		rc.SetSleep(nil)
		err := rc.Notify(obs.SpanContext{}, "a", NodeRef{})
		if err == nil {
			t.Fatalf("want exhaustion after MaxAttempts")
		}
		if fault.IsTerminal(err) {
			t.Fatalf("error = %v; zero budget is the documented default, not a misconfiguration", err)
		}
		if inner.calls != 3 {
			t.Fatalf("inner calls = %d, want MaxAttempts=3 (loop bounded by attempts alone)", inner.calls)
		}
	})
	t.Run("unusably small budget terminates", func(t *testing.T) {
		inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
		rc := NewRetryClient(inner, RetryPolicy{
			MaxAttempts: 1000,
			BaseDelay:   time.Millisecond,
			MaxDelay:    time.Millisecond,
			OpBudget:    time.Nanosecond,
		}, 1)
		var slept int
		rc.SetSleep(func(time.Duration) { slept++ })
		err := rc.Notify(obs.SpanContext{}, "a", NodeRef{})
		if !errors.Is(err, fault.ErrTimeout) {
			t.Fatalf("error = %v, want fault.ErrTimeout classification", err)
		}
		if inner.calls != 1 {
			t.Fatalf("inner calls = %d, want 1 (first retry already exceeds the budget)", inner.calls)
		}
		if slept != 0 {
			t.Fatalf("slept %d times, want 0 (no delay fits a 1ns budget)", slept)
		}
	})
}

func TestRetryBackoffScheduleDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		inner := &flakyClient{failures: 100, err: ErrNodeUnreachable}
		rc := NewRetryClient(inner, RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    80 * time.Millisecond,
			JitterFrac:  0.5,
		}, seed)
		var delays []time.Duration
		rc.SetSleep(func(d time.Duration) { delays = append(delays, d) })
		_ = rc.Notify(obs.SpanContext{}, "a", NodeRef{})
		return delays
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 5 {
		t.Fatalf("delays = %v, want 5 backoffs for 6 attempts", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different backoff schedules: %v vs %v", a, b)
		}
	}
	for i, d := range a {
		// Undithered doubling: 10, 20, 40, 80, 80 (capped); jitter may
		// shave up to 50% off but never adds.
		max := 10 * time.Millisecond << uint(i)
		if max > 80*time.Millisecond {
			max = 80 * time.Millisecond
		}
		if d > max || d < max/2 {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, max/2, max)
		}
	}
	if c := schedule(43); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatalf("different seeds produced the same jitter draws: %v", c)
	}
}

func TestRetryClientPassesResultsThrough(t *testing.T) {
	inner := &flakyClient{failures: 1, err: ErrNodeUnreachable}
	rc := NewRetryClient(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, 1)
	rc.SetSleep(nil)
	ref, err := rc.FindSuccessor(obs.SpanContext{}, "addr-x", 7)
	if err != nil {
		t.Fatalf("find successor: %v", err)
	}
	if ref.Addr != "addr-x" {
		t.Fatalf("ref.Addr = %q, want the inner result", ref.Addr)
	}
}
