package dht

import (
	"errors"
	"mdrep/internal/fault"
	"time"
)

// Maintainer drives a node's periodic upkeep in the background:
// stabilisation, incremental finger repair, and storage sweeps. It is the
// loop a deployed node runs for its lifetime (cmd/mdrep-dht uses it).
type Maintainer struct {
	node     *Node
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
}

// Maintain starts the upkeep loop at the given interval and returns its
// handle; call Stop to halt it. One finger is refreshed per tick (full
// rebuilds are only needed at cold start), and storage is swept once per
// full finger rotation.
func Maintain(node *Node, interval time.Duration) (*Maintainer, error) {
	if node == nil {
		return nil, fault.Terminal(errors.New("dht: nil node"))
	}
	if interval <= 0 {
		return nil, fault.Terminal(errors.New("dht: non-positive maintenance interval"))
	}
	m := &Maintainer{
		node:     node,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go m.loop()
	return m, nil
}

func (m *Maintainer) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	finger := 0
	for {
		select {
		case <-ticker.C:
			m.node.Stabilize()
			m.node.FixFinger(finger % Bits)
			finger++
			if finger%Bits == 0 {
				m.node.cfg.Storage.Sweep()
			}
		case <-m.stop:
			return
		}
	}
}

// Stop halts the loop and waits for it to exit.
func (m *Maintainer) Stop() {
	close(m.stop)
	<-m.done
}
