package identity

import (
	"bytes"
	"testing"
)

func TestGenerateAndSignVerify(t *testing.T) {
	id, err := Generate(NewDeterministicReader(1))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("evaluation of file 42: 0.9")
	sig := id.Sign(msg)
	if err := Verify(id.ID(), id.PublicKey(), msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	id, err := Generate(NewDeterministicReader(2))
	if err != nil {
		t.Fatal(err)
	}
	sig := id.Sign([]byte("eval 0.9"))
	if err := Verify(id.ID(), id.PublicKey(), []byte("eval 0.1"), sig); err != ErrBadSignature {
		t.Fatalf("tampered message: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsWrongID(t *testing.T) {
	a, err := Generate(NewDeterministicReader(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(NewDeterministicReader(4))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig := a.Sign(msg)
	// Valid signature from a, but claimed under b's ID.
	if err := Verify(b.ID(), a.PublicKey(), msg, sig); err != ErrIDMismatch {
		t.Fatalf("ID mismatch: err = %v, want ErrIDMismatch", err)
	}
}

func TestDeterministicIdentities(t *testing.T) {
	a, err := Generate(NewDeterministicReader(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(NewDeterministicReader(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Fatal("same seed produced different identities")
	}
	c, err := Generate(NewDeterministicReader(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == c.ID() {
		t.Fatal("different seeds produced identical identities")
	}
}

func TestGenerateWithNilRandUsesCryptoRand(t *testing.T) {
	id, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.ID()) != 2*IDLen {
		t.Fatalf("ID length %d, want %d", len(id.ID()), 2*IDLen)
	}
}

func TestDirectoryRegisterLookup(t *testing.T) {
	d := NewDirectory()
	id, err := Generate(NewDeterministicReader(9))
	if err != nil {
		t.Fatal(err)
	}
	pid, err := d.Register(id.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if pid != id.ID() {
		t.Fatalf("Register returned %s, want %s", pid, id.ID())
	}
	pub, ok := d.Lookup(pid)
	if !ok || !bytes.Equal(pub, id.PublicKey()) {
		t.Fatal("Lookup did not return registered key")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDirectoryRegisterIdempotent(t *testing.T) {
	d := NewDirectory()
	id, err := Generate(NewDeterministicReader(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register(id.PublicKey()); err != nil {
		t.Fatalf("re-registering same key failed: %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after double register", d.Len())
	}
}

func TestDirectoryVerifyWith(t *testing.T) {
	d := NewDirectory()
	id, err := Generate(NewDeterministicReader(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello")
	sig := id.Sign(msg)
	if err := d.VerifyWith(id.ID(), msg, sig); err != nil {
		t.Fatalf("VerifyWith rejected valid record: %v", err)
	}
	if err := d.VerifyWith("deadbeef", msg, sig); err == nil {
		t.Fatal("VerifyWith accepted unknown peer")
	}
}

func TestDirectoryKeyCopied(t *testing.T) {
	d := NewDirectory()
	id, err := Generate(NewDeterministicReader(12))
	if err != nil {
		t.Fatal(err)
	}
	pub := id.PublicKey()
	mutable := make([]byte, len(pub))
	copy(mutable, pub)
	pid, err := d.Register(mutable)
	if err != nil {
		t.Fatal(err)
	}
	mutable[0] ^= 0xff // caller mutates its slice after registration
	stored, _ := d.Lookup(pid)
	if !bytes.Equal(stored, pub) {
		t.Fatal("Directory stored a reference to the caller's slice")
	}
}

func TestDeterministicReaderStreamsDiffer(t *testing.T) {
	a := NewDeterministicReader(1)
	b := NewDeterministicReader(2)
	bufA := make([]byte, 32)
	bufB := make([]byte, 32)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA, bufB) {
		t.Fatal("different seeds produced identical keystreams")
	}
}
