// Package identity provides the cryptographic peer identities of §4.2:
// ed25519 key pairs, stable peer IDs derived from public keys, and
// detached signatures over canonical byte encodings. Signed evaluation
// records (EvaluationInfo) prevent peers from forging or distorting other
// peers' evaluations in the DHT (attack 1 in §4.2).
package identity

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// PeerID is a stable identifier derived from a peer's public key
// (hex-encoded truncated SHA-256). Deriving the ID from the key binds
// identity to key possession: presenting records under someone else's ID
// requires forging their signature.
type PeerID string

// IDLen is the number of digest bytes kept in a PeerID (hex doubles it).
const IDLen = 16

// Identity is a peer's key pair plus derived ID.
type Identity struct {
	id   PeerID
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// Generate creates a new identity reading randomness from rand; pass nil
// to use crypto/rand. Simulation code passes a deterministic reader so
// experiment runs are reproducible.
func Generate(rand io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key: %w", err)
	}
	return &Identity{id: IDFromPublicKey(pub), pub: pub, priv: priv}, nil
}

// IDFromPublicKey derives the PeerID for a public key.
func IDFromPublicKey(pub ed25519.PublicKey) PeerID {
	sum := sha256.Sum256(pub)
	return PeerID(hex.EncodeToString(sum[:IDLen]))
}

// ID returns the peer's identifier.
func (id *Identity) ID() PeerID { return id.id }

// PublicKey returns the peer's public key.
func (id *Identity) PublicKey() ed25519.PublicKey { return id.pub }

// Sign returns a detached signature over msg.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Errors returned by the verification helpers.
var (
	ErrBadSignature = errors.New("identity: signature verification failed")
	ErrIDMismatch   = errors.New("identity: peer ID does not match public key")
)

// Verify checks sig over msg against pub and checks that claimed is the ID
// derived from pub. Both checks are required: a valid signature under the
// wrong key would let an attacker re-home records onto a victim's ID.
func Verify(claimed PeerID, pub ed25519.PublicKey, msg, sig []byte) error {
	if IDFromPublicKey(pub) != claimed {
		return ErrIDMismatch
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Directory maps peer IDs to public keys. In a deployed system this is a
// PKI or a self-certifying namespace; in the reproduction it is populated
// when peers join.
type Directory struct {
	keys map[PeerID]ed25519.PublicKey
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{keys: make(map[PeerID]ed25519.PublicKey)}
}

// Register stores a peer's public key. Registering a key that conflicts
// with an existing binding is rejected — an identity cannot be replaced.
func (d *Directory) Register(pub ed25519.PublicKey) (PeerID, error) {
	id := IDFromPublicKey(pub)
	if existing, ok := d.keys[id]; ok {
		if !existing.Equal(pub) {
			return "", fmt.Errorf("identity: ID collision for %s", id)
		}
		return id, nil
	}
	key := make(ed25519.PublicKey, len(pub))
	copy(key, pub)
	d.keys[id] = key
	return id, nil
}

// Lookup returns the public key bound to id.
func (d *Directory) Lookup(id PeerID) (ed25519.PublicKey, bool) {
	pub, ok := d.keys[id]
	return pub, ok
}

// Len returns the number of registered identities.
func (d *Directory) Len() int { return len(d.keys) }

// VerifyWith resolves the claimed signer in the directory and verifies the
// signature.
func (d *Directory) VerifyWith(claimed PeerID, msg, sig []byte) error {
	pub, ok := d.Lookup(claimed)
	if !ok {
		return fmt.Errorf("identity: unknown peer %s", claimed)
	}
	return Verify(claimed, pub, msg, sig)
}

// DeterministicReader is an io.Reader over a seeded keystream, used to
// generate reproducible identities in simulations. It is NOT
// cryptographically secure and must never be used outside tests and
// simulation.
type DeterministicReader struct {
	state uint64
}

// NewDeterministicReader returns a reader seeded with seed.
func NewDeterministicReader(seed uint64) *DeterministicReader {
	return &DeterministicReader{state: seed + 0x9e3779b97f4a7c15}
}

// Read fills p with pseudo-random bytes; it never fails.
func (r *DeterministicReader) Read(p []byte) (int, error) {
	for i := range p {
		r.state += 0x9e3779b97f4a7c15
		z := r.state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p[i] = byte(z ^ (z >> 31))
	}
	return len(p), nil
}

var _ io.Reader = (*DeterministicReader)(nil)
