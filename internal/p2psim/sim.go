package p2psim

import (
	"fmt"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/dist"
	"mdrep/internal/eval"
	"mdrep/internal/incentive"
	"mdrep/internal/metrics"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
)

// version is one concrete file: a (title, real|fake) instance.
type version struct {
	id       eval.FileID
	title    int
	fake     bool
	size     int64
	owners   []int
	ownerSet map[int]struct{}
	// ownerSince records when each owner first held the version; the LIP
	// baseline ranks by the summed holding durations (lifetime ×
	// popularity mass).
	ownerSince map[int]time.Duration
	// evaluators are all peers that ever published an evaluation of this
	// version — §4.1 keeps a deleted downloader's (negative) evaluation
	// in the DHT until TTL, which is exactly what lets fast deletion of
	// fakes warn later requesters.
	evaluators   []int
	evaluatorSet map[int]struct{}
}

func (v *version) addOwner(p int, now time.Duration) {
	if _, ok := v.ownerSet[p]; ok {
		return
	}
	v.ownerSet[p] = struct{}{}
	v.owners = append(v.owners, p)
	if v.ownerSince == nil {
		v.ownerSince = make(map[int]time.Duration, 8)
	}
	v.ownerSince[p] = now
	v.addEvaluator(p)
}

// lipMass is the LIP ranking signal at time now: total time the version
// has been held across its current owners, excluding the requester.
func (v *version) lipMass(d int, now time.Duration) float64 {
	total := 0.0
	for p, since := range v.ownerSince {
		if p == d {
			continue
		}
		if held := now - since; held > 0 {
			total += held.Hours()
		}
	}
	return total
}

func (v *version) addEvaluator(p int) {
	if _, ok := v.evaluatorSet[p]; ok {
		return
	}
	if v.evaluatorSet == nil {
		v.evaluatorSet = make(map[int]struct{}, 8)
	}
	v.evaluatorSet[p] = struct{}{}
	v.evaluators = append(v.evaluators, p)
}

// Result carries everything the E1–E3 experiments report.
type Result struct {
	Config Config
	// FakeRatio is the fraction of completed downloads that were fake,
	// over time — the E1 headline series.
	FakeRatio *metrics.Series
	// TotalDownloads and FakeDownloads aggregate the run.
	TotalDownloads, FakeDownloads int
	// AvoidedFakes counts requests where the scheme rejected every
	// candidate as fake (the user walked away instead of downloading).
	AvoidedFakes int
	// WaitByClass is the queueing delay (seconds) per behaviour class —
	// the E2 headline.
	WaitByClass map[Behavior]*metrics.Summary
	// BandwidthByClass is the granted transfer bandwidth (bytes/sec) per
	// class.
	BandwidthByClass map[Behavior]*metrics.Summary
	// ReputationByClass is the mean end-of-run reputation each class
	// holds in honest observers' multi-trust views.
	ReputationByClass map[Behavior]float64
	// Behaviors records each peer's assigned class.
	Behaviors []Behavior
}

// FakeFraction returns the overall fake-download fraction.
func (r *Result) FakeFraction() float64 {
	if r.TotalDownloads == 0 {
		return 0
	}
	return float64(r.FakeDownloads) / float64(r.TotalDownloads)
}

// Sim is one simulation instance. Build with New, run with Run.
type Sim struct {
	cfg       Config
	rng       *sim.RNG
	engine    *core.Concurrent
	behaviors []Behavior
	titles    [][]*version
	servers   []*incentive.Server
	tm        *sparse.CSR
	repCache  map[int]map[int]float64
	res       *Result
}

// New builds a simulator: assigns behaviours, seeds the catalogue with
// real versions at honest peers, and injects fake versions of the most
// popular titles at polluters.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	engine, err := core.NewConcurrentEngine(cfg.Peers, cfg.Reputation)
	if err != nil {
		return nil, err
	}
	fakeRatio, err := metrics.NewSeries("fake-ratio-"+cfg.Scheme.String(), cfg.Duration/28)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:       cfg,
		rng:       sim.NewRNG(cfg.Seed),
		engine:    engine,
		behaviors: make([]Behavior, cfg.Peers),
		titles:    make([][]*version, cfg.Titles),
		servers:   make([]*incentive.Server, cfg.Peers),
		repCache:  make(map[int]map[int]float64),
		res: &Result{
			Config:            cfg,
			FakeRatio:         fakeRatio,
			WaitByClass:       make(map[Behavior]*metrics.Summary),
			BandwidthByClass:  make(map[Behavior]*metrics.Summary),
			ReputationByClass: make(map[Behavior]float64),
		},
	}
	for _, b := range []Behavior{Honest, FreeRider, Polluter, Liar} {
		s.res.WaitByClass[b] = &metrics.Summary{}
		s.res.BandwidthByClass[b] = &metrics.Summary{}
	}
	for i := range s.servers {
		srv, err := incentive.NewServer(cfg.Policy)
		if err != nil {
			return nil, err
		}
		s.servers[i] = srv
	}
	s.assignBehaviors()
	if err := s.seedCatalogue(); err != nil {
		return nil, err
	}
	s.res.Behaviors = append([]Behavior(nil), s.behaviors...)
	return s, nil
}

func (s *Sim) assignBehaviors() {
	n := s.cfg.Peers
	perm := s.rng.DeriveStream("behaviors").Perm(n)
	nFree := int(float64(n) * s.cfg.FreeRiderFrac)
	nPoll := int(float64(n) * s.cfg.PolluterFrac)
	nLiar := int(float64(n) * s.cfg.LiarFrac)
	for i, p := range perm {
		switch {
		case i < nFree:
			s.behaviors[p] = FreeRider
		case i < nFree+nPoll:
			s.behaviors[p] = Polluter
		case i < nFree+nPoll+nLiar:
			s.behaviors[p] = Liar
		default:
			s.behaviors[p] = Honest
		}
	}
}

// peersWith returns the peers of a behaviour class.
func (s *Sim) peersWith(b Behavior) []int {
	out := make([]int, 0, s.cfg.Peers)
	for p, pb := range s.behaviors {
		if pb == b {
			out = append(out, p)
		}
	}
	return out
}

func versionID(title int, fake bool, variant int) eval.FileID {
	if fake {
		return eval.FileID(fmt.Sprintf("title-%04d-fake-%d", title, variant))
	}
	return eval.FileID(fmt.Sprintf("title-%04d-real", title))
}

func (s *Sim) seedCatalogue() error {
	rng := s.rng.DeriveStream("catalogue")
	sizeDist, err := dist.NewBoundedPareto(1.2, float64(s.cfg.MeanFileSize)/4, float64(s.cfg.MeanFileSize)*8)
	if err != nil {
		return err
	}
	honest := s.peersWith(Honest)
	liars := s.peersWith(Liar)
	sharers := append(append([]int{}, honest...), liars...)
	if len(sharers) == 0 {
		return fmt.Errorf("p2psim: no sharing peers to seed catalogue")
	}
	polluters := s.peersWith(Polluter)

	for t := 0; t < s.cfg.Titles; t++ {
		size := int64(sizeDist.Sample(rng))
		real := &version{
			id:       versionID(t, false, 0),
			title:    t,
			size:     size,
			ownerSet: make(map[int]struct{}, 4),
		}
		nSeed := 1 + rng.Intn(3)
		// Real versions predate the run: seeders have held them for up to
		// 30 days, the pre-history LIP's lifetime signal keys on.
		preHistory := -time.Duration(rng.Intn(30*24)) * time.Hour
		for k := 0; k < nSeed; k++ {
			p := sharers[rng.Intn(len(sharers))]
			real.addOwner(p, preHistory)
			// Seeders have held the file a long time: strong implicit
			// approval, plus an occasional vote.
			if err := s.engine.SetImplicit(p, real.id, 0.95, 0); err != nil {
				return err
			}
			if rng.Float64() < s.cfg.VoteProb {
				if err := s.engine.Vote(p, real.id, s.truthfulVote(p, false, rng), 0); err != nil {
					return err
				}
			}
		}
		s.titles[t] = []*version{real}

		// Polluters fake the most popular titles (lowest rank = most
		// popular under the Zipf draw below).
		if t < s.cfg.PollutedTitles && len(polluters) > 0 {
			fake := &version{
				id:       versionID(t, true, 0),
				title:    t,
				fake:     true,
				size:     size,
				ownerSet: make(map[int]struct{}, 8),
			}
			nOwners := 1 + len(polluters)/3
			fakeSince := time.Duration(0) // injected at the start of the run
			if s.cfg.PatientPolluters {
				fakeSince = preHistory // seeded as early as the real copy
			}
			for k := 0; k < nOwners; k++ {
				fake.addOwner(polluters[rng.Intn(len(polluters))], fakeSince)
			}
			// Vote stuffing (the KaZaA/Maze pollution playbook): every
			// polluter pushes the fake up and poisons the real version
			// down, whether or not it hosts a copy.
			for _, p := range polluters {
				if err := s.engine.Vote(p, fake.id, 1.0, 0); err != nil {
					return err
				}
				if err := s.engine.SetImplicit(p, fake.id, 0.95, 0); err != nil {
					return err
				}
				fake.addEvaluator(p)
				if err := s.engine.Vote(p, real.id, 0.1*rng.Float64(), 0); err != nil {
					return err
				}
				real.addEvaluator(p)
			}
			s.titles[t] = append(s.titles[t], fake)
		}
	}
	return nil
}

// truthfulVote returns the vote a peer casts given the file's true nature,
// filtered through its behaviour.
func (s *Sim) truthfulVote(p int, fake bool, rng *sim.RNG) float64 {
	truth := 0.9 + 0.1*rng.Float64()
	if fake {
		truth = 0.1 * rng.Float64()
	}
	switch s.behaviors[p] {
	case Liar:
		return 1 - truth
	case Polluter:
		if fake {
			return 1.0
		}
		return 0.2 * rng.Float64() // poison real files
	default:
		return truth
	}
}

// reputations returns peer p's cached multi-trust row for this epoch.
func (s *Sim) reputations(p int) (map[int]float64, error) {
	if row, ok := s.repCache[p]; ok {
		return row, nil
	}
	row, err := s.engine.ReputationsFromTM(s.tm, p)
	if err != nil {
		return nil, err
	}
	s.repCache[p] = row
	return row, nil
}

func (s *Sim) rebuildEpoch(now time.Duration) error {
	s.engine.Compact(now)
	tm, err := s.engine.TM(now)
	if err != nil {
		return err
	}
	s.tm = tm
	s.repCache = make(map[int]map[int]float64, len(s.repCache))
	return nil
}

func (s *Sim) drainServers() {
	// E2 statistics are steady-state: completions from the first half of
	// the run are served but not recorded, so the cold start (when every
	// peer sits at the quota floor) does not swamp the class means.
	warmup := s.cfg.Duration / 2
	for _, srv := range s.servers {
		for _, c := range srv.ServeAll() {
			if c.Request.Arrival < warmup {
				continue
			}
			b := s.behaviors[c.Request.Requester]
			s.res.WaitByClass[b].Observe(c.Wait().Seconds())
			s.res.BandwidthByClass[b].Observe(s.cfg.Policy.Bandwidth(c.Request.Reputation))
		}
	}
}

// judge scores one candidate version for downloader d; higher is better.
// ok=false means the scheme rejects the version outright.
func (s *Sim) judge(d int, v *version, now time.Duration) (float64, bool, error) {
	const neutralPrior = 0.5
	switch s.cfg.Scheme {
	case SchemeNone:
		return float64(len(v.owners)), true, nil
	case SchemeLIP:
		return v.lipMass(d, now), true, nil
	case SchemeNaiveVoting:
		evs := s.engine.CollectOwnerEvaluations(v.id, v.evaluators, now)
		if len(evs) == 0 {
			return neutralPrior, true, nil
		}
		sum := 0.0
		for _, oe := range evs {
			sum += oe.Value
		}
		mean := sum / float64(len(evs))
		return mean, mean >= s.cfg.Reputation.FakeThreshold, nil
	case SchemeMDRep:
		evs := s.engine.CollectOwnerEvaluations(v.id, v.evaluators, now)
		reps, err := s.reputations(d)
		if err != nil {
			return 0, false, err
		}
		r, err := core.FileReputation(reps, evs)
		if err != nil {
			// No reputation path: neutral prior, allow the download so
			// bootstrap is possible.
			return neutralPrior, true, nil //nolint:nilerr // ErrNoReputation is the bootstrap case
		}
		return r, r >= s.cfg.Reputation.FakeThreshold, nil
	default:
		return 0, false, fmt.Errorf("p2psim: unknown scheme %d", int(s.cfg.Scheme))
	}
}

// Run executes the full simulation and returns its results.
func (s *Sim) Run() (*Result, error) {
	evRNG := s.rng.DeriveStream("events")
	pop, err := dist.NewZipf(s.cfg.Titles, s.cfg.ZipfExponent)
	if err != nil {
		return nil, err
	}
	activity, err := dist.NewBoundedPareto(1.0, 1, 100)
	if err != nil {
		return nil, err
	}
	actRNG := s.rng.DeriveStream("activity")
	weights := make([]float64, s.cfg.Peers)
	for i := range weights {
		weights[i] = activity.Sample(actRNG)
	}
	picker, err := dist.NewWeighted(weights)
	if err != nil {
		return nil, err
	}

	if err := s.rebuildEpoch(0); err != nil {
		return nil, err
	}
	var now time.Duration
	nextEpoch := s.cfg.EpochLen
	meanGap := float64(s.cfg.Duration) / float64(s.cfg.Requests+1)
	for issued := 0; issued < s.cfg.Requests; issued++ {
		now += time.Duration(evRNG.ExpFloat64() * meanGap)
		if now > s.cfg.Duration {
			break
		}
		for now >= nextEpoch {
			s.drainServers()
			if err := s.rebuildEpoch(nextEpoch); err != nil {
				return nil, err
			}
			nextEpoch += s.cfg.EpochLen
		}
		if err := s.handleRequest(evRNG, pop, picker, now); err != nil {
			return nil, err
		}
	}
	s.drainServers()
	if err := s.finalize(); err != nil {
		return nil, err
	}
	return s.res, nil
}

// online samples the memoryless session-churn state of a peer at this
// instant.
func (s *Sim) online(rng *sim.RNG) bool {
	return s.cfg.OnlineFraction >= 1 || rng.Float64() < s.cfg.OnlineFraction
}

func (s *Sim) handleRequest(rng *sim.RNG, pop *dist.Zipf, picker *dist.Weighted, now time.Duration) error {
	d := picker.Index(rng)
	if !s.online(rng) {
		return nil // requester offline at this instant
	}
	title := pop.Rank(rng)

	// Candidate versions must have at least one owner other than d.
	type candidate struct {
		v     *version
		score float64
	}
	var cands []candidate
	var best *candidate
	versions := s.titles[title]
	if len(versions) > 1 {
		// Judge in random order so ties between unknown versions do not
		// systematically favour the catalogue's insertion order.
		shuffled := make([]*version, len(versions))
		copy(shuffled, versions)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		versions = shuffled
	}
	for _, v := range versions {
		servable := false
		for _, o := range v.owners {
			if o != d {
				servable = true
				break
			}
		}
		if !servable {
			continue
		}
		score, ok, err := s.judge(d, v, now)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		cands = append(cands, candidate{v: v, score: score})
		if best == nil || score > best.score {
			best = &cands[len(cands)-1]
		}
	}
	if best == nil {
		// Every candidate rejected (or nothing servable). If versions
		// existed, the scheme saved the user from a fake.
		if len(s.titles[title]) > 0 {
			s.res.AvoidedFakes++
		}
		return nil
	}
	v := best.v

	// Pick an online uploader among owners other than d.
	uploader := -1
	for try := 0; try < 16; try++ {
		cand := v.owners[rng.Intn(len(v.owners))]
		if cand != d && s.online(rng) {
			uploader = cand
			break
		}
	}
	if uploader == -1 {
		return nil // no owner reachable right now (churn)
	}

	// The download happens.
	s.res.TotalDownloads++
	if v.fake {
		s.res.FakeDownloads++
	}
	s.res.FakeRatio.Observe(now, v.fake)
	if err := s.engine.RecordDownload(d, uploader, v.id, v.size, now); err != nil {
		return err
	}

	// Incentive queue at the uploader: reputation is the uploader's view
	// of the requester.
	upReps, err := s.reputations(uploader)
	if err != nil {
		return err
	}
	// The policy's reputation axis is population-normalised: 1.0 is the
	// uniform share (a peer holding exactly average trust), so policy
	// thresholds mean the same thing at any population size.
	if err := s.servers[uploader].Enqueue(incentive.Request{
		Requester:  d,
		File:       string(v.id),
		Size:       v.size,
		Arrival:    now,
		Reputation: upReps[d] * float64(s.cfg.Peers),
	}); err != nil {
		return err
	}

	// Post-download evaluation per behaviour.
	if err := s.evaluateAfterDownload(d, v, rng, now); err != nil {
		return err
	}

	// Every downloader published an evaluation; sharers additionally keep
	// and serve the version.
	v.addEvaluator(d)
	if s.behaviors[d] != FreeRider {
		keepFake := s.behaviors[d] == Polluter
		if !v.fake || keepFake {
			v.addOwner(d, now)
		}
	}
	return nil
}

func (s *Sim) evaluateAfterDownload(d int, v *version, rng *sim.RNG, now time.Duration) error {
	b := s.behaviors[d]
	// Implicit evaluation: honest-like peers delete fakes quickly and
	// keep real files; polluters keep and bless their stock in trade.
	var implicit float64
	switch {
	case b == Polluter && v.fake:
		implicit = 0.95
	case v.fake:
		implicit = 0.05 * rng.Float64() // deleted almost immediately
	default:
		implicit = 0.85 + 0.1*rng.Float64()
	}
	if err := s.engine.SetImplicit(d, v.id, implicit, now); err != nil {
		return err
	}
	// Explicit vote: free-riders never vote (no enthusiasm); polluters
	// always promote fakes; others vote with VoteProb.
	voteProb := s.cfg.VoteProb
	switch {
	case b == FreeRider:
		voteProb = 0
	case b == Polluter && v.fake:
		voteProb = 1
	}
	if rng.Float64() < voteProb {
		if err := s.engine.Vote(d, v.id, s.truthfulVote(d, v.fake, rng), now); err != nil {
			return err
		}
	}
	return nil
}

// finalize computes end-of-run per-class reputation means as seen by a
// panel of honest observers.
func (s *Sim) finalize() error {
	if err := s.rebuildEpoch(s.cfg.Duration); err != nil {
		return err
	}
	honest := s.peersWith(Honest)
	if len(honest) == 0 {
		return nil
	}
	panel := honest
	if len(panel) > 10 {
		panel = panel[:10]
	}
	classSum := make(map[Behavior]float64)
	classCount := make(map[Behavior]int)
	for _, obs := range panel {
		reps, err := s.reputations(obs)
		if err != nil {
			return err
		}
		for p, b := range s.behaviors {
			if p == obs {
				continue
			}
			classSum[b] += reps[p]
			classCount[b]++
		}
	}
	for b, sum := range classSum {
		if classCount[b] > 0 {
			s.res.ReputationByClass[b] = sum / float64(classCount[b])
		}
	}
	return nil
}

// Run is the one-call entry point: build and execute a simulation.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
