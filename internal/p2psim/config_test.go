package p2psim

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidateRejections walks every rejection branch of
// Config.Validate; each mutation must trip its own error.
func TestConfigValidateRejections(t *testing.T) {
	cases := map[string]struct {
		mutate func(*Config)
		want   string
	}{
		"too few peers":      {func(c *Config) { c.Peers = 3 }, "at least 4 peers"},
		"no titles":          {func(c *Config) { c.Titles = 0 }, "at least 1 title"},
		"negative requests":  {func(c *Config) { c.Requests = -1 }, "negative request count"},
		"zero duration":      {func(c *Config) { c.Duration = 0 }, "non-positive duration"},
		"negative duration":  {func(c *Config) { c.Duration = -time.Hour }, "non-positive duration"},
		"negative freerider": {func(c *Config) { c.FreeRiderFrac = -0.1 }, "negative behaviour fraction"},
		"negative polluter":  {func(c *Config) { c.PolluterFrac = -0.1 }, "negative behaviour fraction"},
		"negative liar":      {func(c *Config) { c.LiarFrac = -0.1 }, "negative behaviour fraction"},
		"no honest left":     {func(c *Config) { c.FreeRiderFrac, c.PolluterFrac, c.LiarFrac = 0.5, 0.4, 0.1 }, "too few honest"},
		"vote prob high":     {func(c *Config) { c.VoteProb = 1.1 }, "vote probability"},
		"vote prob negative": {func(c *Config) { c.VoteProb = -0.1 }, "vote probability"},
		"negative polluted":  {func(c *Config) { c.PollutedTitles = -1 }, "polluted titles"},
		"polluted > titles":  {func(c *Config) { c.PollutedTitles = c.Titles + 1 }, "polluted titles"},
		"negative zipf":      {func(c *Config) { c.ZipfExponent = -0.5 }, "negative Zipf"},
		"zero file size":     {func(c *Config) { c.MeanFileSize = 0 }, "non-positive file size"},
		"zero epoch":         {func(c *Config) { c.EpochLen = 0 }, "non-positive epoch length"},
		"zero online":        {func(c *Config) { c.OnlineFraction = 0 }, "online fraction"},
		"online over one":    {func(c *Config) { c.OnlineFraction = 1.5 }, "online fraction"},
		"unknown scheme":     {func(c *Config) { c.Scheme = Scheme(99) }, "unknown scheme"},
		"bad reputation":     {func(c *Config) { c.Reputation.Steps = -1 }, ""},
		"bad policy":         {func(c *Config) { c.Policy.QuotaThreshold = -1 }, ""},
	}
	for name, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestConfigValidateAccepts pins the valid envelope, including the edge
// cases that look suspicious but are legal.
func TestConfigValidateAccepts(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if err := IncentiveConfig().Validate(); err != nil {
		t.Fatalf("incentive config rejected: %v", err)
	}

	// A zero seed is a valid seed (sim.NewRNG documents it), not a
	// missing field.
	cfg := DefaultConfig()
	cfg.Seed = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero seed rejected: %v", err)
	}

	// Zero requests is a legal degenerate run.
	cfg = DefaultConfig()
	cfg.Requests = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero requests rejected: %v", err)
	}

	// Heavy but still-legal adversarial fractions pass (the 0.95 cap is
	// exclusive only past the float boundary).
	cfg = DefaultConfig()
	cfg.FreeRiderFrac, cfg.PolluterFrac, cfg.LiarFrac = 0.5, 0.25, 0.125
	if err := cfg.Validate(); err != nil {
		t.Fatalf("heavy fractions rejected: %v", err)
	}

	// Every named scheme validates.
	for _, s := range []Scheme{SchemeMDRep, SchemeNone, SchemeNaiveVoting, SchemeLIP} {
		cfg = DefaultConfig()
		cfg.Scheme = s
		if err := cfg.Validate(); err != nil {
			t.Fatalf("scheme %v rejected: %v", s, err)
		}
	}
}

// TestBehaviorSchemeStrings covers the name renderings used in reports.
func TestBehaviorSchemeStrings(t *testing.T) {
	wantB := map[Behavior]string{
		Honest: "honest", FreeRider: "free-rider", Polluter: "polluter",
		Liar: "liar", Behavior(42): "behavior(42)",
	}
	for b, want := range wantB {
		if b.String() != want {
			t.Errorf("Behavior(%d).String() = %q, want %q", int(b), b.String(), want)
		}
	}
	wantS := map[Scheme]string{
		SchemeMDRep: "mdrep", SchemeNone: "none", SchemeNaiveVoting: "naive-voting",
		SchemeLIP: "lip", Scheme(42): "scheme(42)",
	}
	for s, want := range wantS {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
