// Package p2psim is the end-to-end file-sharing simulator behind
// experiments E1 (fake-file suppression), E2 (service differentiation) and
// E3 (collusion resistance): a population of honest peers, free-riders,
// polluters and liars exchanging real and fake file versions under a
// pluggable reputation scheme, with the incentive queue of §3.4 at every
// uploader.
package p2psim

import (
	"errors"
	"fmt"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/incentive"
)

// Behavior classifies a peer's strategy.
type Behavior int

// The peer strategies modelled in the paper's threat discussion.
const (
	// Honest peers share, evaluate truthfully, vote with VoteProb, and
	// delete fake files quickly.
	Honest Behavior = iota + 1
	// FreeRider peers download but never share and never vote (the
	// incentive problem).
	FreeRider
	// Polluter peers inject fake versions of popular titles, keep them,
	// and vote them up (the trust problem; KaZaA/Maze pollution).
	Polluter
	// Liar peers share honestly-obtained files but invert their votes,
	// poisoning naive vote aggregation.
	Liar
)

// String renders the behaviour name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case FreeRider:
		return "free-rider"
	case Polluter:
		return "polluter"
	case Liar:
		return "liar"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Scheme selects the file-judgement mechanism under test.
type Scheme int

// The judgement schemes compared in E1.
const (
	// SchemeMDRep uses the paper's reputation-weighted file judgement
	// (Eq. 9 over multi-trust reputations).
	SchemeMDRep Scheme = iota + 1
	// SchemeNone downloads the version with the most owners (popularity
	// only, no defence) — the pollution-prone default of real systems.
	SchemeNone
	// SchemeNaiveVoting averages all published evaluations unweighted,
	// the defence the paper argues is poisoned by liars and polluters.
	SchemeNaiveVoting
	// SchemeLIP ranks versions by lifetime × popularity mass (Feng & Dai,
	// IPTPS 2007): the sum of owner-retention durations. It needs no
	// evaluations at all, but "cannot identify the quality of a file
	// accurately when its number of owners is too small" and is blind to
	// a patient attacker's accumulated holdings.
	SchemeLIP
)

// String renders the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeMDRep:
		return "mdrep"
	case SchemeNone:
		return "none"
	case SchemeNaiveVoting:
		return "naive-voting"
	case SchemeLIP:
		return "lip"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config parameterises a simulation run.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Peers is the population size.
	Peers int
	// Titles is the number of distinct titles (each may have real and
	// fake versions).
	Titles int
	// Requests is the number of download requests to simulate.
	Requests int
	// Duration is the simulated time span.
	Duration time.Duration
	// FreeRiderFrac, PolluterFrac, LiarFrac partition the population;
	// the remainder is honest.
	FreeRiderFrac, PolluterFrac, LiarFrac float64
	// VoteProb is the probability an honest (or liar) peer casts an
	// explicit vote after a download.
	VoteProb float64
	// PollutedTitles is how many of the most popular titles polluters
	// fake.
	PollutedTitles int
	// PatientPolluters gives fake versions the same holding pre-history
	// as real ones — the patient attacker that defeats lifetime-based
	// heuristics (LIP) while leaving behaviour-based trust unaffected.
	PatientPolluters bool
	// ZipfExponent is title-popularity skew.
	ZipfExponent float64
	// MeanFileSize is the mean file size in bytes.
	MeanFileSize int64
	// Scheme selects the defence under test.
	Scheme Scheme
	// Reputation configures the trust engine (used by SchemeMDRep).
	Reputation core.Config
	// Policy configures the incentive queue at uploaders.
	Policy incentive.Policy
	// EpochLen is how often the trust matrix is rebuilt and queues are
	// drained.
	EpochLen time.Duration
	// OnlineFraction is the probability a peer is online at any instant
	// (memoryless session churn). Offline peers neither request nor
	// serve; 1.0 disables churn.
	OnlineFraction float64
}

// DefaultConfig returns the E1/E2 base scenario: 500 peers over 14 days,
// 20% polluters, 20% free-riders, 5% liars.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Peers:          500,
		Titles:         800,
		Requests:       30000,
		Duration:       14 * 24 * time.Hour,
		FreeRiderFrac:  0.2,
		PolluterFrac:   0.2,
		LiarFrac:       0.05,
		VoteProb:       0.3,
		PollutedTitles: 200,
		ZipfExponent:   1.0,
		MeanFileSize:   64 << 20,
		Scheme:         SchemeMDRep,
		Reputation:     core.DefaultConfig(),
		Policy:         defaultSimPolicy(),
		EpochLen:       12 * time.Hour,
		OnlineFraction: 1.0,
	}
}

// IncentiveConfig returns the E2 scenario: the free-rider problem in
// isolation (no pollution), with two-step multi-trust so a requester's
// upload record — DM edges held by the peers it served — propagates to
// uploaders that never met it. This is the configuration in which the
// paper's service differentiation shows its full effect.
func IncentiveConfig() Config {
	cfg := DefaultConfig()
	cfg.PolluterFrac = 0
	cfg.PollutedTitles = 0
	cfg.LiarFrac = 0
	cfg.FreeRiderFrac = 0.3
	cfg.Reputation.Steps = 2
	return cfg
}

// defaultSimPolicy adapts the incentive policy to the simulator's
// population-normalised reputation axis (1.0 = the uniform trust share):
// peers holding twice the average trust earn the full queue offset; peers
// below 80% of the average fall under the bandwidth quota.
func defaultSimPolicy() incentive.Policy {
	p := incentive.DefaultPolicy()
	p.MaxOffset = 4 * time.Hour
	p.RefReputation = 2.0
	p.QuotaThreshold = 0.8
	return p
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Peers < 4:
		return errors.New("p2psim: need at least 4 peers")
	case c.Titles < 1:
		return errors.New("p2psim: need at least 1 title")
	case c.Requests < 0:
		return errors.New("p2psim: negative request count")
	case c.Duration <= 0:
		return errors.New("p2psim: non-positive duration")
	case c.FreeRiderFrac < 0 || c.PolluterFrac < 0 || c.LiarFrac < 0:
		return errors.New("p2psim: negative behaviour fraction")
	case c.FreeRiderFrac+c.PolluterFrac+c.LiarFrac > 0.95:
		return errors.New("p2psim: behaviour fractions leave too few honest peers")
	case c.VoteProb < 0 || c.VoteProb > 1:
		return errors.New("p2psim: vote probability outside [0,1]")
	case c.PollutedTitles < 0 || c.PollutedTitles > c.Titles:
		return errors.New("p2psim: polluted titles outside [0, titles]")
	case c.ZipfExponent < 0:
		return errors.New("p2psim: negative Zipf exponent")
	case c.MeanFileSize <= 0:
		return errors.New("p2psim: non-positive file size")
	case c.EpochLen <= 0:
		return errors.New("p2psim: non-positive epoch length")
	case c.OnlineFraction <= 0 || c.OnlineFraction > 1:
		return errors.New("p2psim: online fraction outside (0,1]")
	}
	switch c.Scheme {
	case SchemeMDRep, SchemeNone, SchemeNaiveVoting, SchemeLIP:
	default:
		return fmt.Errorf("p2psim: unknown scheme %d", int(c.Scheme))
	}
	if err := c.Reputation.Validate(); err != nil {
		return err
	}
	return c.Policy.Validate()
}
