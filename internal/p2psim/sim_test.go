package p2psim

import (
	"math"
	"testing"
	"time"

	"mdrep/internal/core"
)

// e1Config is the scaled-down E1 scenario used throughout the tests.
func e1Config(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Peers = 300
	cfg.Titles = 400
	cfg.Requests = 15000
	cfg.Scheme = scheme
	return cfg
}

func runScheme(t *testing.T, scheme Scheme) *Result {
	t.Helper()
	res, err := Run(e1Config(scheme))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Peers = 2 },
		func(c *Config) { c.Titles = 0 },
		func(c *Config) { c.Requests = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.FreeRiderFrac = -0.1 },
		func(c *Config) { c.FreeRiderFrac, c.PolluterFrac = 0.6, 0.6 },
		func(c *Config) { c.VoteProb = 1.5 },
		func(c *Config) { c.PollutedTitles = c.Titles + 1 },
		func(c *Config) { c.ZipfExponent = -1 },
		func(c *Config) { c.MeanFileSize = 0 },
		func(c *Config) { c.EpochLen = 0 },
		func(c *Config) { c.Scheme = Scheme(99) },
		func(c *Config) { c.OnlineFraction = 0 },
		func(c *Config) { c.OnlineFraction = 1.5 },
		func(c *Config) { c.Reputation.Steps = 0 },
		func(c *Config) { c.Policy.FullBandwidth = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestBehaviorAssignmentFractions(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[Behavior]int)
	for _, b := range s.behaviors {
		counts[b]++
	}
	if counts[FreeRider] != int(float64(cfg.Peers)*cfg.FreeRiderFrac) {
		t.Fatalf("free riders = %d", counts[FreeRider])
	}
	if counts[Polluter] != int(float64(cfg.Peers)*cfg.PolluterFrac) {
		t.Fatalf("polluters = %d", counts[Polluter])
	}
	if counts[Honest] == 0 {
		t.Fatal("no honest peers")
	}
}

func TestBehaviorString(t *testing.T) {
	names := map[Behavior]string{
		Honest: "honest", FreeRider: "free-rider", Polluter: "polluter",
		Liar: "liar", Behavior(42): "behavior(42)",
	}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("String(%d) = %q", int(b), b.String())
		}
	}
	if SchemeMDRep.String() != "mdrep" || Scheme(9).String() != "scheme(9)" {
		t.Fatal("scheme names wrong")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runScheme(t, SchemeMDRep)
	b := runScheme(t, SchemeMDRep)
	if a.TotalDownloads != b.TotalDownloads || a.FakeDownloads != b.FakeDownloads {
		t.Fatalf("runs differ: %d/%d vs %d/%d",
			a.FakeDownloads, a.TotalDownloads, b.FakeDownloads, b.TotalDownloads)
	}
}

// TestE1FakeSuppression is the E1 headline: the paper's scheme suppresses
// pollution that an undefended system sustains.
func TestE1FakeSuppression(t *testing.T) {
	mdrep := runScheme(t, SchemeMDRep)
	none := runScheme(t, SchemeNone)

	if none.FakeFraction() < 0.7 {
		t.Fatalf("undefended fake ratio %v; pollution model too weak", none.FakeFraction())
	}
	if mdrep.FakeFraction() >= none.FakeFraction()-0.15 {
		t.Fatalf("mdrep (%v) does not clearly beat no defence (%v)",
			mdrep.FakeFraction(), none.FakeFraction())
	}

	// The ratio must decline over time under mdrep (the system learns)
	// and stay flat without a defence.
	mdrepPts := mdrep.FakeRatio.Points()
	q := len(mdrepPts) / 4
	first, last := 0.0, 0.0
	for _, p := range mdrepPts[:q] {
		first += p.Value
	}
	for _, p := range mdrepPts[len(mdrepPts)-q:] {
		last += p.Value
	}
	first /= float64(q)
	last /= float64(q)
	if last >= first-0.2 {
		t.Fatalf("mdrep fake ratio not declining: first quarter %v, last quarter %v", first, last)
	}
}

// TestE1NaiveVotingPoisoned shows why unweighted voting is not enough:
// vote-stuffing polluters keep the fake ratio high and force mass
// rejection of real files.
func TestE1NaiveVotingPoisoned(t *testing.T) {
	mdrep := runScheme(t, SchemeMDRep)
	naive := runScheme(t, SchemeNaiveVoting)
	if naive.FakeFraction() <= mdrep.FakeFraction() {
		t.Fatalf("naive voting (%v) unexpectedly beats reputation weighting (%v) under vote stuffing",
			naive.FakeFraction(), mdrep.FakeFraction())
	}
}

// TestReputationSeparatesClasses is E2's precondition: honest peers end up
// with more reputation than free-riders, and polluters end up near zero.
func TestReputationSeparatesClasses(t *testing.T) {
	res := runScheme(t, SchemeMDRep)
	rep := res.ReputationByClass
	if rep[Honest] <= rep[FreeRider] {
		t.Fatalf("honest (%v) not above free-rider (%v)", rep[Honest], rep[FreeRider])
	}
	// The margin over polluters varies with the seed (polluters keep some
	// implicit-agreement trust from unpolluted titles); direction plus a
	// clear gap is the robust invariant.
	if rep[Honest] <= 1.2*rep[Polluter] {
		t.Fatalf("honest (%v) not clearly above polluter (%v)", rep[Honest], rep[Polluter])
	}
}

// TestE2ServiceDifferentiation: in the incentive scenario, honest sharers
// see better granted bandwidth and shorter queueing than free-riders.
func TestE2ServiceDifferentiation(t *testing.T) {
	cfg := IncentiveConfig()
	cfg.Peers = 300
	cfg.Titles = 400
	cfg.Requests = 15000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	honestBW := res.BandwidthByClass[Honest].Mean()
	freeBW := res.BandwidthByClass[FreeRider].Mean()
	if honestBW <= 1.2*freeBW {
		t.Fatalf("honest bandwidth %v not clearly above free-rider %v", honestBW, freeBW)
	}
	honestWait := res.WaitByClass[Honest].Mean()
	freeWait := res.WaitByClass[FreeRider].Mean()
	if honestWait >= freeWait {
		t.Fatalf("honest wait %vs not below free-rider %vs", honestWait, freeWait)
	}
	if res.WaitByClass[Honest].Count() == 0 || res.WaitByClass[FreeRider].Count() == 0 {
		t.Fatal("no wait observations recorded")
	}
}

func TestFreeRidersNeverOwn(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.Requests = 3000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, versions := range s.titles {
		for _, v := range versions {
			for _, o := range v.owners {
				if s.behaviors[o] == FreeRider {
					t.Fatalf("free rider %d owns %s", o, v.id)
				}
			}
		}
	}
}

func TestHonestPeersNeverKeepFakes(t *testing.T) {
	cfg := e1Config(SchemeNone) // no defence: plenty of fake downloads
	cfg.Requests = 3000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, versions := range s.titles {
		for _, v := range versions {
			if !v.fake {
				continue
			}
			for _, o := range v.owners {
				if s.behaviors[o] == Honest {
					t.Fatalf("honest peer %d still owns fake %s", o, v.id)
				}
			}
		}
	}
}

func TestRunWithZeroRequests(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.Requests = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDownloads != 0 {
		t.Fatalf("downloads = %d with zero requests", res.TotalDownloads)
	}
}

func TestNoPolluters(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.PolluterFrac = 0
	cfg.PollutedTitles = 0
	cfg.Requests = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FakeDownloads != 0 {
		t.Fatalf("fake downloads %d without polluters", res.FakeDownloads)
	}
	if res.TotalDownloads == 0 {
		t.Fatal("no downloads in clean system")
	}
}

// TestE5StepsAmplifyStuffing documents the multi-trust depth trade-off
// found in this reproduction: under vote-stuffing, the stuffers form a
// perfect-similarity clique, and powers n > 1 of TM leak trust into it —
// so the paper's n = 1 choice for a dense one-step matrix is also the
// collusion-safe one.
func TestE5StepsAmplifyStuffing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-step run is slow")
	}
	one := runScheme(t, SchemeMDRep)
	cfg := e1Config(SchemeMDRep)
	cfg.Reputation.Steps = 2
	two, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if two.FakeFraction() < one.FakeFraction() {
		t.Fatalf("2-step (%v) beats 1-step (%v); clique amplification expected under stuffing",
			two.FakeFraction(), one.FakeFraction())
	}
}

func TestEpochLengthInsensitivity(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.Requests = 5000
	cfg.EpochLen = 6 * time.Hour
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EpochLen = 24 * time.Hour
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Faster rebuilds may help but must not change the qualitative
	// outcome.
	if a.TotalDownloads == 0 || b.TotalDownloads == 0 {
		t.Fatal("no downloads")
	}
	if diff := a.FakeFraction() - b.FakeFraction(); diff > 0.25 || diff < -0.25 {
		t.Fatalf("epoch length flipped the outcome: %v vs %v", a.FakeFraction(), b.FakeFraction())
	}
}

func TestResultFakeFractionEmpty(t *testing.T) {
	r := &Result{}
	if r.FakeFraction() != 0 {
		t.Fatal("empty result fraction not 0")
	}
}

func TestRejectsInvalidReputationConfig(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.Reputation = core.Config{}
	if _, err := New(cfg); err == nil {
		t.Fatal("zero reputation config accepted")
	}
}

func TestLIPMassAccounting(t *testing.T) {
	v := &version{id: "x", ownerSet: make(map[int]struct{})}
	v.addOwner(1, -24*time.Hour) // held for a day before t=0
	v.addOwner(2, 0)
	now := 12 * time.Hour
	got := v.lipMass(9, now)
	want := 36.0 + 12.0 // hours held by owners 1 and 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("lipMass = %v, want %v", got, want)
	}
	// The requester's own holding is excluded.
	if got := v.lipMass(1, now); math.Abs(got-12) > 1e-9 {
		t.Fatalf("lipMass excluding requester = %v, want 12", got)
	}
}

func TestLIPBeatsNoneUnderFreshAttack(t *testing.T) {
	lip := runScheme(t, SchemeLIP)
	none := runScheme(t, SchemeNone)
	if lip.FakeFraction() >= none.FakeFraction()-0.2 {
		t.Fatalf("LIP (%v) does not clearly beat no defence (%v) against fresh fakes",
			lip.FakeFraction(), none.FakeFraction())
	}
}

func TestPatientAttackCollapsesLIPNotMDRep(t *testing.T) {
	lipCfg := e1Config(SchemeLIP)
	lipCfg.PatientPolluters = true
	lipPatient, err := Run(lipCfg)
	if err != nil {
		t.Fatal(err)
	}
	lipFresh := runScheme(t, SchemeLIP)
	if lipPatient.FakeFraction() < lipFresh.FakeFraction()+0.3 {
		t.Fatalf("patient attack did not collapse LIP: %v vs fresh %v",
			lipPatient.FakeFraction(), lipFresh.FakeFraction())
	}
	mdrepCfg := e1Config(SchemeMDRep)
	mdrepCfg.PatientPolluters = true
	mdrepPatient, err := Run(mdrepCfg)
	if err != nil {
		t.Fatal(err)
	}
	mdrepFresh := runScheme(t, SchemeMDRep)
	if diff := mdrepPatient.FakeFraction() - mdrepFresh.FakeFraction(); diff > 0.05 || diff < -0.05 {
		t.Fatalf("patient attack moved mdrep by %v", diff)
	}
}

func TestChurnDoesNotFlipE1(t *testing.T) {
	cfg := e1Config(SchemeMDRep)
	cfg.OnlineFraction = 0.6
	churned, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if churned.TotalDownloads == 0 {
		t.Fatal("no downloads under churn")
	}
	noneCfg := e1Config(SchemeNone)
	noneCfg.OnlineFraction = 0.6
	none, err := Run(noneCfg)
	if err != nil {
		t.Fatal(err)
	}
	if churned.FakeFraction() >= none.FakeFraction() {
		t.Fatalf("under churn mdrep (%v) not below none (%v)",
			churned.FakeFraction(), none.FakeFraction())
	}
}
