package massim

import "testing"

// BenchmarkMassimStep measures the steady-state per-event cost of the
// simulator (request handling dominates; epoch boundaries amortise
// out). The canonical suite snapshot lives in BENCH_<date>.json via
// `make bench-json`.
func BenchmarkMassimStep(b *testing.B) {
	scn, err := Lookup("collusion-front")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.N = 100000
	cfg.Epochs = 1 << 20 // effectively unbounded; the benchmark never drains it
	s, err := NewSim(cfg, scn)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("simulation drained mid-benchmark")
		}
	}
}

// BenchmarkMassimEpoch measures one full epoch at 10k peers — the unit
// of wall-clock scaling toward the million-peer acceptance run.
func BenchmarkMassimEpoch(b *testing.B) {
	scn, err := Lookup("whitewash")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.N = 10000
	cfg.Epochs = 1 << 20
	s, err := NewSim(cfg, scn)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := s.epochsDone
		for s.epochsDone == start {
			if !s.Step() {
				b.Fatal("simulation drained mid-benchmark")
			}
		}
	}
}
