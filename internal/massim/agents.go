package massim

// Agent implementations. Every agent is a flyweight: one instance per
// class, zero mutable fields, all per-peer state in the Sim arrays.

// baseAgent supplies the benign defaults.
type baseAgent struct{}

func (baseAgent) KeepFake() bool                      { return false }
func (baseAgent) AfterRequest(*Sim, int32)            {}
func (baseAgent) EpochTick(*Sim, int32)               {}
func (baseAgent) PickVersion(*Sim, int32, int32) int8 { return -1 }

// honestAgent follows the paper's protocol: admit by the incentive
// policy (with the tit-for-tat ledger as a fast path when enabled),
// judge versions by votes, rate and vote truthfully.
type honestAgent struct{ baseAgent }

func (honestAgent) Admit(s *Sim, server, requester int32) bool {
	if l := s.Ledger(); l != nil && l.Covered(int(server), int(requester)) {
		return true
	}
	return s.AdmitByPolicy(server, requester)
}

func (honestAgent) Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool) {
	return authentic, true
}

func (honestAgent) Vote(s *Sim, p, t int32, authentic bool) (up, cast bool) {
	return authentic, s.RNGFor(p).Float64() < s.Config().VoteProb
}

// polluterAgent is the basic attacker: serves everyone (spread is the
// goal), requests and keeps fakes, badmouths servers and votes fakes up.
type polluterAgent struct{ baseAgent }

func (polluterAgent) Admit(*Sim, int32, int32) bool { return true }

func (polluterAgent) PickVersion(*Sim, int32, int32) int8 { return versionFake }

func (polluterAgent) KeepFake() bool { return true }

func (polluterAgent) Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool) {
	return false, true
}

func (polluterAgent) Vote(s *Sim, p, t int32, authentic bool) (up, cast bool) {
	return !authentic, true
}

// The collusion ring occupies classes 0 (cores) and 1 (fronts), which
// the contiguous class layout places at known index ranges.
func ringSpan(s *Sim) (lo, hi int32) {
	lo, _ = s.ClassRange(0)
	_, hi = s.ClassRange(1)
	return lo, hi
}

// ringCoreAgent is a polluter inside a collusion ring: it rates ring
// members up regardless of service, and after every download it
// fabricates a praise rating for a random ring member.
type ringCoreAgent struct{ polluterAgent }

func (ringCoreAgent) Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool) {
	lo, hi := ringSpan(s)
	if server >= lo && server < hi {
		return true, true
	}
	return false, true
}

func (ringCoreAgent) AfterRequest(s *Sim, p int32) {
	lo, hi := ringSpan(s)
	s.Praise(p, lo+int32(s.RNGFor(p).Intn(int(hi-lo))))
}

// ringFrontAgent is the ring's respectable face: it serves eagerly,
// downloads and shares only authentic files, but praises the cores and
// votes the ring's fakes up. Its service record is clean; the vote
// honesty dimension is what the reputation system has against it.
type ringFrontAgent struct{ baseAgent }

func (ringFrontAgent) Admit(*Sim, int32, int32) bool { return true }

func (ringFrontAgent) Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool) {
	lo, hi := ringSpan(s)
	if server >= lo && server < hi {
		return true, true
	}
	return authentic, true
}

func (ringFrontAgent) Vote(s *Sim, p, t int32, authentic bool) (up, cast bool) {
	return !authentic, true
}

func (ringFrontAgent) AfterRequest(s *Sim, p int32) {
	lo, hi := s.ClassRange(0)
	s.Praise(p, lo+int32(s.RNGFor(p).Intn(int(hi-lo))))
}

// whitewashAgent is a polluter that discards its identity and rejoins
// as a newcomer whenever its reputation sinks below the rejoin bar —
// the attack that tests whether the newcomer prior is low enough to
// make identity churn unprofitable.
type whitewashAgent struct{ polluterAgent }

func (whitewashAgent) EpochTick(s *Sim, p int32) {
	if s.Rep(p) < s.Config().WhitewashBelow {
		s.ResetPeer(p)
	}
}

// camouflageAgent serves eagerly and handles files honestly — its
// service-quality and contribution dimensions look impeccable — but it
// votes dishonestly on every contested title to keep the polluters'
// fakes alive. Only the vote-honesty dimension can catch it.
type camouflageAgent struct{ baseAgent }

func (camouflageAgent) Admit(*Sim, int32, int32) bool { return true }

func (camouflageAgent) Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool) {
	return authentic, true
}

func (camouflageAgent) Vote(s *Sim, p, t int32, authentic bool) (up, cast bool) {
	return !authentic, true
}

// Strategic stances.
const (
	modeCoop uint8 = iota
	modeDefect
)

// strategicAgent is a rational free-rider playing against the social
// norm: while cooperating it serves honestly; each epoch it explores
// defection (refusing to serve) with a small probability, and returns
// to cooperation when the defection-epoch payoff falls measurably below
// its cooperative average — which the incentive layer ensures it does.
type strategicAgent struct{ honestAgent }

func (strategicAgent) Admit(s *Sim, server, requester int32) bool {
	if s.Mode(server) == modeDefect {
		return false
	}
	return honestAgent{}.Admit(s, server, requester)
}

func (strategicAgent) EpochTick(s *Sim, p int32) {
	cfg := s.Config()
	payoff := float32(s.EpochGot(p))
	if s.Mode(p) == modeCoop {
		mem := float32(cfg.CoopMemory)
		s.SetCoopAvg(p, (1-mem)*s.CoopAvg(p)+mem*payoff)
		if s.RNGFor(p).Float64() < cfg.ExploreProb {
			s.SetMode(p, modeDefect)
		}
		return
	}
	if payoff < 0.8*s.CoopAvg(p) {
		s.SetMode(p, modeCoop)
	}
}
