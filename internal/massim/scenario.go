package massim

import (
	"fmt"
	"sort"
)

// Agent is one behavioural class's strategy. The simulator uses the
// flyweight pattern: one Agent instance serves every peer of its class,
// and all mutable per-peer state lives in the Sim's struct-of-arrays —
// an Agent with fields of its own would be a bug at a million peers.
type Agent interface {
	// Admit decides whether server serves requester.
	Admit(s *Sim, server, requester int32) bool
	// PickVersion chooses the version of title t to request: a version
	// index, or a negative value to delegate to the honest judgement.
	PickVersion(s *Sim, p, t int32) int8
	// KeepFake reports whether the peer shares fake files it received.
	KeepFake() bool
	// Rate returns the service rating for a completed download and
	// whether one is cast at all.
	Rate(s *Sim, p, server int32, authentic bool) (sat, cast bool)
	// Vote returns the authenticity vote on a contested title and
	// whether one is cast.
	Vote(s *Sim, p, t int32, authentic bool) (up, cast bool)
	// AfterRequest runs after a serviced download — the hook collusion
	// agents use to inject fabricated praise.
	AfterRequest(s *Sim, p int32)
	// EpochTick runs once per peer at every epoch boundary, before
	// reputations are recomputed (whitewash rejoins, stance switches).
	EpochTick(s *Sim, p int32)
}

// ClassSpec declares one behavioural class of a scenario.
type ClassSpec struct {
	// Name labels the class in reports.
	Name string
	// Frac is the population fraction; the last class absorbs the
	// remainder and must be the honest majority.
	Frac float64
	// Agent is the class strategy (flyweight, stateless).
	Agent Agent
	// Adversary marks attack classes for reporting.
	Adversary bool
	// SeedsFakes marks classes whose members seed fake versions.
	SeedsFakes bool
}

// Scenario is one adversarial experiment: a population mix plus a pass
// bound on the outcome.
type Scenario interface {
	// Name is the registry key (kebab-case).
	Name() string
	// Describe is a one-line summary for reports.
	Describe() string
	// Tune adjusts the base configuration before validation.
	Tune(cfg *Config)
	// Specs returns the behavioural classes, honest majority last.
	Specs() []ClassSpec
	// Verdict evaluates the scenario's metric against its pass bound.
	Verdict(r *Result) Verdict
}

// Verdict is a scenario's pass/fail judgement.
type Verdict struct {
	// Metric names the measured quantity.
	Metric string
	// Value is the measured value; Bound the threshold; Op the
	// comparison direction ("<=" or ">=").
	Value, Bound float64
	Op           string
	// Pass reports whether Value satisfies Bound.
	Pass bool
	// Notes carries secondary observations.
	Notes string
}

func verdictLE(metric string, value, bound float64) Verdict {
	return Verdict{Metric: metric, Value: value, Bound: bound, Op: "<=", Pass: value <= bound}
}

func verdictGE(metric string, value, bound float64) Verdict {
	return Verdict{Metric: metric, Value: value, Bound: bound, Op: ">=", Pass: value >= bound}
}

var registry = map[string]func() Scenario{}

// Register adds a scenario constructor under its name. It panics on
// duplicates; registration happens from init functions only.
func Register(name string, mk func() Scenario) {
	if _, dup := registry[name]; dup {
		panic("massim: duplicate scenario " + name)
	}
	registry[name] = mk
}

// Lookup returns a fresh scenario instance by name.
func Lookup(name string) (Scenario, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("massim: unknown scenario %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
