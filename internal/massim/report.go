package massim

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ClassStats summarises one behavioural class at the end of a run.
type ClassStats struct {
	Name      string
	Count     int
	Adversary bool
	// MeanRep and MeanCred are the final-epoch class means.
	MeanRep, MeanCred float64
	// Got counts serviced downloads by members; Denied refused requests;
	// FakeGot fake downloads; PollGot / PollFake downloads (and fake
	// downloads) on contested titles.
	Got, Denied, FakeGot, PollGot, PollFake uint64
	// PollFakeRatio = PollFake / PollGot: how often the class's members
	// ended up with the fake when the title was contested.
	PollFakeRatio float64
	// Tiers is the multitier distribution of the class (tier 1 first).
	Tiers []int
}

// Result is a completed run's summary.
type Result struct {
	Scenario string
	N        int
	Seed     uint64
	Epochs   int
	// Events counts wheel pops; Misses requests with no available
	// server; Rejoins whitewash identity resets.
	Events, Misses, Rejoins uint64
	Classes                 []ClassStats
	// RepTrajectory[e][k] is class k's mean reputation after epoch e.
	RepTrajectory [][]float64
	// CoopFrac is the fraction of strategic-class peers cooperating at
	// the end (NaN when the scenario has no strategic class).
	CoopFrac float64
	// Baselines holds the comparison estimators when enabled.
	Baselines *BaselineResult
	// Verdict is the scenario's pass/fail judgement.
	Verdict Verdict
}

// Class returns the stats for the named class, or nil.
func (r *Result) Class(name string) *ClassStats {
	for k := range r.Classes {
		if r.Classes[k].Name == name {
			return &r.Classes[k]
		}
	}
	return nil
}

// FinalRep returns the named class's final mean reputation (NaN when
// the class is unknown).
func (r *Result) FinalRep(name string) float64 {
	if c := r.Class(name); c != nil {
		return c.MeanRep
	}
	return math.NaN()
}

// Finish summarises a completed run. It errors if the run has not been
// stepped to completion.
func (s *Sim) Finish() (*Result, error) {
	if !s.done {
		return nil, errors.New("massim: Finish before the run completed")
	}
	r := &Result{
		Scenario:      s.scn.Name(),
		N:             s.cfg.N,
		Seed:          s.cfg.Seed,
		Epochs:        s.epochsDone,
		Events:        s.wheel.Executed,
		Misses:        s.misses,
		Rejoins:       s.rejoins,
		RepTrajectory: s.perEpochRep,
		CoopFrac:      math.NaN(),
	}
	tiers := s.tierClassifier()
	for k, sp := range s.specs {
		lo, hi := int(s.start[k]), int(s.start[k+1])
		cs := ClassStats{
			Name:      sp.Name,
			Count:     hi - lo,
			Adversary: sp.Adversary,
			Got:       s.got[k],
			Denied:    s.denied[k],
			FakeGot:   s.fakeGot[k],
			PollGot:   s.pollGot[k],
			PollFake:  s.pollFake[k],
		}
		var rep, cred float64
		for j := lo; j < hi; j++ {
			rep += s.rep[j]
			cred += s.cred[j]
		}
		cs.MeanRep = rep / float64(cs.Count)
		cs.MeanCred = cred / float64(cs.Count)
		if cs.PollGot > 0 {
			cs.PollFakeRatio = float64(cs.PollFake) / float64(cs.PollGot)
		}
		if tiers != nil {
			cs.Tiers = tiers.Distribution(s.rep[lo:hi])
		}
		if sp.Name == "strategic" {
			coop := 0
			for j := lo; j < hi; j++ {
				if s.mode[j] == modeCoop {
					coop++
				}
			}
			r.CoopFrac = float64(coop) / float64(cs.Count)
		}
		r.Classes = append(r.Classes, cs)
	}
	if s.log != nil {
		b, err := s.runBaselines()
		if err != nil {
			return nil, err
		}
		r.Baselines = b
	}
	r.Verdict = s.scn.Verdict(r)
	s.obs.verdict(r.Verdict.Pass)
	return r, nil
}

// Render returns the deterministic textual report: byte-identical
// output across reruns of the same (scenario, seed, n) is the
// reproducibility contract the CI sim job asserts.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "massim scenario=%s n=%d seed=%d epochs=%d events=%d misses=%d rejoins=%d\n",
		r.Scenario, r.N, r.Seed, r.Epochs, r.Events, r.Misses, r.Rejoins)
	for _, c := range r.Classes {
		role := "honest"
		if c.Adversary {
			role = "adversary"
		}
		fmt.Fprintf(&b, "  class %-12s %-9s count=%-7d rep=%.6f cred=%.6f got=%d denied=%d fake=%d pollFakeRatio=%.6f",
			c.Name, role, c.Count, c.MeanRep, c.MeanCred, c.Got, c.Denied, c.FakeGot, c.PollFakeRatio)
		if len(c.Tiers) > 0 {
			fmt.Fprintf(&b, " tiers=%v", c.Tiers)
		}
		b.WriteByte('\n')
	}
	if !math.IsNaN(r.CoopFrac) {
		fmt.Fprintf(&b, "  coopFrac=%.6f\n", r.CoopFrac)
	}
	for e, row := range r.RepTrajectory {
		fmt.Fprintf(&b, "  epoch %2d rep=[", e+1)
		for k, v := range row {
			if k > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6f", v)
		}
		b.WriteString("]\n")
	}
	if r.Baselines != nil {
		b.WriteString(r.Baselines.render())
	}
	v := r.Verdict
	status := "FAIL"
	if v.Pass {
		status = "PASS"
	}
	fmt.Fprintf(&b, "  verdict %s: %s = %.6f (bound %s %.6f)", status, v.Metric, v.Value, v.Op, v.Bound)
	if v.Notes != "" {
		fmt.Fprintf(&b, " [%s]", v.Notes)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  fingerprint=%016x\n", r.Fingerprint())
	return b.String()
}

// Fingerprint folds the result's numerically sensitive content into an
// FNV-1a hash — the compact form of the byte-identity check.
func (r *Result) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(r.N))
	mix(r.Seed)
	mix(r.Events)
	mix(r.Misses)
	mix(r.Rejoins)
	for _, c := range r.Classes {
		mix(math.Float64bits(c.MeanRep))
		mix(math.Float64bits(c.MeanCred))
		mix(c.Got)
		mix(c.Denied)
		mix(c.FakeGot)
		mix(c.PollFake)
	}
	for _, row := range r.RepTrajectory {
		for _, v := range row {
			mix(math.Float64bits(v))
		}
	}
	return h
}
