package massim

import "fmt"

// The scenario library. Bounds are calibrated at the CI reference point
// (n=10k, seed 1, 12 epochs) with headroom for seed variation; each is
// recorded with its rationale in EXPERIMENTS.md §E9.

func init() {
	Register("collusion-front", func() Scenario { return collusionScenario{} })
	Register("whitewash", func() Scenario { return whitewashScenario{} })
	Register("camouflage", func() Scenario { return camouflageScenario{} })
	Register("strategic", func() Scenario { return strategicScenario{} })
}

// collusionScenario: a polluter ring hides behind front peers with
// clean service records. The fronts praise the cores and vote their
// fakes up; the vote-honesty dimension must collapse the fronts'
// credibility so the fabricated praise carries no weight and the cores
// stay at the bottom of the reputation scale.
type collusionScenario struct{}

func (collusionScenario) Name() string { return "collusion-front" }

func (collusionScenario) Describe() string {
	return "polluter ring with honest-serving front peers laundering praise"
}

func (collusionScenario) Tune(cfg *Config) {}

func (collusionScenario) Specs() []ClassSpec {
	// Class layout is contiguous in spec order, so the ring occupies a
	// known index range the agents can praise into: cores first, then
	// fronts, then the honest remainder.
	return []ClassSpec{
		{Name: "ring-core", Frac: 0.05, Adversary: true, SeedsFakes: true, Agent: ringCoreAgent{}},
		{Name: "ring-front", Frac: 0.05, Adversary: true, Agent: ringFrontAgent{}},
		{Name: "honest", Agent: honestAgent{}},
	}
}

func (collusionScenario) Verdict(r *Result) Verdict {
	v := verdictLE("ring-core final mean reputation", r.FinalRep("ring-core"), 0.40)
	v.Notes = fmt.Sprintf("ring-front rep=%.4f cred=%.4f honest rep=%.4f",
		r.FinalRep("ring-front"), r.Class("ring-front").MeanCred, r.FinalRep("honest"))
	if front := r.FinalRep("ring-front"); front >= r.FinalRep("honest") {
		v.Pass = false
		v.Notes += " (fronts not separated from honest peers)"
	}
	return v
}

// whitewashScenario: polluters discard identities whenever their
// reputation sinks, betting the newcomer prior beats their earned
// standing. Passing means rejoining keeps them pinned near the newcomer
// level — identity churn buys no standing.
type whitewashScenario struct{}

func (whitewashScenario) Name() string { return "whitewash" }

func (whitewashScenario) Describe() string {
	return "polluters reset identity on low reputation and rejoin as newcomers"
}

func (whitewashScenario) Tune(cfg *Config) {}

func (whitewashScenario) Specs() []ClassSpec {
	return []ClassSpec{
		{Name: "whitewasher", Frac: 0.10, Adversary: true, SeedsFakes: true, Agent: whitewashAgent{}},
		{Name: "honest", Agent: honestAgent{}},
	}
}

func (whitewashScenario) Verdict(r *Result) Verdict {
	v := verdictLE("whitewasher final mean reputation", r.FinalRep("whitewasher"), 0.45)
	v.Notes = fmt.Sprintf("rejoins=%d honest rep=%.4f honest pollFakeRatio=%.4f",
		r.Rejoins, r.FinalRep("honest"), r.Class("honest").PollFakeRatio)
	if r.Rejoins == 0 {
		v.Pass = false
		v.Notes += " (attack never triggered)"
	}
	return v
}

// camouflageScenario: a small polluter class seeds fakes while a larger
// camouflage class serves and shares honestly — impeccable service and
// contribution dimensions — but votes every fake up. Only the honesty
// dimension can separate them; passing means honest peers still dodge
// the fakes on contested titles.
type camouflageScenario struct{}

func (camouflageScenario) Name() string { return "camouflage" }

func (camouflageScenario) Describe() string {
	return "clean-serving peers voting dishonestly to keep fakes alive"
}

func (camouflageScenario) Tune(cfg *Config) {}

func (camouflageScenario) Specs() []ClassSpec {
	return []ClassSpec{
		{Name: "polluter", Frac: 0.05, Adversary: true, SeedsFakes: true, Agent: polluterAgent{}},
		{Name: "camouflage", Frac: 0.15, Adversary: true, Agent: camouflageAgent{}},
		{Name: "honest", Agent: honestAgent{}},
	}
}

func (camouflageScenario) Verdict(r *Result) Verdict {
	v := verdictLE("honest polluted-title fake ratio", r.Class("honest").PollFakeRatio, 0.25)
	cam := r.Class("camouflage")
	v.Notes = fmt.Sprintf("camouflage rep=%.4f cred=%.4f", cam.MeanRep, cam.MeanCred)
	if cam.MeanCred >= r.Class("honest").MeanCred {
		v.Pass = false
		v.Notes += " (camouflage credibility not suppressed)"
	}
	return v
}

// strategicScenario: rational peers test free-riding under the social
// norm (reputation-differentiated admission plus the tit-for-tat
// ledger). Passing means defection pays worse than cooperation and the
// population settles into cooperating.
type strategicScenario struct{}

func (strategicScenario) Name() string { return "strategic" }

func (strategicScenario) Describe() string {
	return "rational free-riders probing the social-norm incentive layer"
}

func (strategicScenario) Tune(cfg *Config) {
	cfg.UseLedger = true
}

func (strategicScenario) Specs() []ClassSpec {
	return []ClassSpec{
		{Name: "strategic", Frac: 0.30, Agent: strategicAgent{}},
		{Name: "honest", Agent: honestAgent{}},
	}
}

func (strategicScenario) Verdict(r *Result) Verdict {
	v := verdictGE("strategic cooperating fraction", r.CoopFrac, 0.75)
	v.Notes = fmt.Sprintf("strategic rep=%.4f honest rep=%.4f denied=%d",
		r.FinalRep("strategic"), r.FinalRep("honest"), r.Class("strategic").Denied)
	return v
}
