package massim

import (
	"strings"
	"testing"
	"time"
)

// testConfig is the fast in-tree test point; the CI sim job and the
// EXPERIMENTS.md entries use the n=10k reference point via the CLI.
func testConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.N = n
	return cfg
}

// TestScenarioSuite runs every registered scenario at the small test
// size and requires each to pass its own verdict bound — the in-tree
// form of the attack-resistance regression suite.
func TestScenarioSuite(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			scn, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(testConfig(2000), scn)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verdict.Pass {
				t.Fatalf("verdict failed: %+v\n%s", res.Verdict, res.Render())
			}
		})
	}
}

// TestScenarioShape pins the structural invariants of a finished run.
func TestScenarioShape(t *testing.T) {
	scn, err := Lookup("collusion-front")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2000)
	res, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != cfg.Epochs || len(res.RepTrajectory) != cfg.Epochs {
		t.Fatalf("epochs = %d, trajectory = %d, want %d", res.Epochs, len(res.RepTrajectory), cfg.Epochs)
	}
	if res.Events == 0 {
		t.Fatal("no events executed")
	}
	total := 0
	for _, c := range res.Classes {
		total += c.Count
		if c.MeanRep < 0 || c.MeanRep > 1 || c.MeanCred < 0 || c.MeanCred > 1 {
			t.Fatalf("class %s rep/cred outside [0,1]: %+v", c.Name, c)
		}
		if sum := c.Tiers[0] + c.Tiers[1] + c.Tiers[2]; sum != c.Count {
			t.Fatalf("class %s tier distribution sums to %d, want %d", c.Name, sum, c.Count)
		}
	}
	if total != cfg.N {
		t.Fatalf("class counts sum to %d, want %d", total, cfg.N)
	}
	if res.Class("honest") == nil || res.Class("nope") != nil {
		t.Fatal("class lookup broken")
	}
}

// TestDeterminism is the reproducibility contract: same (scenario,
// seed, n) twice must render byte-identically, and a different seed
// must not collide.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			run := func(seed uint64) string {
				scn, err := Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := testConfig(1000)
				cfg.Seed = seed
				cfg.Baselines = true
				cfg.MirrorEngine = true
				res, err := Run(cfg, scn)
				if err != nil {
					t.Fatal(err)
				}
				return res.Render()
			}
			a, b := run(42), run(42)
			if a != b {
				t.Fatalf("reruns differ:\n--- first\n%s--- second\n%s", a, b)
			}
			if c := run(43); c == a {
				t.Fatal("different seed produced identical output")
			}
		})
	}
}

// TestBaselineStory pins the headline comparison: the collusion ring
// captures EigenTrust (fabricated praise inflates the ring above the
// honest mean) while the multi-dimensional model keeps the ring at the
// bottom of the scale.
func TestBaselineStory(t *testing.T) {
	scn, err := Lookup("collusion-front")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2000)
	cfg.Baselines = true
	cfg.MirrorEngine = true
	res, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Baselines
	if b == nil || b.EigenTrust == nil || b.Blue == nil || b.Engine == nil {
		t.Fatalf("baselines incomplete: %+v", b)
	}
	mean := func(ms []ClassMean, class string) float64 {
		for _, m := range ms {
			if m.Class == class {
				return m.Mean
			}
		}
		t.Fatalf("class %s missing from baseline", class)
		return 0
	}
	if et := mean(b.EigenTrust, "ring-core"); et <= mean(b.EigenTrust, "honest") {
		t.Fatalf("expected EigenTrust to be captured by the ring, got core=%v honest=%v",
			et, mean(b.EigenTrust, "honest"))
	}
	if res.FinalRep("ring-core") >= res.FinalRep("honest") {
		t.Fatalf("massim model captured by the ring: core=%v honest=%v",
			res.FinalRep("ring-core"), res.FinalRep("honest"))
	}
	if !strings.Contains(res.Render(), "baseline eigentrust") {
		t.Fatal("render missing baseline lines")
	}
}

// TestBaselineCapSkips pins that baselines silently skip above the cap.
func TestBaselineCapSkips(t *testing.T) {
	scn, err := Lookup("whitewash")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(1000)
	cfg.Baselines = true
	cfg.BaselineCap = 500
	res, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baselines != nil {
		t.Fatal("baselines ran above BaselineCap")
	}
}

// TestConfigValidate walks the rejection branches.
func TestConfigValidate(t *testing.T) {
	mut := map[string]func(*Config){
		"tiny population":    func(c *Config) { c.N = 4 },
		"no epochs":          func(c *Config) { c.Epochs = 0 },
		"bad epoch length":   func(c *Config) { c.EpochLen = 0 },
		"bad tick":           func(c *Config) { c.Tick = -time.Second },
		"tick over epoch":    func(c *Config) { c.Tick = c.EpochLen + 1 },
		"bad request rate":   func(c *Config) { c.MeanRequests = 0 },
		"negative titles":    func(c *Config) { c.Titles = -1 },
		"bad polluted frac":  func(c *Config) { c.PollutedFrac = 1.5 },
		"bad zipf":           func(c *Config) { c.ZipfExponent = -1 },
		"bad vote prob":      func(c *Config) { c.VoteProb = 2 },
		"bad owners cap":     func(c *Config) { c.OwnersCap = 1 },
		"no seed owners":     func(c *Config) { c.SeedOwnersReal = 0 },
		"seeds over cap":     func(c *Config) { c.SeedOwnersFake = c.OwnersCap + 1 },
		"no candidates":      func(c *Config) { c.CandidateServers = 0 },
		"negative weight":    func(c *Config) { c.Alpha, c.Beta, c.Gamma = -0.5, 1, 0.5 },
		"weights not 1":      func(c *Config) { c.Alpha = 0.9 },
		"bad prior rep":      func(c *Config) { c.PriorRep = 1.5 },
		"bad prior weight":   func(c *Config) { c.PriorWeight = 0 },
		"bad contrib half":   func(c *Config) { c.ContribHalf = 0 },
		"bad decay":          func(c *Config) { c.Decay = 1.5 },
		"bad judge prior":    func(c *Config) { c.JudgeVotePrior = 0 },
		"bad judge weight":   func(c *Config) { c.JudgeVoteWeight = 2 },
		"bad whitewash":      func(c *Config) { c.WhitewashBelow = -0.1 },
		"bad explore":        func(c *Config) { c.ExploreProb = 1.1 },
		"bad coop memory":    func(c *Config) { c.CoopMemory = 0 },
		"bad baseline cap":   func(c *Config) { c.BaselineCap = -1 },
		"bad policy":         func(c *Config) { c.Policy.QuotaThreshold = -1 },
		"ascending tiers":    func(c *Config) { c.TierBounds = []float64{0.4, 0.7} },
		"tier bound at one":  func(c *Config) { c.TierBounds = []float64{1.0} },
		"tier bound at zero": func(c *Config) { c.TierBounds = []float64{0.5, 0.0} },
	}
	for name, f := range mut {
		cfg := DefaultConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	// A zero seed is a valid seed, not a missing one.
	cfg := DefaultConfig()
	cfg.Seed = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero seed rejected: %v", err)
	}
}

// TestNewSimErrors covers scenario-construction failure modes.
func TestNewSimErrors(t *testing.T) {
	if _, err := NewSim(DefaultConfig(), nil); err == nil {
		t.Fatal("nil scenario accepted")
	}
	if _, err := NewSim(DefaultConfig(), badScenario{specs: nil}); err == nil {
		t.Fatal("empty class list accepted")
	}
	if _, err := NewSim(DefaultConfig(), badScenario{specs: []ClassSpec{
		{Name: "adv", Frac: 0.5, Adversary: true, Agent: polluterAgent{}},
	}}); err == nil {
		t.Fatal("adversary-last class list accepted")
	}
	if _, err := NewSim(DefaultConfig(), badScenario{specs: []ClassSpec{
		{Name: "a", Frac: 0.5, Agent: nil},
		{Name: "honest", Agent: honestAgent{}},
	}}); err == nil {
		t.Fatal("nil agent accepted")
	}
	cfg := DefaultConfig()
	cfg.N = 10
	if _, err := NewSim(cfg, badScenario{specs: []ClassSpec{
		{Name: "a", Frac: 0.01, Agent: polluterAgent{}},
		{Name: "honest", Agent: honestAgent{}},
	}}); err == nil {
		t.Fatal("empty class at small n accepted")
	}
}

type badScenario struct{ specs []ClassSpec }

func (badScenario) Name() string            { return "bad" }
func (badScenario) Describe() string        { return "constructed for error tests" }
func (badScenario) Tune(*Config)            {}
func (b badScenario) Specs() []ClassSpec    { return b.specs }
func (badScenario) Verdict(*Result) Verdict { return Verdict{} }

// TestLookupUnknown pins the registry error path.
func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// TestMirrorShardsInvariance pins the sharded mirror as a pure
// throughput knob: the same (scenario, seed) renders byte-for-byte
// identically whether the mirror engine runs unsharded or at 8 shards.
func TestMirrorShardsInvariance(t *testing.T) {
	scn, err := Lookup("collusion-front")
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) string {
		cfg := testConfig(1000)
		cfg.Baselines = true
		cfg.MirrorEngine = true
		cfg.MirrorShards = shards
		res, err := Run(cfg, scn)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	plain := run(0)
	if sharded := run(8); sharded != plain {
		t.Fatalf("sharded mirror changed the report:\n--- unsharded\n%s--- 8 shards\n%s", plain, sharded)
	}
}

func TestMirrorShardsValidation(t *testing.T) {
	scn, err := Lookup("collusion-front")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(100)
	cfg.MirrorShards = -1
	if _, err := Run(cfg, scn); err == nil {
		t.Fatal("negative mirror shard count accepted")
	}
}
