package massim

import (
	"sync/atomic"

	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// Instrumentation follows the sparse-kernel pattern: an atomically
// installed package singleton so uninstrumented runs pay one pointer
// load and a nil check per hot-path touch. Per-scenario series are
// labelled, not per-instance, so a process running many scenarios
// shares one registry.
type massimObs struct {
	tracer *obs.Tracer
	reg    *metrics.Registry
	epoch  *metrics.Histogram // epoch boundary processing time
}

var mobs atomic.Pointer[massimObs]

// Instrument publishes massim metrics into reg, timed by clock. A nil
// registry (or Uninstrument) turns instrumentation back off.
func Instrument(reg *metrics.Registry, clock obs.Clock) {
	if reg == nil {
		mobs.Store(nil)
		return
	}
	mobs.Store(&massimObs{
		tracer: obs.NewTracer(clock),
		reg:    reg,
		epoch:  reg.Histogram("massim_epoch_seconds", metrics.DurationBuckets),
	})
}

// Uninstrument disables massim instrumentation.
func Uninstrument() { mobs.Store(nil) }

// simObs is one run's view of the singleton: it caches the per-scenario
// counters so the hot path does no name lookups.
type simObs struct {
	reqC, denC, fakeC     *metrics.Counter
	praiseC, rejC, epochC *metrics.Counter
	passC, failC          *metrics.Counter
	root                  *massimObs
}

// scenarioLabel canonicalises a scenario name into the finite label set
// the metrics registry may see: the built-in scenario library plus
// "custom" for anything registered out-of-tree. Without this bound an
// externally supplied name would mint eight new series per run.
//
//mdrep:labelset
func scenarioLabel(name string) string {
	switch name {
	case "baseline", "collusion-front", "whitewash", "camouflage", "strategic":
		return name
	}
	return "custom"
}

// newSimObs caches one run's counters; scenario must already be
// canonicalised through scenarioLabel.
func newSimObs(scenario string) *simObs {
	m := mobs.Load()
	if m == nil {
		return nil
	}
	return &simObs{
		reqC:    m.reg.Counter("massim_requests_total", "scenario", scenario),
		denC:    m.reg.Counter("massim_denied_total", "scenario", scenario),
		fakeC:   m.reg.Counter("massim_fake_downloads_total", "scenario", scenario),
		praiseC: m.reg.Counter("massim_praise_ratings_total", "scenario", scenario),
		rejC:    m.reg.Counter("massim_whitewash_rejoins_total", "scenario", scenario),
		epochC:  m.reg.Counter("massim_epochs_total", "scenario", scenario),
		passC:   m.reg.Counter("massim_verdict_pass_total", "scenario", scenario),
		failC:   m.reg.Counter("massim_verdict_fail_total", "scenario", scenario),
		root:    m,
	}
}

func (o *simObs) request() {
	if o != nil {
		o.reqC.Inc()
	}
}

func (o *simObs) denied() {
	if o != nil {
		o.denC.Inc()
	}
}

func (o *simObs) fake() {
	if o != nil {
		o.fakeC.Inc()
	}
}

func (o *simObs) praise() {
	if o != nil {
		o.praiseC.Inc()
	}
}

func (o *simObs) rejoin() {
	if o != nil {
		o.rejC.Inc()
	}
}

func (o *simObs) epoch() {
	if o != nil {
		o.epochC.Inc()
	}
}

func (o *simObs) epochSpan() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.root.tracer.Start(o.root.epoch)
}

func (o *simObs) verdict(pass bool) {
	if o == nil {
		return
	}
	if pass {
		o.passC.Inc()
	} else {
		o.failC.Inc()
	}
}
