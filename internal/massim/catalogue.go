package massim

import (
	"errors"
	"math"

	"mdrep/internal/sim"
)

// Version indices within a title. Real is version 0; polluted titles
// additionally carry a fake version.
const (
	versionReal int8 = 0
	versionFake int8 = 1
)

// catalogue is the shared title/version state: Zipf popularity, owner
// lists per version, and decayed credibility-weighted vote tallies. It
// is struct-of-arrays like the peer state; per title the footprint is
// two small owner slices and four floats.
type catalogue struct {
	cdf      []float64 // cumulative Zipf popularity, cdf[len-1] == 1
	polluted int32     // titles [0, polluted) carry a fake version

	realOwners [][]int32
	fakeOwners [][]int32

	// Decayed credibility-weighted votes per version.
	vUpR, vDnR []float64
	vUpF, vDnF []float64
}

// buildCatalogue seeds titles, popularity and initial owners. Real
// owners come from the honest majority (the last class); fake owners
// from the classes that seed fakes.
func (s *Sim) buildCatalogue(rng *sim.RNG) error {
	nt := s.cfg.titleCount()
	c := &s.titles
	c.cdf = make([]float64, nt)
	sum := 0.0
	for t := 0; t < nt; t++ {
		sum += 1 / math.Pow(float64(t+1), s.cfg.ZipfExponent)
		c.cdf[t] = sum
	}
	for t := range c.cdf {
		c.cdf[t] /= sum
	}
	c.polluted = int32(s.cfg.PollutedFrac * float64(nt))
	c.realOwners = make([][]int32, nt)
	c.fakeOwners = make([][]int32, nt)
	c.vUpR = make([]float64, nt)
	c.vDnR = make([]float64, nt)
	c.vUpF = make([]float64, nt)
	c.vDnF = make([]float64, nt)

	honLo, honHi := int(s.start[len(s.specs)-1]), s.cfg.N
	var seeders []int32
	for k, sp := range s.specs {
		if sp.SeedsFakes {
			for p := s.start[k]; p < s.start[k+1]; p++ {
				seeders = append(seeders, p)
			}
		}
	}
	if c.polluted > 0 && len(seeders) == 0 {
		return errors.New("massim: polluted titles without a fake-seeding class")
	}
	for t := 0; t < nt; t++ {
		for k := 0; k < s.cfg.SeedOwnersReal; k++ {
			c.realOwners[t] = append(c.realOwners[t], int32(honLo+rng.Intn(honHi-honLo)))
		}
		if int32(t) < c.polluted {
			for k := 0; k < s.cfg.SeedOwnersFake; k++ {
				c.fakeOwners[t] = append(c.fakeOwners[t], seeders[rng.Intn(len(seeders))])
			}
		}
	}
	return nil
}

// sample draws a title by popularity with the caller's stream.
func (c *catalogue) sample(rng *sim.RNG) int32 {
	u := rng.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// hasFake reports whether title t carries a fake version.
func (c *catalogue) hasFake(t int32) bool { return t < c.polluted }

// owners returns the owner list of (t, v).
func (c *catalogue) owners(t int32, v int8) []int32 {
	if v == versionFake {
		return c.fakeOwners[t]
	}
	return c.realOwners[t]
}

// addOwner records p as an owner of (t, v). Full lists replace a random
// slot, so owner lists track the recently active population under a
// hard cap — the bound that keeps the catalogue O(titles), not O(n²).
func (c *catalogue) addOwner(t int32, v int8, p int32, rng *sim.RNG, capacity int) {
	list := c.owners(t, v)
	if len(list) < capacity {
		list = append(list, p)
	} else {
		list[rng.Intn(len(list))] = p
	}
	if v == versionFake {
		c.fakeOwners[t] = list
	} else {
		c.realOwners[t] = list
	}
}

// vote folds a credibility-weighted vote into (t, v)'s tallies.
func (c *catalogue) vote(t int32, v int8, up bool, w float64) {
	switch {
	case v == versionFake && up:
		c.vUpF[t] += w
	case v == versionFake:
		c.vDnF[t] += w
	case up:
		c.vUpR[t] += w
	default:
		c.vDnR[t] += w
	}
}

// decay ages every vote tally.
func (c *catalogue) decay(d float64) {
	for t := range c.vUpR {
		c.vUpR[t] *= d
		c.vDnR[t] *= d
		c.vUpF[t] *= d
		c.vDnF[t] *= d
	}
}
