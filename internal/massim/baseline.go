package massim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mdrep/internal/blue"
	"mdrep/internal/core"
	"mdrep/internal/eigentrust"
	"mdrep/internal/eval"
	"mdrep/internal/multitier"
	"mdrep/internal/sparse"
)

// ClassMean is one estimator's mean score over one class.
type ClassMean struct {
	Class string
	Mean  float64
}

// BaselineResult reports the comparison estimators over the same
// interaction log the massim reputation model consumed.
type BaselineResult struct {
	// EigenTrust means are scaled by n (1.0 = the uniform share), since
	// the raw trust vector sums to one.
	EigenTrust []ClassMean
	// EigenTrustConverged reports power-iteration convergence.
	EigenTrustConverged bool
	// Blue means are raw BLUE trust scores in [0,1].
	Blue []ClassMean
	// Engine means are peer 0's multi-trust reputations from the
	// mirrored core engine (nil unless mirroring ran).
	Engine []ClassMean
}

func (b *BaselineResult) render() string {
	var sb strings.Builder
	line := func(name string, means []ClassMean, suffix string) {
		if means == nil {
			return
		}
		fmt.Fprintf(&sb, "  baseline %-10s", name)
		for _, m := range means {
			fmt.Fprintf(&sb, " %s=%.6f", m.Class, m.Mean)
		}
		sb.WriteString(suffix)
		sb.WriteByte('\n')
	}
	suffix := ""
	if !b.EigenTrustConverged {
		suffix = " (not converged)"
	}
	line("eigentrust", b.EigenTrust, suffix)
	line("blue", b.Blue, "")
	line("engine", b.Engine, "")
	return sb.String()
}

// tierClassifier builds the report's tier classifier, or nil when tier
// bounds are not configured.
func (s *Sim) tierClassifier() *multitier.VecClassifier {
	if len(s.cfg.TierBounds) == 0 {
		return nil
	}
	vc, err := multitier.NewVecClassifier(s.cfg.TierBounds)
	if err != nil {
		return nil
	}
	return vc
}

// classMeansOf averages a per-peer score vector per class.
func (s *Sim) classMeansOf(score []float64) []ClassMean {
	out := make([]ClassMean, len(s.specs))
	for k, sp := range s.specs {
		lo, hi := int(s.start[k]), int(s.start[k+1])
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += score[j]
		}
		out[k] = ClassMean{Class: sp.Name, Mean: sum / float64(hi-lo)}
	}
	return out
}

// runBaselines replays the recorded rating log through the comparison
// estimators. The log is kept in event order; aggregation sorts a copy
// by (rater, target) so the fold order — and hence every floating-point
// sum — is reproducible.
func (s *Sim) runBaselines() (*BaselineResult, error) {
	recs := make([]ratingRec, len(s.log))
	copy(recs, s.log)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].rater != recs[j].rater {
			return recs[i].rater < recs[j].rater
		}
		return recs[i].target < recs[j].target
	})

	// Fold runs of equal (rater, target) into pairwise counts.
	type pair struct{ sat, unsat float64 }
	var samples []blue.Sample
	satM, unsM := sparse.New(s.cfg.N), sparse.New(s.cfg.N)
	for i := 0; i < len(recs); {
		j := i
		var p pair
		for ; j < len(recs) && recs[j].rater == recs[i].rater && recs[j].target == recs[i].target; j++ {
			if recs[j].sat {
				p.sat++
			} else {
				p.unsat++
			}
		}
		samples = append(samples, blue.Sample{
			Rater: int(recs[i].rater), Target: int(recs[i].target),
			Sat: p.sat, Unsat: p.unsat,
		})
		satM.Add(int(recs[i].rater), int(recs[i].target), p.sat)
		unsM.Add(int(recs[i].rater), int(recs[i].target), p.unsat)
		i = j
	}

	res := &BaselineResult{}

	bt, err := blue.Estimate(s.cfg.N, samples, blue.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res.Blue = s.classMeansOf(bt)

	local, err := eigentrust.LocalTrustFromSatisfaction(satM, unsM)
	if err != nil {
		return nil, err
	}
	honLo, honHi := s.ClassRange(len(s.specs) - 1)
	pre := make([]int, 0, 8)
	for p := honLo; p < honHi && len(pre) < 8; p++ {
		pre = append(pre, int(p))
	}
	et, err := eigentrust.Compute(local, eigentrust.DefaultConfig(pre))
	if err != nil {
		return nil, err
	}
	scaled := make([]float64, len(et.Trust))
	for j, v := range et.Trust {
		scaled[j] = v * float64(len(et.Trust))
	}
	res.EigenTrust = s.classMeansOf(scaled)
	res.EigenTrustConverged = et.Converged

	if s.mirror != nil {
		means, err := s.mirror.classMeans(s)
		if err != nil {
			return nil, err
		}
		res.Engine = means
	}
	return res, nil
}

// mirrorEngine is the slice of the trust core the mirror needs; both
// core.Concurrent and core.Sharded satisfy it with bit-identical
// results, so the sharded facade can be dropped in via
// Config.MirrorShards without changing any scenario bound.
type mirrorEngine interface {
	ApplyBatch(evs []core.Event) error
	Reputations(i int, now time.Duration) (map[int]float64, error)
}

// engineMirror feeds the simulator's event stream into the real
// reputation engine through the group-commit batch path, turning the
// engine itself into a baseline estimator at small n.
type engineMirror struct {
	eng mirrorEngine
	buf []core.Event
	now time.Duration
	err error
}

func newEngineMirror(n, shards int) (*engineMirror, error) {
	var eng mirrorEngine
	if shards > 1 {
		s, err := core.NewSharded(n, shards, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		eng = s
	} else {
		c, err := core.NewConcurrentEngine(n, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		eng = c
	}
	return &engineMirror{eng: eng}, nil
}

func mirrorFile(t int32, v int8) eval.FileID {
	return eval.FileID(fmt.Sprintf("t%d.%d", t, v))
}

func (m *engineMirror) download(p, srv, t int32, v int8, now time.Duration) {
	m.buf = append(m.buf, core.Event{
		Kind: core.EventDownload, I: int(p), J: int(srv),
		File: mirrorFile(t, v), Size: 1 << 10, Time: now,
	})
}

func (m *engineMirror) vote(p, t int32, v int8, up bool, now time.Duration) {
	val := 0.0
	if up {
		val = 1.0
	}
	m.buf = append(m.buf, core.Event{
		Kind: core.EventVote, I: int(p), File: mirrorFile(t, v), Value: val, Time: now,
	})
}

func (m *engineMirror) rate(rater, target int32, sat bool) {
	val := 0.0
	if sat {
		val = 1.0
	}
	m.buf = append(m.buf, core.Event{
		Kind: core.EventRateUser, I: int(rater), J: int(target), Value: val,
	})
}

// flush applies the epoch's buffered events in one lock acquisition.
func (m *engineMirror) flush(now time.Duration) {
	m.now = now
	if m.err != nil || len(m.buf) == 0 {
		m.buf = m.buf[:0]
		return
	}
	if err := m.eng.ApplyBatch(m.buf); err != nil {
		m.err = err
	}
	m.buf = m.buf[:0]
}

// classMeans reads peer 0's multi-trust reputation view and averages it
// per class. Peer indices are looked up directly, never ranged over the
// reputation map, so the float fold order is fixed.
func (m *engineMirror) classMeans(s *Sim) ([]ClassMean, error) {
	if m.err != nil {
		return nil, m.err
	}
	reps, err := m.eng.Reputations(0, m.now)
	if err != nil {
		return nil, err
	}
	score := make([]float64, s.cfg.N)
	for j := range score {
		score[j] = reps[j]
	}
	return s.classMeansOf(score), nil
}
