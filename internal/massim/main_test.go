package massim

import (
	"testing"

	"mdrep/internal/testutil"
)

// TestMain enforces the goroutine-leak check over the package tests:
// the simulator is single-threaded by contract, so any goroutine it
// leaves behind is a bug.
func TestMain(m *testing.M) {
	testutil.RunMain(m)
}
