// Package massim is the million-peer discrete-event simulator: a
// single-process, struct-of-arrays model of a reputation-mediated file
// sharing population, driven by a hierarchical timing wheel on the
// virtual clock of internal/sim. Where internal/p2psim runs the paper's
// engine faithfully at hundreds of peers, massim runs a compact
// reputation model at 100k–1M peers, turning the paper's evaluation
// into an attack-resistance regression suite (scenarios: collusion
// rings with front peers, whitewashing rejoin, camouflage voting,
// social-norm strategic agents).
//
// Determinism contract: a (scenario, seed, n) triple reproduces
// byte-for-byte. All randomness flows from seeded per-peer RNG streams
// (sim.RNG.At), the event queue pops in (tick, seq) order, and no
// result-affecting code ranges over a map. The wallclock and detfloat
// analyzers enforce the discipline in CI.
package massim

import (
	"errors"
	"fmt"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/incentive"
	"mdrep/internal/sim"
	"mdrep/internal/titfortat"
)

// Config parameterises a massim run. Scenario Tune hooks adjust it
// before validation.
type Config struct {
	// N is the population size.
	N int
	// Seed drives all randomness.
	Seed uint64
	// Epochs is the number of reputation epochs to simulate.
	Epochs int
	// EpochLen is the virtual time between reputation recomputations.
	EpochLen time.Duration
	// Tick is the timing-wheel resolution.
	Tick time.Duration
	// MeanRequests is the mean number of download requests a peer
	// issues per epoch (exponential inter-arrival times).
	MeanRequests float64
	// Titles is the catalogue size; 0 defaults to max(64, N/10).
	Titles int
	// PollutedFrac is the fraction of the most popular titles that
	// carry a fake version (forced to 0 when no class seeds fakes).
	PollutedFrac float64
	// ZipfExponent skews title popularity.
	ZipfExponent float64
	// VoteProb is the probability an honest peer votes after a
	// download on a contested title.
	VoteProb float64
	// OwnersCap bounds each version's tracked owner list.
	OwnersCap int
	// SeedOwnersReal / SeedOwnersFake are the initial owner counts per
	// version at setup.
	SeedOwnersReal, SeedOwnersFake int
	// CandidateServers is how many owners a requester samples before
	// picking the most reputable one.
	CandidateServers int

	// Alpha, Beta, Gamma blend the service-quality, vote-honesty and
	// contribution dimensions into the scalar reputation (sum to 1).
	Alpha, Beta, Gamma float64
	// PriorRep is the newcomer service-quality prior; PriorWeight its
	// pseudo-count.
	PriorRep, PriorWeight float64
	// ContribHalf is the (decayed) upload count at which the
	// contribution dimension reaches one half.
	ContribHalf float64
	// Decay multiplies every accumulator per epoch, bounding history.
	Decay float64
	// JudgeVotePrior smooths a version's vote score; JudgeVoteWeight is
	// the vote share of the judgement (the rest follows owner counts).
	JudgeVotePrior, JudgeVoteWeight float64

	// Policy maps requester reputation to admission probability
	// (Bandwidth/FullBandwidth) — the incentive differentiation layer.
	Policy incentive.Policy
	// WhitewashBelow is the reputation under which a whitewashing agent
	// discards its identity and rejoins as a newcomer.
	WhitewashBelow float64
	// ExploreProb is the per-epoch probability a strategic agent tests
	// defection; CoopMemory the EWMA weight of its cooperation payoff.
	ExploreProb, CoopMemory float64
	// UseLedger enables the private-history tit-for-tat ledger
	// (titfortat.Ledger) as an admission fast path.
	UseLedger bool
	// TierBounds are the descending multitier.VecClassifier thresholds
	// for the tier distribution report.
	TierBounds []float64

	// Baselines enables the eigentrust / BLUE (and, when MirrorEngine
	// is set, core engine) comparison estimators; they run only when
	// N <= BaselineCap since they materialise pairwise state.
	Baselines   bool
	BaselineCap int
	// MirrorEngine additionally ingests the event stream into a real
	// trust engine via ApplyBatch and reports its per-class
	// reputations. Capped by MirrorCap. MirrorShards > 1 backs the
	// mirror with a core.Sharded facade partitioned across that many
	// shards instead of core.Concurrent; results are bit-identical, so
	// it only exercises the sharded ingest/rebuild paths at scale.
	MirrorEngine bool
	MirrorCap    int
	MirrorShards int
}

// DefaultConfig returns the base scenario parameters shared by the
// scenario library.
func DefaultConfig() Config {
	pol := incentive.DefaultPolicy()
	pol.RefReputation = 0.8
	pol.QuotaThreshold = 0.5
	pol.MinBandwidthFraction = 0.15
	return Config{
		N:                10000,
		Seed:             1,
		Epochs:           12,
		EpochLen:         6 * time.Hour,
		Tick:             time.Second,
		MeanRequests:     2,
		Titles:           0,
		PollutedFrac:     0.25,
		ZipfExponent:     0.8,
		VoteProb:         0.6,
		OwnersCap:        24,
		SeedOwnersReal:   4,
		SeedOwnersFake:   6,
		CandidateServers: 4,
		Alpha:            0.5,
		Beta:             0.25,
		Gamma:            0.25,
		PriorRep:         0.3,
		PriorWeight:      3,
		ContribHalf:      4,
		Decay:            0.7,
		JudgeVotePrior:   1,
		JudgeVoteWeight:  0.8,
		Policy:           pol,
		WhitewashBelow:   0.25,
		ExploreProb:      0.05,
		CoopMemory:       0.2,
		TierBounds:       []float64{0.7, 0.45},
		BaselineCap:      20000,
		MirrorCap:        2000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.N < 8:
		return errors.New("massim: need at least 8 peers")
	case c.Epochs < 1:
		return errors.New("massim: need at least 1 epoch")
	case c.EpochLen <= 0:
		return errors.New("massim: non-positive epoch length")
	case c.Tick <= 0:
		return errors.New("massim: non-positive tick")
	case c.Tick > c.EpochLen:
		return errors.New("massim: tick exceeds epoch length")
	case c.MeanRequests <= 0:
		return errors.New("massim: non-positive request rate")
	case c.Titles < 0:
		return errors.New("massim: negative title count")
	case c.PollutedFrac < 0 || c.PollutedFrac > 1:
		return errors.New("massim: polluted fraction outside [0,1]")
	case c.ZipfExponent < 0:
		return errors.New("massim: negative Zipf exponent")
	case c.VoteProb < 0 || c.VoteProb > 1:
		return errors.New("massim: vote probability outside [0,1]")
	case c.OwnersCap < 2:
		return errors.New("massim: owners cap below 2")
	case c.SeedOwnersReal < 1 || c.SeedOwnersFake < 1:
		return errors.New("massim: need at least one seed owner per version")
	case c.SeedOwnersReal > c.OwnersCap || c.SeedOwnersFake > c.OwnersCap:
		return errors.New("massim: seed owners exceed owners cap")
	case c.CandidateServers < 1:
		return errors.New("massim: need at least one candidate server")
	case c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0:
		return errors.New("massim: negative dimension weight")
	case !close1(c.Alpha + c.Beta + c.Gamma):
		return errors.New("massim: dimension weights do not sum to 1")
	case c.PriorRep < 0 || c.PriorRep > 1:
		return errors.New("massim: prior reputation outside [0,1]")
	case c.PriorWeight <= 0:
		return errors.New("massim: non-positive prior weight")
	case c.ContribHalf <= 0:
		return errors.New("massim: non-positive contribution half point")
	case c.Decay <= 0 || c.Decay > 1:
		return errors.New("massim: decay outside (0,1]")
	case c.JudgeVotePrior <= 0:
		return errors.New("massim: non-positive judge vote prior")
	case c.JudgeVoteWeight < 0 || c.JudgeVoteWeight > 1:
		return errors.New("massim: judge vote weight outside [0,1]")
	case c.WhitewashBelow < 0 || c.WhitewashBelow > 1:
		return errors.New("massim: whitewash threshold outside [0,1]")
	case c.ExploreProb < 0 || c.ExploreProb > 1:
		return errors.New("massim: explore probability outside [0,1]")
	case c.CoopMemory <= 0 || c.CoopMemory > 1:
		return errors.New("massim: cooperation memory outside (0,1]")
	case c.BaselineCap < 0 || c.MirrorCap < 0:
		return errors.New("massim: negative baseline cap")
	case c.MirrorShards < 0 || c.MirrorShards > core.MaxShards:
		return errors.New("massim: mirror shard count out of range")
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if len(c.TierBounds) > 0 {
		for k, b := range c.TierBounds {
			if b <= 0 || b >= 1 || (k > 0 && b >= c.TierBounds[k-1]) {
				return errors.New("massim: tier bounds must be strictly descending in (0,1)")
			}
		}
	}
	return nil
}

func close1(v float64) bool { return v > 1-1e-9 && v < 1+1e-9 }

func (c Config) titleCount() int {
	if c.Titles > 0 {
		return c.Titles
	}
	t := c.N / 10
	if t < 64 {
		t = 64
	}
	return t
}

// Event kinds on the wheel.
const (
	evRequest uint8 = iota
	evEpoch
)

// wev is the compact wheel payload: no closures, 8 bytes per event.
type wev struct {
	kind uint8
	peer int32
}

// ratingRec is one log entry kept for the baseline estimators.
type ratingRec struct {
	rater, target int32
	sat           bool
}

// Sim is one simulation instance. All peer state is struct-of-arrays:
// the per-peer footprint is ~90 bytes plus shared catalogue state, which
// is what holds 1M peers under the memory budget.
type Sim struct {
	cfg Config
	scn Scenario

	wheel  *sim.Wheel[wev]
	agents []Agent
	specs  []ClassSpec
	start  []int32 // class k occupies peers [start[k], start[k+1])

	// Per-peer state (struct of arrays).
	class    []uint8
	rng      []sim.RNG
	wSat     []float64 // credibility-weighted satisfactory ratings
	wUns     []float64 // credibility-weighted unsatisfactory ratings
	honGood  []float64 // votes agreeing with ground truth (decayed)
	honBad   []float64 // votes disagreeing (decayed)
	uploads  []float64 // serviced downloads (decayed)
	rep      []float64 // blended reputation, recomputed per epoch
	cred     []float64 // vote/rating credibility = rep * honesty
	gen      []uint32  // whitewash identity generation
	epochGot []uint32  // downloads obtained this epoch (strategic payoff)
	mode     []uint8   // strategic stance (modeCoop / modeDefect)
	coopAvg  []float32 // EWMA of cooperative per-epoch payoff

	titles catalogue
	ledger *titfortat.Ledger

	// Per-class counters.
	got, denied, fakeGot, pollGot, pollFake []uint64
	misses, rejoins                         uint64

	epochsDone int
	done       bool
	meanGap    float64 // mean request inter-arrival in virtual ns

	// Reputation trajectory: perEpochRep[e][k] = mean rep of class k.
	perEpochRep [][]float64

	log    []ratingRec // nil unless baselines collect
	mirror *engineMirror

	obs *simObs
}

// NewSim builds a simulator for the scenario. The scenario's Tune hook
// has the last word on the configuration before validation.
func NewSim(cfg Config, scn Scenario) (*Sim, error) {
	if scn == nil {
		return nil, errors.New("massim: nil scenario")
	}
	scn.Tune(&cfg)
	specs := scn.Specs()
	if len(specs) < 1 {
		return nil, fmt.Errorf("massim: scenario %s has no classes", scn.Name())
	}
	if len(specs) > 32 {
		return nil, fmt.Errorf("massim: scenario %s has %d classes, want <= 32", scn.Name(), len(specs))
	}
	seedsFakes := false
	for _, sp := range specs {
		if sp.SeedsFakes {
			seedsFakes = true
		}
	}
	if !seedsFakes {
		cfg.PollutedFrac = 0
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	n := cfg.N
	s := &Sim{
		cfg:      cfg,
		scn:      scn,
		specs:    specs,
		class:    make([]uint8, n),
		rng:      make([]sim.RNG, n),
		wSat:     make([]float64, n),
		wUns:     make([]float64, n),
		honGood:  make([]float64, n),
		honBad:   make([]float64, n),
		uploads:  make([]float64, n),
		rep:      make([]float64, n),
		cred:     make([]float64, n),
		gen:      make([]uint32, n),
		epochGot: make([]uint32, n),
		mode:     make([]uint8, n),
		coopAvg:  make([]float32, n),
		got:      make([]uint64, len(specs)),
		denied:   make([]uint64, len(specs)),
		fakeGot:  make([]uint64, len(specs)),
		pollGot:  make([]uint64, len(specs)),
		pollFake: make([]uint64, len(specs)),
		meanGap:  float64(cfg.EpochLen) / cfg.MeanRequests,
	}

	// Class assignment: contiguous blocks in spec order; the last spec
	// takes the remainder (by convention the honest majority).
	s.start = make([]int32, len(specs)+1)
	next := 0
	for k, sp := range specs {
		s.start[k] = int32(next)
		count := int(sp.Frac * float64(n))
		if k == len(specs)-1 {
			count = n - next
		}
		if count < 1 {
			return nil, fmt.Errorf("massim: class %s empty at n=%d", sp.Name, n)
		}
		if sp.Agent == nil {
			return nil, fmt.Errorf("massim: class %s has no agent", sp.Name)
		}
		for i := 0; i < count; i++ {
			s.class[next+i] = uint8(k)
		}
		next += count
		s.agents = append(s.agents, sp.Agent)
	}
	s.start[len(specs)] = int32(n)
	if specs[len(specs)-1].Adversary {
		return nil, errors.New("massim: last class must be the honest majority")
	}

	base := sim.NewRNG(cfg.Seed)
	peerBase := base.Stream("peer")
	for i := 0; i < n; i++ {
		s.rng[i] = peerBase.At(uint64(i))
	}

	setup := base.Stream("setup")
	if err := s.buildCatalogue(&setup); err != nil {
		return nil, err
	}

	if cfg.UseLedger {
		l, err := titfortat.NewLedger(n)
		if err != nil {
			return nil, err
		}
		s.ledger = l
	}
	if cfg.Baselines && n <= cfg.BaselineCap {
		s.log = make([]ratingRec, 0, 1024)
	}
	if cfg.Baselines && cfg.MirrorEngine && n <= cfg.MirrorCap {
		m, err := newEngineMirror(n, cfg.MirrorShards)
		if err != nil {
			return nil, err
		}
		s.mirror = m
	}

	// Initial reputations: the newcomer point of the blend.
	for j := 0; j < n; j++ {
		s.recomputePeer(j)
	}

	wheel, err := sim.NewWheel[wev](nil, cfg.Tick)
	if err != nil {
		return nil, err
	}
	s.wheel = wheel
	for p := 0; p < n; p++ {
		s.scheduleNext(int32(p))
	}
	wheel.Schedule(cfg.EpochLen, wev{kind: evEpoch})

	s.obs = newSimObs(scenarioLabel(scn.Name()))
	return s, nil
}

// scheduleNext books peer p's next request from its own RNG stream.
//
//mdrep:hotpath
func (s *Sim) scheduleNext(p int32) {
	gap := time.Duration(s.rng[p].ExpFloat64() * s.meanGap)
	s.wheel.Schedule(s.wheel.Now()+gap, wev{kind: evRequest, peer: p})
}

// Step executes one event. It reports false once the final epoch has
// been processed (remaining scheduled requests are abandoned).
//
//mdrep:hotpath
func (s *Sim) Step() bool {
	if s.done {
		return false
	}
	now, ev, ok := s.wheel.Next()
	if !ok {
		s.done = true
		return false
	}
	switch ev.kind {
	case evRequest:
		s.handleRequest(ev.peer)
	case evEpoch:
		s.epochTick(now)
		if s.epochsDone >= s.cfg.Epochs {
			s.done = true
			return false
		}
		s.wheel.Schedule(now+s.cfg.EpochLen, wev{kind: evEpoch})
	}
	return true
}

// Run drives a simulation to completion and returns its result.
func Run(cfg Config, scn Scenario) (*Result, error) {
	s, err := NewSim(cfg, scn)
	if err != nil {
		return nil, err
	}
	for s.Step() {
	}
	return s.Finish()
}

// handleRequest simulates one download request by peer p.
//
//mdrep:hotpath
func (s *Sim) handleRequest(p int32) {
	s.scheduleNext(p)
	s.obs.request()
	rng := &s.rng[p]
	cls := s.class[p]
	ag := s.agents[cls]

	t := s.titles.sample(rng)
	v := ag.PickVersion(s, p, t)
	if v < 0 {
		v = s.judgeVersion(t)
	} else if v == versionFake && !s.titles.hasFake(t) {
		v = versionReal
	}
	srv := s.pickServer(p, t, v)
	if srv < 0 {
		s.misses++
		return
	}
	sag := s.agents[s.class[srv]]
	if !sag.Admit(s, srv, p) {
		s.denied[cls]++
		s.obs.denied()
		return
	}

	authentic := v == versionReal
	s.got[cls]++
	s.epochGot[p]++
	s.uploads[srv]++
	polluted := s.titles.hasFake(t)
	if polluted {
		s.pollGot[cls]++
		if !authentic {
			s.pollFake[cls]++
		}
	}
	if !authentic {
		s.fakeGot[cls]++
		s.obs.fake()
	}
	if s.ledger != nil {
		_ = s.ledger.RecordDownload(int(p), int(srv), 1)
	}
	if s.mirror != nil {
		s.mirror.download(p, srv, t, v, s.wheel.Now())
	}

	if authentic || ag.KeepFake() {
		s.titles.addOwner(t, v, p, rng, s.cfg.OwnersCap)
	}
	if sat, cast := ag.Rate(s, p, srv, authentic); cast {
		s.addRating(p, srv, sat)
	}
	if polluted {
		if up, cast := ag.Vote(s, p, t, authentic); cast {
			s.titles.vote(t, v, up, s.cred[p])
			if up == authentic {
				s.honGood[p]++
			} else {
				s.honBad[p]++
			}
			if s.mirror != nil {
				s.mirror.vote(p, t, v, up, s.wheel.Now())
			}
		}
	}
	ag.AfterRequest(s, p)
}

// addRating folds a service rating into the target's accumulators at
// the rater's current credibility, and logs it for the baselines.
//
//mdrep:hotpath
func (s *Sim) addRating(rater, target int32, sat bool) {
	w := s.cred[rater]
	if sat {
		s.wSat[target] += w
	} else {
		s.wUns[target] += w
	}
	if s.log != nil {
		s.log = append(s.log, ratingRec{rater: rater, target: target, sat: sat})
	}
	if s.mirror != nil {
		s.mirror.rate(rater, target, sat)
	}
}

// Praise records a fabricated satisfactory rating — the collusion
// primitive. It costs the praiser nothing but carries only the
// praiser's credibility.
func (s *Sim) Praise(rater, target int32) {
	if rater == target {
		return
	}
	s.addRating(rater, target, true)
	s.obs.praise()
}

// judgeVersion is the honest judgement: score both versions of t by
// credibility-weighted votes blended with owner mass, pick the best
// (ties go to the real version).
func (s *Sim) judgeVersion(t int32) int8 {
	if !s.titles.hasFake(t) {
		return versionReal
	}
	ownR := len(s.titles.realOwners[t])
	ownF := len(s.titles.fakeOwners[t])
	scoreR := s.judgeScore(s.titles.vUpR[t], s.titles.vDnR[t], ownR, ownF)
	scoreF := s.judgeScore(s.titles.vUpF[t], s.titles.vDnF[t], ownF, ownR)
	if scoreF > scoreR {
		return versionFake
	}
	return versionReal
}

func (s *Sim) judgeScore(up, dn float64, own, otherOwn int) float64 {
	p := s.cfg.JudgeVotePrior
	votes := (up + p*0.5) / (up + dn + p)
	owners := float64(own) / float64(own+otherOwn)
	w := s.cfg.JudgeVoteWeight
	return w*votes + (1-w)*owners
}

// pickServer samples candidate owners of (t, v) with p's stream and
// returns the most reputable non-self owner (ties to the lower id), or
// -1 when none is available.
func (s *Sim) pickServer(p, t int32, v int8) int32 {
	owners := s.titles.owners(t, v)
	if len(owners) == 0 {
		return -1
	}
	rng := &s.rng[p]
	best := int32(-1)
	for k := 0; k < s.cfg.CandidateServers; k++ {
		cand := owners[rng.Intn(len(owners))]
		if cand == p {
			continue
		}
		if best < 0 || s.rep[cand] > s.rep[best] || (s.rep[cand] == s.rep[best] && cand < best) {
			best = cand
		}
	}
	return best
}

// AdmitByPolicy is the honest admission rule: the incentive policy maps
// the requester's reputation to a bandwidth share, used here as the
// probability of service. The draw comes from the server's stream.
func (s *Sim) AdmitByPolicy(server, requester int32) bool {
	prob := s.cfg.Policy.Bandwidth(s.rep[requester]) / s.cfg.Policy.FullBandwidth
	if prob >= 1 {
		return true
	}
	return s.rng[server].Float64() < prob
}

// ResetPeer wipes p's reputation accumulators back to the newcomer
// state — the whitewash rejoin. The peer keeps its slot (a new identity
// occupies the old index) but loses all standing.
func (s *Sim) ResetPeer(p int32) {
	s.wSat[p] = 0
	s.wUns[p] = 0
	s.honGood[p] = 0
	s.honBad[p] = 0
	s.uploads[p] = 0
	s.gen[p]++
	s.rejoins++
	s.recomputePeer(int(p))
	s.obs.rejoin()
}

// recomputePeer re-derives rep and cred from the accumulators.
func (s *Sim) recomputePeer(j int) {
	c := &s.cfg
	sq := (s.wSat[j] + c.PriorWeight*c.PriorRep) / (s.wSat[j] + s.wUns[j] + c.PriorWeight)
	hon := (s.honGood[j] + 1) / (s.honGood[j] + s.honBad[j] + 2)
	contrib := s.uploads[j] / (s.uploads[j] + c.ContribHalf)
	s.rep[j] = c.Alpha*sq + c.Beta*hon + c.Gamma*contrib
	s.cred[j] = s.rep[j] * hon
}

// epochTick is the reputation epoch boundary: agent hooks, recompute,
// trajectory recording, mirror flush, decay.
func (s *Sim) epochTick(now time.Duration) {
	span := s.obs.epochSpan()
	n := s.cfg.N
	// Agent epoch hooks run first, reading last epoch's reputations
	// and payoffs (whitewash rejoin decisions, strategic stance moves).
	for p := 0; p < n; p++ {
		s.agents[s.class[p]].EpochTick(s, int32(p))
	}
	for j := 0; j < n; j++ {
		s.recomputePeer(j)
	}
	// Record the per-class mean reputation trajectory.
	row := make([]float64, len(s.specs))
	for k := range s.specs {
		lo, hi := int(s.start[k]), int(s.start[k+1])
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += s.rep[j]
		}
		row[k] = sum / float64(hi-lo)
	}
	s.perEpochRep = append(s.perEpochRep, row)
	if s.mirror != nil {
		s.mirror.flush(now)
	}
	// Decay bounds every accumulator's history.
	d := s.cfg.Decay
	for j := 0; j < n; j++ {
		s.wSat[j] *= d
		s.wUns[j] *= d
		s.honGood[j] *= d
		s.honBad[j] *= d
		s.uploads[j] *= d
		s.epochGot[j] = 0
	}
	s.titles.decay(d)
	s.epochsDone++
	s.obs.epoch()
	span.End()
}

// Rep returns peer p's current reputation (read-only agent hook API).
func (s *Sim) Rep(p int32) float64 { return s.rep[p] }

// Cred returns peer p's current credibility.
func (s *Sim) Cred(p int32) float64 { return s.cred[p] }

// RNGFor returns peer p's private RNG stream.
func (s *Sim) RNGFor(p int32) *sim.RNG { return &s.rng[p] }

// Config returns the effective (scenario-tuned) configuration.
func (s *Sim) Config() Config { return s.cfg }

// EpochGot returns how many downloads p obtained this epoch.
func (s *Sim) EpochGot(p int32) uint32 { return s.epochGot[p] }

// Ledger returns the tit-for-tat ledger, or nil when disabled.
func (s *Sim) Ledger() *titfortat.Ledger { return s.ledger }

// ClassRange returns the peer index range [lo, hi) of class k.
func (s *Sim) ClassRange(k int) (lo, hi int32) {
	return s.start[k], s.start[k+1]
}

// ClassOf returns the class index of peer p.
func (s *Sim) ClassOf(p int32) int { return int(s.class[p]) }

// Mode returns strategic peer p's stance array slot.
func (s *Sim) Mode(p int32) uint8 { return s.mode[p] }

// SetMode sets strategic peer p's stance.
func (s *Sim) SetMode(p int32, m uint8) { s.mode[p] = m }

// CoopAvg returns strategic peer p's cooperation payoff EWMA.
func (s *Sim) CoopAvg(p int32) float32 { return s.coopAvg[p] }

// SetCoopAvg updates strategic peer p's cooperation payoff EWMA.
func (s *Sim) SetCoopAvg(p int32, v float32) { s.coopAvg[p] = v }
