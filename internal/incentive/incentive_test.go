package incentive

import (
	"testing"
	"time"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	mutations := []func(*Policy){
		func(p *Policy) { p.MaxOffset = -time.Second },
		func(p *Policy) { p.RefReputation = 0 },
		func(p *Policy) { p.QuotaThreshold = -1 },
		func(p *Policy) { p.FullBandwidth = 0 },
		func(p *Policy) { p.MinBandwidthFraction = 2 },
	}
	for i, mutate := range mutations {
		p := DefaultPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d validated", i)
		}
	}
}

func TestOffsetGrowsWithReputation(t *testing.T) {
	p := DefaultPolicy()
	if p.Offset(0) != 0 {
		t.Fatalf("zero reputation offset = %v", p.Offset(0))
	}
	if p.Offset(-1) != 0 {
		t.Fatalf("negative reputation offset = %v", p.Offset(-1))
	}
	half := p.Offset(p.RefReputation / 2)
	full := p.Offset(p.RefReputation)
	over := p.Offset(p.RefReputation * 10)
	if half <= 0 || half >= full {
		t.Fatalf("offset not increasing: half=%v full=%v", half, full)
	}
	if full != p.MaxOffset || over != p.MaxOffset {
		t.Fatalf("offset not capped: full=%v over=%v", full, over)
	}
}

func TestBandwidthQuota(t *testing.T) {
	p := DefaultPolicy()
	if got := p.Bandwidth(p.QuotaThreshold); got != p.FullBandwidth {
		t.Fatalf("at-threshold bandwidth %v, want full", got)
	}
	if got := p.Bandwidth(1); got != p.FullBandwidth {
		t.Fatalf("high-reputation bandwidth %v, want full", got)
	}
	zero := p.Bandwidth(0)
	wantFloor := p.FullBandwidth * p.MinBandwidthFraction
	if zero != wantFloor {
		t.Fatalf("zero-reputation bandwidth %v, want floor %v", zero, wantFloor)
	}
	mid := p.Bandwidth(p.QuotaThreshold / 2)
	if mid <= zero || mid >= p.FullBandwidth {
		t.Fatalf("quota not interpolating: %v", mid)
	}
}

func TestTransferTime(t *testing.T) {
	p := DefaultPolicy()
	fast := p.TransferTime(1, 1<<20)
	slow := p.TransferTime(0, 1<<20)
	if fast >= slow {
		t.Fatalf("high reputation transfer (%v) not faster than low (%v)", fast, slow)
	}
	if fast != time.Second {
		t.Fatalf("1 MiB at 1 MiB/s = %v, want 1s", fast)
	}
}

func TestQueueFIFOAtEqualReputation(t *testing.T) {
	q, err := NewQueue(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := q.Push(Request{Requester: i, Arrival: time.Duration(i) * time.Second, Reputation: 0})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		r, ok := q.Pop()
		if !ok || r.Requester != i {
			t.Fatalf("pop %d: got %+v", i, r)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueHighReputationOvertakes(t *testing.T) {
	p := DefaultPolicy()
	q, err := NewQueue(p)
	if err != nil {
		t.Fatal(err)
	}
	// Low-reputation request arrives first; high-reputation request
	// arrives 5 minutes later but carries a 10-minute offset.
	if err := q.Push(Request{Requester: 1, Arrival: 0, Reputation: 0}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Request{Requester: 2, Arrival: 5 * time.Minute, Reputation: p.RefReputation}); err != nil {
		t.Fatal(err)
	}
	first, _ := q.Pop()
	if first.Requester != 2 {
		t.Fatalf("high-reputation requester did not overtake: first = %d", first.Requester)
	}
	if first.Effective() != 5*time.Minute-p.MaxOffset {
		t.Fatalf("effective time = %v", first.Effective())
	}
}

func TestQueueOffsetBounded(t *testing.T) {
	p := DefaultPolicy()
	q, err := NewQueue(p)
	if err != nil {
		t.Fatal(err)
	}
	// A request arriving much earlier cannot be overtaken even by max
	// reputation.
	if err := q.Push(Request{Requester: 1, Arrival: 0, Reputation: 0}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Request{Requester: 2, Arrival: time.Hour, Reputation: 1}); err != nil {
		t.Fatal(err)
	}
	first, _ := q.Pop()
	if first.Requester != 1 {
		t.Fatal("offset exceeded MaxOffset")
	}
}

func TestQueuePeekAndLen(t *testing.T) {
	q, err := NewQueue(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	if err := q.Push(Request{Requester: 7}); err != nil {
		t.Fatal(err)
	}
	r, ok := q.Peek()
	if !ok || r.Requester != 7 {
		t.Fatalf("peek = %+v, %v", r, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after peek", q.Len())
	}
}

func TestQueueRejectsNegativeSize(t *testing.T) {
	q, err := NewQueue(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Request{Size: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestServerServiceDifferentiation(t *testing.T) {
	p := DefaultPolicy()
	s, err := NewServer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two identical requests except reputation; the trusted one arrives
	// slightly later yet finishes first and transfers faster.
	if err := s.Enqueue(Request{Requester: 1, Size: 10 << 20, Arrival: 0, Reputation: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(Request{Requester: 2, Size: 10 << 20, Arrival: time.Minute, Reputation: p.RefReputation}); err != nil {
		t.Fatal(err)
	}
	done := s.ServeAll()
	if len(done) != 2 {
		t.Fatalf("served %d requests", len(done))
	}
	if done[0].Request.Requester != 2 {
		t.Fatalf("trusted requester served second: %+v", done[0].Request)
	}
	trustedXfer := done[0].Finish - done[0].Start
	untrustedXfer := done[1].Finish - done[1].Start
	if trustedXfer >= untrustedXfer {
		t.Fatalf("quota inert: trusted %v, untrusted %v", trustedXfer, untrustedXfer)
	}
}

func TestServerSequentialNoOverlap(t *testing.T) {
	s, err := NewServer(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(Request{Requester: i, Size: 1 << 20, Reputation: 1}); err != nil {
			t.Fatal(err)
		}
	}
	done := s.ServeAll()
	for i := 1; i < len(done); i++ {
		if done[i].Start < done[i-1].Finish {
			t.Fatalf("transfers overlap: %+v then %+v", done[i-1], done[i])
		}
	}
}

func TestServerRespectsArrivalTime(t *testing.T) {
	s, err := NewServer(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(Request{Requester: 1, Size: 1 << 20, Arrival: time.Hour, Reputation: 1}); err != nil {
		t.Fatal(err)
	}
	done := s.ServeAll()
	if done[0].Start != time.Hour {
		t.Fatalf("transfer started at %v before request arrived", done[0].Start)
	}
	if w := done[0].Wait(); w != 0 {
		t.Fatalf("wait = %v, want 0", w)
	}
}

func TestTokenBucketStartsFull(t *testing.T) {
	b, err := NewTokenBucket(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0, 1000) {
		t.Fatal("full bucket denied its burst")
	}
	if b.Allow(0, 1) {
		t.Fatal("empty bucket allowed a transfer")
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b, err := NewTokenBucket(100, 1000) // 100 B/s
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0, 1000) {
		t.Fatal("initial burst denied")
	}
	if b.Allow(time.Second, 200) {
		t.Fatal("allowed more than refilled (100 B after 1s)")
	}
	if !b.Allow(2*time.Second, 200) {
		t.Fatal("denied after sufficient refill")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	b, err := NewTokenBucket(100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0, 500) {
		t.Fatal("burst denied")
	}
	// A very long idle period must not accumulate beyond the burst.
	if b.Allow(time.Hour, 501) {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestTokenBucketDelayUntil(t *testing.T) {
	b, err := NewTokenBucket(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(0, 100) {
		t.Fatal("burst denied")
	}
	d := b.DelayUntil(0, 50)
	if d != 500*time.Millisecond {
		t.Fatalf("DelayUntil = %v, want 500ms", d)
	}
	if d := b.DelayUntil(10*time.Second, 50); d != 0 {
		t.Fatalf("refilled bucket reports delay %v", d)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 10); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(10, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestTokenBucketTimeNeverRewinds(t *testing.T) {
	b, err := NewTokenBucket(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(10*time.Second, 100) {
		t.Fatal("burst denied")
	}
	// An out-of-order earlier timestamp must not mint tokens.
	if b.Allow(5*time.Second, 50) {
		t.Fatal("rewound clock minted tokens")
	}
}

func TestPolicyBucketFor(t *testing.T) {
	p := DefaultPolicy()
	full, err := p.BucketFor(1)
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := p.BucketFor(0)
	if err != nil {
		t.Fatal(err)
	}
	// One second of traffic at each quota.
	if !full.Allow(0, int64(p.FullBandwidth)) {
		t.Fatal("full-reputation bucket too small")
	}
	if throttled.Allow(0, int64(p.FullBandwidth)) {
		t.Fatal("throttled bucket allowed full-bandwidth burst")
	}
}
