// Package incentive implements the trust-based incentive mechanism of
// §3.4: service differentiation keyed on the requester's reputation.
// High-reputation requesters "add to their request time a negative offset
// whose magnitude grows with their reputation", moving them forward in the
// upload queue; low-reputation requesters are throttled by a bandwidth
// quota. Because reputation rises with uploading real files, voting,
// honest ranking and fast fake-file deletion, the differentiation closes
// the loop that makes users feed the trust system.
package incentive

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Policy maps reputation to queueing offset and bandwidth quota.
type Policy struct {
	// MaxOffset is the largest negative queueing offset (granted at
	// reputation >= RefReputation).
	MaxOffset time.Duration
	// RefReputation is the reputation granting the full offset; offsets
	// scale linearly below it. Reputations here are RM row values, which
	// are small (they sum to <= 1 across all peers), so the reference is
	// correspondingly small.
	RefReputation float64
	// QuotaThreshold is the reputation below which the bandwidth quota
	// applies.
	QuotaThreshold float64
	// FullBandwidth is the per-transfer bandwidth (bytes/sec) granted to
	// requesters above the threshold.
	FullBandwidth float64
	// MinBandwidthFraction floors the quota so zero-reputation newcomers
	// can still bootstrap (a strict zero would re-create the free-rider
	// cold-start problem).
	MinBandwidthFraction float64
}

// DefaultPolicy returns the experiment defaults: up to 10 minutes of queue
// advantage and a quota down to 10% of full bandwidth.
func DefaultPolicy() Policy {
	return Policy{
		MaxOffset:            10 * time.Minute,
		RefReputation:        0.05,
		QuotaThreshold:       0.005,
		FullBandwidth:        1 << 20, // 1 MiB/s
		MinBandwidthFraction: 0.1,
	}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxOffset < 0 {
		return errors.New("incentive: negative max offset")
	}
	if p.RefReputation <= 0 {
		return errors.New("incentive: non-positive reference reputation")
	}
	if p.QuotaThreshold < 0 {
		return errors.New("incentive: negative quota threshold")
	}
	if p.FullBandwidth <= 0 {
		return errors.New("incentive: non-positive bandwidth")
	}
	if p.MinBandwidthFraction < 0 || p.MinBandwidthFraction > 1 {
		return errors.New("incentive: bandwidth fraction outside [0,1]")
	}
	return nil
}

// Offset returns the negative queueing offset for a reputation: zero at
// reputation zero, growing linearly to MaxOffset at RefReputation.
func (p Policy) Offset(reputation float64) time.Duration {
	if reputation <= 0 {
		return 0
	}
	frac := reputation / p.RefReputation
	if frac > 1 {
		frac = 1
	}
	return time.Duration(float64(p.MaxOffset) * frac)
}

// Bandwidth returns the granted transfer bandwidth (bytes/sec) for a
// reputation. Above the threshold the full bandwidth applies; below it the
// quota scales linearly down to the floor.
func (p Policy) Bandwidth(reputation float64) float64 {
	if reputation >= p.QuotaThreshold {
		return p.FullBandwidth
	}
	floor := p.FullBandwidth * p.MinBandwidthFraction
	if p.QuotaThreshold <= 0 {
		return p.FullBandwidth
	}
	frac := reputation / p.QuotaThreshold
	if frac < 0 {
		frac = 0
	}
	return floor + (p.FullBandwidth-floor)*frac
}

// TransferTime returns how long size bytes take at the reputation's quota.
func (p Policy) TransferTime(reputation float64, size int64) time.Duration {
	bw := p.Bandwidth(reputation)
	return time.Duration(float64(size) / bw * float64(time.Second))
}

// Request is a pending download request at a serving peer.
type Request struct {
	// Requester is the peer asking for the upload.
	Requester int
	// File names the requested file (opaque to the queue).
	File string
	// Size is the requested bytes.
	Size int64
	// Arrival is the request's arrival time at the server.
	Arrival time.Duration
	// Reputation is the server's reputation view of the requester at
	// enqueue time.
	Reputation float64
	// effective = Arrival − Offset(Reputation); the queue orders on it.
	effective time.Duration
	seq       uint64
	index     int
}

// Effective returns the reputation-adjusted queue position time.
func (r *Request) Effective() time.Duration { return r.effective }

// Queue is the server-side upload queue: a priority queue on effective
// request time, so a high-reputation requester arriving late can overtake
// earlier low-reputation requests, exactly the differentiation of §3.4.
type Queue struct {
	policy Policy
	seq    uint64
	heap   requestHeap
}

// NewQueue builds an empty queue under the given policy.
func NewQueue(policy Policy) (*Queue, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Queue{policy: policy}, nil
}

// Policy returns the queue's policy.
func (q *Queue) Policy() Policy { return q.policy }

// Len returns the number of waiting requests.
func (q *Queue) Len() int { return q.heap.Len() }

// Push enqueues a request, computing its effective time.
func (q *Queue) Push(r Request) error {
	if r.Size < 0 {
		return fmt.Errorf("incentive: negative size %d", r.Size)
	}
	r.effective = r.Arrival - q.policy.Offset(r.Reputation)
	q.seq++
	r.seq = q.seq
	rc := r
	heap.Push(&q.heap, &rc)
	return nil
}

// Pop dequeues the request with the earliest effective time; ok is false
// when the queue is empty.
func (q *Queue) Pop() (Request, bool) {
	if q.heap.Len() == 0 {
		return Request{}, false
	}
	r, ok := heap.Pop(&q.heap).(*Request)
	if !ok {
		return Request{}, false
	}
	return *r, true
}

// Peek returns the next request without removing it.
func (q *Queue) Peek() (Request, bool) {
	if q.heap.Len() == 0 {
		return Request{}, false
	}
	return *q.heap[0], true
}

type requestHeap []*Request

func (h requestHeap) Len() int { return len(h) }

func (h requestHeap) Less(i, j int) bool {
	if h[i].effective != h[j].effective {
		return h[i].effective < h[j].effective
	}
	return h[i].seq < h[j].seq
}

func (h requestHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *requestHeap) Push(x any) {
	r, ok := x.(*Request)
	if !ok {
		return
	}
	r.index = len(*h)
	*h = append(*h, r)
}

func (h *requestHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// Server simulates one uploader serving its queue sequentially at the
// per-requester quota bandwidth; it reports per-request completion times
// so experiments can measure the delay split between classes (E2).
type Server struct {
	queue *Queue
	// busyUntil is when the current transfer finishes.
	busyUntil time.Duration
}

// NewServer wraps a queue.
func NewServer(policy Policy) (*Server, error) {
	q, err := NewQueue(policy)
	if err != nil {
		return nil, err
	}
	return &Server{queue: q}, nil
}

// Enqueue adds a request.
func (s *Server) Enqueue(r Request) error { return s.queue.Push(r) }

// Completion is the outcome of serving one request.
type Completion struct {
	Request Request
	// Start is when the transfer began.
	Start time.Duration
	// Finish is when the transfer completed.
	Finish time.Duration
}

// Wait returns the queueing delay experienced by the requester.
func (c Completion) Wait() time.Duration { return c.Start - c.Request.Arrival }

// ServeAll drains the queue, serving one transfer at a time in effective
// (reputation-adjusted) order, and returns completions in service order.
// Each transfer starts at the later of the previous finish and its own
// arrival, so a periodic caller reconstructs the schedule a continuously
// serving uploader would have produced.
func (s *Server) ServeAll() []Completion {
	out := make([]Completion, 0, s.queue.Len())
	for {
		r, ok := s.queue.Pop()
		if !ok {
			return out
		}
		start := s.busyUntil
		if r.Arrival > start {
			start = r.Arrival
		}
		finish := start + s.queue.Policy().TransferTime(r.Reputation, r.Size)
		s.busyUntil = finish
		out = append(out, Completion{Request: r, Start: start, Finish: finish})
	}
}

// TokenBucket enforces a bandwidth quota over time: tokens are bytes,
// refilled at the granted rate up to a burst cap. Uploaders use one bucket
// per low-reputation requester to hold them to Policy.Bandwidth even
// across many small transfers.
type TokenBucket struct {
	rate   float64 // bytes per second
	burst  float64 // max accumulated bytes
	tokens float64
	last   time.Duration
}

// NewTokenBucket builds a bucket with the given rate (bytes/sec) and
// burst (bytes); it starts full.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 {
		return nil, errors.New("incentive: non-positive rate")
	}
	if burst <= 0 {
		return nil, errors.New("incentive: non-positive burst")
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// refill advances the bucket to now.
func (b *TokenBucket) refill(now time.Duration) {
	if now <= b.last {
		return
	}
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Allow consumes size bytes at virtual time now if the quota permits, and
// reports whether the transfer may proceed immediately.
func (b *TokenBucket) Allow(now time.Duration, size int64) bool {
	b.refill(now)
	if float64(size) > b.tokens {
		return false
	}
	b.tokens -= float64(size)
	return true
}

// DelayUntil returns how long after now the caller must wait before size
// bytes are available (zero if available immediately).
func (b *TokenBucket) DelayUntil(now time.Duration, size int64) time.Duration {
	b.refill(now)
	missing := float64(size) - b.tokens
	if missing <= 0 {
		return 0
	}
	return time.Duration(missing / b.rate * float64(time.Second))
}

// BucketFor returns a bucket enforcing the policy's granted bandwidth for
// a reputation, with a burst of one second of traffic.
func (p Policy) BucketFor(reputation float64) (*TokenBucket, error) {
	bw := p.Bandwidth(reputation)
	return NewTokenBucket(bw, bw)
}
