package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
)

// ShardedEngine is the durable form of core.Sharded: each shard owns a
// complete Log (WAL segments + snapshots) in its own subdirectory,
// `shard-00/`, `shard-01/`, …, beside a `shards.json` manifest pinning
// the (n, k) partitioning. Ingest goes through the group-commit path —
// ApplyBatch partitions a batch by owner shard and each shard applies
// its sub-batch, appends it and pays exactly one fsync, all shards in
// parallel — so both lock handoffs and fsyncs amortise across the
// batch and write throughput scales with K.
//
// Durability shards cleanly because events with distinct owners commute
// (see core.Sharded): each shard's log records its own events in apply
// order, replay runs every shard's log in parallel through
// core.Sharded.ApplyShard, and the recovered state is bit-identical to
// the uninterrupted run regardless of how the shards' timelines
// interleaved. Global compactions are appended to every shard's log and
// replay as owned-peers-only compactions, whose union reproduces the
// original.
type ShardedEngine struct {
	s      *core.Sharded
	shards []journalShard
}

// journalShard pairs one shard's log with the mutex serialising its
// apply+append pairs — the per-shard equivalent of Engine.mu, and the
// only lock in this file. It nests outside the core shard data locks
// (ApplyShard acquires those) and two are never held at once except in
// ascending order (lockAllShards).
type journalShard struct {
	mu  sync.Mutex
	log *Log
}

// shardState adapts one shard of a core.Sharded to the journal State
// interface: events replay through ApplyShard, snapshots are the
// shard's peers only (core.ShardState as JSON).
type shardState struct {
	s  *core.Sharded
	si int
}

func (st *shardState) Apply(payload []byte) error {
	ev, err := DecodeEvent(payload)
	if err != nil {
		return err
	}
	return st.s.ApplyShard(st.si, ev)
}

func (st *shardState) Snapshot() ([]byte, error) {
	sh, err := st.s.ExportShardState(st.si)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sh)
}

func (st *shardState) Restore(snapshot []byte) error {
	var sh core.ShardState
	if err := json.Unmarshal(snapshot, &sh); err != nil {
		return err
	}
	return st.s.RestoreShard(st.si, &sh)
}

// shardManifest pins a data directory to one partitioning. Reopening
// with a different n or k would route peers to different logs and
// silently corrupt history, so it is an error instead.
type shardManifest struct {
	N int `json:"n"`
	K int `json:"k"`
}

const manifestName = "shards.json"

func shardDirName(si int) string { return fmt.Sprintf("shard-%02d", si) }

func checkManifest(dir string, n, k int) error {
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if err == nil {
		var m shardManifest
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("journal: manifest %s: %w", path, err)
		}
		if m.N != n || m.K != k {
			return fmt.Errorf("journal: data dir is partitioned n=%d k=%d, engine configured n=%d k=%d", m.N, m.K, n, k)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return fmt.Errorf("journal: %w", err)
	}
	b, err = json.Marshal(shardManifest{N: n, K: k})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	return syncDir(dir)
}

// ShardObsFunc supplies the per-shard log observer; nil disables
// instrumentation. OpenSharded calls it once per shard so each log's
// metrics carry a distinct shard label (see NewLogObs).
type ShardObsFunc func(si int) *LogObs

// OpenSharded recovers (or bootstraps) a sharded journal-backed engine
// for n peers across k shards from dataDir. Every shard recovers in
// parallel — snapshot restore plus tail replay touch only that shard's
// peers, so the workers never contend — and the per-shard RecoveryInfo
// slice reports what each had to do. jcfg applies to every shard's log;
// obsFn (optional) attaches a per-shard observer.
func OpenSharded(dataDir string, n, k int, cfg core.Config, jcfg Config, obsFn ShardObsFunc) (*ShardedEngine, []RecoveryInfo, error) {
	s, err := core.NewSharded(n, k, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := checkManifest(dataDir, n, k); err != nil {
		return nil, nil, err
	}
	e := &ShardedEngine{s: s, shards: make([]journalShard, k)}
	infos := make([]RecoveryInfo, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for si := 0; si < k; si++ {
		go func(si int) {
			defer wg.Done()
			scfg := jcfg
			if obsFn != nil {
				scfg.Obs = obsFn(si)
			}
			log, info, err := Open(filepath.Join(dataDir, shardDirName(si)), scfg, &shardState{s: s, si: si})
			infos[si], errs[si] = info, err
			if err == nil {
				e.shards[si].log = log
			}
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			for sj := range e.shards {
				if l := e.shards[sj].log; l != nil {
					_ = l.Close()
				}
			}
			return nil, infos, fmt.Errorf("journal: shard %d: %w", si, err)
		}
	}
	return e, infos, nil
}

// Core returns the sharded facade for reads (TM, Reputations,
// JudgeFile, …), callable from any goroutine. Mutating it directly
// bypasses the journal; use the ShardedEngine's own mutators.
func (e *ShardedEngine) Core() *core.Sharded { return e.s }

// K returns the shard count.
func (e *ShardedEngine) K() int { return len(e.shards) }

// Seq returns the total number of events recorded across all shard
// logs.
func (e *ShardedEngine) Seq() uint64 {
	var total uint64
	for si := range e.shards {
		sh := &e.shards[si]
		sh.mu.Lock()
		total += sh.log.Seq()
		sh.mu.Unlock()
	}
	return total
}

// recordShard applies then journals one event on shard si, snapshotting
// if the shard's interval has passed. Apply-first keeps invalid events
// out of the log, exactly as Engine.record.
func (e *ShardedEngine) recordShard(si int, ev core.Event) error {
	sh := &e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := e.s.ApplyShard(si, ev); err != nil {
		return err
	}
	if err := sh.log.Append(EncodeEvent(ev)); err != nil {
		return err
	}
	if sh.log.SnapshotDue() {
		return sh.log.Snapshot()
	}
	return nil
}

// Apply durably records one event, routed to its owner shard. An
// EventCompact is recorded on every shard (ascending) — each shard's
// log must replay its own share of the compaction.
func (e *ShardedEngine) Apply(ev core.Event) error {
	if err := core.ValidateEvent(e.s.N(), ev); err != nil {
		return err
	}
	if ev.Kind == core.EventCompact {
		for si := range e.shards {
			if err := e.recordShard(si, ev); err != nil {
				return fmt.Errorf("journal: shard %d: %w", si, err)
			}
		}
		return nil
	}
	return e.recordShard(e.s.ShardOf(ev.I), ev)
}

// ApplyBatch is the group-commit ingest path: prevalidate (inheriting
// core's all-or-report contract — on a *core.BatchError nothing is
// applied or journaled), partition by owner shard, then apply+append
// each shard's sub-batch under its journal mutex and pay one fsync per
// shard, all shards in parallel. Batches containing EventCompact fall
// back to sequential Apply.
func (e *ShardedEngine) ApplyBatch(evs []core.Event) error {
	n := e.s.N()
	hasCompact := false
	for k := range evs {
		if err := core.ValidateEvent(n, evs[k]); err != nil {
			return &core.BatchError{Index: k, Err: err}
		}
		if evs[k].Kind == core.EventCompact {
			hasCompact = true
		}
	}
	if hasCompact {
		for k := range evs {
			if err := e.Apply(evs[k]); err != nil {
				return fmt.Errorf("journal: batch event %d: %w", k, err)
			}
		}
		return nil
	}
	parts := make([][]core.Event, len(e.shards))
	for _, ev := range evs {
		si := e.s.ShardOf(ev.I)
		parts[si] = append(parts[si], ev)
	}
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for si := range parts {
		if len(parts[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := &e.shards[si]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			for _, ev := range parts[si] {
				if err := e.s.ApplyShard(si, ev); err != nil {
					errs[si] = err
					return
				}
				if err := sh.log.Append(EncodeEvent(ev)); err != nil {
					errs[si] = err
					return
				}
			}
			// Group commit: one fsync covers the whole sub-batch.
			if err := sh.log.Sync(); err != nil {
				errs[si] = err
				return
			}
			if sh.log.SnapshotDue() {
				errs[si] = sh.log.Snapshot()
			}
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return fmt.Errorf("journal: shard %d: %w", si, err)
		}
	}
	return nil
}

// SetImplicit mirrors core.Sharded.SetImplicit, durably.
func (e *ShardedEngine) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.Apply(core.Event{Kind: core.EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// Vote mirrors core.Sharded.Vote, durably.
func (e *ShardedEngine) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.Apply(core.Event{Kind: core.EventVote, I: p, File: f, Value: value, Time: now})
}

// RecordDownload mirrors core.Sharded.RecordDownload, durably.
func (e *ShardedEngine) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return e.Apply(core.Event{Kind: core.EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser mirrors core.Sharded.RateUser, durably.
func (e *ShardedEngine) RateUser(i, j int, value float64) error {
	return e.Apply(core.Event{Kind: core.EventRateUser, I: i, J: j, Value: value})
}

// Blacklist mirrors core.Sharded.Blacklist, durably.
func (e *ShardedEngine) Blacklist(i, j int) error {
	return e.Apply(core.Event{Kind: core.EventBlacklist, I: i, J: j})
}

// Compact mirrors core.Sharded.Compact, durably on every shard.
func (e *ShardedEngine) Compact(now time.Duration) error {
	return e.Apply(core.Event{Kind: core.EventCompact, Time: now})
}

// Sync forces every shard's buffered appends to disk.
func (e *ShardedEngine) Sync() error {
	return e.eachShard(func(si int, sh *journalShard) error { return sh.log.Sync() })
}

// Snapshot forces a snapshot + log truncation on every shard, in
// parallel.
func (e *ShardedEngine) Snapshot() error {
	return e.eachShard(func(si int, sh *journalShard) error { return sh.log.Snapshot() })
}

// Close snapshots and closes every shard's log.
func (e *ShardedEngine) Close() error {
	return e.eachShard(func(si int, sh *journalShard) error {
		if err := sh.log.Snapshot(); err != nil {
			_ = sh.log.Close()
			return err
		}
		return sh.log.Close()
	})
}

// eachShard runs fn per shard in parallel under the shard's journal
// mutex, returning the lowest-indexed error.
func (e *ShardedEngine) eachShard(fn func(si int, sh *journalShard) error) error {
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for si := range e.shards {
		go func(si int) {
			defer wg.Done()
			sh := &e.shards[si]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			errs[si] = fn(si, sh)
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return fmt.Errorf("journal: shard %d: %w", si, err)
		}
	}
	return nil
}
