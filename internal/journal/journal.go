// Package journal is the durable-state subsystem: an append-only,
// CRC32-checksummed write-ahead log of state-machine events plus periodic
// full-state snapshots, so reputation state survives crashes, restarts
// and deploys. Without it every byte of trust history lives in memory and
// a process restart whitewashes the whole population — the exact attack
// (rejoining with a clean slate) the reputation system exists to stop.
//
// The package is layered:
//
//   - Log is payload-agnostic machinery: segment files of
//     length-prefixed, checksummed records (internal/wire binary
//     framing), batched fsync, snapshot rotation with log truncation, and
//     Open-time recovery that loads the newest valid snapshot, replays
//     the log tail and truncates a torn final record instead of failing.
//   - Engine (engine.go) binds a Log to internal/core's event model with
//     a compact binary event codec.
//   - Peer (peer.go) binds a Log to internal/peer's event model for the
//     decentralised CLI.
//
// Recovery cost is bounded by the snapshot interval, not total history:
// replay starts at the last snapshot's sequence number. Recovery is
// deterministic — replaying snapshot+tail reproduces bit-identical trust
// matrices versus the uninterrupted run (see journal_test.go).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"mdrep/internal/obs"
	"mdrep/internal/wire"
)

// Causal-tracing span name and attribute key for recovery; keys come
// from this const table (metriclabel contract).
const (
	spanRecover  = "journal.recover"
	attrReplayed = "replayed"
)

// State is the state machine a Log makes durable. Implementations must
// make Restore atomic: decode the snapshot fully, then swap it in, so a
// corrupt snapshot leaves the state untouched and recovery can fall back
// to an older one.
type State interface {
	// Apply applies one logged event payload.
	Apply(payload []byte) error
	// Snapshot serializes the full current state.
	Snapshot() ([]byte, error)
	// Restore replaces the state with a previously serialized snapshot.
	Restore(snapshot []byte) error
}

// Config tunes durability against throughput.
type Config struct {
	// SyncEvery batches fsync: the log flushes and syncs after this many
	// appends (1 = sync every append). Sync, Snapshot and Close always
	// flush regardless.
	SyncEvery int
	// SnapshotEvery is the number of events between automatic snapshots
	// taken by the typed wrappers; 0 disables automatic snapshots.
	SnapshotEvery uint64
	// KeepSnapshots is how many snapshot generations to retain. Keeping
	// at least 2 lets recovery fall back past a corrupt newest snapshot;
	// log segments are pruned only once they precede the oldest retained
	// snapshot.
	KeepSnapshots int
	// Obs is the optional metrics observer (see NewLogObs); nil means
	// uninstrumented.
	Obs *LogObs
}

// DefaultConfig keeps two snapshot generations, snapshots every 10k
// events and syncs every 64 appends.
func DefaultConfig() Config {
	return Config{SyncEvery: 64, SnapshotEvery: 10000, KeepSnapshots: 2}
}

func (c Config) withDefaults() Config {
	if c.SyncEvery < 1 {
		c.SyncEvery = 64
	}
	if c.KeepSnapshots < 1 {
		c.KeepSnapshots = 2
	}
	return c
}

// RecoveryInfo reports what Open had to do.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence number of the snapshot restored (0 if
	// recovery started from an empty state).
	SnapshotSeq uint64
	// Replayed is the number of events re-applied from the log tail.
	Replayed uint64
	// TruncatedTail reports that a torn final record was dropped.
	TruncatedTail bool
	// SnapshotFallback reports that the newest snapshot was unreadable
	// and an older generation (or empty state) was used instead.
	SnapshotFallback bool
}

var (
	walMagic  = []byte("MDWALv1\n")
	snapMagic = []byte("MDSNPv1\n")
)

const headerLen = 16 // magic + 8-byte big-endian sequence number

// Log is one directory of WAL segments and snapshots. It is not safe for
// concurrent use; the typed wrappers serialise access.
type Log struct {
	dir   string
	cfg   Config
	state State

	seq      uint64 // total events appended (next event's sequence number)
	lastSnap uint64 // sequence covered by the newest snapshot

	f        *os.File
	w        *fileWriter
	unsynced int

	segStarts []uint64 // start sequence of every live segment, ascending
	snapSeqs  []uint64 // sequence of every live snapshot, ascending
}

// fileWriter is a small buffered writer that tracks flush state; bufio
// would do, but we want explicit control of the flush/sync boundary.
type fileWriter struct {
	f   *os.File
	buf []byte
}

func (w *fileWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= 1<<16 {
		if err := w.flush(); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

func (w *fileWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

func walName(start uint64) string { return fmt.Sprintf("wal-%016x.log", start) }
func snapName(seq uint64) string  { return fmt.Sprintf("snap-%016x.snap", seq) }
func parseName(name, kind string) (uint64, bool) {
	var seq uint64
	var suffix string
	n, err := fmt.Sscanf(name, kind+"-%16x.%s", &seq, &suffix)
	if err != nil || n != 2 {
		return 0, false
	}
	return seq, true
}

// Open recovers state from dir (creating it if needed) and returns a log
// positioned for appending. The caller passes a fresh, empty state; Open
// restores the newest valid snapshot into it and replays the log tail.
func Open(dir string, cfg Config, state State) (*Log, RecoveryInfo, error) {
	cfg = cfg.withDefaults()
	if state == nil {
		return nil, RecoveryInfo{}, errors.New("journal: nil state")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("journal: %w", err)
	}
	l := &Log{dir: dir, cfg: cfg, state: state}
	sp := cfg.Obs.spanRecovery()
	// Recovery is a causal trace root of its own: crash-restart forensics
	// start from "what did recovery replay, and how long did it take".
	tsp := obs.StartRoot(spanRecover)
	info, err := l.recover()
	sp.End()
	tsp.Attr(attrReplayed, int64(info.Replayed))
	tsp.EndErr(err)
	if err != nil {
		return nil, info, err
	}
	if cfg.Obs != nil {
		cfg.Obs.replayed.Add(info.Replayed)
	}
	return l, info, nil
}

func (l *Log) scanDir() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.segStarts, l.snapSeqs = nil, nil
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseName(e.Name(), "wal"); ok {
			l.segStarts = append(l.segStarts, seq)
		} else if seq, ok := parseName(e.Name(), "snap"); ok {
			l.snapSeqs = append(l.snapSeqs, seq)
		}
	}
	sort.Slice(l.segStarts, func(i, j int) bool { return l.segStarts[i] < l.segStarts[j] })
	sort.Slice(l.snapSeqs, func(i, j int) bool { return l.snapSeqs[i] < l.snapSeqs[j] })
	return nil
}

// recover restores the newest valid snapshot, replays the WAL tail and
// opens the final segment for appending.
func (l *Log) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	if err := l.scanDir(); err != nil {
		return info, err
	}

	// Newest valid snapshot wins; older generations are the fallback for
	// a snapshot torn by a crash mid-write (the write is tmp+rename, but
	// disks lie) or corrupted at rest.
	for i := len(l.snapSeqs) - 1; i >= 0; i-- {
		seq := l.snapSeqs[i]
		blob, err := readSnapshotFile(filepath.Join(l.dir, snapName(seq)), seq)
		if err == nil {
			err = l.state.Restore(blob)
		}
		if err != nil {
			info.SnapshotFallback = true
			continue
		}
		l.lastSnap = seq
		info.SnapshotSeq = seq
		break
	}

	// Replay every event at or after the snapshot, in sequence order.
	cursor := l.lastSnap
	var lastPath string
	var lastGood int64
	for i, start := range l.segStarts {
		if start > cursor {
			return info, fmt.Errorf("journal: gap before segment %s (have %d events, segment starts at %d)",
				walName(start), cursor, start)
		}
		path := filepath.Join(l.dir, walName(start))
		last := i == len(l.segStarts)-1
		applied, goodOffset, truncated, err := l.replaySegment(path, start, &cursor, last)
		if err != nil {
			return info, err
		}
		info.Replayed += applied
		if truncated {
			info.TruncatedTail = true
		}
		if last {
			lastPath, lastGood = path, goodOffset
		}
	}
	l.seq = cursor

	// Position for appending: reuse the final segment (after truncating
	// any torn tail) or start a fresh one.
	if lastPath != "" && lastGood >= int64(wire.RecordSize(headerLen)) {
		if info.TruncatedTail {
			if err := os.Truncate(lastPath, lastGood); err != nil {
				return info, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
		}
		f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return info, fmt.Errorf("journal: %w", err)
		}
		l.f, l.w = f, &fileWriter{f: f}
		return info, nil
	}
	if lastPath != "" {
		// The final segment does not even contain a whole header —
		// created and torn before anything durable landed. Drop it.
		_ = os.Remove(lastPath)
		l.segStarts = l.segStarts[:len(l.segStarts)-1]
	}
	if err := l.startSegment(l.seq); err != nil {
		return info, err
	}
	return info, nil
}

// replaySegment reads one segment, applying events with sequence numbers
// >= *cursor and advancing the cursor. It returns the number of events
// applied, the byte offset just past the last intact record, and whether
// a torn tail was detected. Torn or corrupt records are tolerated only in
// the final segment; anywhere else they are unrecoverable corruption.
func (l *Log) replaySegment(path string, start uint64, cursor *uint64, last bool) (uint64, int64, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("journal: %w", err)
	}
	defer func() { _ = f.Close() }()
	r := &bufReader{r: f}

	var applied uint64
	var good int64
	hdr, err := wire.ReadRecord(r)
	if err != nil || len(hdr) != headerLen || string(hdr[:8]) != string(walMagic) ||
		binary.BigEndian.Uint64(hdr[8:]) != start {
		if last {
			// Torn before the header completed: the segment holds nothing.
			return 0, 0, true, nil
		}
		return 0, 0, false, fmt.Errorf("journal: segment %s: bad header", filepath.Base(path))
	}
	good = int64(wire.RecordSize(headerLen))

	seq := start
	for {
		payload, err := wire.ReadRecord(r)
		if err == io.EOF {
			return applied, good, false, nil
		}
		if err != nil {
			if last && isTornOrCorrupt(err) {
				return applied, good, true, nil
			}
			return applied, good, false, fmt.Errorf("journal: segment %s: %w", filepath.Base(path), err)
		}
		if seq >= *cursor {
			if err := l.state.Apply(payload); err != nil {
				return applied, good, false, fmt.Errorf("journal: replay event %d: %w", seq, err)
			}
			*cursor = seq + 1
			applied++
		}
		seq++
		good += int64(wire.RecordSize(len(payload)))
	}
}

// isTornOrCorrupt reports whether a record read error is the signature of
// a crash mid-write (or bit rot) rather than an I/O failure.
func isTornOrCorrupt(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, wire.ErrChecksum) ||
		errors.Is(err, wire.ErrRecordTooLarge)
}

// bufReader is a minimal buffered reader; bufio.Reader would work, but
// this keeps the dependency surface of the recovery path tiny and easy to
// audit.
type bufReader struct {
	r   io.Reader
	buf []byte
	off int
	eof bool
}

func (b *bufReader) Read(p []byte) (int, error) {
	if b.off >= len(b.buf) {
		if b.eof {
			return 0, io.EOF
		}
		if cap(b.buf) == 0 {
			b.buf = make([]byte, 0, 1<<16)
		}
		n, err := b.r.Read(b.buf[:cap(b.buf)])
		b.buf, b.off = b.buf[:n], 0
		if err == io.EOF {
			b.eof = true
		} else if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, io.EOF
		}
	}
	n := copy(p, b.buf[b.off:])
	b.off += n
	return n, nil
}

// startSegment creates and syncs a fresh segment beginning at seq.
func (l *Log) startSegment(seq uint64) error {
	path := filepath.Join(l.dir, walName(seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, walMagic)
	binary.BigEndian.PutUint64(hdr[8:], seq)
	w := &fileWriter{f: f}
	if err := wire.WriteRecord(w, hdr); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	l.f, l.w = f, w
	if n := len(l.segStarts); n == 0 || l.segStarts[n-1] != seq {
		l.segStarts = append(l.segStarts, seq)
	}
	return syncDir(l.dir)
}

// Append writes one event payload to the log. The write becomes durable
// at the next batched fsync (SyncEvery), or immediately via Sync.
func (l *Log) Append(payload []byte) error {
	if l.f == nil {
		return errors.New("journal: log is closed")
	}
	sp := l.cfg.Obs.spanAppend()
	defer sp.End()
	if err := wire.WriteRecord(l.w, payload); err != nil {
		return err
	}
	l.seq++
	l.unsynced++
	if l.cfg.Obs != nil {
		l.cfg.Obs.appends.Inc()
	}
	if l.unsynced >= l.cfg.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the active segment.
func (l *Log) Sync() error {
	if l.f == nil {
		return errors.New("journal: log is closed")
	}
	if err := l.w.flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	if l.cfg.Obs != nil {
		l.cfg.Obs.fsyncs.Inc()
	}
	return nil
}

// Seq returns the total number of events appended across the log's life.
func (l *Log) Seq() uint64 { return l.seq }

// SinceSnapshot returns how many events the newest snapshot does not
// cover — the replay cost of a crash right now.
func (l *Log) SinceSnapshot() uint64 { return l.seq - l.lastSnap }

// SnapshotDue reports whether the automatic snapshot interval has passed.
func (l *Log) SnapshotDue() bool {
	return l.cfg.SnapshotEvery > 0 && l.SinceSnapshot() >= l.cfg.SnapshotEvery
}

// Snapshot serializes the current state, writes it as a new snapshot
// generation, rotates to a fresh log segment and prunes snapshots and
// segments that are no longer needed for recovery. A crash at any point
// is safe: the snapshot lands under a temporary name and is renamed into
// place only when fully written and synced.
func (l *Log) Snapshot() error {
	if l.f == nil {
		return errors.New("journal: log is closed")
	}
	if l.seq == l.lastSnap {
		return nil // nothing new to cover
	}
	if err := l.Sync(); err != nil {
		return err
	}
	blob, err := l.state.Snapshot()
	if err != nil {
		return fmt.Errorf("journal: snapshot state: %w", err)
	}
	payload := make([]byte, headerLen+len(blob))
	copy(payload, snapMagic)
	binary.BigEndian.PutUint64(payload[8:headerLen], l.seq)
	copy(payload[headerLen:], blob)
	if l.cfg.Obs != nil {
		l.cfg.Obs.snapshots.Inc()
		l.cfg.Obs.snapBytes.Observe(float64(len(payload)))
	}

	tmp := filepath.Join(l.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := &fileWriter{f: f}
	if err := wire.WriteRecord(w, payload); err == nil {
		err = w.flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	final := filepath.Join(l.dir, snapName(l.seq))
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.snapSeqs = append(l.snapSeqs, l.seq)
	l.lastSnap = l.seq

	// Rotate: later appends land in a segment starting at the snapshot
	// boundary, so recovery from this snapshot reads exactly one segment.
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := l.startSegment(l.seq); err != nil {
		return err
	}
	l.prune()
	return nil
}

// prune removes snapshot generations beyond KeepSnapshots and every
// segment whose events all precede the oldest retained snapshot.
func (l *Log) prune() {
	if len(l.snapSeqs) > l.cfg.KeepSnapshots {
		drop := l.snapSeqs[:len(l.snapSeqs)-l.cfg.KeepSnapshots]
		for _, seq := range drop {
			_ = os.Remove(filepath.Join(l.dir, snapName(seq)))
		}
		l.snapSeqs = append([]uint64(nil), l.snapSeqs[len(drop):]...)
	}
	oldest := l.snapSeqs[0]
	// Segment i spans [segStarts[i], segStarts[i+1]); only a segment that
	// ends at or before the oldest snapshot is dead weight.
	keepFrom := 0
	for i := 0; i+1 < len(l.segStarts); i++ {
		if l.segStarts[i+1] <= oldest {
			_ = os.Remove(filepath.Join(l.dir, walName(l.segStarts[i])))
			keepFrom = i + 1
		}
	}
	if keepFrom > 0 {
		l.segStarts = append([]uint64(nil), l.segStarts[keepFrom:]...)
	}
}

// Close flushes and closes the log. It does not snapshot; callers that
// want a snapshot-on-shutdown (the CLI does) call Snapshot first.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f, l.w = nil, nil
	return err
}

// readSnapshotFile loads and validates one snapshot generation.
func readSnapshotFile(path string, wantSeq uint64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	payload, err := wire.ReadRecord(&bufReader{r: f})
	if err != nil {
		return nil, err
	}
	if len(payload) < headerLen || string(payload[:8]) != string(snapMagic) {
		return nil, errors.New("journal: bad snapshot header")
	}
	if got := binary.BigEndian.Uint64(payload[8:headerLen]); got != wantSeq {
		return nil, fmt.Errorf("journal: snapshot sequence %d, file named %d", got, wantSeq)
	}
	return payload[headerLen:], nil
}

// syncDir fsyncs a directory so renames and creations survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // not fatal on platforms without directory fsync
	}
	defer func() { _ = d.Close() }()
	_ = d.Sync()
	return nil
}
