package journal

import (
	"testing"

	"mdrep/internal/testutil"
)

// TestMain fails the package if any goroutine survives the tests — the
// sharded journal's recovery and group-commit workers are transient and
// must all have unwound.
func TestMain(m *testing.M) { testutil.RunMain(m) }
