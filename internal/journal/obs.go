package journal

import (
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// LogObs is the journal's metrics surface: append latency (including
// the batched fsync when one lands on the call), fsync count, snapshot
// size and count, and Open-time recovery cost. Threaded in through
// Config.Obs so the instrumentation is chosen by whoever opens the log;
// a nil observer costs one nil check per operation.
type LogObs struct {
	tracer    *obs.Tracer
	appendLat *metrics.Histogram // journal_append_seconds
	appends   *metrics.Counter   // journal_append_total
	fsyncs    *metrics.Counter   // journal_fsync_total
	snapBytes *metrics.Histogram // journal_snapshot_bytes
	snapshots *metrics.Counter   // journal_snapshot_total
	recovery  *metrics.Histogram // journal_recovery_seconds
	replayed  *metrics.Counter   // journal_replayed_events_total
}

// NewLogObs registers the journal metric families in reg, timed by
// clock. A nil registry returns a nil (disabled) observer; a nil clock
// keeps the counters and sizes but disables latency spans. Optional
// trailing label pairs are attached to every series — the sharded
// journal passes ("shard", "<i>") so each shard segment's appends,
// fsyncs and recovery cost are separately visible.
func NewLogObs(reg *metrics.Registry, clock obs.Clock, labels ...string) *LogObs {
	if reg == nil {
		return nil
	}
	return &LogObs{
		tracer:    obs.NewTracer(clock),
		appendLat: reg.Histogram("journal_append_seconds", metrics.DurationBuckets, labels...),
		appends:   reg.Counter("journal_append_total", labels...),
		fsyncs:    reg.Counter("journal_fsync_total", labels...),
		snapBytes: reg.Histogram("journal_snapshot_bytes", metrics.SizeBuckets, labels...),
		snapshots: reg.Counter("journal_snapshot_total", labels...),
		recovery:  reg.Histogram("journal_recovery_seconds", metrics.DurationBuckets, labels...),
		replayed:  reg.Counter("journal_replayed_events_total", labels...),
	}
}

func (o *LogObs) spanAppend() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.appendLat)
}

func (o *LogObs) spanRecovery() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.recovery)
}
