package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
)

// The engine event codec: a compact, deterministic binary encoding of
// core.Event used as WAL record payloads. Layout (record framing already
// carries the total length and checksum):
//
//	[kind u8][i uvarint][j uvarint][value f64 bits, 8 bytes LE]
//	[size zigzag varint][time zigzag varint][file id, rest of payload]
//
// The decoder is hostile-input safe: every read is bounds-checked and it
// never panics (see FuzzDecodeEvent).

// ErrBadEvent reports a payload that is not a valid encoded event.
var ErrBadEvent = errors.New("journal: malformed event payload")

// EncodeEvent serializes one engine event.
func EncodeEvent(ev core.Event) []byte {
	buf := make([]byte, 0, 40+len(ev.File))
	buf = append(buf, byte(ev.Kind))
	buf = binary.AppendUvarint(buf, uint64(ev.I))
	buf = binary.AppendUvarint(buf, uint64(ev.J))
	var vb [8]byte
	binary.LittleEndian.PutUint64(vb[:], math.Float64bits(ev.Value))
	buf = append(buf, vb[:]...)
	buf = binary.AppendVarint(buf, ev.Size)
	buf = binary.AppendVarint(buf, int64(ev.Time))
	buf = append(buf, ev.File...)
	return buf
}

// DecodeEvent parses an encoded engine event. It returns ErrBadEvent on
// any malformed input and never panics.
func DecodeEvent(payload []byte) (core.Event, error) {
	var ev core.Event
	if len(payload) < 1 {
		return ev, fmt.Errorf("%w: empty", ErrBadEvent)
	}
	ev.Kind = core.EventKind(payload[0])
	rest := payload[1:]

	i, rest, err := readUvarint(rest)
	if err != nil {
		return ev, err
	}
	j, rest, err := readUvarint(rest)
	if err != nil {
		return ev, err
	}
	if i > math.MaxInt32 || j > math.MaxInt32 {
		return ev, fmt.Errorf("%w: peer index overflow", ErrBadEvent)
	}
	ev.I, ev.J = int(i), int(j)

	if len(rest) < 8 {
		return ev, fmt.Errorf("%w: truncated value", ErrBadEvent)
	}
	ev.Value = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
	rest = rest[8:]

	size, rest, err := readVarint(rest)
	if err != nil {
		return ev, err
	}
	ev.Size = size
	t, rest, err := readVarint(rest)
	if err != nil {
		return ev, err
	}
	ev.Time = time.Duration(t)
	ev.File = eval.FileID(rest)
	return ev, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrBadEvent)
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrBadEvent)
	}
	return v, b[n:], nil
}
