package journal

import (
	"reflect"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
	"mdrep/internal/peer"
)

// stubNet satisfies peer.Network for tests that never hit the wire.
type stubNet struct{}

func (stubNet) FetchEvaluations(obs.SpanContext, identity.PeerID) ([]eval.Info, error) {
	return nil, nil
}

func newTestPeer(t *testing.T, seed uint64) *peer.Peer {
	t.Helper()
	id, err := identity.Generate(identity.NewDeterministicReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	p, err := peer.New(id, dir, stubNet{}, peer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func otherID(t *testing.T, seed uint64) identity.PeerID {
	t.Helper()
	id, err := identity.Generate(identity.NewDeterministicReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	return id.ID()
}

// TestPeerJournalRoundTrip: a CLI participant's votes, downloads, ratings
// and blacklist survive a restart from its data dir.
func TestPeerJournalRoundTrip(t *testing.T) {
	dataDir := t.TempDir()
	target := otherID(t, 99)
	banned := otherID(t, 100)

	jp, info, err := OpenPeer(dataDir, newTestPeer(t, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 || info.SnapshotSeq != 0 {
		t.Fatalf("fresh dir recovery = %+v", info)
	}
	steps := []func() error{
		func() error { return jp.AdvanceTo(2 * time.Hour) },
		func() error { return jp.Vote("file-a", 0.9) },
		func() error { return jp.ObserveRetention("file-b", 0.7) },
		func() error { return jp.RecordDownload(target, "file-a", 1<<20) },
		func() error { return jp.RateUser(target, 0.8) },
		func() error { return jp.Blacklist(banned) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	want := jp.Base().ExportState()
	if err := jp.Close(); err != nil {
		t.Fatal(err)
	}

	restored, info, err := OpenPeer(dataDir, newTestPeer(t, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != uint64(len(steps)) || info.Replayed != 0 {
		t.Fatalf("clean-shutdown recovery = %+v", info)
	}
	if got := restored.Base().ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state diverged:\n got %+v\nwant %+v", got, want)
	}
	if !restored.Base().IsBlacklisted(banned) {
		t.Fatal("blacklist entry lost across restart")
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPeerJournalCrash: a flushed-but-not-closed journal replays the tail.
func TestPeerJournalCrash(t *testing.T) {
	dataDir := t.TempDir()
	jp, _, err := OpenPeer(dataDir, newTestPeer(t, 2), Config{SyncEvery: 1, SnapshotEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := jp.AdvanceTo(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := jp.Vote("crash-file", 0.6); err != nil {
		t.Fatal(err)
	}
	want := jp.Base().ExportState()
	// Crash: no Close, no snapshot — state must come back from the WAL.
	restored, info, err := OpenPeer(dataDir, newTestPeer(t, 2), Config{SyncEvery: 1, SnapshotEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 {
		t.Fatalf("replayed %d events, want 2", info.Replayed)
	}
	if got := restored.Base().ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state diverged:\n got %+v\nwant %+v", got, want)
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
}
