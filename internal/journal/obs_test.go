package journal

import (
	"encoding/json"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/metrics"
	"mdrep/internal/sparse"
)

func testClock() func() time.Time {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(time.Microsecond)
		return now
	}
}

// seedJournal writes a workload and leaves the log un-snapshotted (a
// simulated crash: synced but never closed), so reopening must replay.
func seedJournal(t *testing.T, dir string, n int) uint64 {
	t.Helper()
	jcfg := DefaultConfig()
	jcfg.SnapshotEvery = 0 // keep everything in the WAL tail
	je, _, err := OpenEngine(dir, n, core.DefaultConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f := "file-" + string(rune('a'+i%3))
		if err := je.Vote(i, eval.FileID(f), 0.5+float64(i%5)/10, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := je.RecordDownload(i, (i+1)%n, eval.FileID(f), int64(1000+i), time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := je.RateUser(i, (i+2)%n, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	if err := je.Sync(); err != nil {
		t.Fatal(err)
	}
	return je.Seq()
}

func TestLogObsCounts(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	jcfg := DefaultConfig()
	jcfg.SyncEvery = 2
	jcfg.Obs = NewLogObs(reg, testClock())
	je, _, err := OpenEngine(dir, 3, core.DefaultConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := je.Vote(i%3, "f", 0.9, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := je.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("journal_append_total").Load(); got != 5 {
		t.Errorf("appends = %d, want 5", got)
	}
	if got := reg.Histogram("journal_append_seconds", metrics.DurationBuckets).Count(); got != 5 {
		t.Errorf("append spans = %d, want 5", got)
	}
	if got := reg.Counter("journal_fsync_total").Load(); got < 3 {
		t.Errorf("fsyncs = %d, want >= 3 (two batched + snapshot)", got)
	}
	if got := reg.Counter("journal_snapshot_total").Load(); got < 1 {
		t.Errorf("snapshots = %d, want >= 1", got)
	}
	if got := reg.Histogram("journal_snapshot_bytes", metrics.SizeBuckets).Count(); got < 1 {
		t.Errorf("snapshot size samples = %d, want >= 1", got)
	}
	if got := reg.Histogram("journal_recovery_seconds", metrics.DurationBuckets).Count(); got != 1 {
		t.Errorf("recovery spans = %d, want 1 (Open)", got)
	}

	// Reopen after the clean close: recovery restores the snapshot and
	// replays nothing.
	reg2 := metrics.NewRegistry()
	jcfg2 := DefaultConfig()
	jcfg2.Obs = NewLogObs(reg2, testClock())
	je2, info, err := OpenEngine(dir, 3, core.DefaultConfig(), jcfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = je2.Close() }()
	if got := reg2.Counter("journal_replayed_events_total").Load(); got != info.Replayed {
		t.Errorf("replayed counter = %d, RecoveryInfo says %d", got, info.Replayed)
	}
}

func TestLogObsRecoveryReplayCount(t *testing.T) {
	dir := t.TempDir()
	seq := seedJournal(t, dir, 4)

	reg := metrics.NewRegistry()
	jcfg := DefaultConfig()
	jcfg.Obs = NewLogObs(reg, testClock())
	je, info, err := OpenEngine(dir, 4, core.DefaultConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = je.Close() }()
	if info.Replayed != seq {
		t.Fatalf("replayed %d events, workload wrote %d", info.Replayed, seq)
	}
	if got := reg.Counter("journal_replayed_events_total").Load(); got != seq {
		t.Errorf("replayed counter = %d, want %d", got, seq)
	}
	if got := reg.Histogram("journal_recovery_seconds", metrics.DurationBuckets).Count(); got != 1 {
		t.Errorf("recovery spans = %d, want 1", got)
	}
}

// Replaying the same journal twice with full instrumentation enabled —
// journal observer, engine observer, and sparse kernel observer — must
// yield bit-identical engine state and trust matrices. Instrumentation
// only reads clocks around work; it must never feed time back into it.
func TestInstrumentedReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	seedJournal(t, dir, n)

	openInstrumented := func() (*core.EngineState, []sparse.Entry) {
		reg := metrics.NewRegistry()
		sparse.Instrument(reg, testClock())
		defer sparse.Uninstrument()
		jcfg := DefaultConfig()
		jcfg.Obs = NewLogObs(reg, testClock())
		je, _, err := OpenEngine(dir, n, core.DefaultConfig(), jcfg)
		if err != nil {
			t.Fatal(err)
		}
		je.Core().SetObserver(core.NewEngineObs(reg, testClock()))
		tm, err := je.Core().TM(time.Duration(n) * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// No Close: closing snapshots, which would change what the next
		// replay reads.
		return je.Core().ExportState(), tm.Entries()
	}

	s1, tm1 := openInstrumented()
	s2, tm2 := openInstrumented()

	b1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("instrumented replays diverged: exported states differ")
	}
	if len(tm1) != len(tm2) {
		t.Fatalf("TM entry counts differ: %d vs %d", len(tm1), len(tm2))
	}
	for i := range tm1 {
		if tm1[i] != tm2[i] {
			t.Fatalf("TM entry %d differs: %+v vs %+v", i, tm1[i], tm2[i])
		}
	}
}
