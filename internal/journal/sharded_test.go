package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
)

// shardedScript builds a deterministic event log for n peers without
// compactions (the truncation test needs a 1:1 event→shard-log mapping;
// compacted variants are covered separately).
func shardedScript(n, count int, seed int64) []core.Event {
	rng := rand.New(rand.NewSource(seed))
	var evs []core.Event
	for len(evs) < count {
		i, j := rng.Intn(n), rng.Intn(n)
		f := eval.FileID(fmt.Sprintf("file-%02d", rng.Intn(8)))
		now := time.Duration(len(evs)) * time.Minute
		switch rng.Intn(4) {
		case 0:
			evs = append(evs, core.Event{Kind: core.EventVote, I: i, File: f, Value: rng.Float64(), Time: now})
		case 1:
			evs = append(evs, core.Event{Kind: core.EventSetImplicit, I: i, File: f, Value: rng.Float64(), Time: now})
		case 2:
			if i != j {
				evs = append(evs, core.Event{Kind: core.EventDownload, I: i, J: j, File: f, Size: int64(rng.Intn(1 << 16)), Time: now})
			}
		case 3:
			if i != j {
				evs = append(evs, core.Event{Kind: core.EventRateUser, I: i, J: j, Value: rng.Float64()})
			}
		}
	}
	return evs
}

func stateJSON(t *testing.T, st *core.EngineState) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedJournalRecovery proves per-shard recovery is bit-identical:
// a crash (fsynced logs abandoned without snapshot) and a clean close
// (snapshot per shard) both reopen, in parallel, to exactly the state of
// the uninterrupted run — including a mid-stream global compaction that
// lands on every shard's log.
func TestShardedJournalRecovery(t *testing.T) {
	const n, k = 20, 4
	cfg := core.DefaultConfig()
	cfg.Window = time.Hour
	jcfg := Config{SyncEvery: 1, SnapshotEvery: 0, KeepSnapshots: 2}
	dir := t.TempDir()

	e, infos, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != k {
		t.Fatalf("got %d recovery infos, want %d", len(infos), k)
	}
	evs := shardedScript(n, 300, 3)
	for i, ev := range evs {
		if i%3 == 0 {
			if err := e.Apply(ev); err != nil {
				t.Fatal(err)
			}
		} else if i%50 == 1 {
			if err := e.ApplyBatch(evs[i : i+1]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := e.Apply(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Compact(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyBatch(shardedScript(n, 100, 4)); err != nil {
		t.Fatal(err)
	}
	want := stateJSON(t, e.Core().ExportState())
	wantSeq := e.Seq()
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon without Close — recovery must replay the tails.
	e2, infos, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var replayed uint64
	for _, info := range infos {
		replayed += info.Replayed
	}
	if replayed != wantSeq {
		t.Fatalf("replayed %d events across shards, want %d", replayed, wantSeq)
	}
	if got := stateJSON(t, e2.Core().ExportState()); got != want {
		t.Fatal("crash-recovered state differs from pre-crash state")
	}
	// Clean close snapshots every shard; reopen must replay nothing.
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, infos, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for si, info := range infos {
		if info.Replayed != 0 {
			t.Fatalf("shard %d replayed %d events after clean close", si, info.Replayed)
		}
		if info.SnapshotSeq == 0 && e3.shards[si].log.Seq() > 0 {
			t.Fatalf("shard %d recovered without its snapshot", si)
		}
	}
	if got := stateJSON(t, e3.Core().ExportState()); got != want {
		t.Fatal("snapshot-recovered state differs")
	}
	if err := e3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedJournalManifest pins the partitioning: reopening a data
// directory with a different shard count or population must fail.
func TestShardedJournalManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	jcfg := Config{SyncEvery: 1}
	e, _, err := OpenSharded(dir, 10, 2, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSharded(dir, 10, 4, cfg, jcfg, nil); err == nil {
		t.Fatal("shard count change accepted")
	}
	if _, _, err := OpenSharded(dir, 12, 2, cfg, jcfg, nil); err == nil {
		t.Fatal("population change accepted")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = in.Close() }()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			_ = out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedJournalTruncationEveryOffset is the crash matrix: one
// shard's only WAL segment is truncated at every byte offset in turn,
// and recovery must succeed every time with exactly the durable prefix
// of that shard's events — other shards untouched. Cross-shard event
// commutation makes the expected state constructible: all other shards'
// events plus the prefix of the victim shard's.
func TestShardedJournalTruncationEveryOffset(t *testing.T) {
	const n, k, victim = 12, 2, 1
	cfg := core.DefaultConfig()
	jcfg := Config{SyncEvery: 1, SnapshotEvery: 0}
	base := t.TempDir()
	e, _, err := OpenSharded(base, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := shardedScript(n, 40, 9)
	for _, ev := range evs {
		if err := e.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	// Abandon e (simulated crash); work on copies of its data dir.
	victimEvents := make([]core.Event, 0, len(evs))
	for _, ev := range evs {
		if e.Core().ShardOf(ev.I) == victim {
			victimEvents = append(victimEvents, ev)
		}
	}
	segs, err := filepath.Glob(filepath.Join(base, shardDirName(victim), "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one victim segment, got %v (%v)", segs, err)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	size := st.Size()
	// Expected state for a given count of surviving victim events.
	expectAt := make(map[int]string)
	for r := 0; r <= len(victimEvents); r++ {
		s, err := core.NewSharded(n, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for _, ev := range evs {
			if e.Core().ShardOf(ev.I) == victim {
				if seen < r {
					if err := s.ApplyEvent(ev); err != nil {
						t.Fatal(err)
					}
				}
				seen++
				continue
			}
			if err := s.ApplyEvent(ev); err != nil {
				t.Fatal(err)
			}
		}
		expectAt[r] = stateJSON(t, s.ExportState())
	}
	for off := int64(0); off <= size; off++ {
		dir := filepath.Join(t.TempDir(), "copy")
		copyTree(t, base, dir)
		seg := filepath.Join(dir, shardDirName(victim), filepath.Base(segs[0]))
		if err := os.Truncate(seg, off); err != nil {
			t.Fatal(err)
		}
		e2, infos, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		r := int(infos[victim].Replayed)
		if r > len(victimEvents) {
			t.Fatalf("offset %d: replayed %d > %d durable events", off, r, len(victimEvents))
		}
		if got := stateJSON(t, e2.Core().ExportState()); got != expectAt[r] {
			t.Fatalf("offset %d: recovered state does not match the %d-event prefix", off, r)
		}
		if err := e2.Close(); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
	}
}

// TestShardedJournalGroupCommitDurable proves the one-fsync-per-shard
// group commit really syncs: a batch is durable immediately after
// ApplyBatch returns, with no explicit Sync.
func TestShardedJournalGroupCommitDurable(t *testing.T) {
	const n, k = 16, 4
	cfg := core.DefaultConfig()
	// Large SyncEvery: only the group commit's own Sync makes these durable.
	jcfg := Config{SyncEvery: 1 << 20, SnapshotEvery: 0}
	dir := t.TempDir()
	e, _, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := shardedScript(n, 200, 5)
	if err := e.ApplyBatch(evs); err != nil {
		t.Fatal(err)
	}
	want := stateJSON(t, e.Core().ExportState())
	// Crash without Sync or Close.
	e2, _, err := OpenSharded(dir, n, k, cfg, jcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateJSON(t, e2.Core().ExportState()); got != want {
		t.Fatal("group-committed batch not durable after crash")
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}
