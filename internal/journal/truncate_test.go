package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdrep/internal/core"
)

// tailProperty exhaustively damages the WAL and asserts the recovery
// contract at byte granularity: whatever happens to the tail of the log,
// recovery lands on the longest prefix of intact events, bit-identical
// to an uninterrupted run over that prefix. It covers both damage modes
// the crash model produces — a short write (truncation at an arbitrary
// byte offset) and a corrupted sector (bit flip at an arbitrary offset
// inside the final record).
type tailProperty struct {
	n       int
	events  []core.Event
	raw     []byte         // the pristine single-segment WAL
	segName string         // file name the segment must keep
	bounds  []int64        // bounds[k] = segment size after k events
	want    []*core.Engine // want[k] = ground truth for events[:k]
	jcfg    Config
}

func buildTailProperty(t *testing.T, n, count int) *tailProperty {
	t.Helper()
	p := &tailProperty{
		n:      n,
		events: genEvents(n, count),
		jcfg:   Config{SyncEvery: 1, SnapshotEvery: 0, KeepSnapshots: 2},
	}
	dir := t.TempDir()
	je, _, err := OpenEngine(dir, n, testConfig(), p.jcfg)
	if err != nil {
		t.Fatal(err)
	}
	segs := listFiles(t, dir, "wal-")
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	p.segName = segs[0]
	seg := filepath.Join(dir, p.segName)
	size := func() int64 {
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	// Record the segment size after every appended event so a damage
	// offset maps to an expected intact-prefix length without knowing
	// the codec's framing.
	p.bounds = append(p.bounds, size())
	for _, ev := range p.events {
		applyToJournal(t, je, ev)
		if err := je.Sync(); err != nil {
			t.Fatal(err)
		}
		p.bounds = append(p.bounds, size())
	}
	if p.raw, err = os.ReadFile(seg); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= len(p.events); k++ {
		p.want = append(p.want, buildUninterrupted(t, n, p.events[:k]))
	}
	return p
}

// intactPrefix maps a damage offset to the number of whole events that
// precede it in the segment.
func (p *tailProperty) intactPrefix(off int64) int {
	k := 0
	for k+1 < len(p.bounds) && p.bounds[k+1] <= off {
		k++
	}
	return k
}

// recoverFrom writes the damaged segment into a fresh directory, opens
// the engine, and asserts it equals the uninterrupted run over the
// expected prefix.
func (p *tailProperty) recoverFrom(t *testing.T, damaged []byte, wantReplayed int, label string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, p.segName), damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, info, err := OpenEngine(dir, p.n, testConfig(), p.jcfg)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	if info.Replayed != uint64(wantReplayed) {
		t.Fatalf("%s: replayed %d events, want %d", label, info.Replayed, wantReplayed)
	}
	checkEnginesIdentical(t, p.want[wantReplayed], recovered.Core(), time.Duration(len(p.events)+1)*time.Minute)
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncationAtEveryByteOffset chops the log at every possible
// byte length, from an empty file up to one byte short of intact.
func TestWALTruncationAtEveryByteOffset(t *testing.T) {
	p := buildTailProperty(t, 8, 30)
	for off := int64(0); off < int64(len(p.raw)); off++ {
		p.recoverFrom(t, p.raw[:off], p.intactPrefix(off), fmt.Sprintf("truncate@%d", off))
	}
}

// TestWALBitFlipInFinalRecord flips one bit at every byte offset of the
// final record: header, payload or checksum, the damaged record must be
// discarded and recovery must stop at the previous event.
func TestWALBitFlipInFinalRecord(t *testing.T) {
	p := buildTailProperty(t, 8, 30)
	last := len(p.events)
	start, end := p.bounds[last-1], p.bounds[last]
	for off := start; off < end; off++ {
		damaged := append([]byte(nil), p.raw...)
		damaged[off] ^= 1 << (uint(off) % 8)
		p.recoverFrom(t, damaged, last-1, fmt.Sprintf("bitflip@%d", off))
	}
}
