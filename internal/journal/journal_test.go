package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/sim"
)

// genEvents produces a deterministic, varied engine workload: downloads,
// implicit evaluations, votes, ratings, blacklists and a periodic
// compaction.
func genEvents(n, count int) []core.Event {
	rng := sim.NewRNG(42)
	events := make([]core.Event, 0, count)
	now := time.Duration(0)
	file := func() string { return fmt.Sprintf("file-%03d", rng.Intn(60)) }
	pair := func() (int, int) {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		return i, j
	}
	for k := 0; k < count; k++ {
		now += time.Minute
		switch rng.Intn(10) {
		case 0, 1, 2:
			i, j := pair()
			events = append(events, core.Event{
				Kind: core.EventDownload, I: i, J: j,
				File: fileID(file()), Size: int64(rng.Intn(1<<20) + 1), Time: now,
			})
		case 3, 4, 5:
			events = append(events, core.Event{
				Kind: core.EventSetImplicit, I: rng.Intn(n),
				File: fileID(file()), Value: rng.Float64(), Time: now,
			})
		case 6, 7:
			events = append(events, core.Event{
				Kind: core.EventVote, I: rng.Intn(n),
				File: fileID(file()), Value: rng.Float64(), Time: now,
			})
		case 8:
			i, j := pair()
			events = append(events, core.Event{Kind: core.EventRateUser, I: i, J: j, Value: rng.Float64()})
		case 9:
			if k%41 == 40 {
				i, j := pair()
				events = append(events, core.Event{Kind: core.EventBlacklist, I: i, J: j})
			} else if k%97 == 96 {
				events = append(events, core.Event{Kind: core.EventCompact, Time: now})
			} else {
				i, j := pair()
				events = append(events, core.Event{Kind: core.EventRateUser, I: i, J: j, Value: rng.Float64()})
			}
		}
	}
	return events
}

// applyToJournal routes one event through the journaled engine's typed
// mutators — the same path a real owner uses.
func applyToJournal(t *testing.T, je *Engine, ev core.Event) {
	t.Helper()
	var err error
	switch ev.Kind {
	case core.EventSetImplicit:
		err = je.SetImplicit(ev.I, ev.File, ev.Value, ev.Time)
	case core.EventVote:
		err = je.Vote(ev.I, ev.File, ev.Value, ev.Time)
	case core.EventDownload:
		err = je.RecordDownload(ev.I, ev.J, ev.File, ev.Size, ev.Time)
	case core.EventRateUser:
		err = je.RateUser(ev.I, ev.J, ev.Value)
	case core.EventBlacklist:
		err = je.Blacklist(ev.I, ev.J)
	case core.EventCompact:
		err = je.Compact(ev.Time)
	default:
		t.Fatalf("unhandled kind %v", ev.Kind)
	}
	if err != nil {
		t.Fatalf("apply %v: %v", ev.Kind, err)
	}
}

func fileID(s string) eval.FileID { return eval.FileID(s) }

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Steps = 2 // exercise the matrix power on the recovery path
	return cfg
}

// buildUninterrupted replays events into a plain in-memory engine — the
// ground truth a recovered engine must match bit-for-bit.
func buildUninterrupted(t *testing.T, n int, events []core.Event) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(n, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := eng.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// checkEnginesIdentical asserts bit-identical TM and RM and equal
// exported state between two engines.
func checkEnginesIdentical(t *testing.T, want *core.Engine, got *core.Concurrent, now time.Duration) {
	t.Helper()
	if !reflect.DeepEqual(want.ExportState(), got.ExportState()) {
		t.Fatal("engine state diverged after recovery")
	}
	wantTM, err := want.BuildTM(now)
	if err != nil {
		t.Fatal(err)
	}
	gotTM, err := got.TM(now)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantTM.Entries(), gotTM.Entries()) {
		t.Fatal("TM not bit-identical after recovery")
	}
	wantRM, err := want.BuildRM(now)
	if err != nil {
		t.Fatal(err)
	}
	gotRM, err := got.BuildRM(now)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRM.Entries(), gotRM.Entries()) {
		t.Fatal("RM not bit-identical after recovery")
	}
}

func TestEmptyDirBootstrap(t *testing.T) {
	dir := t.TempDir()
	je, info, err := OpenEngine(filepath.Join(dir, "data"), 10, testConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 0 || info.Replayed != 0 || info.TruncatedTail || info.SnapshotFallback {
		t.Fatalf("fresh dir recovery = %+v, want zero", info)
	}
	if err := je.Vote(1, "f", 0.9, time.Minute); err != nil {
		t.Fatal(err)
	}
	if je.Seq() != 1 {
		t.Fatalf("seq = %d, want 1", je.Seq())
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryBitIdentical is the headline guarantee: a peer killed
// mid-run (snapshots taken along the way, unsynced tail flushed, no clean
// shutdown) recomputes TM and RM bit-identical to an uninterrupted run
// over the same event sequence.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	const n = 25
	events := genEvents(n, 400)
	now := 500 * time.Minute
	want := buildUninterrupted(t, n, events)

	dir := t.TempDir()
	jcfg := Config{SyncEvery: 16, SnapshotEvery: 150, KeepSnapshots: 2}
	je, _, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		applyToJournal(t, je, ev)
	}
	// Simulate a crash: flush the log (a kill -9 after fsync) and abandon
	// the engine without Close, so no final snapshot is taken.
	if err := je.Sync(); err != nil {
		t.Fatal(err)
	}

	recovered, info, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq == 0 {
		t.Fatal("expected recovery from a snapshot, got full replay")
	}
	if info.SnapshotSeq+info.Replayed != uint64(len(events)) {
		t.Fatalf("recovered %d+%d events, want %d", info.SnapshotSeq, info.Replayed, len(events))
	}
	checkEnginesIdentical(t, want, recovered.Core(), now)
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornFinalRecord kills the log mid-write: the torn record must be
// truncated away and the engine recovered to the last intact event.
func TestTornFinalRecord(t *testing.T) {
	const n = 10
	events := genEvents(n, 40)
	dir := t.TempDir()
	jcfg := Config{SyncEvery: 1, SnapshotEvery: 0, KeepSnapshots: 2}
	je, _, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		applyToJournal(t, je, ev)
	}
	// Tear the final record: chop a few bytes off the (single) segment.
	segs := listFiles(t, dir, "wal-")
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	seg := filepath.Join(dir, segs[0])
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered, info, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TruncatedTail {
		t.Fatal("torn tail not detected")
	}
	if info.Replayed != uint64(len(events)-1) {
		t.Fatalf("replayed %d events, want %d", info.Replayed, len(events)-1)
	}
	want := buildUninterrupted(t, n, events[:len(events)-1])
	checkEnginesIdentical(t, want, recovered.Core(), 100*time.Minute)

	// The truncated log must accept new appends and reopen cleanly.
	if err := recovered.Vote(0, "post-recovery", 0.5, 100*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Sync(); err != nil {
		t.Fatal(err)
	}
	again, info2, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if info2.TruncatedTail {
		t.Fatal("second recovery still sees a torn tail")
	}
	// A lone vote blends as ρ·value with a zero implicit component.
	wantEval := testConfig().Blend.Rho * 0.5
	if got, ok := again.Core().Evaluation(0, "post-recovery", 100*time.Minute); !ok || got != wantEval {
		t.Fatalf("post-recovery event lost: got %v,%v want %v", got, ok, wantEval)
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGarbageTail appends raw garbage to the segment — a checksum
// mismatch rather than a short read — which must also be truncated.
func TestGarbageTail(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	jcfg := Config{SyncEvery: 1, SnapshotEvery: 0, KeepSnapshots: 2}
	je, _, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range genEvents(n, 20) {
		applyToJournal(t, je, ev)
	}
	segs := listFiles(t, dir, "wal-")
	seg := filepath.Join(dir, segs[0])
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 9, 0xDE, 0xAD, 0xBE, 0xEF, 'g', 'a', 'r', 'b', 'a', 'g', 'e', '!', '!'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, info, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TruncatedTail {
		t.Fatal("garbage tail not detected")
	}
	if info.Replayed != 20 {
		t.Fatalf("replayed %d, want all 20 intact events", info.Replayed)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotFallback flips bytes in the newest snapshot: recovery
// must fall back to the previous generation and replay the longer tail,
// still landing on bit-identical state.
func TestCorruptSnapshotFallback(t *testing.T) {
	const n = 20
	events := genEvents(n, 300)
	now := 400 * time.Minute
	want := buildUninterrupted(t, n, events)

	dir := t.TempDir()
	jcfg := Config{SyncEvery: 8, SnapshotEvery: 100, KeepSnapshots: 2}
	je, _, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		applyToJournal(t, je, ev)
	}
	if err := je.Sync(); err != nil {
		t.Fatal(err)
	}

	snaps := listFiles(t, dir, "snap-")
	if len(snaps) != 2 {
		t.Fatalf("snapshots on disk = %v, want 2 generations", snaps)
	}
	newest := filepath.Join(dir, snaps[len(snaps)-1])
	corruptFile(t, newest)

	recovered, info, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotFallback {
		t.Fatal("fallback to older snapshot not reported")
	}
	if info.SnapshotSeq != 200 {
		t.Fatalf("recovered from snapshot %d, want 200", info.SnapshotSeq)
	}
	if info.SnapshotSeq+info.Replayed != uint64(len(events)) {
		t.Fatalf("recovered %d+%d events, want %d", info.SnapshotSeq, info.Replayed, len(events))
	}
	checkEnginesIdentical(t, want, recovered.Core(), now)
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCleanShutdownRecoversInstantly: Close snapshots, so the next Open
// replays nothing.
func TestCleanShutdownRecoversInstantly(t *testing.T) {
	const n = 12
	events := genEvents(n, 120)
	dir := t.TempDir()
	je, _, err := OpenEngine(dir, n, testConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		applyToJournal(t, je, ev)
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, info, err := OpenEngine(dir, n, testConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 {
		t.Fatalf("replayed %d events after clean shutdown, want 0", info.Replayed)
	}
	if info.SnapshotSeq != uint64(len(events)) {
		t.Fatalf("snapshot covers %d events, want %d", info.SnapshotSeq, len(events))
	}
	want := buildUninterrupted(t, n, events)
	checkEnginesIdentical(t, want, recovered.Core(), 150*time.Minute)
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPruning: old generations and dead segments must disappear.
func TestSnapshotPruning(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	jcfg := Config{SyncEvery: 4, SnapshotEvery: 50, KeepSnapshots: 2}
	je, _, err := OpenEngine(dir, n, testConfig(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range genEvents(n, 500) {
		applyToJournal(t, je, ev)
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}
	snaps := listFiles(t, dir, "snap-")
	if len(snaps) > 2 {
		t.Fatalf("%d snapshot generations on disk, want <= 2: %v", len(snaps), snaps)
	}
	segs := listFiles(t, dir, "wal-")
	if len(segs) > 3 {
		t.Fatalf("%d segments on disk after pruning: %v", len(segs), segs)
	}
}

// TestPopulationMismatch: restoring a snapshot into a differently-sized
// engine must fail loudly, not renumber peers.
func TestPopulationMismatch(t *testing.T) {
	dir := t.TempDir()
	je, _, err := OpenEngine(dir, 10, testConfig(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := je.Vote(1, "f", 0.9, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := je.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenEngine(dir, 11, testConfig(), DefaultConfig()); err == nil {
		t.Fatal("population mismatch accepted")
	}
}

func listFiles(t *testing.T, dir, prefix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
