package journal

import (
	"math"
	"reflect"
	"testing"
	"time"

	"mdrep/internal/core"
)

func TestEventCodecRoundTrip(t *testing.T) {
	events := []core.Event{
		{Kind: core.EventSetImplicit, I: 3, File: "file-a", Value: 0.75, Time: 90 * time.Minute},
		{Kind: core.EventVote, I: 0, File: "", Value: 0, Time: 0},
		{Kind: core.EventDownload, I: 7, J: 12, File: "hash:deadbeef", Size: 1 << 30, Time: time.Hour},
		{Kind: core.EventRateUser, I: 1, J: 2, Value: 1},
		{Kind: core.EventBlacklist, I: 5, J: 9},
		{Kind: core.EventCompact, Time: 30 * 24 * time.Hour},
		{Kind: core.EventVote, I: math.MaxInt32, File: "x", Value: math.SmallestNonzeroFloat64, Time: -time.Second},
	}
	for _, want := range events {
		got, err := DecodeEvent(EncodeEvent(want))
		if err != nil {
			t.Fatalf("%v: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeEventMalformed(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		{},
		{byte(core.EventVote)},
		{byte(core.EventVote), 0x80},          // unterminated uvarint
		{byte(core.EventVote), 1, 2, 0, 0, 0}, // truncated value
	} {
		if _, err := DecodeEvent(bad); err == nil {
			t.Fatalf("malformed payload %v accepted", bad)
		}
	}
}

// FuzzDecodeEvent: hostile event payloads must never panic, and anything
// accepted must round-trip through the encoder.
func FuzzDecodeEvent(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEvent(core.Event{Kind: core.EventVote, I: 1, File: "f", Value: 0.5, Time: time.Hour}))
	f.Add(EncodeEvent(core.Event{Kind: core.EventDownload, I: 2, J: 3, File: "g", Size: 1024}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return
		}
		back, err := DecodeEvent(EncodeEvent(ev))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		// NaN values compare unequal to themselves; compare bit patterns.
		if math.Float64bits(ev.Value) != math.Float64bits(back.Value) {
			t.Fatalf("value bits changed: %x vs %x", math.Float64bits(ev.Value), math.Float64bits(back.Value))
		}
		ev.Value, back.Value = 0, 0
		if !reflect.DeepEqual(ev, back) {
			t.Fatalf("round trip changed event: %+v vs %+v", ev, back)
		}
	})
}
