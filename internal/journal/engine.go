package journal

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
)

// Engine is a reputation engine whose every mutation is made durable
// through a Log before the call returns. Reads go through Core() — a
// core.Concurrent, so queries may run from any goroutine against frozen
// matrix snapshots. Mutations go through the mirrored methods here, which
// validate-by-applying and then append the event, so the log only ever
// contains events that replay cleanly; mu serialises the apply+append
// pair, guaranteeing the WAL records events in exactly the order they
// were applied — the invariant deterministic replay rests on.
type Engine struct {
	mu  sync.Mutex
	c   *core.Concurrent
	log *Log
}

// engineState adapts a core engine to the journal State interface with
// binary event payloads and JSON snapshots.
type engineState struct {
	je  *Engine
	n   int
	cfg core.Config
}

func (s *engineState) Apply(payload []byte) error {
	ev, err := DecodeEvent(payload)
	if err != nil {
		return err
	}
	return s.je.c.ApplyEvent(ev)
}

func (s *engineState) Snapshot() ([]byte, error) {
	return json.Marshal(s.je.c.ExportState())
}

func (s *engineState) Restore(snapshot []byte) error {
	var st core.EngineState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return err
	}
	if st.N != s.n {
		return fmt.Errorf("journal: snapshot population %d, engine configured for %d", st.N, s.n)
	}
	eng, err := core.NewEngineFromState(&st, s.cfg)
	if err != nil {
		return err
	}
	s.je.c.Swap(eng) // atomic swap: a failed restore leaves the engine untouched
	return nil
}

// OpenEngine recovers (or bootstraps) a journal-backed engine for n peers
// from dataDir: it loads the newest valid snapshot, replays the log tail
// and positions the log for appending.
func OpenEngine(dataDir string, n int, cfg core.Config, jcfg Config) (*Engine, RecoveryInfo, error) {
	eng, err := core.NewEngine(n, cfg)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	je := &Engine{c: core.NewConcurrent(eng)}
	log, info, err := Open(dataDir, jcfg, &engineState{je: je, n: n, cfg: cfg})
	if err != nil {
		return nil, info, err
	}
	je.log = log
	return je, info, nil
}

// Core returns the concurrency-safe engine facade for reads (TM,
// Reputations, JudgeFile, …), callable from any goroutine. Mutating it
// directly bypasses the journal; use the Engine's own mutators.
func (e *Engine) Core() *core.Concurrent { return e.c }

// Seq returns the number of events recorded across the journal's life.
func (e *Engine) Seq() uint64 { return e.log.Seq() }

// record applies then journals one event, and takes the automatic
// snapshot when the interval has passed. Applying first keeps invalid
// events (bad peer index, out-of-range rating) out of the log entirely —
// replay must never fail on validation. A crash between apply and append
// only loses an event the caller was never told was durable. The wrapper
// mutex spans both steps so concurrent mutators cannot interleave an
// apply/append pair — the log records events in apply order.
func (e *Engine) record(ev core.Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.c.ApplyEvent(ev); err != nil {
		return err
	}
	if err := e.log.Append(EncodeEvent(ev)); err != nil {
		return err
	}
	if e.log.SnapshotDue() {
		return e.log.Snapshot()
	}
	return nil
}

// Apply durably records an already-constructed event: it is validated by
// application, then journaled. The typed mutators below are conveniences
// over this.
func (e *Engine) Apply(ev core.Event) error { return e.record(ev) }

// SetImplicit mirrors core.Engine.SetImplicit, durably.
func (e *Engine) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.record(core.Event{Kind: core.EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// ObserveRetention mirrors core.Engine.ObserveRetention. The computed
// implicit value is what gets journaled, so replay is independent of
// later retention-model changes.
func (e *Engine) ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error {
	v := e.c.Config().Retention.Implicit(retention, deleted)
	return e.SetImplicit(p, f, v, now)
}

// Vote mirrors core.Engine.Vote, durably.
func (e *Engine) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.record(core.Event{Kind: core.EventVote, I: p, File: f, Value: value, Time: now})
}

// RecordDownload mirrors core.Engine.RecordDownload, durably.
func (e *Engine) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return e.record(core.Event{Kind: core.EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser mirrors core.Engine.RateUser, durably.
func (e *Engine) RateUser(i, j int, value float64) error {
	return e.record(core.Event{Kind: core.EventRateUser, I: i, J: j, Value: value})
}

// AddFriend mirrors core.Engine.AddFriend, durably.
func (e *Engine) AddFriend(i, j int) error {
	return e.RateUser(i, j, e.c.Config().FriendTrust)
}

// Blacklist mirrors core.Engine.Blacklist, durably.
func (e *Engine) Blacklist(i, j int) error {
	return e.record(core.Event{Kind: core.EventBlacklist, I: i, J: j})
}

// Compact mirrors core.Engine.Compact, durably: compaction mutates state,
// so replay must repeat it at the same point in the event sequence.
func (e *Engine) Compact(now time.Duration) error {
	return e.record(core.Event{Kind: core.EventCompact, Time: now})
}

// Sync forces buffered appends to disk immediately.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Sync()
}

// Snapshot forces a snapshot + log truncation now.
func (e *Engine) Snapshot() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.Snapshot()
}

// Close takes a final snapshot and closes the log, so the next Open
// recovers instantly with no replay. Use Sync+drop (no Close) to simulate
// a crash in tests.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.log.Snapshot(); err != nil {
		_ = e.log.Close()
		return err
	}
	return e.log.Close()
}
