package journal

import (
	"encoding/json"
	"sync"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/peer"
)

// Peer binds a peer.Peer's own-evidence event model to a Log, giving the
// decentralised CLI (cmd/mdrep-peer) durable votes, retention signals,
// downloads, ratings and blacklists across restarts. Peer events are
// JSON-encoded inside the checksummed record framing — the peer path is
// human-debuggable and low-rate; the engine path (engine.go) keeps the
// compact binary codec.
type Peer struct {
	mu  sync.Mutex
	p   *peer.Peer
	log *Log
}

// peerState adapts a peer.Peer to the journal State interface.
type peerState struct{ p *peer.Peer }

func (s *peerState) Apply(payload []byte) error {
	var ev peer.Event
	if err := json.Unmarshal(payload, &ev); err != nil {
		return err
	}
	return s.p.ApplyEvent(ev)
}

func (s *peerState) Snapshot() ([]byte, error) {
	return json.Marshal(s.p.ExportState())
}

func (s *peerState) Restore(snapshot []byte) error {
	var st peer.State
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return err
	}
	return s.p.RestoreState(&st)
}

// OpenPeer recovers p's durable state from dataDir and returns a wrapper
// whose mutators journal before returning. p must be freshly constructed;
// recovery replays its history onto it.
func OpenPeer(dataDir string, p *peer.Peer, cfg Config) (*Peer, RecoveryInfo, error) {
	log, info, err := Open(dataDir, cfg, &peerState{p: p})
	if err != nil {
		return nil, info, err
	}
	return &Peer{p: p, log: log}, info, nil
}

// Base returns the wrapped peer for reads and network operations
// (SyncPeer, TrustRow, SignedEvaluations, …). Mutating its evidence
// directly bypasses the journal; use the wrapper's mutators.
func (jp *Peer) Base() *peer.Peer { return jp.p }

func (jp *Peer) record(ev peer.Event) error {
	jp.mu.Lock()
	defer jp.mu.Unlock()
	if err := jp.p.ApplyEvent(ev); err != nil {
		return err
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if err := jp.log.Append(payload); err != nil {
		return err
	}
	if jp.log.SnapshotDue() {
		return jp.log.Snapshot()
	}
	return nil
}

// AdvanceTo durably moves the peer's virtual clock forward.
func (jp *Peer) AdvanceTo(now time.Duration) error {
	return jp.record(peer.Event{Kind: peer.EventAdvance, Time: now})
}

// Vote durably records an explicit evaluation at the peer's current time.
func (jp *Peer) Vote(f eval.FileID, value float64) error {
	return jp.record(peer.Event{Kind: peer.EventVote, File: f, Value: value, Time: jp.p.Now()})
}

// ObserveRetention durably records a retention-derived evaluation.
func (jp *Peer) ObserveRetention(f eval.FileID, value float64) error {
	return jp.record(peer.Event{Kind: peer.EventSetImplicit, File: f, Value: value, Time: jp.p.Now()})
}

// RecordDownload durably registers a completed download.
func (jp *Peer) RecordDownload(uploader identity.PeerID, f eval.FileID, size int64) error {
	return jp.record(peer.Event{Kind: peer.EventDownload, Target: uploader, File: f, Size: size})
}

// RateUser durably records a user rating.
func (jp *Peer) RateUser(target identity.PeerID, value float64) error {
	return jp.record(peer.Event{Kind: peer.EventRateUser, Target: target, Value: value})
}

// Blacklist durably bans target.
func (jp *Peer) Blacklist(target identity.PeerID) error {
	return jp.record(peer.Event{Kind: peer.EventBlacklist, Target: target})
}

// Sync flushes buffered appends to disk.
func (jp *Peer) Sync() error {
	jp.mu.Lock()
	defer jp.mu.Unlock()
	return jp.log.Sync()
}

// Close flushes the journal, takes a final snapshot and closes the log —
// the graceful-shutdown path of cmd/mdrep-peer.
func (jp *Peer) Close() error {
	jp.mu.Lock()
	defer jp.mu.Unlock()
	if err := jp.log.Snapshot(); err != nil {
		_ = jp.log.Close()
		return err
	}
	return jp.log.Close()
}
