// Package dist provides the heavy-tailed distributions used to model P2P
// file-sharing workloads: Zipf file popularity, bounded-Pareto user
// activity and file sizes, exponential inter-arrival times, and lognormal
// retention times.
//
// All samplers draw from an injected *sim.RNG so experiments remain
// deterministic under a fixed seed.
package dist

import (
	"errors"
	"math"

	"mdrep/internal/sim"
)

// Sampler produces values from a fixed distribution.
type Sampler interface {
	// Sample draws the next value.
	Sample(rng *sim.RNG) float64
}

// Zipf samples ranks 1..N with P(rank=k) proportional to 1/k^s, via inverse
// transform on a precomputed CDF. It models file-popularity skew: a small
// number of titles receive most downloads, the defining property of the
// Maze and KaZaA traces the paper builds on.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over ranks [1, n] with exponent s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("dist: Zipf needs n > 0")
	}
	if s < 0 {
		return nil, errors.New("dist: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
		cdf[k-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank draws a rank in [0, n) (zero-based; rank 0 is the most popular).
func (z *Zipf) Rank(rng *sim.RNG) int {
	u := rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Sample returns the drawn rank as a float64 (zero-based), satisfying
// Sampler.
func (z *Zipf) Sample(rng *sim.RNG) float64 { return float64(z.Rank(rng)) }

// PMF returns the probability of (zero-based) rank k.
func (z *Zipf) PMF(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

var _ Sampler = (*Zipf)(nil)

// BoundedPareto samples from a Pareto distribution truncated to [lo, hi].
// It models user activity (a few heavy uploaders/downloaders dominate) and
// file sizes.
type BoundedPareto struct {
	alpha  float64
	lo, hi float64
}

// NewBoundedPareto builds a bounded Pareto with shape alpha on [lo, hi].
func NewBoundedPareto(alpha, lo, hi float64) (*BoundedPareto, error) {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		return nil, errors.New("dist: BoundedPareto needs alpha > 0 and 0 < lo < hi")
	}
	return &BoundedPareto{alpha: alpha, lo: lo, hi: hi}, nil
}

// Sample draws a value in [lo, hi] by inverse transform.
func (p *BoundedPareto) Sample(rng *sim.RNG) float64 {
	u := rng.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
	if x < p.lo {
		x = p.lo
	}
	if x > p.hi {
		x = p.hi
	}
	return x
}

var _ Sampler = (*BoundedPareto)(nil)

// Exponential samples with the given rate (mean 1/rate); it models
// inter-arrival times of download requests and session churn.
type Exponential struct {
	rate float64
}

// NewExponential builds an exponential distribution with rate > 0.
func NewExponential(rate float64) (*Exponential, error) {
	if rate <= 0 {
		return nil, errors.New("dist: Exponential needs rate > 0")
	}
	return &Exponential{rate: rate}, nil
}

// Sample draws an exponentially distributed value with mean 1/rate.
func (e *Exponential) Sample(rng *sim.RNG) float64 {
	return rng.ExpFloat64() / e.rate
}

var _ Sampler = (*Exponential)(nil)

// Lognormal samples exp(N(mu, sigma)); it models file retention times —
// most files are deleted quickly, a long tail is kept for months, the
// signal behind implicit evaluation in the paper (§3.1.1).
type Lognormal struct {
	mu, sigma float64
}

// NewLognormal builds a lognormal distribution with log-mean mu and
// log-stddev sigma >= 0.
func NewLognormal(mu, sigma float64) (*Lognormal, error) {
	if sigma < 0 {
		return nil, errors.New("dist: Lognormal needs sigma >= 0")
	}
	return &Lognormal{mu: mu, sigma: sigma}, nil
}

// Sample draws a lognormally distributed value.
func (l *Lognormal) Sample(rng *sim.RNG) float64 {
	return math.Exp(l.mu + l.sigma*rng.NormFloat64())
}

var _ Sampler = (*Lognormal)(nil)

// Weighted draws an index in [0, len(weights)) with probability
// proportional to weights[i]. It is used to pick uploaders proportionally
// to how many replicas of a file they hold, and peers proportional to
// activity.
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a discrete distribution from non-negative weights; at
// least one weight must be positive.
func NewWeighted(weights []float64) (*Weighted, error) {
	if len(weights) == 0 {
		return nil, errors.New("dist: Weighted needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, errors.New("dist: Weighted needs non-negative weights")
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		return nil, errors.New("dist: Weighted needs a positive total weight")
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Weighted{cdf: cdf}, nil
}

// Index draws an index proportional to its weight.
func (w *Weighted) Index(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Sample returns the drawn index as a float64, satisfying Sampler.
func (w *Weighted) Sample(rng *sim.RNG) float64 { return float64(w.Index(rng)) }

var _ Sampler = (*Weighted)(nil)
