package dist

import (
	"math"
	"testing"
	"testing/quick"

	"mdrep/internal/sim"
)

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf(0, 1) succeeded")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Fatal("NewZipf(10, -1) succeeded")
	}
}

func TestZipfPMFSumsToOne(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Rank(rng)]++
	}
	// Rank 0 should get about 1/H(1000) ~ 13.4% of draws; rank 999 ~ 0.013%.
	p0 := float64(counts[0]) / n
	if p0 < 0.10 || p0 > 0.17 {
		t.Fatalf("rank-0 frequency %v outside Zipf(1.0) expectation", p0)
	}
	if counts[0] < 50*counts[500] {
		t.Fatalf("insufficient skew: head=%d mid=%d", counts[0], counts[500])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if math.Abs(z.PMF(k)-0.1) > 1e-9 {
			t.Fatalf("PMF(%d) = %v, want 0.1", k, z.PMF(k))
		}
	}
}

func TestZipfRankInRange(t *testing.T) {
	z, err := NewZipf(50, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	for i := 0; i < 10000; i++ {
		r := z.Rank(rng)
		if r < 0 || r >= 50 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	p, err := NewBoundedPareto(1.2, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := p.Sample(rng)
		if v < 1 || v > 1000 {
			t.Fatalf("sample %v outside [1, 1000]", v)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	p, err := NewBoundedPareto(1.0, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(4)
	const n = 50000
	small, large := 0, 0
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < 2 {
			small++
		}
		if v > 100 {
			large++
		}
	}
	// With alpha=1 on [1,10^4]: P(X<2) ~ 0.5, P(X>100) ~ 1%.
	if fs := float64(small) / n; fs < 0.4 || fs > 0.6 {
		t.Fatalf("P(X<2) = %v, want ~0.5", fs)
	}
	if fl := float64(large) / n; fl < 0.003 || fl > 0.03 {
		t.Fatalf("P(X>100) = %v, want ~0.01", fl)
	}
}

func TestBoundedParetoRejectsBadParams(t *testing.T) {
	cases := []struct{ alpha, lo, hi float64 }{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 2}, {1, 3, 2},
	}
	for _, c := range cases {
		if _, err := NewBoundedPareto(c.alpha, c.lo, c.hi); err == nil {
			t.Fatalf("NewBoundedPareto(%v, %v, %v) succeeded", c.alpha, c.lo, c.hi)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	e, err := NewExponential(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("exponential(0.5) mean %v, want ~2", mean)
	}
}

func TestExponentialRejectsBadRate(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Fatal("NewExponential(0) succeeded")
	}
}

func TestLognormalMedian(t *testing.T) {
	l, err := NewLognormal(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(6)
	const n = 50000
	below := 0
	median := math.Exp(2.0)
	for i := 0; i < n; i++ {
		if l.Sample(rng) < median {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("P(X < e^mu) = %v, want ~0.5", frac)
	}
}

func TestLognormalRejectsNegativeSigma(t *testing.T) {
	if _, err := NewLognormal(0, -1); err == nil {
		t.Fatal("NewLognormal with sigma<0 succeeded")
	}
}

func TestWeightedProportions(t *testing.T) {
	w, err := NewWeighted([]float64{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Index(rng)]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		if got := float64(c) / n; math.Abs(got-want[i]) > 0.01 {
			t.Fatalf("index %d frequency %v, want %v", i, got, want[i])
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	w, err := NewWeighted([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	for i := 0; i < 1000; i++ {
		if w.Index(rng) != 1 {
			t.Fatal("zero-weight index was drawn")
		}
	}
}

func TestWeightedRejectsBadWeights(t *testing.T) {
	if _, err := NewWeighted(nil); err == nil {
		t.Fatal("NewWeighted(nil) succeeded")
	}
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Fatal("NewWeighted(all-zero) succeeded")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Fatal("NewWeighted(negative) succeeded")
	}
}

func TestWeightedIndexAlwaysValid(t *testing.T) {
	rng := sim.NewRNG(9)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		w, err := NewWeighted(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			idx := w.Index(rng)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
