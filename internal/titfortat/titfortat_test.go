package titfortat

import (
	"testing"

	"mdrep/internal/trace"
)

func TestLedgerBasics(t *testing.T) {
	l, err := NewLedger(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordDownload(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordDownload(0, 1, 50); err != nil {
		t.Fatal(err)
	}
	if got := l.Credit(0, 1); got != 150 {
		t.Fatalf("Credit = %d, want 150", got)
	}
	if l.Credit(1, 0) != 0 {
		t.Fatal("credit is not directional")
	}
	if !l.Covered(0, 1) || l.Covered(0, 2) {
		t.Fatal("Covered wrong")
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0); err == nil {
		t.Fatal("empty population accepted")
	}
	l, err := NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordDownload(0, 0, 1); err == nil {
		t.Fatal("self-download accepted")
	}
	if err := l.RecordDownload(0, 5, 1); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
	if err := l.RecordDownload(0, 1, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestRankOrdersByCredit(t *testing.T) {
	l, err := NewLedger(4)
	if err != nil {
		t.Fatal(err)
	}
	// Server 0 downloaded 300 from peer 2, 100 from peer 1, nothing from 3.
	if err := l.RecordDownload(0, 2, 300); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordDownload(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	got := l.Rank(0, []int{1, 3, 2})
	want := []int{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestRankStableForUnknowns(t *testing.T) {
	l, err := NewLedger(5)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Rank(0, []int{3, 1, 4})
	want := []int{3, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unknown requesters reordered: %v", got)
		}
	}
}

// TestCoverageIsSparse reproduces the observation motivating the paper
// (§2): private Tit-for-Tat history covers only a tiny fraction of
// requests, because the server usually never downloaded from the
// requester.
func TestCoverageIsSparse(t *testing.T) {
	// Pairwise coverage shrinks with population (Maze: ~2% at 115k
	// users); use a population large enough that repeat pairs are rare.
	cfg := trace.DefaultGenConfig()
	cfg.Peers = 1000
	cfg.Files = 5000
	cfg.Downloads = 20000
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(tr.Peers)
	if err != nil {
		t.Fatal(err)
	}
	covered, total := 0, 0
	for _, r := range tr.Records {
		// The uploader (server) checks its private history of the
		// downloader (requester) before serving.
		total++
		if l.Covered(r.Uploader, r.Downloader) {
			covered++
		}
		if err := l.RecordDownload(r.Downloader, r.Uploader, r.Size); err != nil {
			t.Fatal(err)
		}
	}
	frac := float64(covered) / float64(total)
	// Q. Lian et al. report ~2% on the Maze log; the scaled-down trace is
	// denser, but Tit-for-Tat must still cover far less than the
	// file-based trust relationship does (>80%).
	if frac > 0.45 {
		t.Fatalf("tit-for-tat coverage %v unexpectedly high", frac)
	}
}

func TestCoverageOver(t *testing.T) {
	l, err := NewLedger(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordDownload(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {1, 0}, {2, 1}, {0, 2}}
	if got := l.CoverageOver(pairs); got != 0.25 {
		t.Fatalf("CoverageOver = %v, want 0.25", got)
	}
	if got := l.CoverageOver(nil); got != 0 {
		t.Fatalf("CoverageOver(nil) = %v", got)
	}
}
