// Package titfortat implements the private-history Tit-for-Tat baseline
// (§2): a peer prioritises requesters from whom it has successfully
// downloaded more in the past. Trust is strictly pairwise — no
// transitivity — which is why Q. Lian et al. measured only ~2% request
// coverage from a one-month history, the sparsity problem the paper's
// multi-dimensional direct trust is designed to fix.
package titfortat

import (
	"fmt"
	"sort"
)

// Ledger records, per peer pair, the bytes successfully received. It is
// the "private history" of the mechanism: peer i consults only row i.
type Ledger struct {
	n        int
	received []map[int]int64
}

// NewLedger builds a ledger for n peers.
func NewLedger(n int) (*Ledger, error) {
	if n < 1 {
		return nil, fmt.Errorf("titfortat: population %d, want >= 1", n)
	}
	return &Ledger{n: n, received: make([]map[int]int64, n)}, nil
}

// N returns the population size.
func (l *Ledger) N() int { return l.n }

func (l *Ledger) check(p int) error {
	if p < 0 || p >= l.n {
		return fmt.Errorf("titfortat: peer %d outside [0, %d)", p, l.n)
	}
	return nil
}

// RecordDownload registers that downloader successfully received size
// bytes from uploader.
func (l *Ledger) RecordDownload(downloader, uploader int, size int64) error {
	if err := l.check(downloader); err != nil {
		return err
	}
	if err := l.check(uploader); err != nil {
		return err
	}
	if downloader == uploader {
		return fmt.Errorf("titfortat: self-download by %d", downloader)
	}
	if size < 0 {
		return fmt.Errorf("titfortat: negative size %d", size)
	}
	if l.received[downloader] == nil {
		l.received[downloader] = make(map[int]int64)
	}
	l.received[downloader][uploader] += size
	return nil
}

// Credit returns how many bytes server has received from requester — the
// score the server uses to prioritise the requester ("a peer gives higher
// priority to those from whom he has successfully downloaded more").
func (l *Ledger) Credit(server, requester int) int64 {
	if l.check(server) != nil || l.check(requester) != nil {
		return 0
	}
	return l.received[server][requester]
}

// Covered reports whether server has any private history with requester —
// the request-coverage predicate used in the coverage comparison.
func (l *Ledger) Covered(server, requester int) bool {
	return l.Credit(server, requester) > 0
}

// Rank orders the requesters by server's private history, descending;
// unknown requesters (zero credit) sort last in stable input order. This
// is the service-differentiation decision of pure Tit-for-Tat.
func (l *Ledger) Rank(server int, requesters []int) []int {
	out := make([]int, len(requesters))
	copy(out, requesters)
	sort.SliceStable(out, func(a, b int) bool {
		return l.Credit(server, out[a]) > l.Credit(server, out[b])
	})
	return out
}

// CoverageOver reports the fraction of (server, requester) interactions in
// the given pair list that private history covers.
func (l *Ledger) CoverageOver(pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	covered := 0
	for _, p := range pairs {
		if l.Covered(p[0], p[1]) {
			covered++
		}
	}
	return float64(covered) / float64(len(pairs))
}
