package fault

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestSentinelsAreRetryable(t *testing.T) {
	for _, err := range []error{ErrUnreachable, ErrTimeout} {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	if Retryable(nil) {
		t.Error("Retryable(nil) = true")
	}
	if Retryable(errors.New("boom")) {
		t.Error("unclassified error reported retryable")
	}
}

func TestTaggingPreservesTextAndChain(t *testing.T) {
	root := fmt.Errorf("dial 10.0.0.1: %w", io.ErrUnexpectedEOF)
	tagged := Unreachable(root)
	if tagged.Error() != root.Error() {
		t.Errorf("tagging changed text: %q vs %q", tagged.Error(), root.Error())
	}
	if !errors.Is(tagged, ErrUnreachable) {
		t.Error("tagged error lost ErrUnreachable")
	}
	if !errors.Is(tagged, io.ErrUnexpectedEOF) {
		t.Error("tagged error lost the root cause")
	}
	if !Retryable(tagged) {
		t.Error("tagged error not retryable")
	}
	// Tagging survives further %w wrapping.
	outer := fmt.Errorf("peer: fetch p1: %w", tagged)
	if !Retryable(outer) || !errors.Is(outer, ErrUnreachable) {
		t.Error("wrapping stripped the taxonomy")
	}
}

func TestTimeoutTag(t *testing.T) {
	err := Timeout(errors.New("op budget exhausted"))
	if !errors.Is(err, ErrTimeout) || !Retryable(err) {
		t.Error("Timeout tag not classified")
	}
	if Timeout(nil) != ErrTimeout {
		t.Error("Timeout(nil) should be the bare sentinel")
	}
	if Unreachable(nil) != ErrUnreachable {
		t.Error("Unreachable(nil) should be the bare sentinel")
	}
}

func TestTerminalPinsChain(t *testing.T) {
	err := Terminal(Unreachable(errors.New("node gone, but give up")))
	if Retryable(err) {
		t.Error("Terminal error reported retryable")
	}
	if !IsTerminal(err) {
		t.Error("IsTerminal lost the pin")
	}
	// The underlying classification is still visible for diagnostics.
	if !errors.Is(err, ErrUnreachable) {
		t.Error("Terminal hid the underlying cause")
	}
	// Terminal survives wrapping.
	if Retryable(fmt.Errorf("outer: %w", err)) {
		t.Error("wrapped Terminal error reported retryable")
	}
	if Terminal(nil) != nil {
		t.Error("Terminal(nil) != nil")
	}
}
