// Package fault is the error taxonomy shared by the networked layers
// (internal/dht's RPC transports and internal/peer's evaluation
// exchange): it classifies failures into *transient* conditions a caller
// should retry — a peer that crashed, a dropped message, an expired
// deadline — and *terminal* conditions that retrying cannot fix — a
// malformed request, a forged signature, an unknown method.
//
// The taxonomy is deliberately sentinel-based so it composes with
// fmt.Errorf("%w") wrapping across package boundaries: a transport tags
// the root cause with Unreachable or Timeout (or returns an error whose
// chain contains ErrUnreachable/ErrTimeout), and retry loops ask only
// Retryable(err). A handler that wants to stop a retry loop around a
// normally-transient path pins the error with Terminal.
package fault

import "errors"

// ErrUnreachable marks a peer that cannot be reached right now: the
// process is gone, the message was lost, or routing has a transient hole.
// Retrying — ideally against a different replica — is the correct
// response.
var ErrUnreachable = errors.New("fault: peer unreachable")

// ErrTimeout marks an operation that exceeded its per-op budget. The
// work may or may not have happened remotely; the operations in this
// system are idempotent (stores merge by owner+timestamp), so retrying
// is safe.
var ErrTimeout = errors.New("fault: operation timed out")

// taggedError attaches a taxonomy sentinel to a root cause without
// changing the error text. Both the cause and the sentinel are visible
// to errors.Is / errors.As through multi-target Unwrap.
type taggedError struct {
	err  error
	kind error
}

func (t *taggedError) Error() string { return t.err.Error() }

func (t *taggedError) Unwrap() []error { return []error{t.err, t.kind} }

// Unreachable tags err as a transient reachability failure. A nil err
// returns ErrUnreachable itself.
func Unreachable(err error) error {
	if err == nil {
		return ErrUnreachable
	}
	return &taggedError{err: err, kind: ErrUnreachable}
}

// Timeout tags err as a per-op timeout. A nil err returns ErrTimeout
// itself.
func Timeout(err error) error {
	if err == nil {
		return ErrTimeout
	}
	return &taggedError{err: err, kind: ErrTimeout}
}

// terminalError pins an error as non-retryable regardless of what its
// chain would otherwise classify as.
type terminalError struct {
	err error
}

func (t *terminalError) Error() string { return t.err.Error() }

func (t *terminalError) Unwrap() error { return t.err }

// Terminal wraps err so Retryable reports false even if the underlying
// chain carries a transient sentinel. Wrapping nil returns nil.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err was pinned with Terminal.
func IsTerminal(err error) bool {
	var t *terminalError
	return errors.As(err, &t)
}

// Retryable reports whether err is worth retrying: its chain carries
// ErrUnreachable or ErrTimeout and no Terminal pin. nil is not
// retryable.
func Retryable(err error) bool {
	if err == nil || IsTerminal(err) {
		return false
	}
	return errors.Is(err, ErrUnreachable) || errors.Is(err, ErrTimeout)
}
