// Package wallclock forbids ambient time and randomness sources in the
// packages whose behaviour must be reproducible.
//
// The replay-deterministic packages (core, sparse, journal, wire, eval)
// and the networked services that embed them (dht, peer) must derive all
// state-affecting time from injected clocks — the virtual time.Duration
// the engine threads through every event, or the `now func() time.Time`
// field pattern of dht.Storage — and all randomness from seeded
// generators (sim.RNG, rand.New(rand.NewSource(seed))). A stray
// time.Now() or global rand.Intn() makes behaviour differ between a live
// run and its journal replay, and makes tests depend on wall-clock
// sleeps.
//
// Calls to time.Now and time.Since are flagged; so are the package-level
// (globally seeded) functions of math/rand and math/rand/v2. Constructing
// an explicitly seeded generator (rand.New, rand.NewSource, ...) is
// allowed, as is referencing time.Now without calling it — the injectable
// clock idiom `now: time.Now` in a constructor default. Genuine
// wall-clock uses, such as network I/O deadlines, carry an
// //mdrep:allow wallclock suppression naming the reason.
//
// The observability layer gets the same treatment: any reference to
// obs.WallClock — even uncalled, e.g. obs.NewTracer(obs.WallClock) — is
// flagged, because binding the ambient clock to a tracer inside a
// deterministic package defeats the injected-clock contract. Instrumented
// packages accept an obs.Clock from their caller (a cmd binary or a
// test's fake clock) and never choose the clock themselves.
package wallclock

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"mdrep/internal/analysis/lintutil"
)

// Packages is the set of packages that must not read ambient time or
// global randomness.
var Packages = []string{"core", "sparse", "journal", "wire", "eval", "dht", "peer", "chaos", "massim", "blue", "walk"}

// allowedRandFuncs construct explicitly seeded generators and are the
// sanctioned alternative to the global source.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "wallclock"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid time.Now/time.Since and global math/rand in deterministic packages\n\n" +
		"Deterministic packages must take time from injected clocks (the virtual\n" +
		"now threaded through events, or a `now func() time.Time` field like\n" +
		"dht.Storage's) and randomness from seeded generators, so journal replay\n" +
		"and tests reproduce live behaviour exactly.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.IsPackage(pass.Pkg.Path(), Packages...) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				lintutil.Report(pass, call.Pos(), name,
					"time.%s reads the wall clock in a deterministic package; inject a clock (virtual now, or a `now func() time.Time` field as in dht.Storage)",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRandFuncs[fn.Name()] {
				lintutil.Report(pass, call.Pos(), name,
					"%s.%s draws from the globally seeded source in a deterministic package; use an injected, explicitly seeded generator",
					fn.Pkg().Name(), fn.Name())
			}
		}
	})
	// References (not just calls) to obs.WallClock: passing the ambient
	// clock into a tracer is as nondeterministic as calling time.Now, and
	// the uncalled form is exactly how it would sneak in — as a Clock
	// argument. The time.Now reference exemption does not extend here:
	// an instrumented deterministic package must receive its obs.Clock
	// from the caller, never pick the wall clock itself.
	ins.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Name() != "WallClock" {
			return
		}
		if !lintutil.IsPackage(fn.Pkg().Path(), "obs") {
			return
		}
		lintutil.Report(pass, id.Pos(), name,
			"obs.WallClock binds the ambient clock inside a deterministic package; accept an injected obs.Clock from the caller instead")
	})
	return nil, nil
}
