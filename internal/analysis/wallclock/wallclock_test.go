package wallclock_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/wallclock"
)

func TestWallClock(t *testing.T) {
	analyzertest.Run(t, "testdata", wallclock.Analyzer, "journal", "simtool", "sparse")
}
