// Positive fixture: package path "journal" is in wallclock's
// deterministic set, so ambient time and global randomness are flagged.
package journal

import (
	"math/rand"
	"time"
)

func bad() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	_ = rand.Intn(10)        // want `rand\.Intn draws from the globally seeded source`
	_ = rand.Float64()       // want `rand\.Float64 draws from the globally seeded source`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

type clocked struct {
	now func() time.Time
}

// newClocked demonstrates the sanctioned injectable-clock default:
// referencing time.Now without calling it is fine.
func newClocked() *clocked {
	return &clocked{now: time.Now}
}

func good(virtual time.Duration) float64 {
	rng := rand.New(rand.NewSource(42)) // seeded constructor: allowed
	_ = rng.Intn(10)                    // method on seeded generator: allowed
	t := time.Unix(0, int64(virtual))   // pure conversion: allowed
	_ = t.Add(time.Second)
	return rng.Float64()
}

type conn interface {
	SetDeadline(time.Time) error
}

func deadline(c conn) error {
	return c.SetDeadline(time.Now().Add(3 * time.Second)) //mdrep:allow wallclock: I/O deadline, not replayed state
}
