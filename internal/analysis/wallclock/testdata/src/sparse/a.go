// Positive fixture for the observability rules: package path "sparse"
// is in wallclock's deterministic set. Instrumentation must take its
// clock by injection; reading the wall clock inside a span, or binding
// obs.WallClock to a tracer, is flagged.
package sparse

import (
	"obs"
	"time"
)

type kernelObs struct {
	tracer *obs.Tracer
}

// instrumentSelf wires the ambient clock into the package's own tracer —
// exactly the uncalled-reference form the analyzer must catch.
func instrumentSelf() *kernelObs {
	return &kernelObs{tracer: obs.NewTracer(obs.WallClock)} // want `obs\.WallClock binds the ambient clock`
}

// badSpan reads the raw wall clock inside an open span instead of
// letting the span's injected clock measure the work.
func badSpan(k *kernelObs) time.Duration {
	sp := k.tracer.Start()
	start := time.Now() // want `time\.Now reads the wall clock`
	work()
	_ = sp.End()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// goodSpan is the sanctioned shape: the clock arrived by injection when
// the tracer was built, and the span alone reads it.
func goodSpan(k *kernelObs) time.Duration {
	sp := k.tracer.Start()
	work()
	return sp.End()
}

// instrument is the sanctioned constructor: the caller chooses the clock.
func instrument(clock obs.Clock) *kernelObs {
	return &kernelObs{tracer: obs.NewTracer(clock)}
}

func work() {}
