// Stub of mdrep/internal/obs for the wallclock fixtures: the same
// surface (Clock, WallClock, Tracer, Span) under the bare import path
// "obs", which lintutil.IsPackage matches like the real one.
package obs

import "time"

type Clock func() time.Time

func WallClock() time.Time { return time.Now() }

type Tracer struct{ clock Clock }

func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		return nil
	}
	return &Tracer{clock: clock}
}

type Span struct {
	clock Clock
	start time.Time
}

func (t *Tracer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{clock: t.clock, start: t.clock()}
}

func (s Span) End() time.Duration {
	if s.clock == nil {
		return 0
	}
	return s.clock().Sub(s.start)
}
