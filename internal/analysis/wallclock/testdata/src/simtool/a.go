// Clean-negative fixture: package "simtool" is outside wallclock's
// deterministic set, so wall-clock reads produce no diagnostics.
package simtool

import (
	"math/rand"
	"time"
)

func elapsed() time.Duration {
	start := time.Now()
	_ = rand.Intn(10)
	return time.Since(start)
}
