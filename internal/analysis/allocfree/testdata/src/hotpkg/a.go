// Package hotpkg carries the hot-path directive on its package clause:
// every function in the package is checked.
//
//mdrep:hotpath
package hotpkg

import "fmt"

func anywhere(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates on the hot path`
}

func clean(n int) int {
	return n * 2
}
