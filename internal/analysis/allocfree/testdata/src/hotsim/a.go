// Positive fixture: functions annotated //mdrep:hotpath are checked for
// allocation-forcing constructs; unannotated functions are not.
package hotsim

import "fmt"

//mdrep:hotpath
func step(n int, names map[int]string) string {
	s := fmt.Sprintf("step %d", n) // want `fmt\.Sprintf allocates on the hot path`
	s = s + "!"                    // want `string concatenation allocates on the hot path`
	for k := range names {         // want `map iteration on the hot path`
		_ = k
	}
	return s
}

//mdrep:hotpath
func accumulate(rows []int) []int {
	var xs []int
	for _, r := range rows {
		xs = append(xs, r) // want `append to xs inside a loop with no preallocated capacity`
	}
	ys := make([]int, 0, len(rows))
	for _, r := range rows {
		ys = append(ys, r) // preallocated: allowed
	}
	return append(xs, ys...)
}

func sink(v interface{}) { _ = v }

//mdrep:hotpath
func box(n int) {
	sink(n)        // want `n argument boxes a scalar into an interface`
	sink("string") // strings are headers, not boxed scalars: allowed
}

//mdrep:hotpath
func escape(work func()) {
	go func() { work() }() // want `closure launched as a goroutine escapes`
	f := func() {}         // want `closure escapes \(stored, passed or returned\)`
	f()
	func() { _ = 1 }() // immediately invoked: allowed
}

//mdrep:hotpath
func errPath(ok bool) error {
	if !ok {
		return fmt.Errorf("bad state %d", 7) // fmt.Errorf is the sanctioned error-path constructor
	}
	return nil
}

//mdrep:hotpath
func suppressed(n int) string {
	return fmt.Sprintf("cold %d", n) //mdrep:allow allocfree: cold slow path, measured off the step loop
}

// cold is not annotated: anything goes.
func cold(n int, names map[int]string) string {
	for k := range names {
		_ = k
	}
	return fmt.Sprintf("%d", n) + "!"
}
