package allocfree_test

import (
	"testing"

	"mdrep/internal/analysis/allocfree"
	"mdrep/internal/analysis/analyzertest"
)

func TestAllocFree(t *testing.T) {
	analyzertest.Run(t, "testdata", allocfree.Analyzer, "hotsim", "hotpkg")
}
