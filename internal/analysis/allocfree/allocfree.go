// Package allocfree implements the hot-path allocation analyzer.
//
// The repo's headline performance claims — ~500 ns zero-alloc massim
// events, 0 B/op metrics Inc/Observe, allocation-free sparse inner
// kernels — are enforced at runtime by `-benchmem` guards (make obs) and
// at review time by convention. allocfree moves the convention to
// compile time: a function whose doc comment carries
//
//	//mdrep:hotpath
//
// (or every function of a package whose package clause carries it) is
// checked for the constructs that force the Go compiler to allocate:
//
//   - fmt calls other than fmt.Errorf (error construction is the
//     sanctioned error-path escape; Sprintf and friends in a success
//     path are not),
//   - non-constant string concatenation,
//   - closures that escape — function literals launched with `go`,
//     deferred, passed as arguments, stored or returned; only the
//     immediately invoked form stays on the stack,
//   - interface boxing of scalars — passing an integer, float or bool
//     to an interface-typed parameter heap-allocates the box,
//   - `x = append(x, …)` inside a loop when x is a function-local slice
//     declared without capacity (`var x []T`, `x := []T{}`,
//     `make([]T, 0)`) — preallocate or reuse a scratch buffer,
//   - ranging over a map — hash-walk cost and nondeterministic order
//     have no place in an accumulation path (see also detfloat).
//
// The annotation is deliberately opt-in per function: hot paths are a
// property of the design (the massim step loop, sparse row kernels,
// sim.Wheel/sim.RNG, metrics Inc/Observe), not of a package as a whole.
// A genuine allocation in an annotated function — e.g. a cold error
// branch that formats — carries an //mdrep:allow allocfree: <reason>
// suppression.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"mdrep/internal/analysis/lintutil"
)

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "allocfree"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid allocation-forcing constructs in //mdrep:hotpath functions\n\n" +
		"Functions annotated //mdrep:hotpath (massim step loop, sparse kernels,\n" +
		"metrics Inc/Observe, sim.Wheel/RNG) mirror the 0 B/op benchmark guards at\n" +
		"compile time: no fmt outside error paths, no string concatenation, no\n" +
		"escaping closures, no interface boxing of scalars, no un-preallocated\n" +
		"append in loops, no map iteration.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	pkgHot := false
	for _, f := range pass.Files {
		if lintutil.HasDirective(f.Doc, lintutil.HotPathDirective) {
			pkgHot = true
		}
	}

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		if !pkgHot && !lintutil.HasDirective(fd.Doc, lintutil.HotPathDirective) {
			return
		}
		checkBody(pass, fd.Body)
	})
	return nil, nil
}

// checkBody walks one annotated function body (including nested function
// literals, which inherit the hot-path contract) and reports
// allocation-forcing constructs.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		check(pass, n, stack, body)
		stack = append(stack, n)
		return true
	})
}

func check(pass *analysis.Pass, n ast.Node, stack []ast.Node, body *ast.BlockStmt) {
	switch x := n.(type) {
	case *ast.CallExpr:
		checkCall(pass, x)
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isString(pass, x) && !isConst(pass, x) {
			lintutil.Report(pass, x.OpPos, name,
				"string concatenation allocates on the hot path; use a preallocated buffer or avoid building strings here")
		}
	case *ast.AssignStmt:
		checkAssign(pass, x, stack, body)
	case *ast.FuncLit:
		checkFuncLit(pass, x, stack)
	case *ast.RangeStmt:
		if t := pass.TypesInfo.TypeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				lintutil.Report(pass, x.For, name,
					"map iteration on the hot path: hash-walk cost and nondeterministic order; iterate a dense index or sorted keys")
			}
		}
	}
}

// checkCall flags fmt calls (except Errorf) and interface boxing of
// scalar arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			if fn.Name() == "Errorf" {
				return // sanctioned error-path constructor; boxing check skipped too
			}
			lintutil.Report(pass, call.Pos(), name,
				"fmt.%s allocates on the hot path; only fmt.Errorf in error paths is exempt", fn.Name())
			return
		}
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread: no per-element boxing introduced here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			lintutil.Report(pass, arg.Pos(), name,
				"%s argument boxes a scalar into an interface, forcing a heap allocation on the hot path", types.ExprString(arg))
		}
	}
}

// checkFuncLit flags function literals that escape: launched as
// goroutines, deferred, passed as arguments, stored or returned. Only
// the immediately invoked form `func(){…}()` stays on the stack.
func checkFuncLit(pass *analysis.Pass, lit *ast.FuncLit, stack []ast.Node) {
	if len(stack) > 0 {
		if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == lit {
			// Immediately invoked — unless the invocation itself is a go
			// or defer statement, which forces the closure to escape.
			if len(stack) < 2 {
				return
			}
			switch stack[len(stack)-2].(type) {
			case *ast.GoStmt:
				lintutil.Report(pass, lit.Pos(), name,
					"closure launched as a goroutine escapes to the heap on the hot path; hoist the work out of the annotated function")
			case *ast.DeferStmt:
				lintutil.Report(pass, lit.Pos(), name,
					"deferred closure allocates on the hot path; restructure so the fast path does not defer")
			}
			return
		}
	}
	lintutil.Report(pass, lit.Pos(), name,
		"closure escapes (stored, passed or returned) and captures allocate on the hot path; hoist it to a method or a preallocated func value")
}

// checkAssign flags `x = append(x, …)` inside a loop when x is a local
// slice declared without capacity.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt, stack []ast.Node, body *ast.BlockStmt) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") {
		return
	}
	inLoop := false
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		}
	}
	if !inLoop {
		return
	}
	root := lintutil.RootIdent(assign.Lhs[0])
	if root == nil {
		return
	}
	obj, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
	if !ok || obj.Parent() == nil || obj.Parent() == pass.Pkg.Scope() {
		return // package-level, field or unresolved: caller controls capacity
	}
	if !unpreallocated(pass, obj, body) {
		return
	}
	lintutil.Report(pass, assign.Pos(), name,
		"append to %s inside a loop with no preallocated capacity; make([]T, 0, n) or reuse a scratch buffer", root.Name)
}

// unpreallocated reports whether obj's declaration inside body provides
// no capacity: `var x []T`, `x := []T{}` (empty literal) or
// `make([]T, 0)` with no capacity argument. Declarations this analyzer
// cannot see (parameters, outer scopes) are treated as preallocated —
// the caller owns the buffer.
func unpreallocated(pass *analysis.Pass, obj *types.Var, body *ast.BlockStmt) bool {
	verdict := false
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch d := n.(type) {
		case *ast.ValueSpec:
			for i, id := range d.Names {
				if pass.TypesInfo.Defs[id] != obj {
					continue
				}
				found = true
				if len(d.Values) == 0 {
					verdict = true // var x []T
				} else {
					verdict = badInit(pass, d.Values[i])
				}
			}
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj {
					continue
				}
				found = true
				if i < len(d.Rhs) {
					verdict = badInit(pass, d.Rhs[i])
				}
			}
		}
		return !found
	})
	return found && verdict
}

// badInit reports whether the initializer gives the slice no capacity:
// an empty composite literal, nil, or make with a constant-zero length
// and no capacity argument.
func badInit(pass *analysis.Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return len(v.Elts) == 0
	case *ast.Ident:
		return v.Name == "nil"
	case *ast.CallExpr:
		if !isBuiltin(pass, v.Fun, "make") || len(v.Args) < 2 {
			return false
		}
		if len(v.Args) >= 3 {
			return false // explicit capacity
		}
		tv, ok := pass.TypesInfo.Types[v.Args[1]]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, want string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != want {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
