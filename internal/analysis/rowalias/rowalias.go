// Package rowalias enforces the sparse.Matrix.Row aliasing contract.
//
// Matrix.Row returns the matrix's internal row map (internal/sparse
// matrix.go): callers must treat it as strictly read-only and must not
// let it outlive the call site. Mutating the alias corrupts the matrix
// silently; retaining it desynchronises the engine's incremental caches
// and breaks bit-identical journal replay. Callers that need ownership
// must use RowCopy; read-only iteration should prefer ForEachRow, which
// also fixes the iteration order.
//
// The analyzer flags call sites outside the sparse package where the map
// returned by Row is
//
//   - returned from the enclosing function,
//   - stored into a field, map/slice element, pointer target or global,
//   - mutated in place (row[k] = v, row[k] += v, delete(row, k)),
//
// either directly on the call expression or through a local variable the
// result was assigned to. Passing the map to another function is not
// tracked (the callee is out of scope for a per-package analyzer); such
// handoffs must either copy first or carry an //mdrep:allow rowalias
// suppression naming the callee's read-only guarantee.
package rowalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mdrep/internal/analysis/lintutil"
)

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "rowalias"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag retention or mutation of the internal map returned by sparse.Matrix.Row\n\n" +
		"Row aliases the matrix's internal storage. Mutating or retaining the\n" +
		"returned map corrupts cached derived state; use RowCopy to own a row and\n" +
		"ForEachRow for deterministic read-only iteration.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The defining package owns the storage: its internal uses (RowCopy,
	// ForEachRow, direct row plumbing) are the implementation of the
	// contract, not subject to it.
	if pass.Pkg.Name() == "sparse" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !reported[pos] {
			reported[pos] = true
			lintutil.Report(pass, pos, name, format, args...)
		}
	}
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if !isMatrixRow(pass, call) {
			return true
		}
		parent := parentNode(stack)
		switch p := parent.(type) {
		case *ast.ReturnStmt:
			report(call.Pos(), "returning the internal row map of sparse.Matrix.Row; return RowCopy instead")
		case *ast.AssignStmt:
			lhs := assignTarget(p, call)
			if lhs == nil {
				return true
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					return true
				}
				fn := enclosingFunc(stack)
				if obj, isLocal := localVar(pass, id, fn); isLocal {
					checkLocalUses(pass, obj, funcBody(fn), report)
					return true
				}
				report(call.Pos(), "storing the internal row map of sparse.Matrix.Row in %s, which outlives the call; use RowCopy", id.Name)
				return true
			}
			report(call.Pos(), "storing the internal row map of sparse.Matrix.Row into %s; use RowCopy", types.ExprString(lhs))
		case *ast.IndexExpr:
			// m.Row(i)[j] — reading an element is fine; writing is not.
			if isAssignLHS(stack, p) {
				report(call.Pos(), "writing through the internal row map of sparse.Matrix.Row; use Matrix.Set (or RowCopy)")
			}
		case *ast.CallExpr:
			if callee, ok := p.Fun.(*ast.Ident); ok && callee.Name == "delete" {
				report(call.Pos(), "deleting from the internal row map of sparse.Matrix.Row; use Matrix.Set(i, j, 0)")
			}
		}
		return true
	})
	return nil, nil
}

// isMatrixRow reports whether call invokes the map-returning Row method of
// a type named Matrix defined in a package named sparse.
func isMatrixRow(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Name() != "Row" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	if _, isMap := sig.Results().At(0).Type().Underlying().(*types.Map); !isMap {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Matrix" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "sparse"
}

// parentNode returns the syntactic parent of the top of stack, skipping
// parens.
func parentNode(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a FuncDecl or FuncLit.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// assignTarget maps a RHS expression of assign to its LHS partner.
func assignTarget(assign *ast.AssignStmt, rhs ast.Expr) ast.Expr {
	for i, r := range assign.Rhs {
		if r == rhs {
			if len(assign.Lhs) == len(assign.Rhs) {
				return assign.Lhs[i]
			}
			if len(assign.Lhs) > 0 {
				return assign.Lhs[0]
			}
		}
	}
	return nil
}

// localVar reports whether id denotes a variable declared inside fn
// (body or parameter list — both die with the call frame).
func localVar(pass *analysis.Pass, id *ast.Ident, fn ast.Node) (*types.Var, bool) {
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || fn == nil {
		return nil, false
	}
	return obj, fn.Pos() <= obj.Pos() && obj.Pos() <= fn.End()
}

// isAssignLHS reports whether e (an element of stack) is used as an
// assignment target.
func isAssignLHS(stack []ast.Node, e ast.Expr) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.IndexExpr:
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if containsExpr(lhs, e) {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return containsExpr(p.X, e)
		default:
			return false
		}
	}
	return false
}

func containsExpr(root ast.Node, target ast.Expr) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == ast.Node(target) {
			found = true
		}
		return !found
	})
	return found
}

// checkLocalUses scans the enclosing function for uses of a Row-aliased
// local variable that violate the contract: in-place mutation, deletion,
// returning it, or storing it somewhere that outlives the function.
func checkLocalUses(pass *analysis.Pass, obj *types.Var, body *ast.BlockStmt, report func(token.Pos, string, ...interface{})) {
	if body == nil {
		return
	}
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == types.Object(obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isObj(idx.X) {
					report(s.Pos(), "mutating %s, an alias of sparse.Matrix internal row storage; use RowCopy (or Matrix.Set)", obj.Name())
				}
			}
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				break
			}
			for i, rhs := range s.Rhs {
				if !isObj(rhs) || i >= len(s.Lhs) {
					continue
				}
				switch lhs := s.Lhs[i].(type) {
				case *ast.Ident:
					// Re-aliasing to another local is out of scope; storing
					// into a package-level variable is not.
					if v, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
						report(s.Pos(), "storing %s (alias of sparse.Matrix internal row storage) in package variable %s; use RowCopy", obj.Name(), lhs.Name)
					}
				default:
					report(s.Pos(), "storing %s (alias of sparse.Matrix internal row storage) into %s, which outlives the call; use RowCopy", obj.Name(), types.ExprString(s.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if isObj(res) {
					report(s.Pos(), "returning %s, an alias of sparse.Matrix internal row storage; return RowCopy instead", obj.Name())
				}
			}
		case *ast.CallExpr:
			if callee, ok := s.Fun.(*ast.Ident); ok && callee.Name == "delete" && len(s.Args) > 0 && isObj(s.Args[0]) {
				report(s.Pos(), "deleting from %s, an alias of sparse.Matrix internal row storage; use Matrix.Set(i, j, 0)", obj.Name())
			}
		}
		return true
	})
}
