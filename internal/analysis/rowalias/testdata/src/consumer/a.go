// Positive fixture: every way of retaining or mutating the map returned
// by sparse.Matrix.Row that the analyzer tracks.
package consumer

import "sparse"

type cache struct {
	row map[int]float64
}

var leaked map[int]float64

func returnDirect(m *sparse.Matrix) map[int]float64 {
	return m.Row(0) // want `returning the internal row map`
}

func storeField(c *cache, m *sparse.Matrix) {
	c.row = m.Row(1) // want `storing the internal row map of sparse\.Matrix\.Row into c\.row`
}

func writeThrough(m *sparse.Matrix) {
	m.Row(0)[3] = 1 // want `writing through the internal row map`
}

func deleteDirect(m *sparse.Matrix) {
	delete(m.Row(0), 3) // want `deleting from the internal row map`
}

func storeGlobal(m *sparse.Matrix) {
	leaked = m.Row(0) // want `storing the internal row map of sparse\.Matrix\.Row in leaked`
}

func mutateLocal(m *sparse.Matrix) {
	row := m.Row(2)
	row[1] = 0.5 // want `mutating row, an alias of sparse\.Matrix internal row storage`
}

func returnLocal(m *sparse.Matrix) map[int]float64 {
	r := m.Row(2)
	return r // want `returning r, an alias of sparse\.Matrix internal row storage`
}

func deleteLocal(m *sparse.Matrix) {
	r := m.Row(1)
	delete(r, 0) // want `deleting from r, an alias of sparse\.Matrix internal row storage`
}

func stashLocal(m *sparse.Matrix, dst map[int]map[int]float64) {
	r := m.Row(0)
	dst[0] = r // want `storing r \(alias of sparse\.Matrix internal row storage\) into dst\[0\]`
}
