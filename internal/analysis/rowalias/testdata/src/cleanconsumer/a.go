// Clean-negative fixture: the sanctioned ways to consume rows produce
// no diagnostics.
package cleanconsumer

import "sparse"

func sum(m *sparse.Matrix) float64 {
	total := 0.0
	m.ForEachRow(0, func(j int, v float64) {
		total += v
	})
	return total
}

func owned(m *sparse.Matrix) map[int]float64 {
	c := m.RowCopy(1) // caller owns the copy: mutate and return freely
	c[2] = 1.0
	return c
}

func readElement(m *sparse.Matrix) float64 {
	return m.Row(0)[2] // reading through the alias is fine
}

func rowLen(m *sparse.Matrix) int {
	return len(m.Row(0))
}

func transientLocal(m *sparse.Matrix) float64 {
	row := m.Row(3) // read-only local alias that dies with the frame
	return row[0] + row[1]
}
