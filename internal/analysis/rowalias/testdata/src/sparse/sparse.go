// Stub of mdrep's internal/sparse package: just enough surface for the
// rowalias fixtures. The analyzer matches on (package name "sparse",
// type "Matrix", method "Row" returning a map), so this stands in for
// the real package.
package sparse

type Matrix struct {
	rows []map[int]float64
}

func New(n int) *Matrix {
	return &Matrix{rows: make([]map[int]float64, n)}
}

// Row returns the internal row map; callers must not mutate or retain it.
func (m *Matrix) Row(i int) map[int]float64 { return m.rows[i] }

// RowCopy returns a caller-owned copy of row i.
func (m *Matrix) RowCopy(i int) map[int]float64 {
	out := make(map[int]float64, len(m.rows[i]))
	for j, v := range m.rows[i] {
		out[j] = v
	}
	return out
}

func (m *Matrix) Set(i, j int, v float64) {
	if m.rows[i] == nil {
		m.rows[i] = make(map[int]float64)
	}
	m.rows[i][j] = v
}

func (m *Matrix) ForEachRow(i int, fn func(j int, v float64)) {
	for j, v := range m.rows[i] {
		fn(j, v)
	}
}
