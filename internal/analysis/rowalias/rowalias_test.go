package rowalias_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/rowalias"
)

func TestRowAlias(t *testing.T) {
	analyzertest.Run(t, "testdata", rowalias.Analyzer, "consumer", "cleanconsumer")
}
