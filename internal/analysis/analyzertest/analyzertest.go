// Package analyzertest runs a go/analysis analyzer over fixture packages
// and checks its diagnostics against inline expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest (which is not vendored with
// the toolchain; this is a dependency-free replacement built directly on
// go/parser and go/types).
//
// Fixtures live in GOPATH-style trees:
//
//	testdata/src/<pkg>/<files>.go
//
// and are loaded with the package path "<pkg>" — analyzers that gate on
// mdrep package names (lintutil.IsPackage) therefore see fixture packages
// named like the real ones ("core", "sparse", ...). Imports between
// fixture packages resolve within the tree; standard-library imports are
// type-checked from GOROOT source; anything else falls back to the
// module's vendor/ directory (found by walking up from testdata to
// go.mod), so fixtures may import vendored dependencies such as
// golang.org/x/tools/go/analysis without network access.
//
// Expected diagnostics are written on the offending line:
//
//	sum += v // want `nondeterministic float accumulation`
//
// Each string after "want" (quoted or backquoted) is a regexp that must
// match one diagnostic reported on that line; diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named fixture package beneath testdata/src, applies the
// analyzer, and checks diagnostics against // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			loaded, err := ld.load(pkg)
			if err != nil {
				t.Fatalf("loading fixture package %q: %v", pkg, err)
			}
			diags, err := execute(t, a, loaded, ld.fset)
			if err != nil {
				t.Fatalf("running %s on %q: %v", a.Name, pkg, err)
			}
			check(t, ld.fset, loaded.files, diags)
		})
	}
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset      *token.FileSet
	srcRoot   string
	vendorDir string // module vendor/ directory, "" if none found
	std       types.Importer
	pkgs      map[string]*loaded
}

func newLoader(srcRoot string) *loader {
	l := &loader{
		fset:      token.NewFileSet(),
		srcRoot:   srcRoot,
		vendorDir: findVendor(srcRoot),
		pkgs:      map[string]*loaded{},
	}
	// The source importer type-checks std packages from GOROOT source —
	// no compiled export data needed, and it works offline.
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// findVendor walks up from dir to the enclosing module root (the first
// directory holding a go.mod) and returns its vendor/ directory, or ""
// when the module has none.
func findVendor(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			v := filepath.Join(dir, "vendor")
			if fi, err := os.Stat(v); err == nil && fi.IsDir() {
				return v
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// dirFor resolves an import path to the fixture tree or, failing that,
// the module vendor tree. ok is false when neither holds the package.
func (l *loader) dirFor(path string) (dir string, ok bool) {
	dir = filepath.Join(l.srcRoot, path)
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, true
	}
	if l.vendorDir != "" {
		dir = filepath.Join(l.vendorDir, path)
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		dir = filepath.Join(l.srcRoot, path) // keep the original error shape
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := &types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if _, ok := l.dirFor(p); ok {
			fixture, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return fixture.pkg, nil
		}
		return l.std.Import(p)
	})}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	ld := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = ld
	return ld, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// execute runs a (and, recursively, its Requires) over the loaded package
// and returns the root analyzer's diagnostics.
func execute(t *testing.T, a *analysis.Analyzer, ld *loaded, fset *token.FileSet) ([]analysis.Diagnostic, error) {
	t.Helper()
	results := map[*analysis.Analyzer]interface{}{}
	var run func(a *analysis.Analyzer, collect bool) ([]analysis.Diagnostic, error)
	run = func(a *analysis.Analyzer, collect bool) ([]analysis.Diagnostic, error) {
		for _, req := range a.Requires {
			if _, done := results[req]; !done {
				if _, err := run(req, false); err != nil {
					return nil, err
				}
			}
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      ld.files,
			Pkg:        ld.pkg,
			TypesInfo:  ld.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ReadFile: os.ReadFile,
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		results[a] = res
		return diags, nil
	}
	return run(a, true)
}

// expectation is one // want regexp at a (file, line).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// check matches diagnostics against // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1) {
					pattern := m[1]
					if m[2] != "" || pattern == "" {
						var err error
						pattern, err = strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string: %v", pos, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
