package faultwrap_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/faultwrap"
)

func TestFaultWrap(t *testing.T) {
	analyzertest.Run(t, "testdata", faultwrap.Analyzer, "peer", "transport")
}
