// Negative fixture: "transport" is not one of faultwrap's RPC-boundary
// packages, so naked constructions pass unflagged.
package transport

import "errors"

func open() error {
	return errors.New("transport: not wired")
}
