// Positive fixture: package path "peer" is in faultwrap's RPC-boundary
// set, so unclassified error constructions are flagged.
package peer

import (
	"errors"
	"fmt"

	"fault"
)

// ErrBadHandshake is a package-level sentinel: callers classify it with
// errors.Is, so the construction itself is allowed.
var ErrBadHandshake = errors.New("peer: bad handshake")

func dial(addr string) error {
	return errors.New("peer: " + addr + " refused") // want `errors\.New crosses the RPC boundary unclassified`
}

func request(id int) error {
	return fmt.Errorf("peer: request %d failed", id) // want `fmt\.Errorf crosses the RPC boundary unclassified`
}

func wrapped(id int, cause error) error {
	return fmt.Errorf("peer: request %d: %w", id, cause) // %w preserves the cause's classification: allowed
}

func tagged(addr string) error {
	return fault.Unreachable(fmt.Errorf("peer: %s not responding", addr)) // tagger classifies: allowed
}

func pinned() error {
	return fault.Terminal(errors.New("peer: protocol violation")) // allowed
}

func suppressed() error {
	return errors.New("peer: draining") //mdrep:allow faultwrap: consumed in-package by the drain loop, never crosses the RPC boundary
}
