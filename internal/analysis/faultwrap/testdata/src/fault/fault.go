// Package fault is a fixture stand-in for mdrep/internal/fault: the
// faultwrap analyzer recognises its taggers by package suffix and
// function name.
package fault

type wrapped struct {
	err  error
	kind string
}

func (w *wrapped) Error() string { return w.kind + ": " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func Unreachable(err error) error { return &wrapped{err, "unreachable"} }
func Timeout(err error) error     { return &wrapped{err, "timeout"} }
func Terminal(err error) error    { return &wrapped{err, "terminal"} }
