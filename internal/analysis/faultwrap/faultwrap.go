// Package faultwrap enforces the internal/fault error taxonomy at the
// RPC boundary.
//
// The resilience layer (PR 4) retries only errors whose chain carries
// fault.ErrUnreachable or fault.ErrTimeout; everything else is treated
// as terminal. A naked errors.New or fmt.Errorf (without %w) constructed
// inside internal/dht, internal/peer or internal/chaos therefore
// silently strips retryability the moment it crosses a package
// boundary: a transient condition misreported as terminal starves the
// retry budget, a terminal condition left bare can never be pinned.
// faultwrap makes the classification explicit. Every constructed error
// in those packages must be one of:
//
//   - a package-level sentinel (`var ErrX = errors.New(...)`), which
//     callers compare with errors.Is,
//   - an fmt.Errorf whose format wraps a classified cause with %w,
//   - an argument to one of the fault taggers — fault.Unreachable,
//     fault.Timeout, fault.Terminal — which attach the taxonomy verdict
//     without hiding the cause.
//
// Anything else is flagged, with a suggested fix wrapping the
// construction in fault.Terminal(...) — the conservative verdict
// (Retryable stays false, but the pin is now explicit and auditable);
// upgrade to Unreachable/Timeout where the condition is transient. The
// fix is attached only when the file already imports internal/fault.
package faultwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"mdrep/internal/analysis/lintutil"
)

// Packages is the set of packages whose errors cross the RPC boundary
// and must carry an explicit fault classification.
var Packages = []string{"dht", "peer", "chaos", "walk"}

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "faultwrap"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require fault-taxonomy classification on errors built in RPC-boundary packages\n\n" +
		"internal/dht, internal/peer and internal/chaos return errors through the\n" +
		"retry layer, which keys off the internal/fault taxonomy. A naked\n" +
		"errors.New/fmt.Errorf loses retryability: construct sentinels at package\n" +
		"level, wrap causes with %w, or tag with fault.Terminal/Unreachable/Timeout.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.IsPackage(pass.Pkg.Path(), Packages...) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		var construct string
		switch {
		case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			construct = "errors.New"
		case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
			construct = "fmt.Errorf"
			if wrapsCause(pass, call) {
				return true
			}
		default:
			return true
		}
		if isSentinelDecl(stack) || isFaultTagged(pass, stack) {
			return true
		}
		var fixes []analysis.SuggestedFix
		if alias, ok := faultImport(pass, call.Pos()); ok {
			fixes = append(fixes, lintutil.WrapFix(
				"pin as terminal with "+alias+".Terminal (upgrade to Unreachable/Timeout if transient)",
				call.Pos(), call.End(), alias+".Terminal(", ")"))
		}
		lintutil.ReportWithFixes(pass, call.Pos(), name, fixes,
			"%s crosses the RPC boundary unclassified, losing retryability; tag with fault.Terminal/Unreachable/Timeout, wrap a classified cause with %%w, or hoist to a package-level sentinel",
			construct)
		return true
	})
	return nil, nil
}

// wrapsCause reports whether the fmt.Errorf call's constant format
// string contains a %w verb, preserving the wrapped error's
// classification through the chain.
func wrapsCause(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

// isSentinelDecl reports whether the call sits in a package-level var or
// const declaration — the `var ErrX = errors.New(...)` sentinel idiom.
func isSentinelDecl(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.GenDecl:
			return true
		}
	}
	return false
}

// isFaultTagged reports whether the constructed error is a direct
// argument of one of the internal/fault taggers.
func isFaultTagged(pass *analysis.Pass, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := typeutil.Callee(pass.TypesInfo, parent).(*types.Func)
	if !ok || fn.Pkg() == nil || !lintutil.IsPackage(fn.Pkg().Path(), "fault") {
		return false
	}
	switch fn.Name() {
	case "Unreachable", "Timeout", "Terminal":
		return true
	}
	return false
}

// faultImport returns the local name under which the file containing pos
// imports the internal/fault package, if it does.
func faultImport(pass *analysis.Pass, pos token.Pos) (string, bool) {
	var file *ast.File
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return "", false
	}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !lintutil.IsPackage(path, "fault") {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		return "fault", true
	}
	return "", false
}
