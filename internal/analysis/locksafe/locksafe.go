// Package locksafe guards the two locking conventions of the concurrent
// reputation engine.
//
// Re-entrancy (all packages): core.Concurrent — and every other
// mutex-guarded facade in the tree (peer.Peer, dht.Storage, ...) — wraps
// its state in a sync.Mutex/RWMutex field named mu. Go mutexes are not
// re-entrant: a method that holds c.mu for its whole body (the
// `c.mu.Lock(); defer c.mu.Unlock()` idiom) and then calls another method
// of the same receiver that acquires c.mu deadlocks itself — or, for
// RLock→RLock, deadlocks as soon as a writer is queued between the two
// acquisitions. The analyzer computes, per receiver type, which methods
// (transitively) acquire mu, and flags same-receiver calls to them made
// while the caller still holds the lock.
//
// Facade bypass (packages outside core and journal): core.Engine is not
// safe for concurrent use — even read-looking calls patch its caches — so
// everything outside the core must route through core.Concurrent or
// core.Sharded. The analyzer flags direct *core.Engine method calls
// unless the engine arrived as a function parameter (the caller owns the
// locking contract, e.g. security.InjectClique) or the call happens
// inside a closure passed to Concurrent.Locked, the sanctioned escape
// hatch.
//
// Shard lock ordering (all packages): the sharded engine's deadlock
// freedom rests on one rule — when a function holds more than one shard
// data lock (any acquisition of shards[i].mu, directly or through a
// `sh := &x.shards[i]` alias), it must take them in ascending shard
// index. The analyzer flags the two static shapes that violate it: a
// loop that walks the shard slice downwards while locking, and a pair of
// constant-index acquisitions in descending order with no release in
// between. Ascending lockAll loops and single-shard critical sections
// are untouched.
package locksafe

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"mdrep/internal/analysis/lintutil"
)

// enginePackages are allowed to touch core.Engine directly: the defining
// package and the journal, whose restore path rebuilds engines before
// atomically installing them via Concurrent.Swap.
var enginePackages = []string{"core", "journal"}

// engineImmutable are Engine methods that only read construction-time
// state and are safe without the facade.
var engineImmutable = map[string]bool{"N": true, "Config": true}

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "locksafe"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag re-entrant mutex acquisition, core.Engine facade bypass, and shard lock-order violations\n\n" +
		"A method holding its receiver's mu (Lock-then-defer-Unlock idiom) must\n" +
		"not call another method of the same receiver that acquires mu: Go\n" +
		"mutexes are not re-entrant. Outside core and journal, *core.Engine\n" +
		"must be driven through core.Concurrent or core.Sharded (or the\n" +
		"Concurrent.Locked escape hatch) — the bare engine is not safe for\n" +
		"concurrent use. Functions that take multiple shards[i].mu locks must\n" +
		"take them in ascending shard index, or two shard workers deadlock\n" +
		"against each other.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	checkReentrancy(pass, ins)
	checkShardOrder(pass, ins)
	if !lintutil.IsPackage(pass.Pkg.Path(), enginePackages...) {
		checkFacadeBypass(pass, ins)
	}
	return nil, nil
}

// --- re-entrant acquisition -------------------------------------------------

// selfCall is a call to a method of the enclosing method's own receiver.
type selfCall struct {
	name string
	pos  token.Pos
}

// methodFacts summarises one method's interaction with its receiver's mu.
type methodFacts struct {
	locksMu bool // contains recv.mu.Lock() or recv.mu.RLock()
	// heldFrom is the position of the first Lock/RLock appearing as a
	// top-level statement of a method body that also defers the matching
	// unlock — the `mu.Lock(); defer mu.Unlock()` idiom, where the lock is
	// held from here to every return. Locks nested inside branches (e.g.
	// per-case locking in an event-dispatch switch) do not cover the
	// sibling branches, so they never establish heldFrom.
	heldFrom token.Pos
	// released are positions of explicit (non-deferred) Unlock/RUnlock
	// calls; a self-call after one of these is not made under the lock.
	released  []token.Pos
	selfCalls []selfCall
}

func checkReentrancy(pass *analysis.Pass, ins *inspector.Inspector) {
	// facts[T][method] for every method whose receiver type T has a
	// sync.Mutex or sync.RWMutex field named mu.
	facts := map[*types.Named]map[string]*methodFacts{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		named, recv := mutexGuardedReceiver(pass, decl)
		if named == nil {
			return
		}
		if facts[named] == nil {
			facts[named] = map[string]*methodFacts{}
		}
		facts[named][decl.Name.Name] = collectFacts(pass, decl, named, recv)
	})

	for named, methods := range facts {
		acquires := transitiveAcquirers(methods)
		for method, f := range methods {
			if f.heldFrom == token.NoPos {
				continue
			}
			for _, call := range f.selfCalls {
				if call.pos < f.heldFrom || !acquires[call.name] {
					continue
				}
				if releasedBefore(f, call.pos) {
					continue
				}
				lintutil.Report(pass, call.pos, name,
					"%s.%s calls %s while holding mu (held from the Lock/defer-Unlock above); %s acquires mu and Go mutexes are not re-entrant — self-deadlock",
					named.Obj().Name(), method, call.name, call.name)
			}
		}
	}
}

// mutexGuardedReceiver returns the receiver's named struct type and
// receiver variable when decl is a method on a struct with a
// sync.Mutex/sync.RWMutex field named mu.
func mutexGuardedReceiver(pass *analysis.Pass, decl *ast.FuncDecl) (*types.Named, *types.Var) {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || decl.Body == nil {
		return nil, nil
	}
	field := decl.Recv.List[0]
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return nil, nil
	}
	recv, ok := pass.TypesInfo.ObjectOf(field.Names[0]).(*types.Var)
	if !ok {
		return nil, nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Name() != "mu" {
			continue
		}
		if tn, ok := fld.Type().(*types.Named); ok {
			obj := tn.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return named, recv
			}
		}
	}
	return nil, nil
}

// collectFacts scans one method body for mu operations on recv and calls
// to other methods of the same receiver.
func collectFacts(pass *analysis.Pass, decl *ast.FuncDecl, named *types.Named, recv *types.Var) *methodFacts {
	f := &methodFacts{}
	deferredUnlock := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if op, onRecv := muOp(pass, d.Call, recv); onRecv {
				if op == "Unlock" || op == "RUnlock" {
					deferredUnlock = true
				}
				// Skip the children: the deferred mu call must not also be
				// recorded as an explicit (pre-return) release below.
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, onRecv := muOp(pass, call, recv); onRecv {
			switch op {
			case "Lock", "RLock":
				f.locksMu = true
			case "Unlock", "RUnlock":
				f.released = append(f.released, call.Pos())
			}
			return true
		}
		if name, ok := sameReceiverCall(pass, call, named, recv); ok {
			f.selfCalls = append(f.selfCalls, selfCall{name: name, pos: call.Pos()})
		}
		return true
	})
	// heldFrom only when the lock is a top-level statement of the body: a
	// lock inside one branch of a switch/if does not cover its siblings.
	if deferredUnlock {
		for _, stmt := range decl.Body.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if op, onRecv := muOp(pass, call, recv); onRecv && (op == "Lock" || op == "RLock") {
				f.heldFrom = call.Pos()
				break
			}
		}
	}
	return f
}

// muOp matches recv.mu.<op>() and returns the operation name.
func muOp(pass *analysis.Pass, call *ast.CallExpr, recv *types.Var) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return "", false
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(base) != types.Object(recv) {
		return "", false
	}
	return sel.Sel.Name, true
}

// sameReceiverCall matches recv.Method(...) where Method is defined on the
// same named type.
func sameReceiverCall(pass *analysis.Pass, call *ast.CallExpr, named *types.Named, recv *types.Var) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(base) != types.Object(recv) {
		return "", false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if t != types.Type(named) {
		return "", false
	}
	return fn.Name(), true
}

// transitiveAcquirers closes the "acquires mu" property over same-receiver
// calls: SetImplicit → ApplyEvent → Lock means SetImplicit acquires.
func transitiveAcquirers(methods map[string]*methodFacts) map[string]bool {
	acquires := map[string]bool{}
	for name, f := range methods {
		if f.locksMu {
			acquires[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, f := range methods {
			if acquires[name] {
				continue
			}
			for _, call := range f.selfCalls {
				if acquires[call.name] {
					acquires[name] = true
					changed = true
					break
				}
			}
		}
	}
	return acquires
}

// releasedBefore reports whether an explicit unlock sits between the lock
// acquisition and pos (linear position approximation, not a CFG).
func releasedBefore(f *methodFacts, pos token.Pos) bool {
	for _, rel := range f.released {
		if f.heldFrom < rel && rel < pos {
			return true
		}
	}
	return false
}

// --- facade bypass ----------------------------------------------------------

func checkFacadeBypass(pass *analysis.Pass, ins *inspector.Inspector) {
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || !isEngineMethod(fn) || engineImmutable[fn.Name()] {
			return true
		}
		if insideLockedCallback(stack) || receiverIsParameter(pass, call, stack) {
			return true
		}
		lintutil.Report(pass, call.Pos(), name,
			"direct (*core.Engine).%s outside the core: the bare engine is not safe for concurrent use — route through core.Concurrent or core.Sharded (or a Concurrent.Locked callback)",
			fn.Name())
		return true
	})
}

func isEngineMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Engine" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "core"
}

// insideLockedCallback reports whether the call sits in a function literal
// passed to a method named Locked — Concurrent's compound-operation escape
// hatch, which supplies the engine under the write lock.
func insideLockedCallback(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			outer, ok := stack[j].(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := outer.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Locked" {
				for _, arg := range outer.Args {
					if arg == ast.Expr(lit) {
						return true
					}
				}
			}
			break
		}
	}
	return false
}

// receiverIsParameter reports whether the engine receiver of call is (or
// is reached through) a parameter of the enclosing function — the
// InjectClique contract: the caller supplies an engine it already guards.
func receiverIsParameter(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := lintutil.RootIdent(sel.X)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			ft = fn.Type
		case *ast.FuncDecl:
			ft = fn.Type
			if fn.Recv != nil && fn.Recv.Pos() <= obj.Pos() && obj.Pos() <= fn.Recv.End() {
				return true
			}
		default:
			continue
		}
		if ft.Params != nil && ft.Params.Pos() <= obj.Pos() && obj.Pos() <= ft.Params.End() {
			return true
		}
	}
	return false
}

// --- shard lock ordering ----------------------------------------------------

// shardLockEvent is one Lock/Unlock of shards[idx].mu inside a function
// body, in source order.
type shardLockEvent struct {
	op  string   // "Lock" or "Unlock"
	idx ast.Expr // the shard index expression
	pos token.Pos
}

// checkShardOrder enforces the ascending-shard-index convention on the
// shard data locks. Two shapes are flagged: a loop that decrements its
// variable while locking shards[var].mu in its body, and a pair of
// constant-index acquisitions in descending order with no intervening
// release of the earlier lock.
func checkShardOrder(pass *analysis.Pass, ins *inspector.Inspector) {
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		events := collectShardLockEvents(pass, body)
		reportDescendingConstPairs(pass, events)
	})
	ins.Preorder([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node) {
		checkDescendingLoop(pass, n.(*ast.ForStmt))
	})
}

// collectShardLockEvents walks body in source order, resolving
// `sh := &x.shards[i]` aliases, and returns every shards[i].mu.Lock and
// .Unlock it can see. Nested function literals are skipped — they run on
// their own goroutines with their own ordering obligations.
func collectShardLockEvents(pass *analysis.Pass, body *ast.BlockStmt) []shardLockEvent {
	aliases := map[types.Object]ast.Expr{} // local var -> shard index expr
	var events []shardLockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			recordShardAliases(pass, n, aliases)
		case *ast.DeferStmt:
			// A deferred unlock releases at return, after every later
			// acquisition — it must not clear the held set mid-body.
			return false
		case *ast.CallExpr:
			if op, idx := shardMuOp(pass, n, aliases); idx != nil {
				events = append(events, shardLockEvent{op: op, idx: idx, pos: n.Pos()})
			}
		}
		return true
	})
	return events
}

// recordShardAliases tracks `sh := &x.shards[i]` and `sh := x.shards[i]`.
func recordShardAliases(pass *analysis.Pass, as *ast.AssignStmt, aliases map[types.Object]ast.Expr) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for k, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		rhs := as.Rhs[k]
		if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
			rhs = un.X
		}
		if idx := shardIndexExpr(rhs); idx != nil {
			aliases[obj] = idx
		}
	}
}

// shardIndexExpr matches `<any>.shards[i]` and returns i.
func shardIndexExpr(e ast.Expr) ast.Expr {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return nil
	}
	sel, ok := ix.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "shards" {
		return nil
	}
	return ix.Index
}

// shardMuOp matches `<shards[i] or alias>.mu.Lock/Unlock()` and returns
// the operation and shard index expression.
func shardMuOp(pass *analysis.Pass, call *ast.CallExpr, aliases map[types.Object]ast.Expr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" {
		return "", nil
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return "", nil
	}
	if idx := shardIndexExpr(mu.X); idx != nil {
		return op, idx
	}
	if id, ok := mu.X.(*ast.Ident); ok {
		if idx, ok := aliases[pass.TypesInfo.ObjectOf(id)]; ok {
			return op, idx
		}
	}
	return "", nil
}

// constShardIndex resolves idx to a compile-time integer, if it is one.
func constShardIndex(pass *analysis.Pass, idx ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[idx]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// reportDescendingConstPairs flags a constant-index acquisition made
// while a higher-indexed shard lock is still held.
func reportDescendingConstPairs(pass *analysis.Pass, events []shardLockEvent) {
	type held struct {
		v      int64
		active bool
	}
	var stack []held
	for _, ev := range events {
		v, ok := constShardIndex(pass, ev.idx)
		if !ok {
			continue
		}
		if ev.op == "Unlock" {
			for k := len(stack) - 1; k >= 0; k-- {
				if stack[k].active && stack[k].v == v {
					stack[k].active = false
					break
				}
			}
			continue
		}
		for _, h := range stack {
			if h.active && h.v > v {
				lintutil.Report(pass, ev.pos, name,
					"shards[%d].mu acquired while shards[%d].mu is held: shard data locks must be taken in ascending shard index or concurrent holders deadlock",
					v, h.v)
				break
			}
		}
		stack = append(stack, held{v: v, active: true})
	}
}

// checkDescendingLoop flags `for i := hi; ...; i--` loops that lock
// shards[i].mu in the body: successive iterations acquire in descending
// index while earlier iterations' locks are typically still held (the
// lockAll shape), inverting the ordering convention.
func checkDescendingLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	loopVar := descendingLoopVar(pass, loop)
	if loopVar == nil || loop.Body == nil {
		return
	}
	aliases := map[types.Object]ast.Expr{}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			recordShardAliases(pass, n, aliases)
		case *ast.CallExpr:
			op, idx := shardMuOp(pass, n, aliases)
			if op != "Lock" || idx == nil {
				return true
			}
			if root := lintutil.RootIdent(idx); root != nil && pass.TypesInfo.ObjectOf(root) == loopVar {
				lintutil.Report(pass, n.Pos(), name,
					"shards[%s].mu locked inside a descending loop over %s: shard data locks must be taken in ascending shard index or concurrent holders deadlock",
					root.Name, root.Name)
			}
		}
		return true
	})
}

// descendingLoopVar returns the loop variable object when loop's post
// statement decrements it (i-- or i -= n).
func descendingLoopVar(pass *analysis.Pass, loop *ast.ForStmt) types.Object {
	var id *ast.Ident
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok != token.DEC {
			return nil
		}
		id, _ = post.X.(*ast.Ident)
	case *ast.AssignStmt:
		if post.Tok != token.SUB_ASSIGN || len(post.Lhs) != 1 {
			return nil
		}
		id, _ = post.Lhs[0].(*ast.Ident)
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}
