package locksafe_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analyzertest.Run(t, "testdata", locksafe.Analyzer, "lockbox", "driver", "journal", "shardhost")
}
