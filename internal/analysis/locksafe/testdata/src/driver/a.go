// Positive/negative fixture for the facade-bypass half of locksafe.
package driver

import "core"

var global = core.NewEngine(8, core.Config{})

func badGlobal() {
	_ = global.ApplyEvent(0, 1.0) // want `direct \(\*core\.Engine\)\.ApplyEvent outside the core`
}

func badLocal() float64 {
	eng := core.NewEngine(4, core.Config{Dims: 3})
	_ = eng.ApplyEvent(1, 0.5) // want `direct \(\*core\.Engine\)\.ApplyEvent outside the core`
	return eng.Score(1)        // want `direct \(\*core\.Engine\)\.Score outside the core`
}

type node struct {
	eng *core.Engine
}

func badStructLocal() {
	nd := &node{eng: core.NewEngine(2, core.Config{})}
	_ = nd.eng.ApplyEvent(0, 1.0) // want `direct \(\*core\.Engine\)\.ApplyEvent outside the core`
}

func badClosure() func() {
	eng := core.NewEngine(2, core.Config{})
	return func() {
		_ = eng.ApplyEvent(0, 1.0) // want `direct \(\*core\.Engine\)\.ApplyEvent outside the core`
	}
}

// okParam: the engine arrived as a parameter, so the caller owns the
// locking contract — the security.InjectClique shape.
func okParam(e *core.Engine) error {
	return e.ApplyEvent(2, 1.0)
}

// okParamStruct: reached through a parameter; same contract.
func okParamStruct(nd *node) error {
	return nd.eng.ApplyEvent(0, 1.0)
}

// okReceiver: reached through the method receiver.
func (nd *node) okReceiver() error {
	return nd.eng.ApplyEvent(0, 1.0)
}

// okLocked: inside the Concurrent.Locked escape hatch.
func okLocked(c *core.Concurrent) error {
	return c.Locked(func(e *core.Engine) error {
		return e.ApplyEvent(3, 2.0)
	})
}

// okImmutable: N and Config only read construction-time state.
func okImmutable() int {
	return global.N() + global.Config().Dims
}
