// Clean-negative fixture: package path "journal" is in locksafe's
// enginePackages, so its privileged direct engine use (rebuilding a fresh
// engine during replay, before publication) is not flagged.
package journal

import "core"

func Replay(events []float64) *core.Engine {
	eng := core.NewEngine(len(events), core.Config{})
	for i, v := range events {
		_ = eng.ApplyEvent(i, v)
	}
	return eng
}
