// Stub of mdrep's internal/core package: just enough surface for the
// locksafe facade-bypass fixtures. The analyzer matches on (package name
// "core", type "Engine"), so this stands in for the real package.
package core

type Config struct{ Dims int }

type Engine struct {
	cfg Config
	n   int
	acc []float64
}

func NewEngine(n int, cfg Config) *Engine {
	return &Engine{cfg: cfg, n: n, acc: make([]float64, n)}
}

func (e *Engine) N() int         { return e.n }
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) ApplyEvent(i int, v float64) error {
	e.acc[i] += v
	return nil
}

// Score looks read-only but is still unsafe on the bare engine (the real
// Engine patches caches on read), so it is not in the immutable set.
func (e *Engine) Score(i int) float64 { return e.acc[i] }

type Concurrent struct {
	eng *Engine
}

func NewConcurrent(eng *Engine) *Concurrent { return &Concurrent{eng: eng} }

func (c *Concurrent) Locked(fn func(*Engine) error) error { return fn(c.eng) }
