// Positive/negative fixture for the shard lock-ordering half of
// locksafe: shard data locks (shards[i].mu) must be taken in ascending
// shard index.
package shardhost

import "sync"

type shard struct {
	mu    sync.Mutex
	count int
}

type host struct {
	shards []shard
}

// okAscendingLoop is the sanctioned lockAll shape.
func (h *host) okAscendingLoop() {
	for i := 0; i < len(h.shards); i++ {
		h.shards[i].mu.Lock()
	}
	for i := 0; i < len(h.shards); i++ {
		h.shards[i].mu.Unlock()
	}
}

// badDescendingLoop inverts the ordering: iteration i holds every lock
// above it while acquiring below.
func (h *host) badDescendingLoop() {
	for i := len(h.shards) - 1; i >= 0; i-- {
		h.shards[i].mu.Lock() // want `locked inside a descending loop`
	}
	for i := 0; i < len(h.shards); i++ {
		h.shards[i].mu.Unlock()
	}
}

// badDescendingLoopAlias: the same inversion through a local alias.
func (h *host) badDescendingLoopAlias() {
	for i := len(h.shards) - 1; i >= 0; i -= 1 {
		sh := &h.shards[i]
		sh.mu.Lock() // want `locked inside a descending loop`
		sh.count++
	}
}

// badConstPair holds shard 2 while acquiring shard 0.
func (h *host) badConstPair() {
	h.shards[2].mu.Lock()
	h.shards[0].mu.Lock() // want `shards\[0\]\.mu acquired while shards\[2\]\.mu is held`
	h.shards[0].mu.Unlock()
	h.shards[2].mu.Unlock()
}

// badConstPairAlias: descending pair through aliases.
func (h *host) badConstPairAlias() {
	hi := &h.shards[3]
	lo := &h.shards[1]
	hi.mu.Lock()
	lo.mu.Lock() // want `shards\[1\]\.mu acquired while shards\[3\]\.mu is held`
	lo.mu.Unlock()
	hi.mu.Unlock()
}

// okConstPairAscending is the correct two-shard critical section.
func (h *host) okConstPairAscending() {
	h.shards[0].mu.Lock()
	h.shards[2].mu.Lock()
	h.shards[2].mu.Unlock()
	h.shards[0].mu.Unlock()
}

// okReleasedBetween drops the high lock before taking the low one, so
// only one shard lock is ever held.
func (h *host) okReleasedBetween() {
	h.shards[2].mu.Lock()
	h.shards[2].mu.Unlock()
	h.shards[0].mu.Lock()
	h.shards[0].mu.Unlock()
}

// badDeferredHigh: the deferred unlock releases only at return, so the
// low acquisition still happens under the high lock.
func (h *host) badDeferredHigh() {
	h.shards[2].mu.Lock()
	defer h.shards[2].mu.Unlock()
	h.shards[0].mu.Lock() // want `shards\[0\]\.mu acquired while shards\[2\]\.mu is held`
	h.shards[0].mu.Unlock()
}

// okSingleShard is the routed single-owner critical section.
func (h *host) okSingleShard(i int) {
	sh := &h.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.count++
}

// okClosurePerShard: each worker closure locks exactly one shard; the
// closure boundary resets the held set.
func (h *host) okClosurePerShard() {
	var wg sync.WaitGroup
	for i := 0; i < len(h.shards); i++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := &h.shards[si]
			sh.mu.Lock()
			sh.count++
			sh.mu.Unlock()
		}(i)
	}
	wg.Wait()
}
