// Positive/negative fixture for the re-entrancy half of locksafe: a
// mutex-guarded facade in the shape of core.Concurrent.
package lockbox

import "sync"

type Box struct {
	mu  sync.RWMutex
	val int
}

func (b *Box) Get() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.val
}

func (b *Box) Set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val = v
}

func (b *Box) BadWrite(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Set(v) // want `Box\.BadWrite calls Set while holding mu`
}

func (b *Box) BadRead() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.Get() // want `Box\.BadRead calls Get while holding mu`
}

func (b *Box) BadTransitive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump() // want `Box\.BadTransitive calls bump while holding mu`
}

// bump does not lock itself, but calls Set, which does: it transitively
// acquires mu.
func (b *Box) bump() { b.Set(b.val + 1) }

// addLocked never touches mu: calling it under the lock is the sanctioned
// *Locked-helper idiom.
func (b *Box) addLocked(v int) { b.val += v }

func (b *Box) OKComposite(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked(v)
}

// OKUpgrade mirrors Concurrent.TM's read-then-upgrade shape: the
// self-call happens after the explicit RUnlock, so it is not made under
// the lock.
func (b *Box) OKUpgrade(v int) int {
	b.mu.RLock()
	cur := b.val
	b.mu.RUnlock()
	b.Set(cur + v)
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

// OKBeforeLock calls the acquiring method before taking the lock.
func (b *Box) OKBeforeLock(v int) {
	b.Set(v)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val++
}

// OKDispatch mirrors peer.ApplyEvent: each case manages its own locking
// and the delegating branch never takes mu itself, so the lock in the
// first case does not cover the self-call in the second.
func (b *Box) OKDispatch(kind, v int) {
	switch kind {
	case 0:
		b.mu.Lock()
		defer b.mu.Unlock()
		b.val = v
	default:
		b.Set(v)
	}
}

// plain has no mu field, so its self-calls are out of scope.
type plain struct{ val int }

func (p *plain) outer() { p.inner() }
func (p *plain) inner() { p.val++ }
