package metriclabel_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/metriclabel"
)

func TestMetricLabel(t *testing.T) {
	analyzertest.Run(t, "testdata", metriclabel.Analyzer, "obspkg")
}
