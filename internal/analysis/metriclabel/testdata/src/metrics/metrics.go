// Package metrics is a fixture stand-in for mdrep/internal/metrics: the
// metriclabel analyzer recognises the Registry instrument constructors
// by receiver type name and package suffix.
package metrics

type Registry struct{}

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	return &Histogram{}
}
