// Span attribute keys share the metric-label cardinality contract: each
// key names a fixed attribute slot in the flight ring and a column in
// the rendered trace tree, so keys must come from const tables, declared
// finite sets, or //mdrep:labelset functions. Values are free data.
package obspkg

import (
	"strconv"

	"obs"
)

const attrUser = "user"

func spanAttrs(id int) {
	sp := obs.StartRoot("walk.estimate")
	sp.Attr(attrUser, int64(id))  // const-table key: allowed
	sp.AttrStr("addr", "mem://x") // literal key, dynamic value: allowed
	key := "k" + strconv.Itoa(id)
	sp.Attr(key, 1)                  // want `label value key is loop or computed data`
	sp.AttrStr(strconv.Itoa(id), "") // want `label value computed by strconv\.Itoa`
	sp.End()
}

// AttrAt is an exported instrumentation boundary: its key parameter is
// trusted here and audited at every caller this analyzer sees.
func AttrAt(sp *obs.TSpan, key string) {
	sp.Attr(key, 1) // exported-boundary parameter: allowed
}

// attrKey returns one of two keys regardless of input, so the set is
// bounded by construction.
//
//mdrep:labelset
func attrKey(i int) string {
	return [...]string{"rows", "cols"}[i&1]
}

func viaLabelSet(i int) {
	sp := obs.StartRoot("x")
	sp.Attr(attrKey(i), int64(i)) // labelset function: allowed
	sp.End()
}

func forwardKey(sp *obs.TSpan, key string) {
	sp.AttrStr(key, "v") // unexported forwarder: checked at call sites
}

func driveSpans(sp *obs.TSpan, payload string) {
	forwardKey(sp, attrUser)      // constant through the forwarder: allowed
	forwardKey(sp, payload+"...") // want `label value payload \+ "\.\.\." is not a constant`
}

func suppressedAttr(sp *obs.TSpan) {
	k := strconv.Itoa(3)
	sp.Attr(k, 1) //mdrep:allow metriclabel: debug-only span, key set bounded by operator config
}
