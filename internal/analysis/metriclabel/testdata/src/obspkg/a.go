// Positive fixture: label values reaching the metrics registry must be
// compile-time constants or members of a declared finite set.
package obspkg

import (
	"strconv"

	"metrics"
)

const kindRequest = "request"

var outcomes = []string{"ok", "drop", "timeout"}

func direct(reg *metrics.Registry, err error) {
	reg.Counter("requests_total", "kind", kindRequest) // constant: allowed
	reg.Counter("errors_total", "cause", err.Error())  // want `err\.Error\(\) as a label value`
	for i := 0; i < 4; i++ {
		reg.Counter("shards_total", "shard", strconv.Itoa(i)) // want `label value computed by strconv\.Itoa`
	}
	reg.Histogram("latency_seconds", []float64{0.1, 1}, "kind", kindRequest) // allowed: labels start after bounds
}

// Observe is an exported instrumentation boundary: its parameters are
// trusted here and audited at every caller this analyzer sees.
func Observe(reg *metrics.Registry, outcome string) {
	reg.Counter("observe_total", "outcome", outcome) // exported-boundary parameter: allowed
}

func record(reg *metrics.Registry, kind string) {
	reg.Counter("events_total", "kind", kind) // unexported forwarder: checked at call sites
}

func drive(reg *metrics.Registry, payload string) {
	record(reg, kindRequest) // constant through the forwarder: allowed
	record(reg, payload+"!") // want `label value payload \+ "!" is not a constant`
}

func bind(reg *metrics.Registry) {
	kind := func(v string) { reg.Counter("bound_total", "kind", v) }
	kind("request_drops") // call-site constant through the bound closure: allowed
	kind(level())         // want `label value computed by level`
}

func level() string { return "deep" }

func ranges(reg *metrics.Registry) {
	for _, o := range outcomes {
		reg.Counter("outcomes_total", "outcome", o) // range over a constant set: allowed
	}
	for _, o := range readOutcomes() {
		reg.Counter("dynamic_total", "outcome", o) // want `label value o is loop or computed data`
	}
	reg.Counter("pick_total", "outcome", outcomes[0]) // indexing a constant set: allowed
}

func readOutcomes() []string { return nil }

// shardLabel returns "s0".."s3": the set is bounded by construction, so
// the directive below lets callers pass arbitrary indices.
//
//mdrep:labelset
func shardLabel(i int) string {
	return [...]string{"s0", "s1", "s2", "s3"}[i&3]
}

func shards(reg *metrics.Registry) {
	for i := 0; i < 4; i++ {
		reg.Counter("shard_total", "shard", shardLabel(i)) // labelset function: allowed
	}
}

func spread(reg *metrics.Registry, userID string) {
	reg.Counter("spread_total", append([]string{"kind", kindRequest}, "user", userID)...) // want `label value flows through spread`
}

func suppressedCase(reg *metrics.Registry, tag string) {
	reg.Counter("debug_total", "tag", tag) //mdrep:allow metriclabel: debug-only registry, tag set bounded by operator config
}

type notRegistry struct{}

func (n *notRegistry) Counter(name string, labels ...string) {}

func other(n *notRegistry, userID string) {
	n.Counter("x", "user", userID) // not the metrics registry: ignored
}
