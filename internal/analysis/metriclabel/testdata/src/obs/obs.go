// Package obs is a fixture stand-in for mdrep/internal/obs: the
// metriclabel analyzer recognises the span attribute setters by
// receiver type name and package suffix.
package obs

type TSpan struct{}

func StartRoot(name string) TSpan { return TSpan{} }

func (t *TSpan) Attr(key string, v int64) {}
func (t *TSpan) AttrStr(key, val string)  {}
func (t *TSpan) End()                     {}
