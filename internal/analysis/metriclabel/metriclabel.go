// Package metriclabel guards the metrics registry against unbounded
// label cardinality.
//
// Every (name, labels) pair handed to metrics.Registry.Counter / Gauge /
// Histogram creates a new exported series that lives for the life of the
// process. A label value derived from a user ID, an err.Error() string,
// or arbitrary loop data therefore grows the registry — and every
// Prometheus scrape — without bound. metriclabel requires each label
// value to be provably drawn from a finite set:
//
//   - a compile-time constant (literal, named const, const expression),
//   - a range variable iterating a composite literal of constants, or a
//     package-level var initialised to one,
//   - an index into a package-level composite literal of constants,
//   - a call to a same-package function annotated //mdrep:labelset,
//     whose doc comment documents how the returned set is bounded
//     (canonicalising unknown inputs, panicking on out-of-range
//     indices, ...),
//   - a parameter of an *exported* function or method — the audited
//     instrumentation boundary (Instrument(reg, labels ...string) and
//     friends); callers are checked wherever this analyzer sees them.
//
// Span attribute keys are held to the same contract: every key handed
// to (*obs.TSpan).Attr / AttrStr names a fixed slot in the flight
// recorder's ring and a column in the rendered trace tree, so a key
// derived from request data would grow the attribute namespace exactly
// the way an unbounded label value grows the registry. Keys must be
// constants (package const tables), members of a declared finite set,
// or //mdrep:labelset results; attribute *values* are free per-trace
// data and are not checked.
//
// Parameters of unexported functions and closures are traced to their
// call sites within the package — the `kind := func(v string) ... ;
// kind("request_drops")` binding idiom checks the "request_drops" at the
// call, not the opaque v. Values the analyzer cannot trace (computed
// strings, struct fields, cross-package call results) are flagged.
package metriclabel

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"mdrep/internal/analysis/lintutil"
)

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "metriclabel"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require finite, statically evident metric label values and span attribute keys\n\n" +
		"Label values passed to the metrics registry and attribute keys passed to\n" +
		"span setters (obs.TSpan.Attr/AttrStr) must be compile-time constants,\n" +
		"members of a declared finite set (constant composite literal,\n" +
		"//mdrep:labelset function), or parameters of the exported instrumentation\n" +
		"boundary. User IDs, err.Error() strings and loop data explode Prometheus\n" +
		"cardinality and the trace attribute namespace.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// callInfo is one call expression with a copy of its enclosing node
// stack, pre-collected so forwarder obligations can be resolved without
// re-walking.
type callInfo struct {
	call  *ast.CallExpr
	stack []ast.Node
}

// obKind distinguishes how a traced parameter feeds label arguments.
type obKind int

const (
	obScalar obKind = iota // param is a single label value
	obPairs                // param is a key/value pair list ([]string or ...string)
)

// obligation asks: at every call site of target (a *types.Func for
// declared functions, a *types.Var for closures bound to a variable),
// check the argument(s) feeding parameter index with the label rules.
type obligation struct {
	target types.Object
	index  int
	kind   obKind
	pos    token.Pos // where the parameter flowed into a label, for reports
}

// obKey identifies an obligation independent of which label use created
// it, so one parameter feeding eight instruments is traced once.
type obKey struct {
	target types.Object
	index  int
	kind   obKind
}

type checker struct {
	pass     *analysis.Pass
	calls    []callInfo
	visited  map[obKey]bool
	reported map[token.Pos]bool
	work     []obligation
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &checker{pass: pass, visited: map[obKey]bool{}, reported: map[token.Pos]bool{}}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		c.calls = append(c.calls, callInfo{call: call, stack: append([]ast.Node(nil), stack...)})
		return true
	})

	for _, ci := range c.calls {
		if start, ok := registryLabelStart(c.pass, ci.call); ok {
			c.checkPairArgs(ci.call.Args[start:], ci.call.Ellipsis.IsValid(), 0, ci.stack)
		}
		if idx, ok := spanAttrKeyArg(c.pass, ci.call); ok && idx < len(ci.call.Args) {
			c.checkValue(ci.call.Args[idx], ci.stack)
		}
	}
	for len(c.work) > 0 {
		ob := c.work[0]
		c.work = c.work[1:]
		c.resolve(ob)
	}
	return nil, nil
}

// registryLabelStart reports whether call targets a metrics.Registry
// instrument constructor and, if so, at which argument index the label
// key/value pairs begin.
func registryLabelStart(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return 0, false
	}
	if !lintutil.IsPackage(named.Obj().Pkg().Path(), "metrics") {
		return 0, false
	}
	switch fn.Name() {
	case "Counter", "Gauge":
		return 1, true
	case "Histogram":
		return 2, true
	}
	return 0, false
}

// spanAttrKeyArg reports whether call sets a span attribute —
// (*obs.TSpan).Attr or AttrStr — and, if so, which argument carries the
// attribute key. Keys share the metric-label cardinality contract;
// values are per-trace data and stay unchecked.
func spanAttrKeyArg(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "TSpan" || named.Obj().Pkg() == nil {
		return 0, false
	}
	if !lintutil.IsPackage(named.Obj().Pkg().Path(), "obs") {
		return 0, false
	}
	switch fn.Name() {
	case "Attr", "AttrStr":
		return 0, true
	}
	return 0, false
}

// checkPairArgs walks label arguments alternating key/value starting at
// the given parity (0 = key, 1 = value), classifying each value. spread
// marks a trailing `...` argument, which is treated as a pair source.
func (c *checker) checkPairArgs(args []ast.Expr, spread bool, parity int, stack []ast.Node) {
	for i, arg := range args {
		if spread && i == len(args)-1 {
			c.checkPairSource(arg, parity, stack)
			return
		}
		if parity == 1 {
			c.checkValue(arg, stack)
		}
		parity ^= 1
	}
}

// checkPairSource classifies an expression that denotes a whole label
// pair list (a []string), entered at the given parity.
func (c *checker) checkPairSource(e ast.Expr, parity int, stack []ast.Node) {
	switch v := e.(type) {
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if parity == 1 {
				c.checkValue(el, stack)
			}
			parity ^= 1
		}
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isB := c.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isB && len(v.Args) > 0 {
				// append(base, more...): base advances the parity if its
				// length is statically known; non-literal bases are traced
				// as their own pair source.
				base := v.Args[0]
				if lit, ok := base.(*ast.CompositeLit); ok {
					for _, el := range lit.Elts {
						if parity == 1 {
							c.checkValue(el, stack)
						}
						parity ^= 1
					}
				} else {
					c.checkPairSource(base, parity, stack)
					// parity after an untraced base is unknown; assume it
					// stays pair-aligned, the only sane calling convention.
				}
				c.checkPairArgs(v.Args[1:], v.Ellipsis.IsValid(), parity, stack)
				return
			}
		}
		c.flag(e, "label pair list built by a call cannot be cardinality-checked; build pairs inline or forward a checked parameter")
	case *ast.Ident:
		if v.Name == "nil" {
			return
		}
		obj := c.pass.TypesInfo.ObjectOf(v)
		pv, ok := obj.(*types.Var)
		if !ok {
			c.flag(e, "opaque label pair list %s", v.Name)
			return
		}
		if c.allowParamOrDefer(pv, v, obPairs, stack) {
			return
		}
		if c.finiteSetVar(pv) {
			return
		}
		c.flag(e, "label pair list %s is not statically finite; build pairs inline, range a constant set, or forward an exported parameter", v.Name)
	default:
		c.flag(e, "opaque label pair list; build pairs inline so values stay checkable")
	}
}

// checkValue classifies a single label value expression.
func (c *checker) checkValue(e ast.Expr, stack []ast.Node) {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return // compile-time constant
	}
	switch v := e.(type) {
	case *ast.IndexExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			if pv, isVar := c.pass.TypesInfo.ObjectOf(id).(*types.Var); isVar && c.finiteSetVar(pv) {
				return // indexing a package-level constant set
			}
		}
		c.flag(e, "label value %s indexes a collection that is not a declared constant set", types.ExprString(e))
	case *ast.CallExpr:
		if fn, ok := typeutil.Callee(c.pass.TypesInfo, v).(*types.Func); ok {
			if fn.Name() == "Error" && fn.Type().(*types.Signature).Recv() != nil {
				c.flag(e, "err.Error() as a label value gives every distinct error its own series; classify into a constant set first")
				return
			}
			if c.isLabelSetFunc(fn) {
				return
			}
		}
		c.flag(e, "label value computed by %s is not provably finite; canonicalise through an //mdrep:labelset function", types.ExprString(v.Fun))
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(v)
		switch o := obj.(type) {
		case *types.Const:
			return
		case *types.Var:
			if c.allowParamOrDefer(o, v, obScalar, stack) {
				return
			}
			if c.finiteRangeVar(o) {
				return
			}
			c.flag(e, "label value %s is loop or computed data, not a member of a declared finite set", v.Name)
		default:
			c.flag(e, "label value %s cannot be cardinality-checked", v.Name)
		}
	default:
		c.flag(e, "label value %s is not a constant or a member of a declared finite set", types.ExprString(e))
	}
}

// allowParamOrDefer handles an identifier that names a parameter: a
// parameter of an exported function or method is the trusted
// instrumentation boundary; a parameter of an unexported function or a
// closure defers checking to its call sites via an obligation. Returns
// true when the identifier was fully handled.
func (c *checker) allowParamOrDefer(pv *types.Var, id *ast.Ident, kind obKind, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		var exported bool
		var declObj types.Object
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
			exported = ast.IsExported(f.Name.Name)
			declObj = c.pass.TypesInfo.ObjectOf(f.Name)
		case *ast.FuncLit:
			ft = f.Type
			declObj = c.closureBinding(f, stack[:i])
		default:
			continue
		}
		idx, found := paramIndex(c.pass, ft, pv)
		if !found {
			continue // declared further out
		}
		if exported {
			return true
		}
		if declObj == nil {
			c.flag(id, "label value %s comes from a closure parameter the analyzer cannot trace to call sites", id.Name)
			return true
		}
		key := obKey{target: declObj, index: idx, kind: kind}
		if !c.visited[key] {
			c.visited[key] = true
			c.work = append(c.work, obligation{target: declObj, index: idx, kind: kind, pos: id.Pos()})
		}
		return true
	}
	return false
}

// paramIndex returns the position of pv among ft's declared parameters
// (counting each name in multi-name groups), or found=false when pv is
// not a parameter of ft.
func paramIndex(pass *analysis.Pass, ft *ast.FuncType, pv *types.Var) (int, bool) {
	if ft.Params == nil {
		return 0, false
	}
	idx := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range field.Names {
			if pass.TypesInfo.Defs[nm] == pv {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// closureBinding returns the variable a function literal is bound to
// (`f := func(...)` or `var f = func(...)`), or nil when the literal
// escapes some other way.
func (c *checker) closureBinding(lit *ast.FuncLit, outer []ast.Node) types.Object {
	if len(outer) == 0 {
		return nil
	}
	switch p := outer[len(outer)-1].(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs == lit && i < len(p.Lhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					return c.pass.TypesInfo.ObjectOf(id)
				}
			}
		}
	case *ast.ValueSpec:
		for i, rhs := range p.Values {
			if rhs == lit && i < len(p.Names) {
				return c.pass.TypesInfo.ObjectOf(p.Names[i])
			}
		}
	}
	return nil
}

// resolve checks every call site of an obligation's target function.
func (c *checker) resolve(ob obligation) {
	matched := false
	for _, ci := range c.calls {
		if !c.callTargets(ci.call, ob.target) {
			continue
		}
		matched = true
		sig := c.targetSignature(ob.target)
		variadicPairs := ob.kind == obPairs && sig != nil && sig.Variadic() && ob.index == sig.Params().Len()-1
		switch {
		case variadicPairs:
			if ob.index < len(ci.call.Args) {
				c.checkPairArgs(ci.call.Args[ob.index:], ci.call.Ellipsis.IsValid(), 0, ci.stack)
			}
		case ob.index < len(ci.call.Args):
			arg := ci.call.Args[ob.index]
			if ob.kind == obPairs {
				c.checkPairSource(arg, 0, ci.stack)
			} else {
				c.checkValue(arg, ci.stack)
			}
		}
	}
	if !matched {
		// No visible call site (callback stored in a struct, passed
		// along, ...): the parameter cannot be traced.
		c.flag(posExpr{ob.pos}, "label value flows through %s, whose call sites the analyzer cannot see; canonicalise through an //mdrep:labelset function", ob.target.Name())
	}
}

// callTargets reports whether call invokes target — a declared function
// (resolved through Callee, covering methods) or a closure-bound
// variable (a plain identifier call).
func (c *checker) callTargets(call *ast.CallExpr, target types.Object) bool {
	switch t := target.(type) {
	case *types.Func:
		fn, ok := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
		return ok && fn == t
	case *types.Var:
		id, ok := call.Fun.(*ast.Ident)
		return ok && c.pass.TypesInfo.ObjectOf(id) == t
	}
	return false
}

func (c *checker) targetSignature(target types.Object) *types.Signature {
	sig, _ := target.Type().(*types.Signature)
	return sig
}

// isLabelSetFunc reports whether fn is a same-package function whose
// declaration carries the //mdrep:labelset directive.
func (c *checker) isLabelSetFunc(fn *types.Func) bool {
	if fn.Pkg() != c.pass.Pkg {
		return false
	}
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || c.pass.TypesInfo.ObjectOf(fd.Name) != fn {
				continue
			}
			return lintutil.HasDirective(fd.Doc, lintutil.LabelSetDirective)
		}
	}
	return false
}

// finiteRangeVar reports whether v is the key or value variable of a
// range statement iterating a declared finite set.
func (c *checker) finiteRangeVar(v *types.Var) bool {
	for _, f := range c.pass.Files {
		var ok bool
		ast.Inspect(f, func(n ast.Node) bool {
			rng, isRange := n.(*ast.RangeStmt)
			if !isRange || ok {
				return !ok
			}
			for _, kv := range []ast.Expr{rng.Key, rng.Value} {
				if id, isID := kv.(*ast.Ident); isID && c.pass.TypesInfo.Defs[id] == v {
					ok = c.finiteSetExpr(rng.X)
					return false
				}
			}
			return true
		})
		if ok {
			return true
		}
	}
	return false
}

// finiteSetVar reports whether v is a package-level variable initialised
// to a composite literal of constants.
func (c *checker) finiteSetVar(v *types.Var) bool {
	if v.Parent() != c.pass.Pkg.Scope() {
		return false
	}
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if c.pass.TypesInfo.Defs[id] != v || i >= len(vs.Values) {
						continue
					}
					lit, isLit := vs.Values[i].(*ast.CompositeLit)
					return isLit && c.constElems(lit)
				}
			}
		}
	}
	return false
}

// finiteSetExpr reports whether e denotes a finite constant set: a
// composite literal of constants, or a package-level var initialised to
// one.
func (c *checker) finiteSetExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return c.constElems(v)
	case *ast.Ident:
		if pv, ok := c.pass.TypesInfo.ObjectOf(v).(*types.Var); ok {
			return c.finiteSetVar(pv)
		}
	}
	return false
}

// constElems reports whether every element of a composite literal is a
// compile-time constant (for map literals: keys and values both).
func (c *checker) constElems(lit *ast.CompositeLit) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if !c.isConst(kv.Key) || !c.isConst(kv.Value) {
				return false
			}
			continue
		}
		if !c.isConst(el) {
			return false
		}
	}
	return true
}

func (c *checker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// posExpr adapts a bare position to the small surface flag() needs.
type posExpr struct{ p token.Pos }

func (p posExpr) Pos() token.Pos { return p.p }
func (p posExpr) End() token.Pos { return p.p }

func (c *checker) flag(at interface{ Pos() token.Pos }, format string, args ...interface{}) {
	if c.reported[at.Pos()] {
		return // the same expression can be reached through several obligations
	}
	c.reported[at.Pos()] = true
	lintutil.Report(c.pass, at.Pos(), name, format, args...)
}
