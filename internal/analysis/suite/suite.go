// Package suite enumerates the mdrep analyzer suite: the custom
// go/analysis passes that mechanically enforce the engine's determinism,
// aliasing, locking, allocation, fault-taxonomy, metric-cardinality and
// leak-check conventions (DESIGN.md §10). cmd/mdrep-lint wires the suite
// into `go vet -vettool`; the meta-test in this package asserts the
// suite is clean on the repository itself.
package suite

import (
	"golang.org/x/tools/go/analysis"

	"mdrep/internal/analysis/allocfree"
	"mdrep/internal/analysis/detfloat"
	"mdrep/internal/analysis/faultwrap"
	"mdrep/internal/analysis/leakmain"
	"mdrep/internal/analysis/locksafe"
	"mdrep/internal/analysis/metriclabel"
	"mdrep/internal/analysis/rowalias"
	"mdrep/internal/analysis/wallclock"
)

// Analyzers returns the full mdrep lint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detfloat.Analyzer,
		rowalias.Analyzer,
		wallclock.Analyzer,
		locksafe.Analyzer,
		allocfree.Analyzer,
		faultwrap.Analyzer,
		metriclabel.Analyzer,
		leakmain.Analyzer,
	}
}
