package suite_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"

	"mdrep/internal/analysis/suite"
)

func TestAnalyzersAreValid(t *testing.T) {
	analyzers := suite.Analyzers()
	if len(analyzers) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(analyzers))
	}
	if err := analysis.Validate(analyzers); err != nil {
		t.Fatal(err)
	}
}

// TestRepoIsClean builds cmd/mdrep-lint and runs it as a vettool over the
// whole repository: the codebase must satisfy its own invariants. A
// regression that reintroduces a violation (or a new analyzer that flags
// existing code without a fix or an //mdrep:allow) fails here before CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole repo")
	}
	root := repoRoot(t)
	tool := filepath.Join(t.TempDir(), "mdrep-lint")

	build := exec.Command("go", "build", "-o", tool, "./cmd/mdrep-lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mdrep-lint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("mdrep-lint found violations:\n%s", out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
