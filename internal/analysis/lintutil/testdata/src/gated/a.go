// Package gated pairs an unconstrained file with a build-tagged one:
// the harness loads every .go file in the fixture directory regardless
// of constraints, so findings behind a tag still surface.
package gated

func boom() {}

func use() {
	boom() // want `boom called`
	boom() //mdrep:allow fakelint: demonstrating suppression in a gated fixture
}
