//go:build mdrep_never_built

package gated

func taggedUse() {
	boom() // want `boom called`
}
