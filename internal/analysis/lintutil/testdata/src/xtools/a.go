// Package xtools imports the vendored golang.org/x/tools analysis
// package, exercising the harness's module vendor/ import fallback.
package xtools

import "golang.org/x/tools/go/analysis"

// Analyzer proves the vendored type actually type-checks here.
var Analyzer = &analysis.Analyzer{Name: "noop", Doc: "fixture analyzer"}

func boom() {}

func use() {
	boom() // want `boom called`
	boom() //mdrep:allow fakelint: demonstrating suppression beside a vendored import
}
