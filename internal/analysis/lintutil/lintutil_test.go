package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/lintutil"
)

// fakeAnalyzer flags every call to a function named boom, reporting
// through lintutil.Report so fixtures exercise the shared suppression
// and test-file filtering paths end to end.
var fakeAnalyzer = &analysis.Analyzer{
	Name: "fakelint",
	Doc:  "flags calls to boom()",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					lintutil.Report(pass, call.Pos(), "fakelint", "boom called")
				}
				return true
			})
		}
		return nil, nil
	},
}

// parsePass parses one source file (with comments) and wraps it in the
// minimal analysis.Pass that Report/Suppressed need: Fset, Files, and a
// diagnostic collector.
func parsePass(t *testing.T, filename, src string) (*analysis.Pass, *[]analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	var diags []analysis.Diagnostic
	return &analysis.Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}, &diags
}

// findCall returns the position of the first call to target() in the pass.
func findCall(t *testing.T, pass *analysis.Pass) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(pass.Files[0], func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "target" {
				pos = call.Pos()
				return false
			}
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatal("no call to target() in test source")
	}
	return pos
}

// TestSuppressionPlacement pins the exact geometry and grammar of the
// //mdrep:allow directive: same line or the line directly above, colon
// plus non-empty reason, matching analyzer name. Everything else must
// let the diagnostic through — reasonless forms with an explanatory note.
func TestSuppressionPlacement(t *testing.T) {
	cases := []struct {
		name string
		stmt string // statement lines inside the function body
		file string // parsed filename, defaults to a.go

		suppressed bool // Suppressed(...) verdict and no diagnostic
		noted      bool // diagnostic fires carrying the reasonless note
	}{
		{
			name:       "eol reasoned",
			stmt:       "target() //mdrep:allow fakelint: cold path, measured",
			suppressed: true,
		},
		{
			name:       "line above reasoned",
			stmt:       "//mdrep:allow fakelint: cold path, measured\n\ttarget()",
			suppressed: true,
		},
		{
			name: "two lines above does not reach",
			stmt: "//mdrep:allow fakelint: cold path, measured\n\t_ = 0\n\ttarget()",
		},
		{
			name: "line below does not reach",
			stmt: "target()\n\t//mdrep:allow fakelint: cold path, measured",
		},
		{
			name:  "eol reasonless rejected with note",
			stmt:  "target() //mdrep:allow fakelint",
			noted: true,
		},
		{
			name:  "legacy colon-less form rejected with note",
			stmt:  "target() //mdrep:allow fakelint cold path",
			noted: true,
		},
		{
			name:  "colon with empty reason rejected with note",
			stmt:  "target() //mdrep:allow fakelint:",
			noted: true,
		},
		{
			name: "different analyzer name ignored",
			stmt: "target() //mdrep:allow otherlint: not ours",
		},
		{
			name:       "test file skipped entirely",
			stmt:       "target()",
			file:       "a_test.go",
			suppressed: false, // Suppressed is false, but Report stays silent
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := tc.file
			if file == "" {
				file = "a.go"
			}
			src := "package p\n\nfunc target() {}\n\nfunc use() {\n\t" + tc.stmt + "\n}\n"
			pass, diags := parsePass(t, file, src)
			pos := findCall(t, pass)

			if got := lintutil.Suppressed(pass, pos, "fakelint"); got != tc.suppressed {
				t.Errorf("Suppressed = %v, want %v", got, tc.suppressed)
			}

			lintutil.Report(pass, pos, "fakelint", "boom called")
			inTest := strings.HasSuffix(file, "_test.go")
			wantDiag := !tc.suppressed && !inTest
			if got := len(*diags) == 1; got != wantDiag {
				t.Fatalf("diagnostic emitted = %v, want %v (diags: %v)", got, wantDiag, *diags)
			}
			if wantDiag {
				noted := strings.Contains((*diags)[0].Message, "reasonless //mdrep:allow ignored")
				if noted != tc.noted {
					t.Errorf("reasonless note present = %v, want %v: %q", noted, tc.noted, (*diags)[0].Message)
				}
			}
		})
	}
}

// TestHasDirectiveWithBuildTags pins directive detection against the
// comment shapes that appear around build-tagged files: the //go:build
// line itself, prose mentioning a directive, and directives with
// arguments or near-miss spellings.
func TestHasDirectiveWithBuildTags(t *testing.T) {
	cases := []struct {
		name string
		src  string // full file; HasDirective runs on the package doc
		want bool
	}{
		{
			name: "directive in package doc below a build tag",
			src:  "//go:build linux\n\n//mdrep:hotpath\npackage p\n",
			want: true,
		},
		{
			name: "build tag alone is not a directive",
			src:  "//go:build linux\n\npackage p\n",
			want: false,
		},
		{
			name: "prose mention does not match",
			src:  "// Package p documents the //mdrep:hotpath convention.\npackage p\n",
			want: false,
		},
		{
			name: "longer identifier does not match",
			src:  "//mdrep:hotpathy\npackage p\n",
			want: false,
		},
		{
			name: "directive with trailing argument matches",
			src:  "//mdrep:hotpath step loop\npackage p\n",
			want: true,
		},
		{
			name: "directive with tab separator matches",
			src:  "//mdrep:hotpath\tstep loop\npackage p\n",
			want: true,
		},
		{
			name: "nil doc",
			src:  "package p\n",
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "a.go", tc.src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing: %v", err)
			}
			if got := lintutil.HasDirective(f.Doc, lintutil.HotPathDirective); got != tc.want {
				t.Errorf("HasDirective = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestIsPackage pins the gating matcher: exact fixture paths, module
// suffix paths, and the non-matches that a naive strings.HasSuffix would
// let through.
func TestIsPackage(t *testing.T) {
	cases := []struct {
		path  string
		names []string
		want  bool
	}{
		{"mdrep/internal/core", []string{"core"}, true},
		{"core", []string{"core"}, true},
		{"mdrep/internal/score", []string{"core"}, false},
		{"notcore", []string{"core"}, false},
		{"mdrep/internal/dht", []string{"peer", "dht"}, true},
		{"mdrep/internal/dhtx", []string{"dht"}, false},
	}
	for _, tc := range cases {
		if got := lintutil.IsPackage(tc.path, tc.names...); got != tc.want {
			t.Errorf("IsPackage(%q, %v) = %v, want %v", tc.path, tc.names, got, tc.want)
		}
	}
}

// TestFixtureLoading drives the analyzertest harness over two fixture
// shapes the real suites depend on: a package with a build-tagged file
// (every file is loaded regardless of constraints, so diagnostics in
// tagged files still surface) and a package importing the vendored
// golang.org/x/tools tree (resolved through the module vendor/
// fallback, offline).
func TestFixtureLoading(t *testing.T) {
	analyzertest.Run(t, "testdata", fakeAnalyzer, "gated", "xtools")
}
