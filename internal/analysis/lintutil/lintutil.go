// Package lintutil holds the shared plumbing of the mdrep analyzer suite
// (internal/analysis/...): package-set matching, test-file filtering, the
// //mdrep:allow suppression directive, the //mdrep:hotpath and
// //mdrep:labelset function annotations, and SuggestedFix construction
// helpers.
//
// Every analyzer in the suite reports through Report, which gives the
// whole suite one uniform escape hatch: a comment
//
//	//mdrep:allow <analyzer>: <reason>
//
// on the flagged line (or the line directly above it) silences that
// analyzer for that line. The reason is mandatory, not a convention: a
// directive without one (or in the legacy colon-less form) does not
// suppress anything — the original diagnostic fires with a note saying
// the suppression was ignored, so a reasonless escape hatch cannot
// survive CI. `make lint-allow` inventories the suppressions currently
// in force.
package lintutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "mdrep:allow"

// HotPathDirective marks a function (or, on the package clause, a whole
// package) whose body the allocfree analyzer checks for
// allocation-forcing constructs.
const HotPathDirective = "mdrep:hotpath"

// LabelSetDirective marks a function that is trusted to return metric
// label values drawn from a finite set; its doc comment documents the
// set and how it is bounded. The metriclabel analyzer accepts calls to
// same-package functions carrying this directive as label values.
const LabelSetDirective = "mdrep:labelset"

// IsPackage reports whether path denotes one of the named mdrep packages.
// It matches both the real module location ("mdrep/internal/core") and the
// bare fixture location used by the analyzertest harness ("core"), so the
// same analyzer logic runs unchanged against testdata packages.
func IsPackage(path string, names ...string) bool {
	for _, name := range names {
		if path == name || strings.HasSuffix(path, "/"+name) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos sits in a *_test.go file. The suite
// guards production invariants; tests may freely use wall clocks, global
// randomness and direct engine access.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// suppression classifies the //mdrep:allow directive, if any, covering
// the line containing pos (or the line directly above it) for the named
// analyzer. ok means a well-formed, reasoned directive suppresses the
// finding; reasonless means a directive names this analyzer but carries
// no reason (or uses the legacy colon-less form) and was therefore
// rejected.
func suppression(pass *analysis.Pass, pos token.Pos, name string) (ok, reasonless bool) {
	file := enclosingFile(pass, pos)
	if file == nil {
		return false, false
	}
	line := pass.Fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			cl := pass.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimSpace(strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), "/ "))
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
			tok, reason, _ := strings.Cut(rest, " ")
			analyzer, colon := strings.CutSuffix(tok, ":")
			if analyzer != name {
				continue
			}
			if colon && strings.TrimSpace(reason) != "" {
				return true, false
			}
			reasonless = true
		}
	}
	return false, reasonless
}

// Suppressed reports whether the line containing pos, or the line
// directly above it, carries a well-formed "//mdrep:allow <name>: <reason>"
// directive. Reasonless directives do not count.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	ok, _ := suppression(pass, pos, name)
	return ok
}

// Report emits a diagnostic at pos unless it sits in a test file or is
// suppressed by a reasoned //mdrep:allow directive for the named
// analyzer. A reasonless directive is called out in the message so the
// author knows why their suppression did not take.
func Report(pass *analysis.Pass, pos token.Pos, name, format string, args ...interface{}) {
	ReportWithFixes(pass, pos, name, nil, format, args...)
}

// ReportWithFixes is Report with attached suggested fixes, which the
// `make lint-fix` pipeline (go vet -json | mdrep-lint -applyfix) applies
// mechanically.
func ReportWithFixes(pass *analysis.Pass, pos token.Pos, name string, fixes []analysis.SuggestedFix, format string, args ...interface{}) {
	if InTestFile(pass, pos) {
		return
	}
	ok, reasonless := suppression(pass, pos, name)
	if ok {
		return
	}
	if reasonless {
		format += " (reasonless //mdrep:allow ignored; write `//mdrep:allow " + name + ": <reason>`)"
	}
	pass.Report(analysis.Diagnostic{
		Pos:            pos,
		Message:        formatMessage(format, args...),
		SuggestedFixes: fixes,
	})
}

func formatMessage(format string, args ...interface{}) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}

// HasDirective reports whether the comment group contains the given
// directive in Go directive form: the comment line must start exactly
// with "//<directive>" (no space after the slashes, as gofmt requires
// for //go:-style directives), optionally followed by an argument.
// Prose that merely mentions the directive does not match.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if !ok {
			continue
		}
		if rest == "" || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t") {
			return true
		}
	}
	return false
}

// WrapFix builds a single-edit SuggestedFix that wraps the source range
// [pos, end) in prefix…suffix — e.g. turning `errors.New(x)` into
// `fault.Terminal(errors.New(x))`.
func WrapFix(message string, pos, end token.Pos, prefix, suffix string) analysis.SuggestedFix {
	return analysis.SuggestedFix{
		Message: message,
		TextEdits: []analysis.TextEdit{
			{Pos: pos, End: pos, NewText: []byte(prefix)},
			{Pos: end, End: end, NewText: []byte(suffix)},
		},
	}
}

// ReplaceFix builds a single-edit SuggestedFix replacing [pos, end) with
// text.
func ReplaceFix(message string, pos, end token.Pos, text string) analysis.SuggestedFix {
	return analysis.SuggestedFix{
		Message:   message,
		TextEdits: []analysis.TextEdit{{Pos: pos, End: end, NewText: []byte(text)}},
	}
}

// InsertFix builds a SuggestedFix inserting text at pos.
func InsertFix(message string, pos token.Pos, text string) analysis.SuggestedFix {
	return ReplaceFix(message, pos, pos, text)
}

// enclosingFile returns the syntax file of pass containing pos.
func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// RootIdent unwraps selector, index, star and paren chains down to the
// base identifier: RootIdent(`s.cache[i]`) == `s`. It returns nil when the
// base is not a plain identifier (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
