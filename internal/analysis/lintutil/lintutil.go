// Package lintutil holds the shared plumbing of the mdrep analyzer suite
// (internal/analysis/...): package-set matching, test-file filtering and
// the //mdrep:allow suppression directive.
//
// Every analyzer in the suite reports through Report, which gives the
// whole suite one uniform escape hatch: a comment
//
//	//mdrep:allow <analyzer> <reason>
//
// on the flagged line (or the line directly above it) silences that
// analyzer for that line. The reason is free text but mandatory by
// convention — a suppression without a stated reason should not survive
// review.
package lintutil

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "mdrep:allow"

// IsPackage reports whether path denotes one of the named mdrep packages.
// It matches both the real module location ("mdrep/internal/core") and the
// bare fixture location used by the analyzertest harness ("core"), so the
// same analyzer logic runs unchanged against testdata packages.
func IsPackage(path string, names ...string) bool {
	for _, name := range names {
		if path == name || strings.HasSuffix(path, "/"+name) {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos sits in a *_test.go file. The suite
// guards production invariants; tests may freely use wall clocks, global
// randomness and direct engine access.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Suppressed reports whether the line containing pos, or the line directly
// above it, carries an "//mdrep:allow <name>" directive.
func Suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	file := enclosingFile(pass, pos)
	if file == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, group := range file.Comments {
		for _, c := range group.List {
			cl := pass.Fset.Position(c.Pos()).Line
			if cl != line && cl != line-1 {
				continue
			}
			text := strings.TrimSpace(strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), "/ "))
			if !strings.HasPrefix(text, AllowDirective) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, AllowDirective))
			if len(fields) > 0 && fields[0] == name {
				return true
			}
		}
	}
	return false
}

// Report emits a diagnostic at pos unless it sits in a test file or is
// suppressed by an //mdrep:allow directive for the named analyzer.
func Report(pass *analysis.Pass, pos token.Pos, name, format string, args ...interface{}) {
	if InTestFile(pass, pos) || Suppressed(pass, pos, name) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// enclosingFile returns the syntax file of pass containing pos.
func enclosingFile(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// RootIdent unwraps selector, index, star and paren chains down to the
// base identifier: RootIdent(`s.cache[i]`) == `s`. It returns nil when the
// base is not a plain identifier (e.g. a call result).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
