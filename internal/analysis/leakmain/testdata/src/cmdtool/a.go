// Negative fixture: not an internal package, so leakmain does not gate
// on it even though it spawns goroutines.
package cmdtool

func start(ch chan int) {
	go func() {
		ch <- 1
	}()
}
