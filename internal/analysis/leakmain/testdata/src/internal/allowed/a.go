// Suppressed fixture: the goroutine is process-lifetime by design and
// the suppression says so.
package allowed

func start(ch chan int) {
	//mdrep:allow leakmain: process-lifetime pump, torn down only at exit
	go func() {
		ch <- 1
	}()
}
