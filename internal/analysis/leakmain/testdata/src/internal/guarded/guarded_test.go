package guarded

import "testing"

// RunMain stands in for testutil.RunMain; leakmain matches the test
// file textually, so a local definition keeps the fixture free of
// module imports.
func RunMain(m *testing.M) int { return m.Run() }

func TestMain(m *testing.M) {
	RunMain(m)
}
