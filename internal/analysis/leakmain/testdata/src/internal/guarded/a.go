// Negative fixture: the package spawns goroutines and its test file
// registers the leak-checking TestMain, so nothing is flagged.
package guarded

func start(ch chan int) {
	go func() {
		ch <- 1
	}()
}
