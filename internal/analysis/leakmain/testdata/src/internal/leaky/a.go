// Positive fixture: an internal package that spawns a goroutine from
// non-test code but has no goroutine-leak TestMain.
package leaky

func start(ch chan int) {
	go func() { // want `spawns goroutines but has no goroutine-leak TestMain`
		ch <- 1
	}()
}
