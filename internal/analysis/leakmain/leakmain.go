// Package leakmain makes the goroutine-leak check (internal/testutil,
// PR 4) mandatory wherever it has something to catch.
//
// testutil.RunMain snapshots the goroutine set before the package's
// tests run and fails the run if goroutines survive afterwards — but
// only in packages that remember to declare
//
//	func TestMain(m *testing.M) { testutil.RunMain(m) }
//
// A package that spawns goroutines in production code and lacks that
// TestMain silently opts out of leak detection, exactly where it
// matters most. leakmain closes the loop: any internal package whose
// non-test code contains a `go` statement must have a test file whose
// TestMain routes through RunMain.
//
// The check is textual on the test side by necessity: a go/analysis
// pass compiles one unit, and the non-test unit cannot see the
// package's _test.go files. leakmain therefore scans the package
// directory for test files containing both `func TestMain(` and
// `RunMain(`. The diagnostic carries a suggested fix inserting a
// ready-made main_test.go body (printed in the message), so adopting
// the guard is mechanical.
package leakmain

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mdrep/internal/analysis/lintutil"
)

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "leakmain"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "require the testutil goroutine-leak TestMain in packages that spawn goroutines\n\n" +
		"Any internal package whose non-test code contains a go statement must\n" +
		"declare func TestMain(m *testing.M) { testutil.RunMain(m) } so the\n" +
		"goroutine-leak guard covers it.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !strings.Contains(pass.Pkg.Path()+"/", "internal/") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	var firstGo *ast.GoStmt
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if firstGo == nil && !lintutil.InTestFile(pass, g.Pos()) {
			firstGo = g
		}
	})
	if firstGo == nil {
		return nil, nil
	}
	dir := filepath.Dir(pass.Fset.Position(firstGo.Pos()).Filename)
	if hasLeakTestMain(dir) {
		return nil, nil
	}
	lintutil.Report(pass, firstGo.Pos(), name,
		"package %s spawns goroutines but has no goroutine-leak TestMain; add a main_test.go with `func TestMain(m *testing.M) { testutil.RunMain(m) }` (internal/testutil)",
		pass.Pkg.Path())
	return nil, nil
}

// hasLeakTestMain reports whether some *_test.go file in dir declares a
// TestMain that routes through the leak-checking RunMain. The match is
// textual: test files are a different compilation unit, invisible to
// this pass's type information.
func hasLeakTestMain(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return true // unreadable dir: fail open rather than misreport
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		src := string(data)
		if strings.Contains(src, "func TestMain(") && strings.Contains(src, "RunMain(") {
			return true
		}
	}
	return false
}
