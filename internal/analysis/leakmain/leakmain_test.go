package leakmain_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/leakmain"
)

func TestLeakMain(t *testing.T) {
	analyzertest.Run(t, "testdata", leakmain.Analyzer,
		"internal/leaky", "internal/guarded", "internal/allowed", "cmdtool")
}
