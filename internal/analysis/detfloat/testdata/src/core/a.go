// Positive fixture: package path "core" is in detfloat's deterministic
// set, so order-sensitive float accumulation over map iteration must be
// diagnosed.
package core

import "sort"

func mapSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `nondeterministic float accumulation into sum`
	}
	return sum
}

func explicitForm(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `nondeterministic float accumulation into total`
	}
	return total
}

type stats struct{ sum float64 }

func selectorTarget(m map[int]float64) float64 {
	var s stats
	for _, v := range m {
		s.sum += v // want `nondeterministic float accumulation into s\.sum`
	}
	return s.sum
}

func nestedSliceLoop(m map[int][]float64) float64 {
	// The inner loop is over a slice, but the accumulator crosses the
	// iterations of the outer map range, so order still leaks in.
	sum := 0.0
	for _, vs := range m {
		for _, v := range vs {
			sum += v // want `nondeterministic float accumulation into sum`
		}
	}
	return sum
}

func subtraction(m map[int]float64) float64 {
	d := 1.0
	for _, v := range m {
		d -= v // want `nondeterministic float accumulation into d`
	}
	return d
}

// --- compliant patterns -----------------------------------------------------

func keyedAccumulator(a, b map[int]float64) map[int]float64 {
	// Each key owns its accumulator: iteration order cannot matter.
	out := make(map[int]float64, len(a))
	for j, v := range a {
		out[j] += v * 2
	}
	for j, v := range b {
		out[j] = out[j] + v
	}
	return out
}

func sortedIteration(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func intAccumulator(m map[int]int) int {
	n := 0
	for _, v := range m { // integer addition is exact: order-independent
		n += v
	}
	return n
}

func perIterationAccumulator(m map[int][]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for j, entries := range m {
		vd := 0.0 // reset every iteration: order cannot accumulate
		for _, e := range entries {
			vd += e
		}
		out[j] = vd
	}
	return out
}

func maxReduction(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //mdrep:allow detfloat: fixture demonstrating suppression
	}
	return sum
}

// reasonless demonstrates that a suppression without a reason does not
// suppress: the diagnostic fires, annotated with why the directive was
// ignored.
func reasonless(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		//mdrep:allow detfloat
		sum += v // want `reasonless //mdrep:allow ignored`
	}
	return sum
}
