// Clean-negative fixture: package "simpkg" is outside detfloat's
// deterministic set, so identical code produces no diagnostics.
package simpkg

func mapSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
