package detfloat_test

import (
	"testing"

	"mdrep/internal/analysis/analyzertest"
	"mdrep/internal/analysis/detfloat"
)

func TestDetFloat(t *testing.T) {
	analyzertest.Run(t, "testdata", detfloat.Analyzer, "core", "simpkg")
}
