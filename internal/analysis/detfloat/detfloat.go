// Package detfloat implements the determinism analyzer for floating-point
// accumulation over map iteration.
//
// Journal replay (internal/journal) must rebuild bit-identical trust
// matrices: the engine's incremental caches, the snapshot differ and the
// property tests all compare float64 values exactly. Go randomises map
// iteration order, and float addition is not associative, so a sum
// accumulated while ranging over a map can legally differ between two
// runs over the same data — exactly the silent reputation drift the
// determinism contract (DESIGN.md §8) forbids.
//
// detfloat flags assignments that accumulate a float value across the
// iterations of a `range` statement over a map, inside the
// replay-deterministic packages (core, sparse, journal, wire, eval) and
// the figure-reproducing experiments package. Accumulation into an
// element keyed by the range variable itself (next[j] += v inside
// `for j, v := range row`) is order-independent — each key owns its own
// accumulator — and is not flagged.
package detfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"mdrep/internal/analysis/lintutil"
)

// Packages is the set of packages whose float arithmetic must not depend
// on map iteration order: the replay-deterministic core pipeline plus the
// experiments package, whose figures must reproduce run to run.
var Packages = []string{"core", "sparse", "journal", "wire", "eval", "experiments", "chaos", "massim", "blue", "walk"}

// name is the analyzer name, also the token accepted by //mdrep:allow.
const name = "detfloat"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag float accumulation over map iteration in replay-deterministic packages\n\n" +
		"Float addition is not associative and Go randomises map iteration, so a\n" +
		"sum accumulated while ranging over a map may differ bit-wise between two\n" +
		"runs on identical data, breaking bit-identical journal replay. Iterate\n" +
		"sorted keys instead (see sparse.sortedCols / Matrix.ForEachRow).",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.IsPackage(pass.Pkg.Path(), Packages...) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		assign := n.(*ast.AssignStmt)
		for _, target := range accumTargets(pass, assign) {
			// Walk outward to the nearest enclosing range-over-map whose
			// iteration order the accumulator is sensitive to.
			for i := len(stack) - 2; i >= 0; i-- {
				rng, ok := stack[i].(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass, rng) {
					continue
				}
				if orderSensitive(pass, target, rng) {
					lintutil.Report(pass, assign.Pos(), name,
						"nondeterministic float accumulation into %s while ranging over a map; iterate sorted keys so journal replay stays bit-identical",
						types.ExprString(target))
				}
				break // verdict rendered against the nearest map range
			}
		}
		return true
	})
	return nil, nil
}

// accumTargets returns the left-hand sides through which assign
// accumulates a floating-point value: compound ops (+=, -=, *=, /=) and
// the explicit `x = x + ...` form.
func accumTargets(pass *analysis.Pass, assign *ast.AssignStmt) []ast.Expr {
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(assign.Lhs) == 1 && isFloat(pass, assign.Lhs[0]) {
			return assign.Lhs[:1]
		}
	case token.ASSIGN:
		if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || !isFloat(pass, assign.Lhs[0]) {
			return nil
		}
		// x = x + y / x = y + x / x = x - y: the LHS appears as a direct
		// additive operand of the RHS.
		bin, ok := assign.Rhs[0].(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return nil
		}
		lhs := types.ExprString(assign.Lhs[0])
		if types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs {
			return assign.Lhs[:1]
		}
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func rangesOverMap(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderSensitive reports whether accumulating into target inside rng
// depends on rng's iteration order: the accumulator lives outside the
// range statement (it survives across iterations) and, for indexed
// targets, the element is not keyed by the range variables (a per-key
// accumulator sees each key exactly once, so order cannot matter).
func orderSensitive(pass *analysis.Pass, target ast.Expr, rng *ast.RangeStmt) bool {
	if idx, ok := target.(*ast.IndexExpr); ok && mentionsRangeVars(pass, idx.Index, rng) {
		return false
	}
	root := lintutil.RootIdent(target)
	if root == nil {
		// Accumulation through a call result or other non-identifier base:
		// assume the storage outlives the loop.
		return true
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// mentionsRangeVars reports whether e references rng's key or value
// variable.
func mentionsRangeVars(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	vars := map[types.Object]bool{}
	for _, kv := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := kv.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	if len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}
