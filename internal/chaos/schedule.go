package chaos

import (
	"fmt"
	"sort"
	"strings"

	"mdrep/internal/sim"
)

// Op is one kind of scheduled fault.
type Op int

const (
	// OpCrash kills the listed nodes (state lost on restart).
	OpCrash Op = iota
	// OpRestart brings the listed nodes back as fresh processes that
	// rejoin the ring.
	OpRestart
	// OpPartition splits the network into the event's groups.
	OpPartition
	// OpHeal removes the partition.
	OpHeal
)

func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Event is one fault at one round.
type Event struct {
	Round int
	Op    Op
	// Nodes are the targets of a crash/restart.
	Nodes []int
	// Groups is the partition layout (node index → group) for
	// OpPartition.
	Groups map[int]int
}

// Profile parameterises schedule generation.
type Profile struct {
	// Rounds is the schedule length.
	Rounds int
	// CrashesPerRound is how many live nodes each round kills.
	CrashesPerRound int
	// RestartAfter is how many rounds later a crashed node restarts
	// (1 = next round). 0 means crashed nodes stay down.
	RestartAfter int
	// PartitionProb is the per-round probability of starting a two-way
	// partition when none is active.
	PartitionProb float64
	// PartitionRounds is how long a partition lasts before healing.
	PartitionRounds int
	// Protected nodes (e.g. the bootstrap observer) are never crashed.
	Protected []int
}

// Schedule is a deterministic fault script: the same (seed, n, profile)
// always generates the identical schedule, and String() is its
// byte-exact canonical form.
type Schedule struct {
	Seed   uint64
	Nodes  int
	Events []Event
}

// Generate builds a schedule for n nodes from one seed. Crashed nodes
// are tracked so a round never kills more nodes than can restart, and
// at least one unprotected node stays alive.
func Generate(seed uint64, n int, p Profile) *Schedule {
	rng := sim.NewRNG(seed).DeriveStream("schedule")
	s := &Schedule{Seed: seed, Nodes: n}
	protected := make(map[int]bool, len(p.Protected))
	for _, i := range p.Protected {
		protected[i] = true
	}
	down := make(map[int]bool, n)
	partitionLeft := 0
	var pendingRestarts []Event

	for round := 0; round < p.Rounds; round++ {
		// Due restarts fire first so the round's crashes can re-kill.
		for _, ev := range pendingRestarts {
			if ev.Round == round {
				s.Events = append(s.Events, ev)
				for _, i := range ev.Nodes {
					delete(down, i)
				}
			}
		}
		pendingRestarts = trimDue(pendingRestarts, round)

		// Partition lifecycle.
		if partitionLeft > 0 {
			partitionLeft--
			if partitionLeft == 0 {
				s.Events = append(s.Events, Event{Round: round, Op: OpHeal})
			}
		} else if p.PartitionProb > 0 && rng.Float64() < p.PartitionProb {
			groups := make(map[int]int, n)
			for i := 0; i < n; i++ {
				groups[i] = rng.Intn(2)
			}
			// Protected nodes anchor group 0 so the observer side keeps
			// a working majority reference.
			for i := range protected {
				groups[i] = 0
			}
			s.Events = append(s.Events, Event{Round: round, Op: OpPartition, Groups: groups})
			partitionLeft = p.PartitionRounds
			if partitionLeft < 1 {
				partitionLeft = 1
			}
		}

		// Crashes: pick distinct live, unprotected victims, keeping at
		// least one unprotected node alive.
		var victims []int
		for len(victims) < p.CrashesPerRound {
			candidates := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if !down[i] && !protected[i] {
					candidates = append(candidates, i)
				}
			}
			if len(candidates) <= 1 {
				break
			}
			v := candidates[rng.Intn(len(candidates))]
			down[v] = true
			victims = append(victims, v)
		}
		if len(victims) > 0 {
			sort.Ints(victims)
			s.Events = append(s.Events, Event{Round: round, Op: OpCrash, Nodes: victims})
			if p.RestartAfter > 0 {
				pendingRestarts = append(pendingRestarts, Event{
					Round: round + p.RestartAfter,
					Op:    OpRestart,
					Nodes: append([]int(nil), victims...),
				})
			}
		}
	}
	// Any still-pending restarts land one round past the schedule so a
	// harness that runs Rounds+settling rounds sees everyone return.
	for _, ev := range pendingRestarts {
		ev.Round = p.Rounds
		s.Events = append(s.Events, ev)
	}
	return s
}

func trimDue(events []Event, round int) []Event {
	kept := events[:0]
	for _, ev := range events {
		if ev.Round != round {
			kept = append(kept, ev)
		}
	}
	return kept
}

// String renders the schedule canonically: one line per event, group
// maps in node order. Two schedules are identical iff their strings are.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule seed=%d nodes=%d\n", s.Seed, s.Nodes)
	for _, ev := range s.Events {
		fmt.Fprintf(&sb, "r%03d %s", ev.Round, ev.Op)
		if len(ev.Nodes) > 0 {
			fmt.Fprintf(&sb, " nodes=%v", ev.Nodes)
		}
		if len(ev.Groups) > 0 {
			keys := make([]int, 0, len(ev.Groups))
			for k := range ev.Groups {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			sb.WriteString(" groups=")
			for _, k := range keys {
				fmt.Fprintf(&sb, "%d:%d ", k, ev.Groups[k])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
