// Package chaos is the fault-injection layer of the DHT stack: a
// decorator around the transport-agnostic dht.Client seam that injects
// latency, message loss (request and reply path), duplication, delayed
// out-of-order delivery, network partitions and node crash/restart — all
// driven by an injected virtual clock and a seeded generator, so every
// fault schedule is replayable bit-for-bit from a single seed.
//
// The package has three parts:
//
//   - Chaos (this file): the per-network fault injector. Each node gets
//     a ClientFor(addr) decorator bound to its own address, so
//     partitions and crashes can be enforced on both the caller and the
//     callee side of every RPC.
//   - Schedule (schedule.go): a deterministic generator of round-based
//     fault scripts (crash, restart, partition, heal) from one seed.
//   - Network (harness.go): a MemNet ring wired through Chaos (and
//     optionally dht.RetryClient) plus the invariant checks the chaos
//     property suite asserts — ring convergence, zero record loss under
//     replication, R_f agreement with the fault-free run.
//
// Nothing in this package reads the wall clock or global randomness; it
// is in the wallclock/detfloat lint gate alongside dht and core.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/fault"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sim"
)

// Clock is the virtual time source chaos charges latency against. It
// never reads the wall clock; tests advance purely by injected latency.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Config tunes the injected fault mix. Zero values disable each fault.
type Config struct {
	// Seed drives every stochastic choice; the same seed and call
	// sequence reproduce the same faults.
	Seed uint64
	// RequestLoss and ReplyLoss drop that fraction of messages on each
	// path. A reply drop means the remote side effect happened but the
	// caller sees a failure — the ambiguous case retries must tolerate.
	RequestLoss, ReplyLoss float64
	// DupRate re-delivers that fraction of successful requests a second
	// time, exercising idempotency of the handlers.
	DupRate float64
	// DeferRate holds that fraction of Store deliveries back for a few
	// operations (up to DeferOps), reordering them against later
	// traffic. The caller sees success immediately — the message is "in
	// flight".
	DeferRate float64
	// DeferOps bounds how many subsequent operations a deferred store
	// may slip behind (default 4 when DeferRate > 0).
	DeferOps int
	// LatencyBase and LatencyJitter charge LatencyBase + U[0,Jitter)
	// of virtual time per RPC.
	LatencyBase, LatencyJitter time.Duration
	// OpTimeout fails an RPC whose sampled latency exceeds it, with a
	// fault.ErrTimeout-classified error. Zero disables timeouts.
	OpTimeout time.Duration
}

// Counters reports every fault the injector actually delivered.
type Counters struct {
	RequestDrops    metrics.Counter
	ReplyDrops      metrics.Counter
	Dups            metrics.Counter
	Deferred        metrics.Counter
	PartitionBlocks metrics.Counter
	Timeouts        metrics.Counter
	CrashBlocks     metrics.Counter
}

// Snapshot returns the counters as a name→count map.
func (c *Counters) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"request_drops":    c.RequestDrops.Load(),
		"reply_drops":      c.ReplyDrops.Load(),
		"dups":             c.Dups.Load(),
		"deferred":         c.Deferred.Load(),
		"partition_blocks": c.PartitionBlocks.Load(),
		"timeouts":         c.Timeouts.Load(),
		"crash_blocks":     c.CrashBlocks.Load(),
	}
}

// deferredOp is one held-back delivery; it runs when the op counter
// reaches due (or on Flush).
type deferredOp struct {
	due uint64
	run func()
}

// Chaos injects faults into every RPC of one simulated network. All
// methods are safe for concurrent use; determinism additionally requires
// a deterministic call order (the harness drives nodes sequentially).
type Chaos struct {
	inner dht.Client
	clock *Clock
	cfg   Config

	mu       sync.Mutex
	rng      *sim.RNG
	ops      uint64
	down     map[string]struct{}
	group    map[string]int // partition group per address; empty = whole
	deferred []deferredOp

	// Counters tallies delivered faults.
	Counters Counters

	// exp optionally mirrors Counters onto a shared registry (Instrument).
	exp *chaosExport
}

// New wraps inner with fault injection. clock may be shared with other
// components; it must not be nil.
func New(inner dht.Client, clock *Clock, cfg Config) *Chaos {
	if cfg.DeferRate > 0 && cfg.DeferOps < 1 {
		cfg.DeferOps = 4
	}
	return &Chaos{
		inner: inner,
		clock: clock,
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed).DeriveStream("chaos"),
		down:  make(map[string]struct{}),
		group: make(map[string]int),
	}
}

// Crash marks addr as crashed: every RPC from or to it fails until
// Restart. The node's in-memory state is untouched here — the harness
// decides whether a restart comes back empty (real crash) or intact.
func (c *Chaos) Crash(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[addr] = struct{}{}
}

// Restart clears a crash.
func (c *Chaos) Restart(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, addr)
}

// Down reports whether addr is currently crashed.
func (c *Chaos) Down(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, down := c.down[addr]
	return down
}

// SetPartition splits the network: each address maps to a group, and
// RPCs crossing groups fail. Addresses missing from the map fall into
// group 0. Heal clears it.
func (c *Chaos) SetPartition(groups map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.group = make(map[string]int, len(groups))
	for addr, g := range groups {
		c.group[addr] = g
	}
}

// SetLoss adjusts the loss rates on a live network; the experiments
// sweep loss without rebuilding the ring.
func (c *Chaos) SetLoss(request, reply float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.RequestLoss, c.cfg.ReplyLoss = request, reply
}

// Heal removes any partition.
func (c *Chaos) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.group = make(map[string]int)
}

// Flush delivers every deferred message immediately.
func (c *Chaos) Flush() {
	c.mu.Lock()
	pending := c.deferred
	c.deferred = nil
	c.mu.Unlock()
	for _, op := range pending {
		op.run()
	}
}

// ClientFor returns the fault-injecting client for the node at from.
// Every node must issue its RPCs through its own bound client so the
// injector can enforce caller-side crashes and partitions.
func (c *Chaos) ClientFor(from string) dht.Client {
	return &boundClient{chaos: c, from: from}
}

// admit runs the request-path fault pipeline for one RPC and returns
// the deliveries that came due, to be run by the caller outside the
// lock (they may recurse into the injector).
func (c *Chaos) admit(from, to string) ([]deferredOp, error) {
	c.mu.Lock()
	c.ops++
	var due []deferredOp
	if len(c.deferred) > 0 {
		kept := c.deferred[:0]
		for _, op := range c.deferred {
			if op.due <= c.ops {
				due = append(due, op)
			} else {
				kept = append(kept, op)
			}
		}
		c.deferred = kept
	}
	latency := c.cfg.LatencyBase
	if c.cfg.LatencyJitter > 0 {
		latency += time.Duration(c.rng.Int63n(int64(c.cfg.LatencyJitter)))
	}
	err := c.verdictLocked(from, to, latency)
	c.mu.Unlock()
	c.clock.Advance(latency)
	return due, err
}

// verdictLocked decides the request-path fate of one RPC.
func (c *Chaos) verdictLocked(from, to string, latency time.Duration) error {
	if c.cfg.OpTimeout > 0 && latency > c.cfg.OpTimeout {
		c.Counters.Timeouts.Inc()
		c.exp.countTimeout()
		return fmt.Errorf("chaos: rpc %s->%s exceeded op timeout: %w", from, to, fault.ErrTimeout)
	}
	if _, down := c.down[from]; down {
		c.Counters.CrashBlocks.Inc()
		c.exp.countCrashBlock()
		return fmt.Errorf("chaos: caller %s crashed: %w", from, dht.ErrNodeUnreachable)
	}
	if _, down := c.down[to]; down {
		c.Counters.CrashBlocks.Inc()
		c.exp.countCrashBlock()
		return fmt.Errorf("chaos: callee %s crashed: %w", to, dht.ErrNodeUnreachable)
	}
	if len(c.group) > 0 && c.group[from] != c.group[to] {
		c.Counters.PartitionBlocks.Inc()
		c.exp.countPartitionBlock()
		return fmt.Errorf("chaos: %s and %s partitioned: %w", from, to, dht.ErrNodeUnreachable)
	}
	if c.cfg.RequestLoss > 0 && c.rng.Float64() < c.cfg.RequestLoss {
		c.Counters.RequestDrops.Inc()
		c.exp.countRequestDrop()
		return fmt.Errorf("chaos: request %s->%s dropped: %w", from, to, dht.ErrNodeUnreachable)
	}
	return nil
}

// replyLost decides the reply-path fate after the handler ran.
func (c *Chaos) replyLost(from, to string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.ReplyLoss > 0 && c.rng.Float64() < c.cfg.ReplyLoss {
		c.Counters.ReplyDrops.Inc()
		c.exp.countReplyDrop()
		return fmt.Errorf("chaos: reply %s->%s dropped: %w", to, from, dht.ErrNodeUnreachable)
	}
	return nil
}

// shouldDup decides whether to deliver a request a second time.
func (c *Chaos) shouldDup() bool {
	if c.cfg.DupRate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() < c.cfg.DupRate {
		c.Counters.Dups.Inc()
		c.exp.countDup()
		return true
	}
	return false
}

// maybeDefer queues run for delayed delivery and reports whether it was
// deferred.
func (c *Chaos) maybeDefer(run func()) bool {
	if c.cfg.DeferRate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.cfg.DeferRate {
		return false
	}
	c.Counters.Deferred.Inc()
	c.exp.countDeferred()
	slip := uint64(1 + c.rng.Intn(c.cfg.DeferOps))
	c.deferred = append(c.deferred, deferredOp{due: c.ops + slip, run: run})
	return true
}

// boundClient is the per-node face of the injector.
type boundClient struct {
	chaos *Chaos
	from  string
}

// begin runs the request-path pipeline, delivering due deferred
// messages first (outside the injector lock — they may recurse).
func (b *boundClient) begin(to string) error {
	due, err := b.chaos.admit(b.from, to)
	for _, op := range due {
		op.run()
	}
	return err
}

// FindSuccessor implements dht.Client.
func (b *boundClient) FindSuccessor(sc obs.SpanContext, addr string, id dht.ID) (dht.NodeRef, error) {
	if err := b.begin(addr); err != nil {
		return dht.NodeRef{}, err
	}
	ref, err := b.chaos.inner.FindSuccessor(sc, addr, id)
	if err != nil {
		return dht.NodeRef{}, err
	}
	if b.chaos.shouldDup() {
		if dupRef, dupErr := b.chaos.inner.FindSuccessor(sc, addr, id); dupErr == nil {
			ref = dupRef
		}
	}
	if err := b.chaos.replyLost(b.from, addr); err != nil {
		return dht.NodeRef{}, err
	}
	return ref, nil
}

// Successors implements dht.Client.
func (b *boundClient) Successors(sc obs.SpanContext, addr string) ([]dht.NodeRef, error) {
	if err := b.begin(addr); err != nil {
		return nil, err
	}
	refs, err := b.chaos.inner.Successors(sc, addr)
	if err != nil {
		return nil, err
	}
	if err := b.chaos.replyLost(b.from, addr); err != nil {
		return nil, err
	}
	return refs, nil
}

// Predecessor implements dht.Client.
func (b *boundClient) Predecessor(sc obs.SpanContext, addr string) (dht.NodeRef, bool, error) {
	if err := b.begin(addr); err != nil {
		return dht.NodeRef{}, false, err
	}
	ref, ok, err := b.chaos.inner.Predecessor(sc, addr)
	if err != nil {
		return dht.NodeRef{}, false, err
	}
	if err := b.chaos.replyLost(b.from, addr); err != nil {
		return dht.NodeRef{}, false, err
	}
	return ref, ok, nil
}

// Notify implements dht.Client. Duplicate notifies exercise the
// handler's idempotency (adopting the same predecessor twice).
func (b *boundClient) Notify(sc obs.SpanContext, addr string, self dht.NodeRef) error {
	if err := b.begin(addr); err != nil {
		return err
	}
	if err := b.chaos.inner.Notify(sc, addr, self); err != nil {
		return err
	}
	if b.chaos.shouldDup() {
		_ = b.chaos.inner.Notify(sc, addr, self)
	}
	return b.chaos.replyLost(b.from, addr)
}

// Ping implements dht.Client.
func (b *boundClient) Ping(sc obs.SpanContext, addr string) error {
	if err := b.begin(addr); err != nil {
		return err
	}
	if err := b.chaos.inner.Ping(sc, addr); err != nil {
		return err
	}
	return b.chaos.replyLost(b.from, addr)
}

// Store implements dht.Client. A store may be deferred (delivered late,
// out of order) or duplicated; both are legal under the storage layer's
// merge-by-(owner, timestamp) semantics.
func (b *boundClient) Store(sc obs.SpanContext, addr string, recs []dht.StoredRecord, replicate bool) error {
	if err := b.begin(addr); err != nil {
		return err
	}
	inner, from := b.chaos.inner, b.from
	if b.chaos.maybeDefer(func() { _ = inner.Store(sc, addr, recs, replicate) }) {
		return nil // "in flight": the caller sees success now
	}
	if err := inner.Store(sc, addr, recs, replicate); err != nil {
		return err
	}
	if b.chaos.shouldDup() {
		_ = inner.Store(sc, addr, recs, replicate)
	}
	return b.chaos.replyLost(from, addr)
}

// Retrieve implements dht.Client.
func (b *boundClient) Retrieve(sc obs.SpanContext, addr string, key dht.ID) ([]dht.StoredRecord, error) {
	if err := b.begin(addr); err != nil {
		return nil, err
	}
	recs, err := b.chaos.inner.Retrieve(sc, addr, key)
	if err != nil {
		return nil, err
	}
	if err := b.chaos.replyLost(b.from, addr); err != nil {
		return nil, err
	}
	return recs, nil
}

var _ dht.Client = (*boundClient)(nil)
