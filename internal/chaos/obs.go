package chaos

import "mdrep/internal/metrics"

// chaosExport mirrors the injector's value Counters onto a shared
// registry as chaos_faults_total{kind=...}. The value Counters stay the
// independent ground truth: both tallies are bumped at the same sites,
// so an exporter bug shows up as a divergence between the two (the
// harness tests assert exact equality after a seeded run).
type chaosExport struct {
	requestDrops    *metrics.Counter
	replyDrops      *metrics.Counter
	dups            *metrics.Counter
	deferred        *metrics.Counter
	partitionBlocks *metrics.Counter
	timeouts        *metrics.Counter
	crashBlocks     *metrics.Counter
}

// Instrument mirrors every delivered fault into reg as
// chaos_faults_total{kind=...}; kind values match Counters.Snapshot
// keys. Call before the injector starts carrying traffic.
func (c *Chaos) Instrument(reg *metrics.Registry, labels ...string) {
	if reg == nil {
		return
	}
	kind := func(v string) *metrics.Counter {
		return reg.Counter("chaos_faults_total", append([]string{"kind", v}, labels...)...)
	}
	c.exp = &chaosExport{
		requestDrops:    kind("request_drops"),
		replyDrops:      kind("reply_drops"),
		dups:            kind("dups"),
		deferred:        kind("deferred"),
		partitionBlocks: kind("partition_blocks"),
		timeouts:        kind("timeouts"),
		crashBlocks:     kind("crash_blocks"),
	}
}

func (e *chaosExport) countRequestDrop() {
	if e != nil {
		e.requestDrops.Inc()
	}
}

func (e *chaosExport) countReplyDrop() {
	if e != nil {
		e.replyDrops.Inc()
	}
}

func (e *chaosExport) countDup() {
	if e != nil {
		e.dups.Inc()
	}
}

func (e *chaosExport) countDeferred() {
	if e != nil {
		e.deferred.Inc()
	}
}

func (e *chaosExport) countPartitionBlock() {
	if e != nil {
		e.partitionBlocks.Inc()
	}
}

func (e *chaosExport) countTimeout() {
	if e != nil {
		e.timeouts.Inc()
	}
}

func (e *chaosExport) countCrashBlock() {
	if e != nil {
		e.crashBlocks.Inc()
	}
}
