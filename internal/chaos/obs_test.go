package chaos

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"mdrep/internal/metrics"
)

// scrapeValue finds one series in a Prometheus text exposition and
// returns its value as an integer count. Missing series count as 0 —
// a seed that never rolled a fault kind simply exports nothing yet.
func scrapeValue(t *testing.T, exposition, series string) uint64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return uint64(v)
	}
	return 0
}

// TestExportedFaultCountsMatchGroundTruth is the exporter's own chaos
// property: over 50 seeded schedules, every fault count scraped from the
// registry must equal the injector's independent value-counter tally,
// and the exported retry totals must match what the retry layers saw.
func TestExportedFaultCountsMatchGroundTruth(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			t.Parallel()
			reg := metrics.NewRegistry()
			cfg := churnConfig(seed, 8)
			cfg.Chaos.OpTimeout = 6 * time.Millisecond // exercise the timeout kind too
			cfg.Metrics = reg
			nw, err := NewNetwork(cfg)
			if err != nil {
				t.Fatalf("build network: %v", err)
			}
			recs := MakeRecords(12, seed)
			if err := nw.Publish(recs, initialTS); err != nil {
				t.Fatalf("publish: %v", err)
			}
			nw.Converge(2)
			sched := Generate(seed, 8, Profile{
				Rounds:          3,
				CrashesPerRound: 2,
				RestartAfter:    1,
				Protected:       []int{0},
			})
			if err := nw.RunSchedule(sched, recs, 3); err != nil {
				t.Fatalf("schedule %q: %v", sched.String(), err)
			}
			quiesce(nw)

			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Fatal(err)
			}
			exposition := b.String()

			truth := nw.Chaos.Counters.Snapshot()
			var total uint64
			for kind, want := range truth {
				got := scrapeValue(t, exposition, fmt.Sprintf("chaos_faults_total{kind=%q}", kind))
				if got != want {
					t.Errorf("exported %s = %d, injector delivered %d", kind, got, want)
				}
				total += want
			}
			if total == 0 {
				t.Fatal("schedule delivered no faults; the equality check is vacuous")
			}

			// Retry layer: the shared exported series must equal the sum
			// of what the clients saw — same instrument, so any drift
			// means a rebind lost counts across a restart.
			attempts := scrapeValue(t, exposition, "dht_rpc_attempts_total")
			retries := scrapeValue(t, exposition, "dht_rpc_retries_total")
			if attempts == 0 {
				t.Fatal("no RPC attempts exported after a full schedule")
			}
			if live := nw.Retries[0].Metrics.Attempts.Load(); live != attempts {
				t.Errorf("client view attempts %d != exported %d", live, attempts)
			}
			if retries == 0 {
				t.Error("lossy schedule exported zero retries")
			}
		})
	}
}
