package chaos

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/fault"
	"mdrep/internal/obs"
)

// fakeClient records every RPC that actually reaches the transport.
type fakeClient struct {
	calls []string
	err   error
}

func (f *fakeClient) record(op, addr string) error {
	f.calls = append(f.calls, op+"->"+addr)
	return f.err
}

func (f *fakeClient) FindSuccessor(_ obs.SpanContext, addr string, id dht.ID) (dht.NodeRef, error) {
	return dht.NodeRef{Addr: addr}, f.record("find", addr)
}
func (f *fakeClient) Successors(_ obs.SpanContext, addr string) ([]dht.NodeRef, error) {
	return nil, f.record("succs", addr)
}
func (f *fakeClient) Predecessor(_ obs.SpanContext, addr string) (dht.NodeRef, bool, error) {
	return dht.NodeRef{}, false, f.record("pred", addr)
}
func (f *fakeClient) Notify(_ obs.SpanContext, addr string, self dht.NodeRef) error {
	return f.record("notify", addr)
}
func (f *fakeClient) Ping(_ obs.SpanContext, addr string) error { return f.record("ping", addr) }
func (f *fakeClient) Store(_ obs.SpanContext, addr string, recs []dht.StoredRecord, replicate bool) error {
	return f.record("store", addr)
}
func (f *fakeClient) Retrieve(_ obs.SpanContext, addr string, key dht.ID) ([]dht.StoredRecord, error) {
	return nil, f.record("retrieve", addr)
}

func TestRequestLossBlocksBeforeHandler(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1, RequestLoss: 1})
	cl := c.ClientFor("a")
	if err := cl.Ping(obs.SpanContext{}, "b"); !errors.Is(err, dht.ErrNodeUnreachable) {
		t.Fatalf("ping error = %v, want ErrNodeUnreachable", err)
	}
	if !fault.Retryable(cl.Ping(obs.SpanContext{}, "b")) {
		t.Fatalf("request drop should classify as retryable")
	}
	if len(inner.calls) != 0 {
		t.Fatalf("inner saw %v, want nothing (request dropped)", inner.calls)
	}
	if got := c.Counters.RequestDrops.Load(); got != 2 {
		t.Fatalf("RequestDrops = %d, want 2", got)
	}
}

func TestReplyLossAfterSideEffect(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1, ReplyLoss: 1})
	err := c.ClientFor("a").Store(obs.SpanContext{}, "b", nil, false)
	if !errors.Is(err, dht.ErrNodeUnreachable) {
		t.Fatalf("store error = %v, want ErrNodeUnreachable", err)
	}
	// The handler ran even though the caller saw a failure: that is the
	// ambiguity retries must tolerate (stores are idempotent).
	if want := []string{"store->b"}; !reflect.DeepEqual(inner.calls, want) {
		t.Fatalf("inner calls = %v, want %v", inner.calls, want)
	}
	if got := c.Counters.ReplyDrops.Load(); got != 1 {
		t.Fatalf("ReplyDrops = %d, want 1", got)
	}
}

func TestCrashBlocksBothDirections(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1})
	c.Crash("b")
	if err := c.ClientFor("a").Ping(obs.SpanContext{}, "b"); !errors.Is(err, dht.ErrNodeUnreachable) {
		t.Fatalf("call to crashed node: %v, want ErrNodeUnreachable", err)
	}
	if err := c.ClientFor("b").Ping(obs.SpanContext{}, "a"); !errors.Is(err, dht.ErrNodeUnreachable) {
		t.Fatalf("call from crashed node: %v, want ErrNodeUnreachable", err)
	}
	if got := c.Counters.CrashBlocks.Load(); got != 2 {
		t.Fatalf("CrashBlocks = %d, want 2", got)
	}
	c.Restart("b")
	if err := c.ClientFor("a").Ping(obs.SpanContext{}, "b"); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}
	if len(inner.calls) != 1 {
		t.Fatalf("inner calls = %v, want exactly the post-restart ping", inner.calls)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1})
	c.SetPartition(map[string]int{"a": 0, "b": 1, "c": 1})
	if err := c.ClientFor("a").Ping(obs.SpanContext{}, "b"); !errors.Is(err, dht.ErrNodeUnreachable) {
		t.Fatalf("cross-partition ping: %v, want ErrNodeUnreachable", err)
	}
	if err := c.ClientFor("b").Ping(obs.SpanContext{}, "c"); err != nil {
		t.Fatalf("same-group ping: %v", err)
	}
	// Addresses missing from the map default to group 0.
	if err := c.ClientFor("a").Ping(obs.SpanContext{}, "d"); err != nil {
		t.Fatalf("default-group ping: %v", err)
	}
	if got := c.Counters.PartitionBlocks.Load(); got != 1 {
		t.Fatalf("PartitionBlocks = %d, want 1", got)
	}
	c.Heal()
	if err := c.ClientFor("a").Ping(obs.SpanContext{}, "b"); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
}

func TestDuplicationRedelivers(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1, DupRate: 1})
	if err := c.ClientFor("a").Store(obs.SpanContext{}, "b", nil, false); err != nil {
		t.Fatalf("store: %v", err)
	}
	want := []string{"store->b", "store->b"}
	if !reflect.DeepEqual(inner.calls, want) {
		t.Fatalf("inner calls = %v, want %v", inner.calls, want)
	}
	if got := c.Counters.Dups.Load(); got != 1 {
		t.Fatalf("Dups = %d, want 1", got)
	}
}

func TestDeferredStoreDeliversLate(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1, DeferRate: 1, DeferOps: 1})
	cl := c.ClientFor("a")
	if err := cl.Store(obs.SpanContext{}, "b", nil, false); err != nil {
		t.Fatalf("deferred store should report success, got %v", err)
	}
	if len(inner.calls) != 0 {
		t.Fatalf("inner calls = %v, want none yet (store in flight)", inner.calls)
	}
	// The next operation trips the due delivery, which runs before it.
	if err := cl.Ping(obs.SpanContext{}, "c"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	want := []string{"store->b", "ping->c"}
	if !reflect.DeepEqual(inner.calls, want) {
		t.Fatalf("inner calls = %v, want %v", inner.calls, want)
	}
	if got := c.Counters.Deferred.Load(); got != 1 {
		t.Fatalf("Deferred = %d, want 1", got)
	}
}

func TestFlushDrainsDeferred(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{Seed: 1, DeferRate: 1, DeferOps: 8})
	if err := c.ClientFor("a").Store(obs.SpanContext{}, "b", nil, true); err != nil {
		t.Fatalf("store: %v", err)
	}
	if len(inner.calls) != 0 {
		t.Fatalf("inner calls = %v, want none before flush", inner.calls)
	}
	c.Flush()
	if want := []string{"store->b"}; !reflect.DeepEqual(inner.calls, want) {
		t.Fatalf("inner calls = %v, want %v", inner.calls, want)
	}
}

func TestLatencyAdvancesVirtualClock(t *testing.T) {
	clock := NewClock()
	c := New(&fakeClient{}, clock, Config{Seed: 1, LatencyBase: 10 * time.Millisecond})
	cl := c.ClientFor("a")
	for i := 0; i < 3; i++ {
		if err := cl.Ping(obs.SpanContext{}, "b"); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := clock.Now(); got != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", got)
	}
}

func TestOpTimeoutClassifiesAsTimeout(t *testing.T) {
	inner := &fakeClient{}
	c := New(inner, NewClock(), Config{
		Seed:        1,
		LatencyBase: 50 * time.Millisecond,
		OpTimeout:   10 * time.Millisecond,
	})
	err := c.ClientFor("a").Ping(obs.SpanContext{}, "b")
	if !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("error = %v, want fault.ErrTimeout", err)
	}
	if !fault.Retryable(err) {
		t.Fatalf("timeout should be retryable")
	}
	if len(inner.calls) != 0 {
		t.Fatalf("inner calls = %v, want none on timeout", inner.calls)
	}
	if got := c.Counters.Timeouts.Load(); got != 1 {
		t.Fatalf("Timeouts = %d, want 1", got)
	}
}

// faultTrace runs a fixed RPC sequence against a fresh injector and
// returns the per-call outcome pattern plus the final counters.
func faultTrace(seed uint64) string {
	c := New(&fakeClient{}, NewClock(), Config{
		Seed:          seed,
		RequestLoss:   0.2,
		ReplyLoss:     0.2,
		DupRate:       0.2,
		DeferRate:     0.2,
		LatencyBase:   time.Millisecond,
		LatencyJitter: 4 * time.Millisecond,
	})
	cl := c.ClientFor("a")
	out := ""
	for i := 0; i < 200; i++ {
		var err error
		switch i % 3 {
		case 0:
			err = cl.Ping(obs.SpanContext{}, "b")
		case 1:
			err = cl.Store(obs.SpanContext{}, "b", nil, false)
		default:
			_, err = cl.Retrieve(obs.SpanContext{}, "b", dht.ID(uint64(i)))
		}
		if err != nil {
			out += "x"
		} else {
			out += "."
		}
	}
	return out + " " + fmt.Sprint(c.Counters.Snapshot())
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	a, b := faultTrace(42), faultTrace(42)
	if a != b {
		t.Fatalf("same seed produced different fault sequences:\n%s\n%s", a, b)
	}
	if c := faultTrace(43); c == a {
		t.Fatalf("different seeds produced the identical 200-call fault sequence")
	}
}
