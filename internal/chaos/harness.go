package chaos

import (
	"fmt"
	"sort"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/flight"
	"mdrep/internal/identity"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
	"mdrep/internal/sim"
)

// NetworkConfig builds one chaos-wired ring.
type NetworkConfig struct {
	// Nodes is the ring size.
	Nodes int
	// SuccessorListLen is the replication depth k: records live on the
	// root plus up to k successors.
	SuccessorListLen int
	// Chaos is the fault mix.
	Chaos Config
	// Retry, when non-nil, stacks a dht.RetryClient on every node's
	// transport; its backoff sleeps advance the virtual clock.
	Retry *dht.RetryPolicy
	// Metrics, when non-nil, exports the injector's fault tallies and
	// every slot's retry/RPC metrics (restarted slots included) into the
	// registry, timed by the network's virtual clock.
	Metrics *metrics.Registry
}

// Network is a MemNet ring whose every RPC flows through the chaos
// injector (and optionally the retry layer):
//
//	node → RetryClient → Chaos(boundClient) → MemNet → remote handler
//
// It exposes the crash/restart/partition primitives the fault schedules
// script, and the invariant checks the property suite asserts.
type Network struct {
	Mem   *dht.MemNet
	Chaos *Chaos
	Clock *Clock
	// Nodes holds the current process of each slot; Restart replaces
	// the slot with a fresh node at the same address.
	Nodes []*dht.Node
	// Retries holds each slot's retry layer (nil when disabled).
	Retries []*dht.RetryClient

	cfg NetworkConfig
}

// NewNetwork builds and converges a chaos-wired ring. Chaos faults are
// active during the build too, so configs with heavy loss should pair
// with a Retry policy.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fault.Terminal(fmt.Errorf("chaos: network needs >= 2 nodes, got %d", cfg.Nodes))
	}
	if cfg.SuccessorListLen < 1 {
		cfg.SuccessorListLen = dht.DefaultNodeConfig().SuccessorListLen
	}
	nw := &Network{
		Mem:     dht.NewMemNet(),
		Clock:   NewClock(),
		Nodes:   make([]*dht.Node, cfg.Nodes),
		Retries: make([]*dht.RetryClient, cfg.Nodes),
		cfg:     cfg,
	}
	nw.Chaos = New(nw.Mem, nw.Clock, cfg.Chaos)
	nw.Chaos.Instrument(cfg.Metrics)
	for i := 0; i < cfg.Nodes; i++ {
		node, err := nw.spawn(i)
		if err != nil {
			return nil, err
		}
		nw.Nodes[i] = node
		if i > 0 {
			if err := nw.join(i); err != nil {
				return nil, err
			}
		}
	}
	nw.Converge(2*cfg.Nodes + 8)
	return nw, nil
}

// Addr returns slot i's ring address.
func (nw *Network) Addr(i int) string {
	return fmt.Sprintf("chaos://node-%03d", i)
}

// virtualClock adapts the network's virtual clock to the tracer's clock
// type, so exported latency spans measure virtual (deterministic) time.
func (nw *Network) virtualClock() obs.Clock {
	return func() time.Time { return time.Unix(0, 0).Add(nw.Clock.Now()) }
}

// spawn builds a fresh node process for slot i and registers it.
func (nw *Network) spawn(i int) (*dht.Node, error) {
	addr := nw.Addr(i)
	var client dht.Client = nw.Chaos.ClientFor(addr)
	if nw.cfg.Retry != nil {
		rc := dht.NewRetryClient(client, *nw.cfg.Retry, nw.cfg.Chaos.Seed+uint64(i))
		rc.SetSleep(nw.Clock.Advance)
		if nw.cfg.Metrics != nil {
			// All slots share the unlabelled series, so the exported
			// totals aggregate the whole ring and survive restarts.
			rc.Instrument(nw.cfg.Metrics, nw.virtualClock())
		}
		nw.Retries[i] = rc
		client = rc
	}
	ncfg := dht.NodeConfig{
		SuccessorListLen: nw.cfg.SuccessorListLen,
		Storage:          dht.NewStorage(0, nil),
	}
	node, err := dht.NewNode(addr, client, ncfg)
	if err != nil {
		return nil, err
	}
	nw.Mem.Register(addr, node)
	return node, nil
}

// join connects slot i to the ring via any live slot, trying each one.
func (nw *Network) join(i int) error {
	var lastErr error
	for b := 0; b < nw.cfg.Nodes; b++ {
		if b == i || nw.Chaos.Down(nw.Addr(b)) {
			continue
		}
		if err := nw.Nodes[i].Join(nw.Addr(b)); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fault.Unreachable(fmt.Errorf("chaos: no live bootstrap for node %d", i))
	}
	return lastErr
}

// Crash kills slot i: chaos blocks its traffic both ways and MemNet
// drops in-flight (deferred) deliveries addressed to it. A crash is a
// black-box moment — the flight recorder snapshots whatever the ring
// held when the node went down.
func (nw *Network) Crash(i int) {
	addr := nw.Addr(i)
	nw.Chaos.Crash(addr)
	nw.Mem.Fail(addr)
	flight.TriggerDump(dumpReasonCrash + addr)
}

// Restart brings slot i back as a fresh process: empty storage, no ring
// state — the hard variant of churn. It rejoins through any live node.
func (nw *Network) Restart(i int) error {
	addr := nw.Addr(i)
	nw.Chaos.Restart(addr)
	node, err := nw.spawn(i) // Register also clears the MemNet failure
	if err != nil {
		return err
	}
	nw.Nodes[i] = node
	return nw.join(i)
}

// Live reports whether slot i is currently up.
func (nw *Network) Live(i int) bool { return !nw.Chaos.Down(nw.Addr(i)) }

// LiveNodes returns the current live node processes in slot order.
func (nw *Network) LiveNodes() []*dht.Node {
	out := make([]*dht.Node, 0, len(nw.Nodes))
	for i, n := range nw.Nodes {
		if nw.Live(i) {
			out = append(out, n)
		}
	}
	return out
}

// Partition applies a node-index partition map (missing slots default
// to group 0).
func (nw *Network) Partition(groups map[int]int) {
	byAddr := make(map[string]int, len(groups))
	for i, g := range groups {
		byAddr[nw.Addr(i)] = g
	}
	nw.Chaos.SetPartition(byAddr)
}

// Apply executes one schedule event.
func (nw *Network) Apply(ev Event) error {
	switch ev.Op {
	case OpCrash:
		for _, i := range ev.Nodes {
			nw.Crash(i)
		}
	case OpRestart:
		for _, i := range ev.Nodes {
			if err := nw.Restart(i); err != nil {
				return fmt.Errorf("chaos: restart node %d: %w", i, err)
			}
		}
	case OpPartition:
		nw.Partition(ev.Groups)
	case OpHeal:
		nw.Chaos.Heal()
	default:
		return fault.Terminal(fmt.Errorf("chaos: unknown op %v", ev.Op))
	}
	return nil
}

// Converge runs stabilisation rounds across live nodes, then refreshes
// their fingers — the same recipe dht.Ring uses, restricted to nodes
// that are actually up.
func (nw *Network) Converge(rounds int) {
	for r := 0; r < rounds; r++ {
		for i, n := range nw.Nodes {
			if nw.Live(i) {
				n.Stabilize()
			}
		}
	}
	for i, n := range nw.Nodes {
		if nw.Live(i) {
			n.FixAllFingers()
		}
	}
}

// MakeRecords synthesises count deterministic unsigned records (the
// simulation storage verifies nothing) spread over distinct keys.
func MakeRecords(count int, seed uint64) []dht.StoredRecord {
	rng := sim.NewRNG(seed).DeriveStream("records")
	recs := make([]dht.StoredRecord, 0, count)
	for i := 0; i < count; i++ {
		f := eval.FileID(fmt.Sprintf("chaos-file-%04d", i))
		recs = append(recs, dht.StoredRecord{
			Key: dht.HashKey(string(f)),
			Info: eval.Info{
				FileID:     f,
				OwnerID:    identity.PeerID(fmt.Sprintf("owner-%04d", i)),
				Evaluation: rng.Float64(),
				Timestamp:  time.Duration(i+1) * time.Second,
			},
		})
	}
	return recs
}

// Publish stores the records through the first live node, re-stamping
// them at ts so replicas accept the refresh (stores merge by owner and
// keep the newest timestamp).
func (nw *Network) Publish(recs []dht.StoredRecord, ts time.Duration) error {
	live := nw.LiveNodes()
	if len(live) == 0 {
		return fault.Unreachable(fmt.Errorf("chaos: no live node to publish through"))
	}
	for _, r := range recs {
		r.Info.Timestamp = ts
		// One record per Publish call: Publish groups records by key in a
		// map, and map iteration order would make the chaos RNG draw
		// sequence — and thus the whole run — nondeterministic.
		if err := live[0].Publish([]dht.StoredRecord{r}); err != nil {
			return err
		}
	}
	return nil
}

// VerifyRecords asserts every record is retrievable — with the right
// owner and evaluation — through the given node. It is the zero-loss
// invariant of the chaos suite.
func (nw *Network) VerifyRecords(via *dht.Node, recs []dht.StoredRecord) error {
	for _, want := range recs {
		got, err := via.Retrieve(obs.SpanContext{}, want.Key)
		if err != nil {
			return fmt.Errorf("chaos: retrieve %s: %w", want.Info.FileID, err)
		}
		found := false
		for _, r := range got {
			if r.Info.OwnerID == want.Info.OwnerID && r.Info.Evaluation == want.Info.Evaluation {
				found = true
				break
			}
		}
		if !found {
			return fault.Terminal(fmt.Errorf("chaos: record %s by %s lost (%d records under key)",
				want.Info.FileID, want.Info.OwnerID, len(got)))
		}
	}
	return nil
}

// VerifyRing asserts the live nodes form one consistent cycle: sorted
// by ring ID, each live node's successor must be the next live node.
// Valid only after the network has healed and converged.
func (nw *Network) VerifyRing() error {
	type slot struct {
		idx int
		id  dht.ID
	}
	var live []slot
	for i, n := range nw.Nodes {
		if nw.Live(i) {
			live = append(live, slot{idx: i, id: n.Self().ID})
		}
	}
	if len(live) < 2 {
		return fault.Terminal(fmt.Errorf("chaos: ring check needs >= 2 live nodes"))
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for k, s := range live {
		next := live[(k+1)%len(live)]
		succ := nw.Nodes[s.idx].Successor()
		if succ.Addr != nw.Addr(next.idx) {
			return fault.Terminal(fmt.Errorf("chaos: node %d successor = %s, want node %d (%s)",
				s.idx, succ.Addr, next.idx, nw.Addr(next.idx)))
		}
	}
	return nil
}

// RunSchedule drives the network through a fault schedule round by
// round: apply the round's events, stabilise, republish the records
// (§4.1's repair mechanism — republication restores replication depth
// after churn), and check the zero-loss invariant from every live
// node's viewpoint. stabRounds controls how much stabilisation each
// round gets. The records must already be published once.
func (nw *Network) RunSchedule(s *Schedule, recs []dht.StoredRecord, stabRounds int) error {
	byRound := make(map[int][]Event)
	maxRound := 0
	for _, ev := range s.Events {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
	}
	baseTS := 1 << 20 // past every MakeRecords timestamp
	for round := 0; round <= maxRound; round++ {
		for _, ev := range byRound[round] {
			if err := nw.Apply(ev); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
		}
		nw.Converge(stabRounds)
		ts := time.Duration(baseTS+round) * time.Second
		if err := nw.Publish(recs, ts); err != nil {
			return fmt.Errorf("round %d: republish: %w", round, err)
		}
		nw.Converge(1)
		if err := nw.VerifyRecords(nw.LiveNodes()[0], recs); err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
	}
	return nil
}

// dumpReasonCrash prefixes the flight-dump reason for injected node
// crashes.
const dumpReasonCrash = "chaos: node crashed: "
