package chaos

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// churnConfig is the standard chaotic network for the property suite:
// replication depth k=3, a lossy duplicated reordered transport, and the
// retry layer backing off on a virtual clock.
func churnConfig(seed uint64, nodes int) NetworkConfig {
	rp := dht.DefaultRetryPolicy()
	return NetworkConfig{
		Nodes:            nodes,
		SuccessorListLen: 3,
		Chaos: Config{
			Seed:          seed,
			RequestLoss:   0.03,
			ReplyLoss:     0.03,
			DupRate:       0.05,
			DeferRate:     0.05,
			LatencyBase:   time.Millisecond,
			LatencyJitter: 3 * time.Millisecond,
		},
		Retry: &rp,
	}
}

const (
	initialTS   = time.Duration(1<<19) * time.Second
	quiesceTS   = time.Duration(1<<21) * time.Second
	churnNodes  = 10
	churnFiles  = 24
	churnRounds = 5
)

// quiesce turns faults off, delivers in-flight messages, and lets the
// ring settle — the "after healing" state the convergence invariants
// are defined over.
func quiesce(nw *Network) {
	nw.Chaos.SetLoss(0, 0)
	nw.Chaos.Flush()
	nw.Converge(2*len(nw.Nodes) + 4)
}

// TestChurnLosesNoRecords is the headline chaos property: with
// replication k=3, a schedule that crashes two nodes every round (state
// gone, rejoining empty next round) over a lossy reordering transport
// loses no records, and the ring re-stabilises once the churn stops —
// for every one of 50 seeds.
func TestChurnLosesNoRecords(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			t.Parallel()
			nw, err := NewNetwork(churnConfig(seed, churnNodes))
			if err != nil {
				t.Fatalf("build network: %v", err)
			}
			recs := MakeRecords(churnFiles, seed)
			if err := nw.Publish(recs, initialTS); err != nil {
				t.Fatalf("initial publish: %v", err)
			}
			nw.Converge(2)

			sched := Generate(seed, churnNodes, Profile{
				Rounds:          churnRounds,
				CrashesPerRound: 2,
				RestartAfter:    1,
				Protected:       []int{0},
			})
			if err := nw.RunSchedule(sched, recs, 4); err != nil {
				t.Fatalf("schedule %q: %v", sched.String(), err)
			}

			quiesce(nw)
			if err := nw.VerifyRing(); err != nil {
				t.Fatalf("ring did not re-stabilise: %v", err)
			}
			for i, n := range nw.Nodes {
				if !nw.Live(i) {
					continue
				}
				if err := nw.VerifyRecords(n, recs); err != nil {
					t.Fatalf("from node %d: %v", i, err)
				}
			}
		})
	}
}

// outcomeFingerprint runs one full chaotic schedule and serialises
// everything observable about the run: the schedule itself, the fault
// counters, the retry totals, the final ring shape and the virtual
// clock. Two runs of the same seed must produce identical strings.
func outcomeFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	nw, err := NewNetwork(churnConfig(seed, 8))
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	recs := MakeRecords(12, seed)
	if err := nw.Publish(recs, initialTS); err != nil {
		t.Fatalf("publish: %v", err)
	}
	sched := Generate(seed, 8, Profile{
		Rounds:          3,
		CrashesPerRound: 2,
		RestartAfter:    1,
		Protected:       []int{0},
	})
	if err := nw.RunSchedule(sched, recs, 3); err != nil {
		t.Fatalf("run schedule: %v", err)
	}
	quiesce(nw)

	var sb strings.Builder
	sb.WriteString(sched.String())
	sb.WriteString(metrics.FormatCounters(nw.Chaos.Counters.Snapshot()))
	var attempts, retries, exhausted uint64
	for _, rc := range nw.Retries {
		snap := rc.Metrics.Snapshot()
		attempts += snap["attempts"]
		retries += snap["retries"]
		exhausted += snap["exhausted"]
	}
	fmt.Fprintf(&sb, "\nretry attempts=%d retries=%d exhausted=%d", attempts, retries, exhausted)
	fmt.Fprintf(&sb, "\nclock=%d\n", nw.Clock.Now())
	for i, n := range nw.Nodes {
		fmt.Fprintf(&sb, "node %d live=%v succ=%s\n", i, nw.Live(i), n.Successor().Addr)
	}
	return sb.String()
}

// TestSameSeedByteIdenticalOutcome pins the replayability contract: one
// seed fully determines the fault schedule and its outcome.
func TestSameSeedByteIdenticalOutcome(t *testing.T) {
	a := outcomeFingerprint(t, 7)
	b := outcomeFingerprint(t, 7)
	if a != b {
		t.Fatalf("same seed, different outcomes:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	if c := outcomeFingerprint(t, 8); c == a {
		t.Fatalf("different seeds produced byte-identical outcomes")
	}
}

// TestScheduleGenerationDeterministic pins Generate itself, independent
// of any network.
func TestScheduleGenerationDeterministic(t *testing.T) {
	p := Profile{
		Rounds:          20,
		CrashesPerRound: 2,
		RestartAfter:    2,
		PartitionProb:   0.3,
		PartitionRounds: 3,
		Protected:       []int{0},
	}
	a, b := Generate(11, 12, p), Generate(11, 12, p)
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	if c := Generate(12, 12, p); c.String() == a.String() {
		t.Fatalf("different seeds produced the identical 20-round schedule")
	}
	if len(a.Events) == 0 {
		t.Fatalf("schedule generated no events")
	}
}

// sharedFile builds one file evaluated by several owners, so its
// records all live under a single DHT key.
func sharedFile() (dht.ID, []dht.StoredRecord) {
	f := eval.FileID("chaos-shared-file")
	key := dht.HashKey(string(f))
	evals := []float64{0.9, 0.8, 0.2, 0.7, 0.4}
	recs := make([]dht.StoredRecord, 0, len(evals))
	for i, e := range evals {
		recs = append(recs, dht.StoredRecord{
			Key: key,
			Info: eval.Info{
				FileID:     f,
				OwnerID:    identity.PeerID(fmt.Sprintf("owner-%d", i)),
				Evaluation: e,
				Timestamp:  time.Duration(i+1) * time.Second,
			},
		})
	}
	return key, recs
}

// judgeThroughNode retrieves the file's records via one node and
// computes R_f (Eq. 9) with all evaluators equally reputed.
func judgeThroughNode(t *testing.T, n *dht.Node, key dht.ID, ownerIdx map[identity.PeerID]int) float64 {
	t.Helper()
	got, err := n.Retrieve(obs.SpanContext{}, key)
	if err != nil {
		t.Fatalf("retrieve via %s: %v", n.Self().Addr, err)
	}
	owners := make([]core.OwnerEvaluation, 0, len(got))
	for _, r := range got {
		idx, ok := ownerIdx[r.Info.OwnerID]
		if !ok {
			t.Fatalf("retrieve via %s returned unknown owner %s", n.Self().Addr, r.Info.OwnerID)
		}
		owners = append(owners, core.OwnerEvaluation{Owner: idx, Value: r.Info.Evaluation})
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].Owner < owners[j].Owner })
	reps := make(map[int]float64, len(ownerIdx))
	for _, idx := range ownerIdx {
		reps[idx] = 1
	}
	rf, err := core.FileReputation(reps, owners)
	if err != nil {
		t.Fatalf("R_f via %s: %v", n.Self().Addr, err)
	}
	return rf
}

// TestVerdictMatchesFaultFreeRunAfterHealing asserts the reputation
// invariant: a network that suffered a partition plus crash-restart
// churn converges, after healing, to the exact R_f verdict of a network
// that never saw a fault.
func TestVerdictMatchesFaultFreeRunAfterHealing(t *testing.T) {
	clean, err := NewNetwork(NetworkConfig{Nodes: 8, SuccessorListLen: 3, Chaos: Config{Seed: 1}})
	if err != nil {
		t.Fatalf("build clean network: %v", err)
	}
	dirty, err := NewNetwork(churnConfig(99, 8))
	if err != nil {
		t.Fatalf("build chaotic network: %v", err)
	}

	key, recs := sharedFile()
	ownerIdx := make(map[identity.PeerID]int, len(recs))
	for i, r := range recs {
		ownerIdx[r.Info.OwnerID] = i
	}
	for _, nw := range []*Network{clean, dirty} {
		if err := nw.Publish(recs, initialTS); err != nil {
			t.Fatalf("publish: %v", err)
		}
		nw.Converge(2)
	}

	// Partition the chaotic network, crash a node on each side, and let
	// the halves run divergent stabilisation for a while.
	dirty.Partition(map[int]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1, 7: 1})
	dirty.Converge(4)
	dirty.Crash(2)
	dirty.Crash(6)
	dirty.Converge(4)
	if err := dirty.Restart(6); err != nil {
		// Node 6's whole group may be unreachable mid-partition; the
		// rejoin below (after healing) is the one that must succeed.
		t.Logf("mid-partition restart failed (acceptable): %v", err)
	}

	// Heal, restart the remaining crashed node, republish, settle.
	dirty.Chaos.Heal()
	if err := dirty.Restart(2); err != nil {
		t.Fatalf("restart node 2 after heal: %v", err)
	}
	if dirty.Chaos.Down(dirty.Addr(6)) {
		if err := dirty.Restart(6); err != nil {
			t.Fatalf("restart node 6 after heal: %v", err)
		}
	}
	quiesce(dirty)
	for _, nw := range []*Network{clean, dirty} {
		if err := nw.Publish(recs, quiesceTS); err != nil {
			t.Fatalf("republish: %v", err)
		}
		nw.Converge(2)
	}

	want := judgeThroughNode(t, clean.Nodes[0], key, ownerIdx)
	for i, n := range dirty.Nodes {
		if got := judgeThroughNode(t, n, key, ownerIdx); got != want {
			t.Fatalf("node %d judges R_f = %v after healing, fault-free run says %v", i, got, want)
		}
	}
}

// TestLookupSuccessVsLossRate sweeps message loss and measures lookup
// success with and without the retry layer; EXPERIMENTS.md quotes this
// table. The retry layer must never do worse than the raw client.
func TestLookupSuccessVsLossRate(t *testing.T) {
	rp := dht.DefaultRetryPolicy()
	raw, err := NewNetwork(NetworkConfig{Nodes: 8, SuccessorListLen: 3, Chaos: Config{Seed: 5}})
	if err != nil {
		t.Fatalf("build raw network: %v", err)
	}
	retried, err := NewNetwork(NetworkConfig{Nodes: 8, SuccessorListLen: 3, Chaos: Config{Seed: 5}, Retry: &rp})
	if err != nil {
		t.Fatalf("build retry network: %v", err)
	}
	recs := MakeRecords(40, 5)
	for _, nw := range []*Network{raw, retried} {
		if err := nw.Publish(recs, initialTS); err != nil {
			t.Fatalf("publish: %v", err)
		}
		nw.Converge(2)
	}

	count := func(nw *Network) int {
		ok := 0
		for i, r := range recs {
			if _, err := nw.Nodes[i%len(nw.Nodes)].Retrieve(obs.SpanContext{}, r.Key); err == nil {
				ok++
			}
		}
		return ok
	}

	t.Logf("%-10s %-12s %-12s", "loss", "raw", "with retry")
	for _, rate := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
		raw.Chaos.SetLoss(rate, rate)
		retried.Chaos.SetLoss(rate, rate)
		rawOK, retryOK := count(raw), count(retried)
		t.Logf("%-10.2f %3d/%-8d %3d/%-8d", rate, rawOK, len(recs), retryOK, len(recs))
		if retryOK < rawOK {
			t.Fatalf("loss %.2f: retry layer (%d/%d) worse than raw client (%d/%d)",
				rate, retryOK, len(recs), rawOK, len(recs))
		}
		if rate == 0 && (rawOK != len(recs) || retryOK != len(recs)) {
			t.Fatalf("lossless lookups failed: raw %d, retry %d of %d", rawOK, retryOK, len(recs))
		}
	}
}

// TestE2ECountersObservable runs a chaotic end-to-end workload and
// asserts the injected faults and the retry layer's work are all
// visible through the metrics counters.
func TestE2ECountersObservable(t *testing.T) {
	nw, err := NewNetwork(churnConfig(3, 8))
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	recs := MakeRecords(20, 3)
	if err := nw.Publish(recs, initialTS); err != nil {
		t.Fatalf("publish: %v", err)
	}
	nw.Converge(4)
	for i, r := range recs {
		if _, err := nw.Nodes[i%len(nw.Nodes)].Retrieve(obs.SpanContext{}, r.Key); err != nil {
			t.Fatalf("retrieve %d: %v", i, err)
		}
	}

	snap := nw.Chaos.Counters.Snapshot()
	for _, key := range []string{"request_drops", "reply_drops"} {
		if snap[key] == 0 {
			t.Fatalf("counter %s = 0 after lossy workload; snapshot: %v", key, snap)
		}
	}
	var attempts, retries uint64
	for _, rc := range nw.Retries {
		attempts += rc.Metrics.Attempts.Load()
		retries += rc.Metrics.Retries.Load()
	}
	if attempts == 0 || retries == 0 {
		t.Fatalf("retry metrics attempts=%d retries=%d; want both > 0", attempts, retries)
	}
	if retries >= attempts {
		t.Fatalf("retries (%d) should be a strict subset of attempts (%d)", retries, attempts)
	}
	formatted := metrics.FormatCounters(snap)
	for _, key := range []string{"request_drops", "reply_drops", "dups", "deferred"} {
		if !strings.Contains(formatted, key+"=") {
			t.Fatalf("FormatCounters output missing %s: %q", key, formatted)
		}
	}
}
