package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/flight"
	"mdrep/internal/obs"
)

// traceTestClock returns a deterministic ticking clock for EnableTracing
// so span durations never read wall time.
func traceTestClock() obs.Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func installTracing(t *testing.T, seed uint64) *flight.Recorder {
	t.Helper()
	rec := flight.NewRecorder(flight.DefaultRingSize, 64)
	flight.Install(rec)
	obs.EnableTracing(seed, traceTestClock(), 1)
	t.Cleanup(func() {
		obs.DisableTracing()
		flight.Install(nil)
	})
	return rec
}

// TestCrashEmitsFlightDump: every injected crash must leave a black box
// behind — the whole point of an always-on recorder is that the trace
// evidence survives the node that produced it.
func TestCrashEmitsFlightDump(t *testing.T) {
	rec := installTracing(t, 1)
	rp := dht.DefaultRetryPolicy()
	nw, err := NewNetwork(NetworkConfig{
		Nodes:            4,
		SuccessorListLen: 2,
		Chaos:            Config{Seed: 1},
		Retry:            &rp,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Crash(1)
	d, ok := rec.LastDump()
	if !ok {
		t.Fatal("crash did not trigger a flight dump")
	}
	if want := dumpReasonCrash + nw.Addr(1); d.Reason != want {
		t.Errorf("dump reason = %q, want %q", d.Reason, want)
	}
	if len(d.Records) == 0 {
		t.Error("crash dump captured an empty ring — build traffic should be recorded")
	}
	nw.Crash(2)
	if got := rec.Triggered(); got != 2 {
		t.Errorf("2 crashes triggered %d dumps", got)
	}
}

// chaosFingerprint runs one seeded fault schedule to completion and
// returns a byte-exact digest of everything the injector did: the
// schedule script, every delivered-fault tally, and the virtual clock.
// Tracing must not move a single byte of it.
func chaosFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	rp := dht.DefaultRetryPolicy()
	nw, err := NewNetwork(NetworkConfig{
		Nodes:            6,
		SuccessorListLen: 3,
		Chaos: Config{
			Seed:        seed,
			RequestLoss: 0.02,
			ReplyLoss:   0.02,
			LatencyBase: time.Millisecond,
		},
		Retry: &rp,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := Generate(seed, 6, Profile{
		Rounds:          4,
		CrashesPerRound: 1,
		RestartAfter:    1,
		Protected:       []int{0},
	})
	recs := MakeRecords(8, seed)
	if err := nw.RunSchedule(sched, recs, 8); err != nil {
		t.Fatalf("schedule seed %d: %v", seed, err)
	}
	var b strings.Builder
	b.WriteString(sched.String())
	for name, v := range nw.Chaos.Counters.Snapshot() {
		fmt.Fprintf(&b, "%s=%d\n", name, v)
	}
	fmt.Fprintf(&b, "clock=%d\n", nw.Clock.Now())
	return b.String()
}

// scheduleCrashCount counts the crash targets a schedule injects.
func scheduleCrashCount(seed uint64) int {
	sched := Generate(seed, 6, Profile{
		Rounds:          4,
		CrashesPerRound: 1,
		RestartAfter:    1,
		Protected:       []int{0},
	})
	n := 0
	for _, ev := range sched.Events {
		if ev.Op == OpCrash {
			n += len(ev.Nodes)
		}
	}
	return n
}

// TestScheduleByteIdenticalWithTracing is the determinism acceptance
// check: running the same seeded fault schedule with tracing off and
// with tracing fully on (sample-everything, recorder installed) must
// produce the identical injector history — tracing consumes no shared
// randomness and advances no virtual time — and the traced run must
// emit one black-box dump per injected crash.
func TestScheduleByteIdenticalWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules are long")
	}
	// Snapshot iteration order of the counters map doesn't matter for
	// equality of the digest only if it is deterministic; sort instead.
	for seed := uint64(0); seed < 5; seed++ {
		plain := chaosFingerprint(t, seed)
		rec := flight.NewRecorder(flight.DefaultRingSize, 64)
		flight.Install(rec)
		obs.EnableTracing(seed+100, traceTestClock(), 1)
		traced := chaosFingerprint(t, seed)
		obs.DisableTracing()
		flight.Install(nil)
		if sortLines(plain) != sortLines(traced) {
			t.Fatalf("seed %d: tracing changed the chaos schedule:\nplain:\n%s\ntraced:\n%s", seed, plain, traced)
		}
		crashes := scheduleCrashCount(seed)
		dumped := 0
		for _, d := range rec.Dumps() {
			if strings.HasPrefix(d.Reason, dumpReasonCrash) {
				dumped++
			}
		}
		if int(rec.Triggered()) < crashes {
			t.Errorf("seed %d: %d crashes injected but only %d dumps triggered", seed, crashes, rec.Triggered())
		}
		if dumped == 0 && crashes > 0 {
			t.Errorf("seed %d: no retained dump carries the crash reason", seed)
		}
	}
}

// sortLines canonicalises a digest whose map-derived lines may arrive in
// any order.
func sortLines(s string) string {
	lines := strings.Split(s, "\n")
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			if lines[j] < lines[i] {
				lines[i], lines[j] = lines[j], lines[i]
			}
		}
	}
	return strings.Join(lines, "\n")
}
