package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomRows(n int, seed int64) []map[int]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]map[int]float64, n)
	for i := range rows {
		if rng.Intn(5) == 0 {
			continue // leave some rows nil
		}
		rows[i] = make(map[int]float64)
		for c := rng.Intn(8); c > 0; c-- {
			rows[i][rng.Intn(n)] = rng.Float64()
		}
	}
	return rows
}

// TestMergeMatchesFreeze is the bit-identity half of the shard-count
// invariance argument at the sparse layer: freezing each shard's rows
// separately and merging must reproduce FreezeNormalized byte for byte,
// for any partition.
func TestMergeMatchesFreeze(t *testing.T) {
	const n = 67
	rows := randomRows(n, 1)
	want := FreezeNormalized(n, rows)
	for _, k := range []int{1, 2, 3, 8} {
		ids, err := PartitionRows(n, k, func(row int) int { return (row * 2654435761) % k })
		if err != nil {
			t.Fatal(err)
		}
		sets := make([]*RowSet, k)
		for s := range sets {
			sets[s] = FreezeNormalizedRows(n, ids[s], rows)
		}
		got, err := MergeRowSets(n, sets)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.rowPtr, want.rowPtr) ||
			!reflect.DeepEqual(got.cols, want.cols) ||
			!reflect.DeepEqual(got.vals, want.vals) {
			t.Fatalf("k=%d: merged CSR differs from direct freeze", k)
		}
	}
}

func TestMergeRejectsOverlapAndMismatch(t *testing.T) {
	rows := randomRows(8, 2)
	a := FreezeNormalizedRows(8, []int{0, 1, 2}, rows)
	b := FreezeNormalizedRows(8, []int{2, 3}, rows)
	if _, err := MergeRowSets(8, []*RowSet{a, b}); err == nil {
		t.Fatal("overlapping row sets merged without error")
	}
	c := FreezeNormalizedRows(9, []int{3}, randomRows(9, 3))
	if _, err := MergeRowSets(8, []*RowSet{a, c}); err == nil {
		t.Fatal("dimension mismatch merged without error")
	}
}

func TestMergeLeavesUnownedRowsEmpty(t *testing.T) {
	rows := randomRows(10, 4)
	set := FreezeNormalizedRows(10, []int{1, 4}, rows)
	got, err := MergeRowSets(10, []*RowSet{set})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if i == 1 || i == 4 {
			continue
		}
		if got.RowNNZ(i) != 0 {
			t.Fatalf("unowned row %d has %d entries", i, got.RowNNZ(i))
		}
	}
}

func TestPartitionRowsValidation(t *testing.T) {
	if _, err := PartitionRows(4, 0, func(int) int { return 0 }); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := PartitionRows(4, 2, func(int) int { return 5 }); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
