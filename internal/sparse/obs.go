package sparse

import (
	"sync/atomic"

	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// Kernel instrumentation. The kernels are package-level functions with
// no construction point to thread an observer through, so the observer
// is an atomically installed package singleton: Instrument publishes it,
// uninstrumented processes pay one atomic pointer load and a nil check
// per kernel call (not per row). Counters accumulate per row block and
// are flushed once per block, keeping the inner FMA loops untouched —
// instrumentation must not move the BuildTM benchmarks.
type kernelObs struct {
	tracer *obs.Tracer
	freeze *metrics.Histogram // FreezeNormalized wall time
	mul    *metrics.Histogram // one CSR·CSR product
	step   *metrics.Histogram // one RowVecPow power-iteration step
	rows   *metrics.Counter   // output rows computed across kernels
	nnz    *metrics.Counter   // nonzero products processed
}

var kobs atomic.Pointer[kernelObs]

// Instrument publishes kernel metrics into reg, timed by clock. Passing
// a nil registry (or Uninstrument) turns instrumentation back off.
func Instrument(reg *metrics.Registry, clock obs.Clock) {
	if reg == nil {
		kobs.Store(nil)
		return
	}
	kobs.Store(&kernelObs{
		tracer: obs.NewTracer(clock),
		freeze: reg.Histogram("sparse_freeze_seconds", metrics.DurationBuckets),
		mul:    reg.Histogram("sparse_mul_seconds", metrics.DurationBuckets),
		step:   reg.Histogram("sparse_rowvecpow_step_seconds", metrics.DurationBuckets),
		rows:   reg.Counter("sparse_rows_total"),
		nnz:    reg.Counter("sparse_nnz_total"),
	})
}

// Uninstrument disables kernel instrumentation.
func Uninstrument() { kobs.Store(nil) }

// The span helpers are nil-safe: a nil observer yields an inert span.
func (k *kernelObs) spanFreeze() obs.Span {
	if k == nil {
		return obs.Span{}
	}
	return k.tracer.Start(k.freeze)
}

func (k *kernelObs) spanMul() obs.Span {
	if k == nil {
		return obs.Span{}
	}
	return k.tracer.Start(k.mul)
}

func (k *kernelObs) spanStep() obs.Span {
	if k == nil {
		return obs.Span{}
	}
	return k.tracer.Start(k.step)
}

// addWork flushes one block's row/nnz tallies.
func (k *kernelObs) addWork(rows, nnz uint64) {
	if k == nil {
		return
	}
	k.rows.Add(rows)
	k.nnz.Add(nnz)
}
