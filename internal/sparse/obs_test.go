package sparse

import (
	"testing"
	"time"

	"mdrep/internal/metrics"
)

func TestKernelInstrumentation(t *testing.T) {
	reg := metrics.NewRegistry()
	now := time.Unix(0, 0)
	Instrument(reg, func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	})
	defer Uninstrument()

	rows := []map[int]float64{
		{0: 1, 1: 1},
		{0: 2},
	}
	c := FreezeNormalized(2, rows)
	if _, err := c.Mul(c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RowVecPow(0, 3); err != nil {
		t.Fatal(err)
	}

	freeze := reg.Histogram("sparse_freeze_seconds", metrics.DurationBuckets)
	mul := reg.Histogram("sparse_mul_seconds", metrics.DurationBuckets)
	step := reg.Histogram("sparse_rowvecpow_step_seconds", metrics.DurationBuckets)
	if freeze.Count() != 1 {
		t.Errorf("freeze spans = %d, want 1", freeze.Count())
	}
	if mul.Count() != 1 {
		t.Errorf("mul spans = %d, want 1", mul.Count())
	}
	if step.Count() != 2 { // k=3 runs 2 iteration steps
		t.Errorf("rowvecpow step spans = %d, want 2", step.Count())
	}
	if got := reg.Counter("sparse_rows_total").Load(); got == 0 {
		t.Error("sparse_rows_total stayed zero")
	}
	if got := reg.Counter("sparse_nnz_total").Load(); got == 0 {
		t.Error("sparse_nnz_total stayed zero")
	}
}

// Instrumentation must not change kernel results: the frozen product is
// bit-identical with and without an installed observer.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	rows := []map[int]float64{
		{0: 0.3, 2: 0.7},
		{1: 1.5},
		{0: 0.25, 1: 0.25, 2: 0.5},
	}
	plain := FreezeNormalized(3, rows)
	p1, err := plain.Pow(4)
	if err != nil {
		t.Fatal(err)
	}

	Instrument(metrics.NewRegistry(), func() time.Time { return time.Unix(0, 0) })
	defer Uninstrument()
	instrumented := FreezeNormalized(3, rows)
	p2, err := instrumented.Pow(4)
	if err != nil {
		t.Fatal(err)
	}

	e1, e2 := p1.Entries(), p2.Entries()
	if len(e1) != len(e2) {
		t.Fatalf("entry counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}
