package sparse

import (
	"fmt"
	"sort"
)

// RowSet is a frozen, normalized subset of an n×n matrix's rows — the
// unit a trust-engine shard freezes independently before the shard
// pieces are merged into one global CSR. Rows listed in ids are stored
// back to back in CSR layout; every other row of the eventual matrix is
// empty as far as this set is concerned.
//
// The per-row math of FreezeNormalizedRows is identical to
// FreezeNormalized (same sorted-column order, same ascending-index sum,
// same division), so merging the row sets of any K-way partition of
// [0, n) yields a CSR byte-identical to freezing all rows at once —
// the bit-identity half of the shard-count invariance argument.
type RowSet struct {
	n      int
	ids    []int32 // owned row indices, ascending
	rowPtr []int32 // len(ids)+1, offsets into cols/vals
	cols   []int32
	vals   []float64
}

// N returns the dimension of the matrix the set belongs to.
func (r *RowSet) N() int { return r.n }

// Rows returns the number of owned rows (including empty ones).
func (r *RowSet) Rows() int { return len(r.ids) }

// NNZ returns the number of stored entries.
func (r *RowSet) NNZ() int { return len(r.cols) }

// FreezeNormalizedRows freezes and row-normalizes only the rows named by
// ids. rows is indexed by global row id (entries outside ids are
// ignored; a nil map is an empty row). ids must be ascending and unique;
// the caller (the shard, which owns a fixed peer subset) guarantees it.
func FreezeNormalizedRows(n int, ids []int, rows []map[int]float64) *RowSet {
	r := &RowSet{
		n:      n,
		ids:    make([]int32, len(ids)),
		rowPtr: make([]int32, len(ids)+1),
	}
	type rowPlan struct {
		cols []int
		sum  float64
	}
	plans := make([]rowPlan, len(ids))
	nnz := 0
	for k, i := range ids {
		r.ids[k] = int32(i)
		if i < 0 || i >= n || i >= len(rows) {
			continue
		}
		row := rows[i]
		if len(row) == 0 {
			continue
		}
		cols := sortedCols(row)
		sum := 0.0
		for _, j := range cols {
			sum += row[j]
		}
		if sum <= 0 {
			continue
		}
		plans[k] = rowPlan{cols: cols, sum: sum}
		nnz += len(cols)
	}
	r.cols = make([]int32, nnz)
	r.vals = make([]float64, nnz)
	for k := range ids {
		r.rowPtr[k+1] = r.rowPtr[k] + int32(len(plans[k].cols))
	}
	parallelRowBlocks(len(ids), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			p := plans[k]
			if len(p.cols) == 0 {
				continue
			}
			row := rows[ids[k]]
			base := int(r.rowPtr[k])
			for c, j := range p.cols {
				r.cols[base+c] = int32(j)
				r.vals[base+c] = row[j] / p.sum
			}
		}
	})
	return r
}

// MergeRowSets assembles shard-frozen row sets into one n×n CSR. The
// sets must share the dimension n and own pairwise-disjoint row ids;
// rows owned by no set are empty. Each stored row is copied verbatim
// (no re-normalization), so the merge is a pure permutation-free
// concatenation and the result is independent of the order sets are
// passed in.
func MergeRowSets(n int, sets []*RowSet) (*CSR, error) {
	type piece struct {
		set *RowSet
		k   int // index within set
	}
	owner := make([]piece, n)
	for i := range owner {
		owner[i].k = -1
	}
	nnz := 0
	for _, s := range sets {
		if s == nil {
			continue
		}
		if s.n != n {
			return nil, fmt.Errorf("sparse: merging row set of dimension %d into %d", s.n, n)
		}
		for k, id := range s.ids {
			if owner[id].k >= 0 {
				return nil, fmt.Errorf("sparse: row %d owned by two row sets", id)
			}
			owner[id] = piece{set: s, k: k}
			nnz += int(s.rowPtr[k+1] - s.rowPtr[k])
		}
	}
	c := &CSR{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, nnz),
		vals:   make([]float64, nnz),
	}
	for i := 0; i < n; i++ {
		p := owner[i]
		c.rowPtr[i+1] = c.rowPtr[i]
		if p.k < 0 {
			continue
		}
		lo, hi := p.set.rowPtr[p.k], p.set.rowPtr[p.k+1]
		c.rowPtr[i+1] += hi - lo
		base := c.rowPtr[i]
		copy(c.cols[base:], p.set.cols[lo:hi])
		copy(c.vals[base:], p.set.vals[lo:hi])
	}
	return c, nil
}

// PartitionRows splits [0, n) into the ascending id lists owned by each
// of k shards under the owner function (typically the consistent-hash
// router of core.Sharded). It is a convenience for building the ids
// argument of FreezeNormalizedRows.
func PartitionRows(n, k int, owner func(row int) int) ([][]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sparse: %d shards", k)
	}
	out := make([][]int, k)
	for i := 0; i < n; i++ {
		s := owner(i)
		if s < 0 || s >= k {
			return nil, fmt.Errorf("sparse: row %d routed to shard %d of %d", i, s, k)
		}
		out[s] = append(out[s], i)
	}
	for s := range out {
		if !sort.IntsAreSorted(out[s]) {
			sort.Ints(out[s])
		}
	}
	return out, nil
}
