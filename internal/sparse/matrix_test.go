package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"mdrep/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSetGet(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 2.5)
	m.Set(2, 2, -1)
	if got := m.Get(0, 1); got != 2.5 {
		t.Fatalf("Get(0,1) = %v", got)
	}
	if got := m.Get(2, 2); got != -1 {
		t.Fatalf("Get(2,2) = %v", got)
	}
	if got := m.Get(1, 1); got != 0 {
		t.Fatalf("Get(1,1) = %v, want 0", got)
	}
}

func TestSetZeroRemovesEntry(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	m.Set(0, 0, 0)
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d after zeroing", m.NNZ())
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	m := New(2)
	m.Set(-1, 0, 1)
	m.Set(0, 5, 1)
	m.Set(5, 0, 1)
	if m.NNZ() != 0 {
		t.Fatal("out-of-range Set stored an entry")
	}
	if m.Get(-1, 0) != 0 || m.Get(0, 9) != 0 {
		t.Fatal("out-of-range Get non-zero")
	}
}

func TestAddAccumulates(t *testing.T) {
	m := New(2)
	m.Add(1, 0, 1.5)
	m.Add(1, 0, 2.5)
	if got := m.Get(1, 0); got != 4 {
		t.Fatalf("Add accumulated to %v, want 4", got)
	}
}

func TestRowNormalize(t *testing.T) {
	m := New(3)
	m.Set(0, 0, 2)
	m.Set(0, 1, 6)
	m.Set(1, 2, 5)
	m.RowNormalize()
	if !almostEqual(m.Get(0, 0), 0.25) || !almostEqual(m.Get(0, 1), 0.75) {
		t.Fatalf("row 0 normalised to %v, %v", m.Get(0, 0), m.Get(0, 1))
	}
	if !almostEqual(m.Get(1, 2), 1) {
		t.Fatalf("row 1 normalised to %v", m.Get(1, 2))
	}
	if m.MaxRowSumDelta() > 1e-9 {
		t.Fatalf("MaxRowSumDelta = %v after normalise", m.MaxRowSumDelta())
	}
}

func TestRowNormalizeClearsNonPositiveRows(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, -1)
	m.RowNormalize()
	if len(m.Row(0)) != 0 {
		t.Fatal("non-positive row not cleared")
	}
}

func TestAddScaled(t *testing.T) {
	a := New(2)
	a.Set(0, 0, 1)
	b := New(2)
	b.Set(0, 0, 2)
	b.Set(1, 1, 4)
	if err := a.AddScaled(0.5, b); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Get(0, 0), 2) || !almostEqual(a.Get(1, 1), 2) {
		t.Fatalf("AddScaled result: %v, %v", a.Get(0, 0), a.Get(1, 1))
	}
}

func TestAddScaledDimensionMismatch(t *testing.T) {
	a := New(2)
	b := New(3)
	if err := a.AddScaled(1, b); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
	if err := a.AddScaled(1, nil); err == nil {
		t.Fatal("nil matrix not detected")
	}
}

func TestConvexCombinationPreservesStochasticity(t *testing.T) {
	// alpha*FM + beta*DM + gamma*UM with alpha+beta+gamma=1 must be
	// row-stochastic when all three share the same non-empty row support.
	rng := sim.NewRNG(42)
	n := 20
	mk := func() *Matrix {
		m := New(n)
		for i := 0; i < n; i++ {
			for k := 0; k < 5; k++ {
				m.Set(i, rng.Intn(n), rng.Float64()+0.01)
			}
		}
		return m.RowNormalize()
	}
	fm, dm, um := mk(), mk(), mk()
	tm := New(n)
	if err := tm.AddScaled(0.5, fm); err != nil {
		t.Fatal(err)
	}
	if err := tm.AddScaled(0.3, dm); err != nil {
		t.Fatal(err)
	}
	if err := tm.AddScaled(0.2, um); err != nil {
		t.Fatal(err)
	}
	if d := tm.MaxRowSumDelta(); d > 1e-9 {
		t.Fatalf("convex combination not row-stochastic: delta %v", d)
	}
}

func TestMulVec(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	y, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y[0], 3) || !almostEqual(y[1], 3) {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestVecMul(t *testing.T) {
	m := New(2)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	y, err := m.VecMul([]float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(y[0], 30) || !almostEqual(y[1], 2) {
		t.Fatalf("VecMul = %v", y)
	}
	if _, err := m.VecMul(nil); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestMulMatchesDense(t *testing.T) {
	rng := sim.NewRNG(7)
	n := 8
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				a.Set(i, j, rng.Float64())
			}
			if rng.Float64() < 0.4 {
				b.Set(i, j, rng.Float64())
			}
		}
	}
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.Dense(), b.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += da[i][k] * db[k][j]
			}
			if !almostEqual(c.Get(i, j), want) {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.Get(i, j), want)
			}
		}
	}
}

func TestMulErrors(t *testing.T) {
	a := New(2)
	if _, err := a.Mul(nil); err == nil {
		t.Fatal("nil operand not detected")
	}
	if _, err := a.Mul(New(3)); err == nil {
		t.Fatal("dimension mismatch not detected")
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	rng := sim.NewRNG(9)
	n := 6
	m := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				m.Set(i, j, rng.Float64())
			}
		}
	}
	m.RowNormalize()
	want := m.Clone()
	for k := 1; k <= 5; k++ {
		got, err := m.Pow(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got.Get(i, j)-want.Get(i, j)) > 1e-9 {
					t.Fatalf("Pow(%d) mismatch at (%d,%d): %v vs %v",
						k, i, j, got.Get(i, j), want.Get(i, j))
				}
			}
		}
		var err2 error
		want, err2 = want.Mul(m)
		if err2 != nil {
			t.Fatal(err2)
		}
	}
}

func TestPowRejectsBadExponent(t *testing.T) {
	if _, err := New(2).Pow(0); err == nil {
		t.Fatal("Pow(0) succeeded")
	}
}

func TestStochasticPowerStaysStochastic(t *testing.T) {
	// TM row-stochastic with fully supported rows implies TM^n
	// row-stochastic: reputations remain a probability distribution over
	// peers at every multi-trust depth.
	rng := sim.NewRNG(21)
	n := 12
	m := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			m.Set(i, rng.Intn(n), rng.Float64()+0.05)
		}
	}
	m.RowNormalize()
	// Ensure full support: every column reachable (add a weak uniform row
	// for row 0 to avoid dangling columns breaking the invariant check).
	p, err := m.Pow(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if len(p.Row(i)) == 0 {
			continue
		}
		if math.Abs(p.RowSum(i)-1) > 1e-9 {
			t.Fatalf("row %d of TM^4 sums to %v", i, p.RowSum(i))
		}
	}
}

func TestRowVecPowMatchesPow(t *testing.T) {
	rng := sim.NewRNG(23)
	n := 10
	m := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			m.Set(i, rng.Intn(n), rng.Float64())
		}
	}
	m.RowNormalize()
	for _, k := range []int{1, 2, 3, 4} {
		full, err := m.Pow(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			row, err := m.RowVecPow(i, k)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < n; j++ {
				if math.Abs(row[j]-full.Get(i, j)) > 1e-9 {
					t.Fatalf("RowVecPow(%d,%d)[%d] = %v, want %v",
						i, k, j, row[j], full.Get(i, j))
				}
			}
		}
	}
}

func TestRowVecPowErrors(t *testing.T) {
	m := New(3)
	if _, err := m.RowVecPow(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := m.RowVecPow(5, 1); err == nil {
		t.Fatal("row out of range accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.Get(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowCopyIsSafe(t *testing.T) {
	m := New(2)
	m.Set(0, 1, 3)
	row := m.RowCopy(0)
	row[1] = 99
	if m.Get(0, 1) != 3 {
		t.Fatal("RowCopy shares storage")
	}
}

func TestCSRRowCopyIsOwned(t *testing.T) {
	c := FreezeNormalized(3, []map[int]float64{{1: 1, 2: 3}, nil, {0: 2}})
	cols, vals := c.RowCopy(0)
	wantCols, wantVals := c.Row(0)
	if len(cols) != len(wantCols) || len(vals) != len(wantVals) {
		t.Fatalf("RowCopy shape (%d, %d) != Row shape (%d, %d)", len(cols), len(vals), len(wantCols), len(wantVals))
	}
	for k := range cols {
		if cols[k] != wantCols[k] || vals[k] != wantVals[k] {
			t.Fatalf("RowCopy diverges from Row at %d", k)
		}
	}
	cols[0], vals[0] = 99, 99
	if gotCols, gotVals := c.Row(0); gotCols[0] == 99 || gotVals[0] == 99 {
		t.Fatal("RowCopy shares storage with the matrix")
	}
	if cols, vals := c.RowCopy(1); cols != nil || vals != nil {
		t.Fatalf("empty row copy = (%v, %v), want (nil, nil)", cols, vals)
	}
	if cols, vals := c.RowCopy(-1); cols != nil || vals != nil {
		t.Fatalf("out-of-range copy = (%v, %v), want (nil, nil)", cols, vals)
	}
}

func TestScale(t *testing.T) {
	m := New(2)
	m.Set(0, 1, 4)
	m.Scale(0.25)
	if !almostEqual(m.Get(0, 1), 1) {
		t.Fatalf("Scale result %v", m.Get(0, 1))
	}
	m.Scale(0)
	if m.NNZ() != 0 {
		t.Fatal("Scale(0) left entries")
	}
}

func TestEntriesSorted(t *testing.T) {
	m := New(3)
	m.Set(2, 0, 1)
	m.Set(0, 2, 2)
	m.Set(0, 1, 3)
	e := m.Entries()
	if len(e) != 3 {
		t.Fatalf("Entries len %d", len(e))
	}
	if e[0] != (Entry{0, 1, 3}) || e[1] != (Entry{0, 2, 2}) || e[2] != (Entry{2, 0, 1}) {
		t.Fatalf("Entries order: %+v", e)
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	rng := sim.NewRNG(31)
	f := func(seed uint16) bool {
		r := rng.DeriveStream(string(rune(seed)))
		n := 5 + r.Intn(10)
		m := New(n)
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				m.Set(i, r.Intn(n), r.Float64())
			}
		}
		m.RowNormalize()
		before := m.Entries()
		m.RowNormalize()
		after := m.Entries()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i].Row != after[i].Row || before[i].Col != after[i].Col {
				return false
			}
			if math.Abs(before[i].Val-after[i].Val) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
