package sparse

import (
	"math/rand"
	"testing"
)

// The CSR kernels promise bit-identical results to the map-backed
// reference implementation — not approximately equal: journal replay
// (internal/journal) rebuilds matrices through whichever path the engine
// uses and must reproduce the pre-crash state exactly. These tests build
// random matrices and compare entry-for-entry with ==.

// randomMatrix builds an n×n matrix with ~fill entries per row.
func randomMatrix(rng *rand.Rand, n, fill int) *Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < fill; k++ {
			m.Set(i, rng.Intn(n), rng.Float64())
		}
	}
	return m
}

// mustEqualEntries fails unless the two entry lists are identical,
// including bit-identical float values.
func mustEqualEntries(t *testing.T, label string, want, got []Entry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, k, got[k], want[k])
		}
	}
}

func TestFreezeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		m := randomMatrix(rng, n, 1+rng.Intn(8))
		c := m.Freeze()
		mustEqualEntries(t, "freeze", m.Entries(), c.Entries())
		mustEqualEntries(t, "thaw", m.Entries(), c.Thaw().Entries())
		if c.NNZ() != m.NNZ() {
			t.Fatalf("NNZ %d, want %d", c.NNZ(), m.NNZ())
		}
		for i := -1; i <= n; i++ {
			for j := -1; j <= n; j++ {
				if got, want := c.Get(i, j), m.Get(i, j); got != want {
					t.Fatalf("Get(%d,%d) = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestCSRRowNormalizeMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		m := randomMatrix(rng, n, 1+rng.Intn(6))
		// Mix in rows that normalise away: all-negative sums must clear.
		if n > 2 {
			m.Set(0, 1, -1)
			m.Set(0, 2, -2)
		}
		fromCSR := m.Freeze().RowNormalize()
		ref := m.Clone().RowNormalize()
		mustEqualEntries(t, "RowNormalize", ref.Entries(), fromCSR.Entries())
	}
}

func TestFreezeNormalizedMatchesMapNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		m := randomMatrix(rng, n, 1+rng.Intn(6))
		rows := make([]map[int]float64, n)
		for i := 0; i < n; i++ {
			rows[i] = m.RowCopy(i)
		}
		got := FreezeNormalized(n, rows)
		ref := m.Clone().RowNormalize()
		mustEqualEntries(t, "FreezeNormalized", ref.Entries(), got.Entries())
	}
}

func TestWeightedSumMatchesAddScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		a := randomMatrix(rng, n, 2).RowNormalize()
		b := randomMatrix(rng, n, 2).RowNormalize()
		c := randomMatrix(rng, n, 2).RowNormalize()
		weights := [3]float64{rng.Float64(), rng.Float64(), 0.2}
		if trial%3 == 0 {
			weights[1] = 0 // zero-weight terms must be skipped entirely
		}
		ref := New(n)
		for k, m := range []*Matrix{a, b, c} {
			if err := ref.AddScaled(weights[k], m); err != nil {
				t.Fatal(err)
			}
		}
		got, err := WeightedSum(n, []Weighted{
			{weights[0], a.Freeze()},
			{weights[1], b.Freeze()},
			{weights[2], c.Freeze()},
		})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualEntries(t, "WeightedSum", ref.Entries(), got.Entries())
	}
}

func TestCSRMulMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(60)
		a := randomMatrix(rng, n, 1+rng.Intn(5))
		b := randomMatrix(rng, n, 1+rng.Intn(5))
		ref, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Freeze().Mul(b.Freeze())
		if err != nil {
			t.Fatal(err)
		}
		mustEqualEntries(t, "Mul", ref.Entries(), got.Entries())
	}
}

func TestCSRPowMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(30)
		m := randomMatrix(rng, n, 1+rng.Intn(4)).RowNormalize()
		c := m.Freeze()
		for k := 1; k <= 6; k++ {
			ref, err := m.Pow(k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Pow(k)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualEntries(t, "Pow", ref.Entries(), got.Entries())
		}
	}
}

func TestCSRRowVecPowMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(30)
		m := randomMatrix(rng, n, 1+rng.Intn(4)).RowNormalize()
		c := m.Freeze()
		for k := 1; k <= 4; k++ {
			for i := 0; i < n; i += 1 + n/7 {
				ref, err := m.RowVecPow(i, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.RowVecPow(i, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(ref) != len(got) {
					t.Fatalf("RowVecPow(%d,%d): %d entries, want %d", i, k, len(got), len(ref))
				}
				for j, v := range ref {
					if got[j] != v {
						t.Fatalf("RowVecPow(%d,%d)[%d] = %v, want %v", i, k, j, got[j], v)
					}
				}
			}
		}
	}
}

// TestCSRMulLargeParallel forces the worker pool past the inline-run
// threshold so the parallel path itself is exercised against the
// sequential reference.
func TestCSRMulLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 700 // > rowBlock, several blocks per worker
	a := randomMatrix(rng, n, 6)
	b := randomMatrix(rng, n, 6)
	ref, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Freeze().Mul(b.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	mustEqualEntries(t, "parallel Mul", ref.Entries(), got.Entries())
}

func TestCSRMulVecMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	m := randomMatrix(rng, n, 4)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	ref, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Freeze().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	// Matrix.MulVec accumulates in map-iteration order, so it is only
	// reproducible up to rounding; the CSR path (ascending columns) is the
	// deterministic one. Compare within float tolerance.
	for i := range ref {
		if d := ref[i] - got[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], ref[i])
		}
	}
}

func TestCSRErrors(t *testing.T) {
	c := New(2).Freeze()
	other := New(3).Freeze()
	if _, err := c.Mul(other); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := c.Mul(nil); err == nil {
		t.Fatal("nil operand accepted")
	}
	if _, err := c.Pow(0); err == nil {
		t.Fatal("Pow(0) accepted")
	}
	if _, err := c.RowVecPow(0, 0); err == nil {
		t.Fatal("RowVecPow k=0 accepted")
	}
	if _, err := c.RowVecPow(5, 1); err == nil {
		t.Fatal("RowVecPow out-of-range row accepted")
	}
	if _, err := c.MulVec(make([]float64, 3)); err == nil {
		t.Fatal("MulVec length mismatch accepted")
	}
	if _, err := WeightedSum(2, []Weighted{{1, other}}); err == nil {
		t.Fatal("WeightedSum dimension mismatch accepted")
	}
	if _, err := WeightedSum(2, []Weighted{{1, nil}}); err == nil {
		t.Fatal("WeightedSum nil matrix accepted")
	}
}

func TestMatrixForEachRow(t *testing.T) {
	m := New(3)
	m.Set(1, 2, 0.5)
	m.Set(1, 0, 0.25)
	var cols []int
	var vals []float64
	m.ForEachRow(1, func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 0.25 || vals[1] != 0.5 {
		t.Fatalf("ForEachRow order/values wrong: %v %v", cols, vals)
	}
	if m.RowNNZ(1) != 2 || m.RowNNZ(0) != 0 {
		t.Fatal("RowNNZ wrong")
	}
}
