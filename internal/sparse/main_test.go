package sparse

import (
	"testing"

	"mdrep/internal/testutil"
)

// TestMain enforces the goroutine-leak check over the package tests:
// the parallel row-block kernels fan out worker goroutines and must
// join all of them before returning.
func TestMain(m *testing.M) {
	testutil.RunMain(m)
}
