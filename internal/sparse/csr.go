package sparse

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// CSR is an immutable n×n sparse matrix in compressed-sparse-row form:
// row i's entries live at positions [rowPtr[i], rowPtr[i+1]) of the
// parallel cols/vals arrays, with columns in ascending order. The
// map-backed Matrix is the mutable builder; freezing it into a CSR gives
// the trust algebra a compact, cache-friendly, safely shareable form —
// readers may use a CSR concurrently without synchronisation, which is
// what core.Concurrent's shared read path relies on.
//
// All CSR kernels are bit-identical to their Matrix counterparts: per
// output entry, floating-point contributions accumulate in the same
// ascending-index order the map implementation uses (via sortedCols), and
// the row-block worker pool assigns each output row to exactly one
// worker, so results do not depend on GOMAXPROCS or scheduling. Journal
// replay (internal/journal) depends on this: a recovered engine must
// rebuild bit-identical matrices.
type CSR struct {
	n      int
	rowPtr []int32
	cols   []int32
	vals   []float64
}

// Freeze converts the builder matrix into its immutable CSR form. The
// builder is unchanged.
func (m *Matrix) Freeze() *CSR {
	c := &CSR{n: m.n, rowPtr: make([]int32, m.n+1)}
	nnz := m.NNZ()
	c.cols = make([]int32, 0, nnz)
	c.vals = make([]float64, 0, nnz)
	for i, row := range m.rows {
		for _, j := range sortedCols(row) {
			c.cols = append(c.cols, int32(j))
			c.vals = append(c.vals, row[j])
		}
		c.rowPtr[i+1] = int32(len(c.cols))
	}
	return c
}

// FreezeNormalized freezes raw rows directly into a row-normalised CSR:
// each non-empty row is divided by its sum (computed in ascending column
// order, exactly as Matrix.RowNormalize does), and rows whose sum is zero
// or negative are cleared. rows may be shorter than n; missing and nil
// rows freeze to empty rows. This is the one-step bridge from the
// engine's patched raw dimension rows to the frozen form Eq. (3), (5) and
// (6) need.
func FreezeNormalized(n int, rows []map[int]float64) *CSR {
	ko := kobs.Load()
	defer ko.spanFreeze().End()
	type rowPlan struct {
		cols []int
		sum  float64
	}
	plans := make([]rowPlan, n)
	nnz := 0
	for i := 0; i < n && i < len(rows); i++ {
		row := rows[i]
		if len(row) == 0 {
			continue
		}
		cols := sortedCols(row)
		sum := 0.0
		for _, j := range cols {
			sum += row[j]
		}
		if sum <= 0 {
			continue
		}
		plans[i] = rowPlan{cols: cols, sum: sum}
		nnz += len(cols)
	}
	c := &CSR{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, nnz),
		vals:   make([]float64, nnz),
	}
	for i := 0; i < n; i++ {
		c.rowPtr[i+1] = c.rowPtr[i] + int32(len(plans[i].cols))
	}
	parallelRowBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := plans[i]
			if len(p.cols) == 0 {
				continue
			}
			base := int(c.rowPtr[i])
			row := rows[i]
			for k, j := range p.cols {
				c.cols[base+k] = int32(j)
				c.vals[base+k] = row[j] / p.sum
			}
		}
	})
	return c
}

// N returns the dimension.
func (c *CSR) N() int { return c.n }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.cols) }

// RowNNZ returns the number of stored entries in row i.
//
//mdrep:hotpath
func (c *CSR) RowNNZ(i int) int {
	if i < 0 || i >= c.n {
		return 0
	}
	return int(c.rowPtr[i+1] - c.rowPtr[i])
}

// Row returns row i's columns (ascending) and values as subslices of the
// matrix's storage. Callers must treat both as read-only.
//
//mdrep:hotpath
func (c *CSR) Row(i int) ([]int32, []float64) {
	if i < 0 || i >= c.n {
		return nil, nil
	}
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	return c.cols[lo:hi], c.vals[lo:hi]
}

// RowCopy returns row i's columns and values as freshly allocated slices
// the caller owns. This is the export form for code that hands rows
// across trust boundaries — wire encoding, DHT publication — where an
// aliased subslice of the snapshot's storage must not escape.
func (c *CSR) RowCopy(i int) ([]int32, []float64) {
	cols, vals := c.Row(i)
	if len(cols) == 0 {
		return nil, nil
	}
	outCols := make([]int32, len(cols))
	outVals := make([]float64, len(vals))
	copy(outCols, cols)
	copy(outVals, vals)
	return outCols, outVals
}

// RowMap returns row i as a freshly allocated map the caller may mutate.
func (c *CSR) RowMap(i int) map[int]float64 {
	cols, vals := c.Row(i)
	out := make(map[int]float64, len(cols))
	for k, j := range cols {
		out[int(j)] = vals[k]
	}
	return out
}

// Get returns entry (i, j) by binary search; out-of-range indices read as
// zero.
//
//mdrep:hotpath
func (c *CSR) Get(i, j int) float64 {
	cols, vals := c.Row(i)
	// Open-coded binary search: sort.Search would box its predicate
	// closure on every probe of this kernel.
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cols[mid] < int32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && cols[lo] == int32(j) {
		return vals[lo]
	}
	return 0
}

// RowSum returns the sum of row i, accumulated in ascending column order.
//
//mdrep:hotpath
func (c *CSR) RowSum(i int) float64 {
	_, vals := c.Row(i)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// RowNormalize returns a new CSR with each non-empty row divided by its
// sum; rows summing to zero or less are cleared, as in Matrix.RowNormalize.
func (c *CSR) RowNormalize() *CSR {
	keep := make([]bool, c.n)
	sums := make([]float64, c.n)
	nnz := 0
	for i := 0; i < c.n; i++ {
		if c.RowNNZ(i) == 0 {
			continue
		}
		s := c.RowSum(i)
		if s <= 0 {
			continue
		}
		keep[i], sums[i] = true, s
		nnz += c.RowNNZ(i)
	}
	out := &CSR{
		n:      c.n,
		rowPtr: make([]int32, c.n+1),
		cols:   make([]int32, nnz),
		vals:   make([]float64, nnz),
	}
	for i := 0; i < c.n; i++ {
		out.rowPtr[i+1] = out.rowPtr[i]
		if keep[i] {
			out.rowPtr[i+1] += int32(c.RowNNZ(i))
		}
	}
	parallelRowBlocks(c.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !keep[i] {
				continue
			}
			cols, vals := c.Row(i)
			base := int(out.rowPtr[i])
			for k := range cols {
				out.cols[base+k] = cols[k]
				out.vals[base+k] = vals[k] / sums[i]
			}
		}
	})
	return out
}

// Weighted is one term of a weighted matrix sum.
type Weighted struct {
	Scale float64
	M     *CSR
}

// WeightedSum returns Σ terms[t].Scale · terms[t].M as a new CSR — the
// integration TM = α·FM + β·DM + γ·UM of Eq. (7). Terms with a zero
// scale are skipped entirely (absent evidence contributes nothing, as in
// Matrix.AddScaled), per-entry contributions accumulate in term order,
// and entries whose final value is exactly zero are dropped, matching the
// map path's zero-removing Set.
func WeightedSum(n int, terms []Weighted) (*CSR, error) {
	live := terms[:0:0]
	for _, t := range terms {
		if t.M == nil {
			return nil, errors.New("sparse: WeightedSum with nil matrix")
		}
		if t.M.n != n {
			return nil, fmt.Errorf("sparse: dimension mismatch %d vs %d", n, t.M.n)
		}
		if t.Scale == 0 {
			continue
		}
		live = append(live, t)
	}
	rowsCols := make([][]int32, n)
	rowsVals := make([][]float64, n)
	parallelRowBlocksScratch(n, func(s *rowScratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.reset()
			for _, t := range live {
				cols, vals := t.M.Row(i)
				for k, j := range cols {
					s.add(j, t.Scale*vals[k])
				}
			}
			rowsCols[i], rowsVals[i] = s.collect(true)
		}
	})
	return assemble(n, rowsCols, rowsVals), nil
}

// Mul returns c · other as a new CSR. Output rows are computed
// independently across the worker pool; for each output entry the
// contributions accumulate in ascending k (inner index) order, exactly as
// Matrix.Mul does, so the product is bit-identical to the map path and
// independent of worker scheduling. Entries whose accumulated value is
// exactly zero are kept, as in Matrix.Mul.
func (c *CSR) Mul(other *CSR) (*CSR, error) {
	if other == nil {
		return nil, errors.New("sparse: Mul with nil matrix")
	}
	if other.n != c.n {
		return nil, fmt.Errorf("sparse: dimension mismatch %d vs %d", c.n, other.n)
	}
	ko := kobs.Load()
	defer ko.spanMul().End()
	rowsCols := make([][]int32, c.n)
	rowsVals := make([][]float64, c.n)
	parallelRowBlocksScratch(c.n, func(s *rowScratch, lo, hi int) {
		var rows, nnz uint64
		for i := lo; i < hi; i++ {
			cols, vals := c.Row(i)
			if len(cols) == 0 {
				continue
			}
			s.reset()
			for a, k := range cols {
				mv := vals[a]
				ocols, ovals := other.Row(int(k))
				for b, j := range ocols {
					s.add(j, mv*ovals[b])
				}
				nnz += uint64(len(ocols))
			}
			rows++
			rowsCols[i], rowsVals[i] = s.collect(false)
		}
		ko.addWork(rows, nnz)
	})
	return assemble(c.n, rowsCols, rowsVals), nil
}

// Pow returns c^k for k >= 1 by the same square-and-multiply sequence as
// Matrix.Pow, so the two paths perform the identical Mul chain. k == 1
// returns the receiver (CSRs are immutable).
func (c *CSR) Pow(k int) (*CSR, error) {
	if k < 1 {
		return nil, fmt.Errorf("sparse: Pow needs k >= 1, got %d", k)
	}
	result := c
	k--
	first := true
	sq := c
	for k > 0 {
		if k&1 == 1 {
			var err error
			if first {
				result, err = c.Mul(sq)
				first = false
			} else {
				result, err = result.Mul(sq)
			}
			if err != nil {
				return nil, err
			}
		}
		k >>= 1
		if k > 0 {
			var err error
			sq, err = sq.Mul(sq)
			if err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// RowVecPow returns eᵢᵀ · c^k: row i of the k-th power computed with k
// sparse row-vector products, as Matrix.RowVecPow. Contributions to each
// output entry accumulate in ascending intermediate-index order, so the
// result is bit-identical to the map path.
func (c *CSR) RowVecPow(i, k int) (map[int]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("sparse: RowVecPow needs k >= 1, got %d", k)
	}
	if i < 0 || i >= c.n {
		return nil, fmt.Errorf("sparse: row %d out of range [0, %d)", i, c.n)
	}
	ko := kobs.Load()
	curCols, curVals := c.Row(i)
	// Copy: later steps reuse the scratch buffers.
	cols := append([]int32(nil), curCols...)
	vals := append([]float64(nil), curVals...)
	s := newRowScratch(c.n)
	for step := 1; step < k; step++ {
		sp := ko.spanStep()
		s.reset()
		var nnz uint64
		for a, mid := range cols {
			w := vals[a]
			if w == 0 {
				continue
			}
			mcols, mvals := c.Row(int(mid))
			for b, j := range mcols {
				s.add(j, w*mvals[b])
			}
			nnz += uint64(len(mcols))
		}
		cols, vals = s.collect(false)
		ko.addWork(1, nnz)
		sp.End()
	}
	out := make(map[int]float64, len(cols))
	for a, j := range cols {
		out[int(j)] = vals[a]
	}
	return out, nil
}

// MulVec returns c · x (treating x as a column vector).
func (c *CSR) MulVec(x []float64) ([]float64, error) {
	if len(x) != c.n {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), c.n)
	}
	y := make([]float64, c.n)
	parallelRowBlocks(c.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := c.Row(i)
			sum := 0.0
			for k, j := range cols {
				sum += vals[k] * x[j]
			}
			y[i] = sum
		}
	})
	return y, nil
}

// MaxRowSumDelta returns the largest |rowSum - 1| over non-empty rows.
func (c *CSR) MaxRowSumDelta() float64 {
	max := 0.0
	for i := 0; i < c.n; i++ {
		if c.RowNNZ(i) == 0 {
			continue
		}
		d := c.RowSum(i) - 1
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Entries returns all stored entries sorted by (row, col).
func (c *CSR) Entries() []Entry {
	out := make([]Entry, 0, len(c.cols))
	for i := 0; i < c.n; i++ {
		cols, vals := c.Row(i)
		for k, j := range cols {
			out = append(out, Entry{Row: i, Col: int(j), Val: vals[k]})
		}
	}
	return out
}

// Thaw returns a mutable map-backed copy of the matrix.
func (c *CSR) Thaw() *Matrix {
	m := New(c.n)
	for i := 0; i < c.n; i++ {
		cols, vals := c.Row(i)
		if len(cols) == 0 {
			continue
		}
		row := make(map[int]float64, len(cols))
		for k, j := range cols {
			row[int(j)] = vals[k]
		}
		m.rows[i] = row
	}
	return m
}

// Dense returns the matrix as a dense [][]float64; intended for tests.
func (c *CSR) Dense() [][]float64 {
	out := make([][]float64, c.n)
	for i := range out {
		out[i] = make([]float64, c.n)
		cols, vals := c.Row(i)
		for k, j := range cols {
			out[i][j] = vals[k]
		}
	}
	return out
}

// --- row-block worker pool -------------------------------------------------

// rowBlock is the unit of work the pool hands out. Blocks are coarse
// enough to amortise the atomic fetch yet fine enough to balance skewed
// row costs.
const rowBlock = 128

// parallelRowBlocks runs fn over [0, n) in disjoint half-open blocks
// across GOMAXPROCS workers. Each index is processed by exactly one
// worker, so any per-row computation is deterministic regardless of
// scheduling. Small inputs run inline.
func parallelRowBlocks(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n <= rowBlock || workers <= 1 {
		fn(0, n)
		return
	}
	if max := (n + rowBlock - 1) / rowBlock; workers > max {
		workers = max
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, rowBlock)) - rowBlock
				if lo >= n {
					return
				}
				hi := lo + rowBlock
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// parallelRowBlocksScratch is parallelRowBlocks with one dense accumulator
// per worker.
func parallelRowBlocksScratch(n int, fn func(s *rowScratch, lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n <= rowBlock || workers <= 1 {
		fn(newRowScratch(n), 0, n)
		return
	}
	if max := (n + rowBlock - 1) / rowBlock; workers > max {
		workers = max
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := newRowScratch(n)
			for {
				lo := int(atomic.AddInt64(&next, rowBlock)) - rowBlock
				if lo >= n {
					return
				}
				hi := lo + rowBlock
				if hi > n {
					hi = n
				}
				fn(s, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// rowScratch is a dense sparse-accumulator for one output row: values plus
// a generation-stamped touched set, so clearing between rows is O(nnz of
// the row), not O(n).
type rowScratch struct {
	acc     []float64
	stamp   []uint32
	gen     uint32
	touched []int32
}

func newRowScratch(n int) *rowScratch {
	return &rowScratch{acc: make([]float64, n), stamp: make([]uint32, n)}
}

//
//mdrep:hotpath
func (s *rowScratch) reset() {
	s.gen++
	s.touched = s.touched[:0]
}

//
//mdrep:hotpath
func (s *rowScratch) add(j int32, v float64) {
	if s.stamp[j] != s.gen {
		s.stamp[j] = s.gen
		s.acc[j] = 0
		s.touched = append(s.touched, j)
	}
	s.acc[j] += v
}

// collect returns the touched entries in ascending column order as fresh
// slices. dropZero omits entries whose accumulated value is exactly zero
// (WeightedSum semantics); Mul keeps them, as the map path does.
//
//mdrep:hotpath
func (s *rowScratch) collect(dropZero bool) ([]int32, []float64) {
	slices.Sort(s.touched) // closure-free; sort.Slice would box its less func
	cols := make([]int32, 0, len(s.touched))
	vals := make([]float64, 0, len(s.touched))
	for _, j := range s.touched {
		v := s.acc[j]
		if dropZero && v == 0 {
			continue
		}
		cols = append(cols, j)
		vals = append(vals, v)
	}
	return cols, vals
}

// assemble concatenates per-row slices into one CSR.
func assemble(n int, rowsCols [][]int32, rowsVals [][]float64) *CSR {
	c := &CSR{n: n, rowPtr: make([]int32, n+1)}
	nnz := 0
	for i := 0; i < n; i++ {
		nnz += len(rowsCols[i])
		c.rowPtr[i+1] = int32(nnz)
	}
	c.cols = make([]int32, 0, nnz)
	c.vals = make([]float64, 0, nnz)
	for i := 0; i < n; i++ {
		c.cols = append(c.cols, rowsCols[i]...)
		c.vals = append(c.vals, rowsVals[i]...)
	}
	return c
}
