// Package sparse implements the sparse row-oriented matrices behind the
// paper's trust algebra: row normalisation (Eq. 3, 5, 6), weighted
// integration TM = α·FM + β·DM + γ·UM (Eq. 7), and the multi-trust power
// RM = TM^n (Eq. 8), evaluated either as full sparse matrix products or as
// repeated row-vector products for single-peer queries.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Matrix is an n×n sparse matrix stored as one map per row. Absent entries
// are zero. Matrices in this package are square because trust matrices
// relate peers to peers.
type Matrix struct {
	n    int
	rows []map[int]float64
}

// New returns an n×n zero matrix.
func New(n int) *Matrix {
	if n < 0 {
		n = 0
	}
	return &Matrix{n: n, rows: make([]map[int]float64, n)}
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// NNZ returns the number of explicitly stored entries.
func (m *Matrix) NNZ() int {
	total := 0
	for _, row := range m.rows {
		total += len(row)
	}
	return total
}

// Get returns entry (i, j); out-of-range indices read as zero.
func (m *Matrix) Get(i, j int) float64 {
	if i < 0 || i >= m.n || m.rows[i] == nil {
		return 0
	}
	return m.rows[i][j]
}

// Set stores entry (i, j). Setting zero removes the entry. Out-of-range
// indices are ignored (the trust engine validates indices at its boundary).
func (m *Matrix) Set(i, j int, v float64) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		return
	}
	if v == 0 {
		if m.rows[i] != nil {
			delete(m.rows[i], j)
		}
		return
	}
	if m.rows[i] == nil {
		m.rows[i] = make(map[int]float64)
	}
	m.rows[i][j] = v
}

// Add accumulates v into entry (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.Set(i, j, m.Get(i, j)+v)
}

// Row returns the non-zero entries of row i as a map. The returned map
// IS the internal storage: callers must treat it as strictly read-only —
// mutating it corrupts the matrix and, worse, silently desynchronises any
// cached derived state (the engine's incremental dimension caches, a
// journal replay's bit-identical rebuild). Callers that need to mutate
// must use RowCopy; callers that only iterate should prefer ForEachRow,
// which also fixes the iteration order.
func (m *Matrix) Row(i int) map[int]float64 {
	if i < 0 || i >= m.n {
		return nil
	}
	return m.rows[i]
}

// ForEachRow calls fn for every stored entry of row i in ascending column
// order. It is the safe, deterministic alternative to Row for read-only
// iteration: no internal storage escapes, and the order does not depend
// on Go's randomised map iteration.
func (m *Matrix) ForEachRow(i int, fn func(col int, val float64)) {
	row := m.Row(i)
	for _, j := range sortedCols(row) {
		fn(j, row[j])
	}
}

// RowNNZ returns the number of stored entries in row i.
func (m *Matrix) RowNNZ(i int) int { return len(m.Row(i)) }

// RowCopy returns a copy of row i safe for the caller to mutate.
func (m *Matrix) RowCopy(i int) map[int]float64 {
	src := m.Row(i)
	dst := make(map[int]float64, len(src))
	for j, v := range src {
		dst[j] = v
	}
	return dst
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.n)
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		nr := make(map[int]float64, len(row))
		for j, v := range row {
			nr[j] = v
		}
		c.rows[i] = nr
	}
	return c
}

// RowSum returns the sum of row i, accumulated in ascending column order
// so the result is independent of map iteration order.
func (m *Matrix) RowSum(i int) float64 {
	row := m.Row(i)
	sum := 0.0
	for _, j := range sortedCols(row) {
		sum += row[j]
	}
	return sum
}

// sortedCols returns a row's column indices in ascending order. The trust
// algebra iterates rows in this order wherever floating-point sums
// accumulate, so results do not depend on Go's randomised map iteration —
// a crash-recovered engine (internal/journal) must rebuild bit-identical
// matrices.
func sortedCols(row map[int]float64) []int {
	cols := make([]int, 0, len(row))
	for j := range row {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	return cols
}

// RowNormalize divides each non-empty row by its sum, producing the
// row-stochastic matrices of Eq. (3), (5) and (6). Rows whose sum is zero
// or negative are cleared: a peer with no direct trust expresses none.
// It returns the receiver for chaining.
func (m *Matrix) RowNormalize() *Matrix {
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		sum := 0.0
		for _, j := range sortedCols(row) {
			sum += row[j]
		}
		if sum <= 0 {
			m.rows[i] = nil
			continue
		}
		for j, v := range row {
			row[j] = v / sum
		}
	}
	return m
}

// AddScaled accumulates s·other into the receiver, implementing the
// weighted integration of Eq. (7). It returns an error on dimension
// mismatch.
func (m *Matrix) AddScaled(s float64, other *Matrix) error {
	if other == nil {
		return errors.New("sparse: AddScaled with nil matrix")
	}
	if other.n != m.n {
		return fmt.Errorf("sparse: dimension mismatch %d vs %d", m.n, other.n)
	}
	if s == 0 {
		return nil
	}
	for i, row := range other.rows {
		for j, v := range row {
			m.Add(i, j, s*v)
		}
	}
	return nil
}

// Scale multiplies every entry by s in place and returns the receiver.
func (m *Matrix) Scale(s float64) *Matrix {
	if s == 0 {
		for i := range m.rows {
			m.rows[i] = nil
		}
		return m
	}
	for _, row := range m.rows {
		for j, v := range row {
			row[j] = v * s
		}
	}
	return m
}

// MulVec returns m · x (treating x as a column vector). It returns an
// error on dimension mismatch.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.n {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), m.n)
	}
	y := make([]float64, m.n)
	for i, row := range m.rows {
		sum := 0.0
		for _, j := range sortedCols(row) {
			sum += row[j] * x[j]
		}
		y[i] = sum
	}
	return y, nil
}

// VecMul returns xᵀ · m (treating x as a row vector): the propagation step
// of distributed multi-trust, where a peer pushes its trust weights one hop
// forward.
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.n {
		return nil, fmt.Errorf("sparse: vector length %d, want %d", len(x), m.n)
	}
	y := make([]float64, m.n)
	for i, row := range m.rows {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y, nil
}

// Mul returns m · other as a new matrix. Cost is O(nnz(m) · avg row nnz of
// other); both operands are unchanged.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if other == nil {
		return nil, errors.New("sparse: Mul with nil matrix")
	}
	if other.n != m.n {
		return nil, fmt.Errorf("sparse: dimension mismatch %d vs %d", m.n, other.n)
	}
	out := New(m.n)
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		acc := make(map[int]float64)
		for _, k := range sortedCols(row) {
			mv := row[k]
			for j, ov := range other.Row(k) {
				acc[j] += mv * ov
			}
		}
		if len(acc) > 0 {
			out.rows[i] = acc
		}
	}
	return out, nil
}

// Pow returns m^k for k >= 1 by repeated squaring. Powers of sparse
// stochastic matrices densify quickly, so this is intended for the modest
// n of the multi-trust step sweep (n ≤ ~6 in the paper's setting).
func (m *Matrix) Pow(k int) (*Matrix, error) {
	if k < 1 {
		return nil, fmt.Errorf("sparse: Pow needs k >= 1, got %d", k)
	}
	result := m.Clone()
	base := m
	k--
	first := true
	// Square-and-multiply over the remaining exponent.
	sq := base.Clone()
	for k > 0 {
		if k&1 == 1 {
			var err error
			if first {
				result, err = m.Mul(sq)
				first = false
			} else {
				result, err = result.Mul(sq)
			}
			if err != nil {
				return nil, err
			}
		}
		k >>= 1
		if k > 0 {
			var err error
			sq, err = sq.Mul(sq)
			if err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// RowVecPow returns eᵢᵀ · m^k: row i of the k-th power, computed with k
// sparse row-vector products. This is how a single peer evaluates its
// multi-trust view without materialising m^k.
func (m *Matrix) RowVecPow(i, k int) (map[int]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("sparse: RowVecPow needs k >= 1, got %d", k)
	}
	if i < 0 || i >= m.n {
		return nil, fmt.Errorf("sparse: row %d out of range [0, %d)", i, m.n)
	}
	cur := m.RowCopy(i)
	for step := 1; step < k; step++ {
		next := make(map[int]float64, len(cur))
		for _, mid := range sortedCols(cur) {
			w := cur[mid]
			if w == 0 {
				continue
			}
			for j, v := range m.Row(mid) {
				next[j] += w * v
			}
		}
		cur = next
	}
	return cur, nil
}

// MaxRowSumDelta returns the largest |rowSum - 1| over non-empty rows; a
// row-stochastic matrix has delta ~ 0. Empty rows are skipped because they
// represent peers with no outgoing trust.
func (m *Matrix) MaxRowSumDelta() float64 {
	max := 0.0
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		d := math.Abs(m.RowSum(i) - 1)
		if d > max {
			max = d
		}
	}
	return max
}

// Entries returns all non-zero entries sorted by (row, col); used by tests
// and serialisation.
func (m *Matrix) Entries() []Entry {
	out := make([]Entry, 0, m.NNZ())
	for i, row := range m.rows {
		for j, v := range row {
			out = append(out, Entry{Row: i, Col: j, Val: v})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		return out[a].Col < out[b].Col
	})
	return out
}

// Entry is one non-zero matrix element.
type Entry struct {
	Row int     `json:"row"`
	Col int     `json:"col"`
	Val float64 `json:"val"`
}

// Dense returns the matrix as a dense [][]float64; intended for tests on
// small matrices.
func (m *Matrix) Dense() [][]float64 {
	out := make([][]float64, m.n)
	for i := range out {
		out[i] = make([]float64, m.n)
		for j, v := range m.Row(i) {
			out[i][j] = v
		}
	}
	return out
}
