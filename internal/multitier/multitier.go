// Package multitier implements the multi-trust tier scheme of Q. Lian et
// al. (§2): from a one-step direct trust matrix, a requester's tier as
// seen by a server is the smallest power k of the matrix whose (server,
// requester) entry is non-zero — immediate friends are tier 1, friends of
// friends tier 2, and so on. Service differentiation ranks requesters
// first by tier (smaller is better), then by the trust value within that
// tier's matrix. The paper adopts this scheme and fixes its "one-step
// sparse matrix problem" with denser multi-dimensional direct trust.
package multitier

import (
	"errors"
	"fmt"
	"sort"

	"mdrep/internal/sparse"
)

// Unreachable is the tier assigned when no power up to MaxTier connects
// the pair.
const Unreachable = 1 << 30

// Classifier assigns tiers against a fixed one-step trust matrix. The
// powers are immutable CSR matrices, so a classifier may be shared across
// concurrent readers.
type Classifier struct {
	maxTier int
	powers  []*sparse.CSR // powers[k-1] = tm^k
}

// NewClassifier precomputes the first maxTier powers of tm.
func NewClassifier(tm *sparse.CSR, maxTier int) (*Classifier, error) {
	if tm == nil {
		return nil, errors.New("multitier: nil trust matrix")
	}
	if maxTier < 1 {
		return nil, fmt.Errorf("multitier: maxTier %d, want >= 1", maxTier)
	}
	c := &Classifier{maxTier: maxTier, powers: make([]*sparse.CSR, maxTier)}
	cur := tm
	c.powers[0] = cur
	for k := 1; k < maxTier; k++ {
		next, err := cur.Mul(tm)
		if err != nil {
			return nil, err
		}
		c.powers[k] = next
		cur = next
	}
	return c, nil
}

// MaxTier returns the deepest tier the classifier resolves.
func (c *Classifier) MaxTier() int { return c.maxTier }

// Tier returns requester's tier as seen by server and the trust value in
// that tier's matrix. Unreachable pairs return (Unreachable, 0).
func (c *Classifier) Tier(server, requester int) (int, float64) {
	for k, m := range c.powers {
		if v := m.Get(server, requester); v > 0 {
			return k + 1, v
		}
	}
	return Unreachable, 0
}

// Ranked is a requester annotated with its tier and in-tier trust.
type Ranked struct {
	Peer  int
	Tier  int
	Trust float64
}

// Rank orders requesters by (tier ascending, in-tier trust descending),
// the multi-tier incentive rule: "the smaller level the user belongs to,
// the higher priority they are given; within the same tier, two peers will
// be ranked according to their values in the matrix of that tier."
func (c *Classifier) Rank(server int, requesters []int) []Ranked {
	out := make([]Ranked, 0, len(requesters))
	for _, r := range requesters {
		tier, v := c.Tier(server, r)
		out = append(out, Ranked{Peer: r, Tier: tier, Trust: v})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Tier != out[b].Tier {
			return out[a].Tier < out[b].Tier
		}
		return out[a].Trust > out[b].Trust
	})
	return out
}

// Coverage returns the fraction of the given (server, requester) pairs
// reachable within maxTier steps — how the tier scheme's request coverage
// grows with depth, experiment E5's comparison axis.
func (c *Classifier) Coverage(pairs [][2]int) []float64 {
	out := make([]float64, c.maxTier)
	if len(pairs) == 0 {
		return out
	}
	for _, p := range pairs {
		tier, _ := c.Tier(p[0], p[1])
		if tier == Unreachable {
			continue
		}
		for k := tier; k <= c.maxTier; k++ {
			out[k-1]++
		}
	}
	for k := range out {
		out[k] /= float64(len(pairs))
	}
	return out
}

// VecClassifier assigns tiers from a scalar reputation axis instead of a
// trust-matrix walk — the population-scale variant used by the massim
// simulator, where per-pair matrix powers are unaffordable at millions
// of peers. Bounds are strictly descending reputation thresholds: a
// reputation >= bounds[0] is tier 1 (best), >= bounds[1] tier 2, and so
// on; anything below the last bound lands in tier len(bounds)+1.
type VecClassifier struct {
	bounds []float64
}

// NewVecClassifier builds a classifier over descending thresholds.
func NewVecClassifier(bounds []float64) (*VecClassifier, error) {
	if len(bounds) == 0 {
		return nil, errors.New("multitier: no tier bounds")
	}
	for k, b := range bounds {
		if b <= 0 || b >= 1 {
			return nil, fmt.Errorf("multitier: bound %d = %v outside (0,1)", k, b)
		}
		if k > 0 && b >= bounds[k-1] {
			return nil, fmt.Errorf("multitier: bounds not strictly descending at %d", k)
		}
	}
	return &VecClassifier{bounds: append([]float64(nil), bounds...)}, nil
}

// Tiers returns the number of tiers, len(bounds)+1.
func (c *VecClassifier) Tiers() int { return len(c.bounds) + 1 }

// Tier returns the 1-based tier for a reputation value.
func (c *VecClassifier) Tier(rep float64) int {
	for k, b := range c.bounds {
		if rep >= b {
			return k + 1
		}
	}
	return len(c.bounds) + 1
}

// Distribution counts how many of the given reputations fall in each
// tier; index 0 is tier 1.
func (c *VecClassifier) Distribution(rep []float64) []int {
	out := make([]int, c.Tiers())
	for _, v := range rep {
		out[c.Tier(v)-1]++
	}
	return out
}
