package multitier

import (
	"testing"

	"mdrep/internal/sparse"
)

// chainMatrix builds 0→1→2→3→… with unit trust.
func chainMatrix(n int) *sparse.CSR {
	m := sparse.New(n)
	for i := 0; i+1 < n; i++ {
		m.Set(i, i+1, 1)
	}
	return m.RowNormalize().Freeze()
}

func TestTierDepth(t *testing.T) {
	c, err := NewClassifier(chainMatrix(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 4; want++ {
		tier, trust := c.Tier(0, want)
		if tier != want {
			t.Fatalf("Tier(0,%d) = %d, want %d", want, tier, want)
		}
		if trust <= 0 {
			t.Fatalf("Tier(0,%d) trust = %v", want, trust)
		}
	}
}

func TestTierUnreachable(t *testing.T) {
	c, err := NewClassifier(chainMatrix(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	tier, trust := c.Tier(0, 4) // 4 hops away, maxTier 2
	if tier != Unreachable || trust != 0 {
		t.Fatalf("Tier = %d, %v, want Unreachable", tier, trust)
	}
	if tier, _ := c.Tier(3, 0); tier != Unreachable { // chain is directed
		t.Fatalf("reverse direction reachable: tier %d", tier)
	}
}

func TestRankPrefersLowerTier(t *testing.T) {
	// Server 0: peer 1 is tier 1, peer 2 is tier 2, peer 4 unreachable.
	c, err := NewClassifier(chainMatrix(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	ranked := c.Rank(0, []int{4, 2, 1})
	if ranked[0].Peer != 1 || ranked[1].Peer != 2 || ranked[2].Peer != 4 {
		t.Fatalf("Rank order: %+v", ranked)
	}
	if ranked[2].Tier != Unreachable {
		t.Fatalf("unreachable peer tier: %d", ranked[2].Tier)
	}
}

func TestRankWithinTierByTrust(t *testing.T) {
	m := sparse.New(4)
	m.Set(0, 1, 3) // stronger direct trust
	m.Set(0, 2, 1)
	c, err := NewClassifier(m.RowNormalize().Freeze(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ranked := c.Rank(0, []int{2, 1})
	if ranked[0].Peer != 1 {
		t.Fatalf("within-tier rank ignored trust values: %+v", ranked)
	}
}

func TestCoverageGrowsWithDepth(t *testing.T) {
	c, err := NewClassifier(chainMatrix(6), 5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	cov := c.Coverage(pairs)
	if len(cov) != 5 {
		t.Fatalf("coverage length %d", len(cov))
	}
	for k := 1; k < len(cov); k++ {
		if cov[k] < cov[k-1] {
			t.Fatalf("coverage not monotone: %v", cov)
		}
	}
	if cov[0] != 0.2 || cov[4] != 1.0 {
		t.Fatalf("coverage endpoints: %v", cov)
	}
}

func TestCoverageEmptyPairs(t *testing.T) {
	c, err := NewClassifier(chainMatrix(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	cov := c.Coverage(nil)
	for _, v := range cov {
		if v != 0 {
			t.Fatalf("coverage of no pairs: %v", cov)
		}
	}
}

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(nil, 2); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := NewClassifier(sparse.New(2).Freeze(), 0); err == nil {
		t.Fatal("maxTier 0 accepted")
	}
}

func TestClassifierDoesNotMutateInput(t *testing.T) {
	m := chainMatrix(4)
	before := m.Entries()
	if _, err := NewClassifier(m, 3); err != nil {
		t.Fatal(err)
	}
	after := m.Entries()
	if len(before) != len(after) {
		t.Fatal("classifier mutated input matrix")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("classifier mutated input matrix")
		}
	}
}

// TestClassifierMatchesMapPowers cross-checks the CSR power chain against
// map-backed multiplication.
func TestClassifierMatchesMapPowers(t *testing.T) {
	m := sparse.New(5)
	m.Set(0, 1, 0.5)
	m.Set(0, 2, 0.5)
	m.Set(1, 3, 1)
	m.Set(2, 4, 1)
	m.Set(3, 0, 1)
	norm := m.RowNormalize()
	c, err := NewClassifier(norm.Freeze(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := norm.Clone()
	for k := 0; k < 3; k++ {
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if got, want := c.powers[k].Get(i, j), ref.Get(i, j); got != want {
					t.Fatalf("power %d entry (%d,%d) = %v, want %v", k+1, i, j, got, want)
				}
			}
		}
		var err error
		ref, err = ref.Mul(norm)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestVecClassifier(t *testing.T) {
	c, err := NewVecClassifier([]float64{0.7, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tiers() != 3 {
		t.Fatalf("Tiers() = %d, want 3", c.Tiers())
	}
	cases := []struct {
		rep  float64
		tier int
	}{{0.9, 1}, {0.7, 1}, {0.69, 2}, {0.4, 2}, {0.1, 3}, {0, 3}}
	for _, tc := range cases {
		if got := c.Tier(tc.rep); got != tc.tier {
			t.Fatalf("Tier(%v) = %d, want %d", tc.rep, got, tc.tier)
		}
	}
	dist := c.Distribution([]float64{0.9, 0.8, 0.5, 0.2, 0.1, 0.05})
	want := []int{2, 1, 3}
	for k := range want {
		if dist[k] != want[k] {
			t.Fatalf("Distribution = %v, want %v", dist, want)
		}
	}
}

func TestVecClassifierErrors(t *testing.T) {
	if _, err := NewVecClassifier(nil); err == nil {
		t.Fatal("want error for empty bounds")
	}
	if _, err := NewVecClassifier([]float64{0.4, 0.7}); err == nil {
		t.Fatal("want error for ascending bounds")
	}
	if _, err := NewVecClassifier([]float64{1.5}); err == nil {
		t.Fatal("want error for bound outside (0,1)")
	}
}
