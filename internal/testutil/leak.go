// Package testutil holds shared test harness helpers. It is imported
// only from _test files.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// RunMain runs the package's tests and then fails the binary if any
// goroutine the tests started is still running. Wire it in as
//
//	func TestMain(m *testing.M) { testutil.RunMain(m) }
//
// Goroutines take a moment to unwind after their work completes
// (closed listeners, drained channels), so the check polls until
// either the process is quiet or a deadline expires.
func RunMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitQuiet(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked by tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// waitQuiet polls for leaked goroutines until none remain or the
// deadline passes, returning the survivors' stacks.
func waitQuiet(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	delay := time.Millisecond
	for {
		leaked := leakedGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// leakedGoroutines returns the stacks of goroutines that are neither
// part of the runtime/testing machinery nor this checker itself.
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || ignoredGoroutine(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// ignoredGoroutine reports whether a stack belongs to machinery that
// legitimately outlives the tests.
func ignoredGoroutine(stack string) bool {
	for _, marker := range []string{
		"testutil.leakedGoroutines", // this checker's own goroutine
		"testing.Main(",
		"testing.(*M).",
		"testing.tRunner", // paused parents of parallel subtests
		"runtime.goexit0",
		"created by runtime.",
		"runtime/pprof.",
		"runtime/trace.",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ReadTrace",
		"runtime.ensureSigM",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
