package eigentrust

import (
	"math"
	"testing"

	"mdrep/internal/sim"
	"mdrep/internal/sparse"
)

func ringMatrix(n int) *sparse.Matrix {
	m := sparse.New(n)
	for i := 0; i < n; i++ {
		m.Set(i, (i+1)%n, 1)
	}
	return m.RowNormalize()
}

func TestComputeUniformOnSymmetricRing(t *testing.T) {
	n := 8
	m := ringMatrix(n)
	res, err := Compute(m, DefaultConfig([]int{0}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("power iteration did not converge on a ring")
	}
	sum := 0.0
	for _, v := range res.Trust {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("trust sums to %v", sum)
	}
}

func TestComputeFavorsHighlyTrustedPeer(t *testing.T) {
	// Everyone trusts peer 0; peer 0 trusts peer 1.
	n := 6
	m := sparse.New(n)
	for i := 1; i < n; i++ {
		m.Set(i, 0, 1)
	}
	m.Set(0, 1, 1)
	m.RowNormalize()
	res, err := Compute(m, DefaultConfig([]int{2}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < n; i++ {
		if res.Trust[0] <= res.Trust[i] {
			t.Fatalf("hub peer 0 (%v) not above peer %d (%v)", res.Trust[0], i, res.Trust[i])
		}
	}
	if res.Trust[1] <= res.Trust[3] {
		t.Fatalf("peer 1 trusted by hub (%v) not above leaf %v", res.Trust[1], res.Trust[3])
	}
}

func TestComputeIsolatedCliqueLimitedByDamping(t *testing.T) {
	// A collusion clique (3,4) trusts only itself; nobody outside trusts
	// it. Pre-trust damping keeps its global trust near zero.
	n := 5
	m := sparse.New(n)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(2, 0, 1)
	m.Set(3, 4, 1)
	m.Set(4, 3, 1)
	m.RowNormalize()
	res, err := Compute(m, DefaultConfig([]int{0}))
	if err != nil {
		t.Fatal(err)
	}
	cliqueTrust := res.Trust[3] + res.Trust[4]
	if cliqueTrust > 0.05 {
		t.Fatalf("isolated clique captured %v global trust", cliqueTrust)
	}
}

func TestComputeDanglingRows(t *testing.T) {
	// Peer 2 has no outgoing trust; its mass must flow to pre-trusted
	// peers rather than leak.
	n := 3
	m := sparse.New(n)
	m.Set(0, 2, 1)
	m.Set(1, 2, 1)
	m.RowNormalize()
	res, err := Compute(m, DefaultConfig([]int{0}))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Trust {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("trust mass leaked: sum %v", sum)
	}
	if res.Trust[2] < res.Trust[1] {
		t.Fatalf("peer trusted by all (%v) below leaf (%v)", res.Trust[2], res.Trust[1])
	}
}

func TestComputeRejectsNonStochastic(t *testing.T) {
	m := sparse.New(2)
	m.Set(0, 1, 2) // row sums to 2
	if _, err := Compute(m, DefaultConfig([]int{0})); err == nil {
		t.Fatal("non-stochastic matrix accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	m := ringMatrix(4)
	cases := []Config{
		{PreTrusted: nil, Damping: 0.1, Epsilon: 1e-9, MaxIterations: 10},
		{PreTrusted: []int{9}, Damping: 0.1, Epsilon: 1e-9, MaxIterations: 10},
		{PreTrusted: []int{0}, Damping: 2, Epsilon: 1e-9, MaxIterations: 10},
		{PreTrusted: []int{0}, Damping: 0.1, Epsilon: 0, MaxIterations: 10},
		{PreTrusted: []int{0}, Damping: 0.1, Epsilon: 1e-9, MaxIterations: 0},
	}
	for i, cfg := range cases {
		if _, err := Compute(m, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	rng := sim.NewRNG(3)
	n := 30
	m := sparse.New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			m.Set(i, rng.Intn(n), rng.Float64()+0.01)
		}
	}
	m.RowNormalize()
	a, err := Compute(m, DefaultConfig([]int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(m, DefaultConfig([]int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trust {
		if a.Trust[i] != b.Trust[i] {
			t.Fatal("Compute not deterministic")
		}
	}
}

func TestLocalTrustFromSatisfaction(t *testing.T) {
	sat := sparse.New(3)
	unsat := sparse.New(3)
	sat.Set(0, 1, 10)
	unsat.Set(0, 1, 4) // net 6
	sat.Set(0, 2, 3)
	unsat.Set(0, 2, 5) // net negative → dropped
	c, err := LocalTrustFromSatisfaction(sat, unsat)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("c_01 = %v, want 1 (sole positive net)", got)
	}
	if c.Get(0, 2) != 0 {
		t.Fatal("negative net satisfaction kept")
	}
}

func TestLocalTrustFromSatisfactionErrors(t *testing.T) {
	if _, err := LocalTrustFromSatisfaction(nil, sparse.New(2)); err == nil {
		t.Fatal("nil sat accepted")
	}
	if _, err := LocalTrustFromSatisfaction(sparse.New(2), sparse.New(3)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
