// Package eigentrust implements the EigenTrust algorithm (Kamvar,
// Schlosser, Garcia-Molina, WWW 2003), the global-reputation baseline the
// paper compares against (§2). Each peer i normalises its local trust
// values c_ij; the global trust vector is the left principal eigenvector
// of the matrix C, computed by power iteration with the standard
// pre-trusted-peer damping:
//
//	t⁽ᵏ⁺¹⁾ = (1−a)·Cᵀ·t⁽ᵏ⁾ + a·p
//
// where p is the distribution over pre-trusted peers and a the damping
// weight. Q. Lian et al. found this suffers both false positives (slow
// reaction to new polluters) and false negatives (penalising unknown but
// honest peers) — behaviour experiment E3 reproduces.
package eigentrust

import (
	"errors"
	"fmt"
	"math"

	"mdrep/internal/sparse"
)

// Config holds the algorithm's parameters.
type Config struct {
	// PreTrusted is the set of peers given a-priori trust (the paper's
	// "P" set); it must be non-empty.
	PreTrusted []int
	// Damping is the weight a of the pre-trusted distribution; the
	// EigenTrust paper uses 0.1–0.2.
	Damping float64
	// Epsilon is the L1 convergence threshold of power iteration.
	Epsilon float64
	// MaxIterations bounds power iteration.
	MaxIterations int
}

// DefaultConfig returns the parameters of the original paper.
func DefaultConfig(preTrusted []int) Config {
	return Config{
		PreTrusted:    preTrusted,
		Damping:       0.15,
		Epsilon:       1e-9,
		MaxIterations: 200,
	}
}

// Validate checks parameters against a population of size n.
func (c Config) Validate(n int) error {
	if len(c.PreTrusted) == 0 {
		return errors.New("eigentrust: need at least one pre-trusted peer")
	}
	for _, p := range c.PreTrusted {
		if p < 0 || p >= n {
			return fmt.Errorf("eigentrust: pre-trusted peer %d outside [0, %d)", p, n)
		}
	}
	if c.Damping < 0 || c.Damping > 1 {
		return errors.New("eigentrust: damping outside [0,1]")
	}
	if c.Epsilon <= 0 {
		return errors.New("eigentrust: non-positive epsilon")
	}
	if c.MaxIterations < 1 {
		return errors.New("eigentrust: need at least one iteration")
	}
	return nil
}

// Result carries the converged global trust vector.
type Result struct {
	// Trust is the global trust value per peer; it sums to 1.
	Trust []float64
	// Iterations is how many power steps ran.
	Iterations int
	// Converged reports whether Epsilon was reached within
	// MaxIterations.
	Converged bool
}

// Compute runs power iteration on the row-normalised local trust matrix c
// (c.Get(i, j) is how much i trusts j). Rows that are entirely empty are
// treated as trusting the pre-trusted set, the standard EigenTrust fix for
// dangling rows.
func Compute(c *sparse.Matrix, cfg Config) (*Result, error) {
	n := c.N()
	if n == 0 {
		return nil, errors.New("eigentrust: empty matrix")
	}
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	if d := c.MaxRowSumDelta(); d > 1e-6 {
		return nil, fmt.Errorf("eigentrust: matrix not row-stochastic (delta %v)", d)
	}
	p := make([]float64, n)
	for _, pt := range cfg.PreTrusted {
		p[pt] += 1 / float64(len(cfg.PreTrusted))
	}
	// Start from the pre-trust distribution, as in the original paper.
	t := make([]float64, n)
	copy(t, p)

	danglingRows := make([]int, 0)
	for i := 0; i < n; i++ {
		if c.RowNNZ(i) == 0 {
			danglingRows = append(danglingRows, i)
		}
	}

	res := &Result{}
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		next, err := c.VecMul(t)
		if err != nil {
			return nil, err
		}
		// Dangling rows redistribute their mass over the pre-trusted set.
		var danglingMass float64
		for _, i := range danglingRows {
			danglingMass += t[i]
		}
		for j := range next {
			next[j] = (1-cfg.Damping)*(next[j]+danglingMass*p[j]) + cfg.Damping*p[j]
		}
		delta := 0.0
		for j := range next {
			delta += math.Abs(next[j] - t[j])
		}
		t = next
		res.Iterations = iter + 1
		if delta < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	// Normalise away numerical drift so Trust is exactly a distribution.
	sum := 0.0
	for _, v := range t {
		sum += v
	}
	if sum > 0 {
		for i := range t {
			t[i] /= sum
		}
	}
	res.Trust = t
	return res, nil
}

// LocalTrustFromSatisfaction builds the row-normalised local trust matrix
// from satisfaction counts: c_ij = max(sat_ij − unsat_ij, 0), normalised
// per row — the construction of the original paper's §4.1. The sat and
// unsat matrices carry raw counts.
func LocalTrustFromSatisfaction(sat, unsat *sparse.Matrix) (*sparse.Matrix, error) {
	if sat == nil || unsat == nil {
		return nil, errors.New("eigentrust: nil satisfaction matrix")
	}
	if sat.N() != unsat.N() {
		return nil, fmt.Errorf("eigentrust: dimension mismatch %d vs %d", sat.N(), unsat.N())
	}
	c := sparse.New(sat.N())
	for i := 0; i < sat.N(); i++ {
		sat.ForEachRow(i, func(j int, s float64) {
			if v := s - unsat.Get(i, j); v > 0 {
				c.Set(i, j, v)
			}
		})
	}
	return c.RowNormalize(), nil
}
