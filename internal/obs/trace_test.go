package obs

import (
	"errors"
	"testing"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/flight"
)

// testClock is a deterministic ticking clock.
func testClock() Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func withTracing(t *testing.T, sampleEvery int) *flight.Recorder {
	t.Helper()
	rec := flight.NewRecorder(256, 4)
	flight.Install(rec)
	EnableTracing(42, testClock(), sampleEvery)
	t.Cleanup(func() {
		DisableTracing()
		flight.Install(nil)
	})
	return rec
}

func TestTracingDisabledByDefault(t *testing.T) {
	if TracingEnabled() {
		t.Fatal("tracing enabled without EnableTracing")
	}
	sp := StartRoot("x")
	if sp.Recording() || sp.Context().Valid() {
		t.Errorf("disabled root not inert: %+v", sp.Context())
	}
	sp.Attr("k", 1)
	sp.EndErr(errors.New("ignored"))
	child := StartChild(sp.Context(), "y")
	if child.Recording() {
		t.Error("child of inert span records")
	}
	child.End()
}

func TestRootChildStitching(t *testing.T) {
	rec := withTracing(t, 1)
	root := StartRoot("walk.estimate")
	if !root.Recording() || !root.Context().Valid() || !root.Context().Sampled {
		t.Fatalf("root not recording: %+v", root.Context())
	}
	child := StartChild(root.Context(), "walk.row_fetch")
	child.Attr("user", 7)
	grand := StartChild(child.Context(), "dht.rpc.retrieve")
	grand.AttrStr("addr", "mem://node-01")
	grand.End()
	child.End()
	root.End()

	recs := rec.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records land end-order: grand, child, root.
	g, c, r := recs[0], recs[1], recs[2]
	if r.Trace != c.Trace || c.Trace != g.Trace {
		t.Errorf("trace IDs differ: %x %x %x", r.Trace, c.Trace, g.Trace)
	}
	if r.Parent != 0 {
		t.Errorf("root has parent %x", r.Parent)
	}
	if c.Parent != r.Span || g.Parent != c.Span {
		t.Errorf("stitching broken: root=%x child=(%x←%x) grand=(%x←%x)", r.Span, c.Span, c.Parent, g.Span, g.Parent)
	}
	if c.Attrs[0].Key != "user" || c.Attrs[0].Val != 7 {
		t.Errorf("child attrs = %+v", c.Attrs)
	}
	if g.Attrs[0].Str != "mem://node-01" {
		t.Errorf("grand attrs = %+v", g.Attrs)
	}
	if r.Duration <= 0 {
		t.Errorf("root duration %d", r.Duration)
	}
}

func TestEndErrStatusAndIdempotence(t *testing.T) {
	rec := withTracing(t, 1)
	sp := StartRoot("dht.op")
	sp.EndErr(fault.Unreachable(errors.New("down")))
	sp.EndErr(errors.New("second end must not record"))
	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (EndErr not idempotent)", len(recs))
	}
	if recs[0].Status != flight.StatusRetryable {
		t.Errorf("status = %v, want retryable", recs[0].Status)
	}
}

func TestTerminalEndTriggersDump(t *testing.T) {
	rec := withTracing(t, 1)
	sp := StartRoot("dht.rpc.store")
	sp.EndErr(fault.Terminal(errors.New("bad frame")))
	d, ok := rec.LastDump()
	if !ok {
		t.Fatal("terminal error did not trigger a flight dump")
	}
	if d.Reason != "fault.terminal: dht.rpc.store" {
		t.Errorf("dump reason = %q", d.Reason)
	}
	if len(d.Records) != 1 || d.Records[0].Status != flight.StatusError {
		t.Errorf("dump records = %+v", d.Records)
	}
}

func TestSamplingDeterministicAndPropagated(t *testing.T) {
	rec := withTracing(t, 4)
	sampled, unsampled := 0, 0
	for i := 0; i < 64; i++ {
		root := StartRoot("r")
		child := StartChild(root.Context(), "c")
		if root.Recording() != child.Recording() {
			t.Fatalf("iteration %d: child sampling diverged from root", i)
		}
		if root.Recording() {
			sampled++
		} else {
			unsampled++
			if !child.Context().Valid() {
				t.Fatal("unsampled child lost trace identity")
			}
			if child.Context().Sampled {
				t.Fatal("unsampled root produced sampled child")
			}
		}
		child.End()
		root.End()
	}
	if sampled == 0 || unsampled == 0 {
		t.Fatalf("sampling not mixing: %d sampled, %d unsampled of 64", sampled, unsampled)
	}
	if got := int(rec.Triggered()); got != 0 {
		t.Errorf("sampling triggered %d dumps", got)
	}
	if got := len(rec.Snapshot()); got != 2*sampled {
		t.Errorf("ring holds %d records, want %d", got, 2*sampled)
	}

	// Re-enabling with the same seed makes the same decisions.
	first := make([]bool, 16)
	EnableTracing(99, testClock(), 4)
	for i := range first {
		sp := StartRoot("r")
		first[i] = sp.Recording()
		sp.End()
	}
	EnableTracing(99, testClock(), 4)
	for i := range first {
		sp := StartRoot("r")
		if sp.Recording() != first[i] {
			t.Fatalf("root %d: sampling not deterministic across re-seeds", i)
		}
		sp.End()
	}
}

func TestStartSpanBoundary(t *testing.T) {
	withTracing(t, 1)
	// No incoming context: a fresh sampled root.
	root := StartSpan(SpanContext{}, "dht.serve")
	if !root.Recording() || root.Context().Trace == 0 {
		t.Fatalf("boundary root not recording: %+v", root.Context())
	}
	// Incoming context: a child of it.
	child := StartSpan(root.Context(), "dht.serve")
	if child.Context().Trace != root.Context().Trace {
		t.Error("boundary child re-rooted the trace")
	}
	child.End()
	root.End()
}

func TestSpanContextWireRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xabc, Span: 0xdef, Sampled: true}
	buf := sc.MarshalWire()
	if buf == nil {
		t.Fatal("sampled context marshalled to nil")
	}
	if got := SpanContextFromWire(buf); got != sc {
		t.Errorf("round-trip: got %+v, want %+v", got, sc)
	}
	if (SpanContext{}).MarshalWire() != nil {
		t.Error("zero context marshalled to bytes")
	}
	if (SpanContext{Trace: 1, Span: 1, Sampled: false}).MarshalWire() != nil {
		t.Error("unsampled context marshalled to bytes")
	}
	if got := SpanContextFromWire(nil); got != (SpanContext{}) {
		t.Errorf("nil bytes decoded to %+v", got)
	}
	if got := SpanContextFromWire([]byte("garbage")); got != (SpanContext{}) {
		t.Errorf("garbage decoded to %+v", got)
	}
}

func TestAttrOverflowIgnored(t *testing.T) {
	rec := withTracing(t, 1)
	sp := StartRoot("r")
	for i := 0; i < flight.MaxAttrs+3; i++ {
		sp.Attr("k", int64(i))
	}
	sp.End()
	recs := rec.Snapshot()
	if len(recs) != 1 || len(recs[0].Attrs) != flight.MaxAttrs {
		t.Fatalf("attrs = %+v", recs)
	}
}

func TestEventRecords(t *testing.T) {
	rec := withTracing(t, 1)
	sp := StartRoot("journal.recover")
	sp.Event("segment.rotated")
	sp.End()
	recs := rec.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want event + span", len(recs))
	}
	ev := recs[0]
	if ev.Kind != flight.KindEvent || ev.Name != "segment.rotated" || ev.Parent != recs[1].Span {
		t.Errorf("event = %+v", ev)
	}
}
