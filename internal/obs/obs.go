// Package obs is the tracing side of the observability layer: spans that
// time a region of code into a metrics.Histogram, built around an
// injectable clock so the deterministic packages (core, sparse, journal,
// dht, peer — see the wallclock analyzer) never read wall time
// themselves. Binaries construct tracers with obs.WallClock; tests and
// simulations inject a virtual clock; a nil *Tracer disables timing
// entirely at the cost of one branch, which is how instrumentation stays
// out of the replay-determinism and benchmark budgets when unused.
package obs

import (
	"time"

	"mdrep/internal/metrics"
)

// Clock supplies the current time. The deterministic packages must only
// obtain a Clock by injection — referencing WallClock (or time.Now)
// inside them is flagged by the wallclock analyzer.
type Clock func() time.Time

// WallClock is the real-time clock for daemons and command-line tools.
func WallClock() time.Time { return time.Now() }

// Tracer stamps spans with a clock. The zero of *Tracer (nil) is a valid
// disabled tracer: Start returns an inert span and End does nothing.
type Tracer struct {
	clock Clock
}

// NewTracer builds a tracer on the given clock. A nil clock yields a
// disabled tracer.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		return nil
	}
	return &Tracer{clock: clock}
}

// Span is an in-flight timed region. It is a value type with no
// allocation: `defer tr.Start(h).End()` costs two clock reads and one
// histogram observation.
type Span struct {
	clock Clock
	start time.Time
	hist  *metrics.Histogram
}

// Start opens a span that will observe its duration, in seconds, into h
// when ended. On a nil tracer or nil histogram the span is inert.
func (t *Tracer) Start(h *metrics.Histogram) Span {
	if t == nil || h == nil {
		return Span{}
	}
	return Span{clock: t.clock, start: t.clock(), hist: h}
}

// End closes the span, recording elapsed seconds.
func (s Span) End() {
	if s.hist == nil {
		return
	}
	s.hist.Observe(s.clock().Sub(s.start).Seconds())
}

// Now exposes the tracer's clock for call sites that need a raw
// timestamp (e.g. to time across goroutine boundaries). Returns the zero
// time on a nil tracer.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock()
}

// SinceSeconds returns seconds elapsed from start on the tracer's clock,
// 0 on a nil tracer.
func (t *Tracer) SinceSeconds(start time.Time) float64 {
	if t == nil {
		return 0
	}
	return t.clock().Sub(start).Seconds()
}
