// Causal tracing: real spans with trace/span/parent IDs on top of the
// histogram-only obs.Span. A TSpan names one region of one request,
// carries a bounded set of attributes, classifies its ending through
// the internal/fault taxonomy, and streams its record into the flight
// recorder ring (internal/flight) when it ends. Span contexts thread
// explicitly through call chains (Go has no ambient request context in
// this codebase's deterministic core) and cross process boundaries as
// a wire.TraceContext header, so one walk estimate stitches into one
// tree of estimator → row-fetch → retry-attempt → DHT-RPC spans.
//
// Determinism contract: tracing draws no randomness from any shared
// stream (IDs come from a private splitmix64 counter), never advances
// a virtual clock (timestamps are read from the injected Clock but
// influence no control flow), and sampling is a pure function of the
// seeded trace ID — so enabling tracing cannot perturb a chaos
// schedule or a walk estimate by a single byte.
package obs

import (
	"sync/atomic"
	"time"

	"mdrep/internal/fault"
	"mdrep/internal/flight"
	"mdrep/internal/wire"
)

// SpanContext identifies a position in a trace: the trace it belongs
// to, the span that is current, and whether the trace was sampled at
// its root. The zero SpanContext is "no trace"; an unsampled context
// still carries IDs so a trace keeps its identity across hops without
// recording anything.
type SpanContext struct {
	Trace   uint64
	Span    uint64
	Sampled bool
}

// Valid reports whether the context names a real trace position.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// MarshalWire encodes the context as a TRC1 header for a wire frame,
// or nil when there is nothing worth propagating (invalid, or
// unsampled — the receiver would ignore it anyway and start fresh).
func (sc SpanContext) MarshalWire() []byte {
	if !sc.Valid() || !sc.Sampled {
		return nil
	}
	buf, err := wire.TraceContext{Trace: sc.Trace, Span: sc.Span, Sampled: true}.Encode()
	if err != nil {
		return nil
	}
	return buf
}

// SpanContextFromWire decodes a TRC1 header from a frame. Absent,
// truncated, or corrupt headers yield the zero context — tracing is
// best-effort at the boundary, never a request failure.
func SpanContextFromWire(buf []byte) SpanContext {
	if len(buf) == 0 {
		return SpanContext{}
	}
	tc, err := wire.DecodeTraceContext(buf)
	if err != nil {
		return SpanContext{}
	}
	return SpanContext{Trace: tc.Trace, Span: tc.Span, Sampled: tc.Sampled}
}

// TraceSink generates IDs, decides sampling, and stamps spans with its
// clock. One sink is installed process-wide by EnableTracing.
type TraceSink struct {
	clock Clock
	seed  uint64
	every uint64
	ctr   atomic.Uint64
}

var tracing atomic.Pointer[TraceSink]

// EnableTracing installs a process-wide trace sink: IDs derive from
// seed via a private splitmix64 counter, timestamps come from clock,
// and one in sampleEvery root spans is sampled (≤1 samples all).
// A nil clock disables tracing.
func EnableTracing(seed uint64, clock Clock, sampleEvery int) {
	if clock == nil {
		tracing.Store(nil)
		return
	}
	s := &TraceSink{clock: clock, seed: seed, every: 1}
	if sampleEvery > 1 {
		s.every = uint64(sampleEvery)
	}
	tracing.Store(s)
}

// DisableTracing uninstalls the trace sink; in-flight spans finish
// against the sink they started with.
func DisableTracing() { tracing.Store(nil) }

// TracingEnabled reports whether a sink is installed.
func TracingEnabled() bool { return tracing.Load() != nil }

// nextID draws a fresh nonzero ID from the sink's private counter —
// no shared RNG stream is consumed, so replay determinism holds.
func (s *TraceSink) nextID() uint64 {
	id := mix64(s.seed + s.ctr.Add(1)*0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	return id
}

// sampled is the deterministic root-sampling decision: a pure function
// of the trace ID, so the same seed samples the same traces.
func (s *TraceSink) sampledTrace(trace uint64) bool {
	if s.every <= 1 {
		return true
	}
	return mix64(trace)%s.every == 0
}

// mix64 is the splitmix64 finalizer, the repo's standard bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TSpan is one in-flight causal span. The zero TSpan is inert: every
// method is a cheap no-op, which is how disabled tracing and
// sampled-out traces cost one branch per call site. TSpan is used by
// pointer so attribute stores do not copy; it must not escape the
// request that created it.
type TSpan struct {
	sink   *TraceSink
	sc     SpanContext
	parent uint64
	name   string
	start  time.Time
	nattr  int
	attrs  [flight.MaxAttrs]flight.Attr
}

// StartRoot opens a new trace. When the sink samples the trace out (or
// tracing is disabled after IDs were drawn), the returned span records
// nothing but still carries an unsampled context, so downstream
// children inherit the decision instead of re-rooting.
func StartRoot(name string) TSpan {
	s := tracing.Load()
	if s == nil {
		return TSpan{}
	}
	trace := s.nextID()
	if !s.sampledTrace(trace) {
		return TSpan{sc: SpanContext{Trace: trace, Span: trace, Sampled: false}}
	}
	return TSpan{
		sink:  s,
		sc:    SpanContext{Trace: trace, Span: trace, Sampled: true},
		name:  name,
		start: s.clock(),
	}
}

// StartChild opens a span under parent. An invalid parent yields an
// inert span; an unsampled parent propagates its context unrecorded.
func StartChild(parent SpanContext, name string) TSpan {
	if !parent.Valid() {
		return TSpan{}
	}
	if !parent.Sampled {
		return TSpan{sc: parent}
	}
	s := tracing.Load()
	if s == nil {
		return TSpan{sc: parent}
	}
	return TSpan{
		sink:   s,
		sc:     SpanContext{Trace: parent.Trace, Span: s.nextID(), Sampled: true},
		parent: parent.Span,
		name:   name,
		start:  s.clock(),
	}
}

// StartSpan is the boundary helper: a child when the caller supplied a
// context, a fresh root otherwise. Transport servers and shared
// plumbing use it so untraced maintenance traffic still feeds the
// always-on flight ring as roots of its own.
func StartSpan(parent SpanContext, name string) TSpan {
	if parent.Valid() {
		return StartChild(parent, name)
	}
	return StartRoot(name)
}

// Context returns the span's context for propagation to children and
// across the wire.
func (t *TSpan) Context() SpanContext { return t.sc }

// Recording reports whether End will emit a record.
func (t *TSpan) Recording() bool { return t.sink != nil }

// Attr attaches an integer attribute. Keys must come from package
// const tables (enforced by the metriclabel analyzer) so trace
// cardinality stays bounded; values are free. Attributes beyond
// flight.MaxAttrs are dropped.
func (t *TSpan) Attr(key string, val int64) {
	if t.sink == nil || t.nattr >= flight.MaxAttrs {
		return
	}
	t.attrs[t.nattr] = flight.Attr{Key: key, Val: val}
	t.nattr++
}

// AttrStr attaches a string attribute; same key discipline as Attr.
// Values longer than the flight ring's packed window are truncated at
// record time.
func (t *TSpan) AttrStr(key, val string) {
	if t.sink == nil || t.nattr >= flight.MaxAttrs {
		return
	}
	t.attrs[t.nattr] = flight.Attr{Key: key, Str: val}
	t.nattr++
}

// Event drops a point-in-time marker inside the span.
func (t *TSpan) Event(name string) {
	if t.sink == nil {
		return
	}
	now := t.sink.clock().UnixNano()
	e := flight.Entry{
		Trace:  t.sc.Trace,
		Span:   t.sc.Span,
		Parent: t.sc.Span,
		Kind:   flight.KindEvent,
		Start:  now,
		Name:   name,
	}
	flight.Emit(&e)
}

// End finishes the span successfully.
func (t *TSpan) End() { t.EndErr(nil) }

// EndErr finishes the span with err's fault classification, emits its
// record into the flight ring, and — when err is fault.Terminal —
// triggers a black-box dump so the ring's view of the moments before
// the fault is preserved. Idempotent: later calls are no-ops.
func (t *TSpan) EndErr(err error) {
	s := t.sink
	if s == nil {
		return
	}
	t.sink = nil
	end := s.clock()
	e := flight.Entry{
		Trace:    t.sc.Trace,
		Span:     t.sc.Span,
		Parent:   t.parent,
		Kind:     flight.KindSpan,
		Status:   flight.StatusOf(err),
		Start:    t.start.UnixNano(),
		Duration: end.Sub(t.start).Nanoseconds(),
		Name:     t.name,
		Attrs:    t.attrs,
		NAttrs:   t.nattr,
	}
	flight.Emit(&e)
	if fault.IsTerminal(err) {
		flight.TriggerDump(dumpReasonTerminal + t.name)
	}
}

// dumpReasonTerminal prefixes the flight-dump reason for terminal span
// failures.
const dumpReasonTerminal = "fault.terminal: "
