package obs

import (
	"testing"

	"mdrep/internal/testutil"
)

// TestMain enforces the goroutine-leak check over the package tests:
// Serve spawns the HTTP listener goroutine, and a test that forgets to
// Close it must fail here rather than leak into later packages.
func TestMain(m *testing.M) {
	testutil.RunMain(m)
}
