package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"mdrep/internal/flight"
	"mdrep/internal/metrics"
)

// The HTTP introspection endpoint behind the -metrics-addr flag of
// mdrep-peer and mdrep-dht: Prometheus text exposition at /metrics,
// readiness at /healthz, flight-recorder dumps at /debug/flight, expvar
// at /debug/vars, and the standard pprof handlers at /debug/pprof/.
// Everything binds to a caller-chosen address and is opt-in; nothing is
// registered on http.DefaultServeMux.

// expvar.Publish panics on duplicate names, so the process-wide
// "mdrep_metrics" var is published once and reads whichever registry was
// exposed last — in practice one per process.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mdrep_metrics", expvar.Func(func() interface{} {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			return r.ExpvarMap()
		}))
	})
}

// NewMux builds the introspection handler tree for reg.
func NewMux(reg *metrics.Registry) *http.ServeMux {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Ready once a registry is bound to the endpoint; the expvar
		// pointer is set by publishExpvar before the listener accepts.
		if reg == nil || expvarReg.Load() == nil {
			http.Error(w, "not ready: no metrics registry bound", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		rec := flight.Active()
		if rec == nil {
			http.Error(w, "flight recorder not installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Query().Get("ring") != "" {
			// Live ring view, for peeking without a fault.
			fmt.Fprint(w, flight.RenderTraces(rec.Snapshot()))
			return
		}
		dumps := rec.Dumps()
		if len(dumps) == 0 {
			fmt.Fprintln(w, "no flight dumps recorded")
			return
		}
		for _, d := range dumps {
			fmt.Fprint(w, flight.RenderDump(d))
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mdrep introspection\n/metrics\n/healthz\n/debug/flight\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port) and returns immediately; the HTTP loop runs in a background
// goroutine until Close.
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43210".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
