package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"mdrep/internal/metrics"
)

// The HTTP introspection endpoint behind the -metrics-addr flag of
// mdrep-peer and mdrep-dht: Prometheus text exposition at /metrics,
// expvar at /debug/vars, and the standard pprof handlers at
// /debug/pprof/. Everything binds to a caller-chosen address and is
// opt-in; nothing is registered on http.DefaultServeMux.

// expvar.Publish panics on duplicate names, so the process-wide
// "mdrep_metrics" var is published once and reads whichever registry was
// exposed last — in practice one per process.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mdrep_metrics", expvar.Func(func() interface{} {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			return r.ExpvarMap()
		}))
	})
}

// NewMux builds the introspection handler tree for reg.
func NewMux(reg *metrics.Registry) *http.ServeMux {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mdrep introspection\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port) and returns immediately; the HTTP loop runs in a background
// goroutine until Close.
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43210".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
