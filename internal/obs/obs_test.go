package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mdrep/internal/metrics"
)

// fakeClock is a manually advanced clock for deterministic span tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Clock() Clock { return func() time.Time { return c.now } }

func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestSpanObservesDuration(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("op_seconds", []float64{0.1, 1, 10})
	fc := &fakeClock{now: time.Unix(1000, 0)}
	tr := NewTracer(fc.Clock())

	sp := tr.Start(h)
	fc.Advance(2 * time.Second)
	sp.End()

	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if h.Sum() != 2 {
		t.Fatalf("sum = %v, want 2s", h.Sum())
	}
}

func TestNilTracerAndHistogramAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(nil)
	sp.End() // must not panic
	if got := tr.Now(); !got.IsZero() {
		t.Errorf("nil tracer Now = %v, want zero", got)
	}
	if got := tr.SinceSeconds(time.Unix(5, 0)); got != 0 {
		t.Errorf("nil tracer SinceSeconds = %v, want 0", got)
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) should return a nil (disabled) tracer")
	}

	reg := metrics.NewRegistry()
	h := reg.Histogram("x_seconds", []float64{1})
	live := NewTracer(WallClock)
	live.Start(nil).End() // nil histogram: also inert
	if h.Count() != 0 {
		t.Error("nil-histogram span observed something")
	}
}

func TestSpanZeroAlloc(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("z_seconds", metrics.DurationBuckets)
	fc := &fakeClock{now: time.Unix(0, 0)}
	tr := NewTracer(fc.Clock())
	if n := testing.AllocsPerRun(1000, func() { tr.Start(h).End() }); n != 0 {
		t.Errorf("span start/end allocates %v bytes/op", n)
	}
	var disabled *Tracer
	if n := testing.AllocsPerRun(1000, func() { disabled.Start(h).End() }); n != 0 {
		t.Errorf("disabled span allocates %v bytes/op", n)
	}
}

func TestServeIntrospection(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("test_total", "op", "x").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, `test_total{op="x"} 5`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["mdrep_metrics"]; !ok {
		t.Error("/debug/vars missing mdrep_metrics")
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body := get("/"); !strings.Contains(body, "/metrics") {
		t.Error("index page missing endpoint list")
	}
}

// A second Serve with a fresh registry must repoint /debug/vars rather
// than panic on a duplicate expvar name.
func TestServeTwiceRepublishesExpvar(t *testing.T) {
	for i := 0; i < 2; i++ {
		reg := metrics.NewRegistry()
		reg.Counter("gen_total").Add(uint64(i + 1))
		srv, err := Serve("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		_ = srv.Close()
		want := fmt.Sprintf(`"gen_total":%d`, i+1)
		if !strings.Contains(string(body), want) {
			t.Errorf("round %d: /debug/vars missing %s:\n%s", i, want, body)
		}
	}
}
