package blue

import (
	"math"
	"testing"
)

func TestEstimateBasics(t *testing.T) {
	cfg := DefaultConfig()
	samples := []Sample{
		{Rater: 0, Target: 2, Sat: 50, Unsat: 0},  // long clean history
		{Rater: 1, Target: 2, Sat: 45, Unsat: 5},  // long mostly-clean
		{Rater: 0, Target: 3, Sat: 0, Unsat: 50},  // long bad history
		{Rater: 1, Target: 4, Sat: 1, Unsat: 0},   // one-shot praise
		{Rater: 3, Target: 4, Sat: 0, Unsat: 40},  // long bad history
		{Rater: 2, Target: 1, Sat: 10, Unsat: 10}, // ambivalent
	}
	trust, err := Estimate(6, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trust[2] < 0.85 {
		t.Fatalf("well-rated peer trust = %v, want high", trust[2])
	}
	if trust[3] > 0.15 {
		t.Fatalf("badly-rated peer trust = %v, want low", trust[3])
	}
	// One positive one-shot must not outweigh a long negative history.
	if trust[4] > 0.4 {
		t.Fatalf("one-shot praise beat long bad history: trust = %v", trust[4])
	}
	// Unobserved peers sit at the prior mean.
	if trust[5] != cfg.PriorMean || trust[0] != cfg.PriorMean {
		t.Fatalf("unobserved trust = %v/%v, want %v", trust[0], trust[5], cfg.PriorMean)
	}
	for j, v := range trust {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("trust[%d] = %v outside [0,1]", j, v)
		}
	}
}

func TestEstimateInverseVarianceWeighting(t *testing.T) {
	// A precise (many-trial) observation must dominate a noisy one.
	samples := []Sample{
		{Rater: 0, Target: 1, Sat: 90, Unsat: 10}, // precise: mean ~0.9
		{Rater: 2, Target: 1, Sat: 0, Unsat: 2},   // noisy: mean ~0.17
	}
	trust, err := Estimate(3, samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if trust[1] < 0.6 {
		t.Fatalf("precise observation did not dominate: trust = %v", trust[1])
	}
}

func TestEstimateDeterministic(t *testing.T) {
	samples := []Sample{
		{Rater: 0, Target: 1, Sat: 3, Unsat: 1},
		{Rater: 2, Target: 1, Sat: 1, Unsat: 7},
		{Rater: 3, Target: 1, Sat: 11, Unsat: 2},
	}
	a, err := Estimate(4, samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(4, samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			t.Fatalf("trust[%d] not bit-identical across reruns", j)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Estimate(0, nil, cfg); err == nil {
		t.Fatal("want error for empty population")
	}
	if _, err := Estimate(2, []Sample{{Rater: 5, Target: 0, Sat: 1}}, cfg); err == nil {
		t.Fatal("want error for out-of-range rater")
	}
	if _, err := Estimate(2, []Sample{{Rater: 0, Target: 1, Sat: -1}}, cfg); err == nil {
		t.Fatal("want error for negative counts")
	}
	bad := cfg
	bad.VarFloor = 0
	if _, err := Estimate(2, nil, bad); err == nil {
		t.Fatal("want error for zero variance floor")
	}
	bad = cfg
	bad.Prior = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for negative prior")
	}
	bad = cfg
	bad.PriorMean = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for prior mean outside [0,1]")
	}
}
