// Package blue implements trust estimation by Best Linear Unbiased
// Estimation (Gupta & Singh, "Trust Estimation in Peer-to-Peer Network
// Using BLUE", arXiv:1304.1649) — a comparison baseline alongside
// internal/eigentrust for the massim adversarial scenarios.
//
// Each rater i holds an empirical satisfaction estimate m_ij for target
// j with a Bernoulli-mean sampling variance v_ij ≈ m(1−m)/n. The BLUE of
// j's trust given uncorrelated unbiased observations is the
// inverse-variance weighted combination
//
//	t_j = Σ_i (m_ij / v_ij) / Σ_i (1 / v_ij)
//
// which weighs long, consistent histories heavily and noisy one-shot
// opinions lightly. Unlike EigenTrust it needs no global iteration and
// no pre-trusted set, but it also does not discount a dishonest rater's
// opinion by the rater's own standing — the weakness the massim
// collusion scenarios measure.
package blue

import (
	"errors"
	"fmt"
)

// Sample is one rater's aggregated experience with one target.
type Sample struct {
	// Rater and Target are peer indices in [0, n).
	Rater, Target int
	// Sat and Unsat count satisfactory and unsatisfactory interactions.
	Sat, Unsat float64
}

// Config parameterises the estimator.
type Config struct {
	// Prior is the Beta-prior pseudo-count added to both outcomes; it
	// regularises one-interaction histories.
	Prior float64
	// PriorMean is the trust assigned to targets nobody has rated.
	PriorMean float64
	// VarFloor keeps observation variances away from zero so a long
	// unanimous history cannot claim infinite precision.
	VarFloor float64
}

// DefaultConfig returns the estimator defaults.
func DefaultConfig() Config {
	return Config{Prior: 1, PriorMean: 0.5, VarFloor: 1e-4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Prior < 0:
		return errors.New("blue: negative prior")
	case c.PriorMean < 0 || c.PriorMean > 1:
		return errors.New("blue: prior mean outside [0,1]")
	case c.VarFloor <= 0:
		return errors.New("blue: non-positive variance floor")
	}
	return nil
}

// Estimate returns the BLUE trust vector for n peers from the given
// samples. It is deterministic: samples are folded in slice order, so
// callers that need bit-identical reruns present them in a stable order.
// Samples about targets with no observations default to PriorMean.
func Estimate(n int, samples []Sample, cfg Config) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("blue: population %d, want >= 1", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	num := make([]float64, n)
	den := make([]float64, n)
	for k, s := range samples {
		if s.Rater < 0 || s.Rater >= n || s.Target < 0 || s.Target >= n {
			return nil, fmt.Errorf("blue: sample %d references peer outside [0, %d)", k, n)
		}
		if s.Sat < 0 || s.Unsat < 0 {
			return nil, fmt.Errorf("blue: sample %d has negative counts", k)
		}
		trials := s.Sat + s.Unsat
		if trials == 0 {
			continue
		}
		m := (s.Sat + cfg.Prior*cfg.PriorMean) / (trials + cfg.Prior)
		v := m*(1-m)/(trials+cfg.Prior) + cfg.VarFloor
		num[s.Target] += m / v
		den[s.Target] += 1 / v
	}
	t := make([]float64, n)
	for j := range t {
		if den[j] > 0 {
			t[j] = num[j] / den[j]
		} else {
			t[j] = cfg.PriorMean
		}
	}
	return t, nil
}
