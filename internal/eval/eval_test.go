package eval

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mdrep/internal/identity"
)

func TestBlendValidate(t *testing.T) {
	if err := DefaultBlend().Validate(); err != nil {
		t.Fatalf("DefaultBlend invalid: %v", err)
	}
	bad := []Blend{
		{Eta: 0.5, Rho: 0.6},
		{Eta: -0.1, Rho: 1.1},
		{Eta: 1.2, Rho: -0.2},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("blend %+v validated", b)
		}
	}
}

func TestRecordValueUnvotedUsesImplicit(t *testing.T) {
	r := Record{Implicit: 0.7, Explicit: 0.1, Voted: false}
	if got := r.Value(DefaultBlend()); got != 0.7 {
		t.Fatalf("unvoted value = %v, want implicit 0.7", got)
	}
}

func TestRecordValueVotedBlends(t *testing.T) {
	b := Blend{Eta: 0.4, Rho: 0.6}
	r := Record{Implicit: 0.5, Explicit: 1.0, Voted: true}
	want := 0.4*0.5 + 0.6*1.0
	if got := r.Value(b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("voted value = %v, want %v", got, want)
	}
}

func TestRecordValueClamped(t *testing.T) {
	r := Record{Implicit: 5, Voted: false}
	if got := r.Value(DefaultBlend()); got != 1 {
		t.Fatalf("value %v not clamped to 1", got)
	}
	r = Record{Implicit: -3, Voted: false}
	if got := r.Value(DefaultBlend()); got != 0 {
		t.Fatalf("value %v not clamped to 0", got)
	}
}

func TestRetentionModelMonotone(t *testing.T) {
	m := DefaultRetentionModel()
	prev := -1.0
	for h := 0; h <= 24*14; h += 6 {
		v := m.Implicit(time.Duration(h)*time.Hour, false)
		if v < prev {
			t.Fatalf("implicit evaluation decreased at %dh: %v < %v", h, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("implicit evaluation %v out of range", v)
		}
		prev = v
	}
	if got := m.Implicit(0, false); got != m.Floor {
		t.Fatalf("retention 0 → %v, want floor %v", got, m.Floor)
	}
	if got := m.Implicit(30*24*time.Hour, false); got != 1 {
		t.Fatalf("long retention → %v, want 1", got)
	}
}

func TestRetentionModelDeletion(t *testing.T) {
	m := DefaultRetentionModel()
	immediate := m.Implicit(0, true)
	if immediate != 0 {
		t.Fatalf("immediate deletion → %v, want 0", immediate)
	}
	late := m.Implicit(m.Saturation, true)
	if math.Abs(late-0.5) > 1e-12 {
		t.Fatalf("deletion at saturation → %v, want 0.5", late)
	}
	kept := m.Implicit(m.Saturation, false)
	if late >= kept {
		t.Fatalf("deletion (%v) should score below keeping (%v)", late, kept)
	}
}

func TestRetentionModelZeroSaturation(t *testing.T) {
	m := RetentionModel{Saturation: 0, Floor: 0.3}
	if got := m.Implicit(time.Hour, false); got != 0.3 {
		t.Fatalf("zero-saturation model → %v, want floor", got)
	}
}

func TestStoreVoteAndImplicit(t *testing.T) {
	s, err := NewStore(Blend{Eta: 0.5, Rho: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetImplicit("f1", 0.8, 0)
	v, ok := s.Get("f1", 0)
	if !ok || v != 0.8 {
		t.Fatalf("Get after SetImplicit = %v, %v", v, ok)
	}
	s.Vote("f1", 0.2, time.Second)
	v, ok = s.Get("f1", time.Second)
	want := 0.5*0.8 + 0.5*0.2
	if !ok || math.Abs(v-want) > 1e-12 {
		t.Fatalf("Get after Vote = %v, want %v", v, want)
	}
}

func TestStoreVotePreservedAcrossImplicitUpdate(t *testing.T) {
	s, err := NewStore(Blend{Eta: 0.5, Rho: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Vote("f", 1.0, 0)
	s.SetImplicit("f", 0.0, time.Second)
	r, ok := s.Record("f", time.Second)
	if !ok || !r.Voted || r.Explicit != 1.0 {
		t.Fatalf("vote lost after implicit update: %+v", r)
	}
}

func TestStoreWindowExpiry(t *testing.T) {
	s, err := NewStore(DefaultBlend(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.SetImplicit("old", 0.9, 0)
	s.SetImplicit("new", 0.9, 2*time.Hour)
	if _, ok := s.Get("old", 2*time.Hour); ok {
		t.Fatal("expired evaluation still readable")
	}
	if _, ok := s.Get("new", 2*time.Hour); !ok {
		t.Fatal("live evaluation not readable")
	}
	if files := s.Files(2 * time.Hour); len(files) != 1 || files[0] != "new" {
		t.Fatalf("Files = %v", files)
	}
	if removed := s.Compact(2 * time.Hour); removed != 1 {
		t.Fatalf("Compact removed %d, want 1", removed)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after compact", s.Len())
	}
}

func TestStoreUpdateRefreshesWindow(t *testing.T) {
	s, err := NewStore(DefaultBlend(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.SetImplicit("f", 0.5, 0)
	s.Vote("f", 0.9, 50*time.Minute) // refresh at 50m
	if _, ok := s.Get("f", 100*time.Minute); !ok {
		t.Fatal("refreshed evaluation expired early")
	}
}

func TestStoreForget(t *testing.T) {
	s, err := NewStore(DefaultBlend(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetImplicit("f", 0.5, 0)
	s.Forget("f")
	if _, ok := s.Get("f", 0); ok {
		t.Fatal("forgotten evaluation still readable")
	}
}

func TestStoreSnapshotIsCopy(t *testing.T) {
	s, err := NewStore(DefaultBlend(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetImplicit("f", 0.5, 0)
	snap := s.Snapshot(0)
	snap["f"] = 99
	if v, _ := s.Get("f", 0); v != 0.5 {
		t.Fatal("Snapshot exposed internal state")
	}
}

func TestStoreRejectsBadConfig(t *testing.T) {
	if _, err := NewStore(Blend{Eta: 1, Rho: 1}, 0); err == nil {
		t.Fatal("invalid blend accepted")
	}
	if _, err := NewStore(DefaultBlend(), -time.Second); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestStoreValuesAlwaysInRange(t *testing.T) {
	s, err := NewStore(DefaultBlend(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(impl, expl float64, voted bool) bool {
		s.SetImplicit("f", impl, 0)
		if voted {
			s.Vote("f", expl, 0)
		} else {
			s.Forget("f")
			s.SetImplicit("f", impl, 0)
		}
		v, ok := s.Get("f", 0)
		return ok && v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newSignedInfo(t *testing.T, seed uint64) (*Info, *identity.Identity, *identity.Directory) {
	t.Helper()
	id, err := identity.Generate(identity.NewDeterministicReader(seed))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	if _, err := dir.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	info := &Info{
		FileID:     "abc123",
		OwnerID:    id.ID(),
		Evaluation: 0.85,
		Timestamp:  42 * time.Second,
	}
	if err := info.Sign(id); err != nil {
		t.Fatal(err)
	}
	return info, id, dir
}

func TestInfoSignVerifyRoundTrip(t *testing.T) {
	info, _, dir := newSignedInfo(t, 100)
	if err := info.Verify(dir); err != nil {
		t.Fatalf("valid info rejected: %v", err)
	}
}

func TestInfoVerifyRejectsTampering(t *testing.T) {
	tamper := []func(*Info){
		func(in *Info) { in.Evaluation = 0.1 },
		func(in *Info) { in.FileID = "evil" },
		func(in *Info) { in.Timestamp++ },
	}
	for i, mutate := range tamper {
		info, _, dir := newSignedInfo(t, 200+uint64(i))
		mutate(info)
		if err := info.Verify(dir); err == nil {
			t.Fatalf("tampering %d not detected", i)
		}
	}
}

func TestInfoVerifyRejectsOutOfRange(t *testing.T) {
	info, id, dir := newSignedInfo(t, 300)
	info.Evaluation = 1.5
	// Re-sign so only the range check can fail.
	if err := info.Sign(id); err != nil {
		t.Fatal(err)
	}
	if err := info.Verify(dir); err != ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestInfoSignRejectsNonOwner(t *testing.T) {
	info, _, _ := newSignedInfo(t, 400)
	other, err := identity.Generate(identity.NewDeterministicReader(401))
	if err != nil {
		t.Fatal(err)
	}
	if err := info.Sign(other); err == nil {
		t.Fatal("non-owner signature accepted")
	}
}

func TestInfoMarshalRoundTrip(t *testing.T) {
	info, _, dir := newSignedInfo(t, 500)
	data, err := info.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalInfo(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(dir); err != nil {
		t.Fatalf("round-tripped info failed verification: %v", err)
	}
	if got.FileID != info.FileID || got.Evaluation != info.Evaluation {
		t.Fatalf("round trip changed fields: %+v vs %+v", got, info)
	}
}

func TestUnmarshalInfoRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalInfo([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
