// Package eval implements the evaluation model of §3.1.1: per-file
// implicit evaluations inferred from retention time, explicit evaluations
// from votes, and their weighted blend
//
//	E_ij = IE_ij                     if user i did not vote on file j
//	E_ij = η·IE_ij + ρ·EE_ij         if user i voted, η + ρ = 1   (Eq. 1)
//
// together with windowed per-peer evaluation stores (§4.3: "users only
// need to preserve the evaluations within an interval") and the signed
// EvaluationInfo record published to the DHT (§4.1).
package eval

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// FileID identifies a file by content hash, as in the Maze log schema.
type FileID string

// Blend holds the weights of Eq. (1). The zero value is invalid; use
// DefaultBlend or construct explicitly and Validate.
type Blend struct {
	// Eta weights the implicit (retention-time) evaluation.
	Eta float64
	// Rho weights the explicit (vote) evaluation.
	Rho float64
}

// DefaultBlend weights explicit votes above implicit retention because
// votes "reflect a user's evaluation of files more accurately" (§3.1.1).
func DefaultBlend() Blend { return Blend{Eta: 0.4, Rho: 0.6} }

// Validate checks η, ρ ∈ [0,1] and η + ρ = 1.
func (b Blend) Validate() error {
	if b.Eta < 0 || b.Eta > 1 || b.Rho < 0 || b.Rho > 1 {
		return errors.New("eval: blend weights must lie in [0,1]")
	}
	if d := b.Eta + b.Rho; d < 1-1e-9 || d > 1+1e-9 {
		return fmt.Errorf("eval: blend weights sum to %v, want 1", d)
	}
	return nil
}

// Record is one user's evaluation state for one file.
type Record struct {
	// Implicit is the retention-inferred evaluation in [0,1].
	Implicit float64
	// Explicit is the vote in [0,1]; meaningful only when Voted.
	Explicit float64
	// Voted reports whether the user cast an explicit vote.
	Voted bool
	// UpdatedAt is the virtual time of the last update, used for window
	// expiry.
	UpdatedAt time.Duration
}

// Value returns the blended evaluation E of Eq. (1).
func (r Record) Value(b Blend) float64 {
	if !r.Voted {
		return clamp01(r.Implicit)
	}
	return clamp01(b.Eta*r.Implicit + b.Rho*r.Explicit)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RetentionModel maps a file's retention time on a user's machine to an
// implicit evaluation in [0,1]. Retention saturates at Saturation: keeping
// a file that long signals full approval; deleting it immediately signals
// rejection. A minimum floor avoids punishing brand-new downloads.
type RetentionModel struct {
	// Saturation is the retention time mapped to IE = 1.
	Saturation time.Duration
	// Floor is the implicit evaluation of a file at retention zero; new
	// downloads start here and grow as the file survives.
	Floor float64
}

// DefaultRetentionModel saturates at 7 days with a floor of 0.5 (a fresh
// download is neutral until the user's behaviour reveals a judgement).
func DefaultRetentionModel() RetentionModel {
	return RetentionModel{Saturation: 7 * 24 * time.Hour, Floor: 0.5}
}

// Implicit maps a retention duration to an evaluation. Deleted is true
// when the user explicitly removed the file; deletion before saturation
// scales the evaluation down toward zero (fast deletion of a fake file is
// a strong negative signal, which the incentive mechanism rewards peers
// for producing quickly, §3.4).
func (m RetentionModel) Implicit(retention time.Duration, deleted bool) float64 {
	if m.Saturation <= 0 {
		return clamp01(m.Floor)
	}
	frac := float64(retention) / float64(m.Saturation)
	if frac > 1 {
		frac = 1
	}
	if deleted {
		// A deleted file's evaluation is proportional to how long it was
		// kept: immediate deletion → 0, deletion after saturation → ~0.5.
		return clamp01(0.5 * frac)
	}
	return clamp01(m.Floor + (1-m.Floor)*frac)
}

// Store holds one peer's evaluations with window expiry.
type Store struct {
	blend   Blend
	window  time.Duration // 0 disables expiry
	records map[FileID]Record
}

// NewStore builds an empty store. window is the evaluation retention
// interval of §4.3; zero keeps evaluations forever.
func NewStore(blend Blend, window time.Duration) (*Store, error) {
	if err := blend.Validate(); err != nil {
		return nil, err
	}
	if window < 0 {
		return nil, errors.New("eval: negative window")
	}
	return &Store{blend: blend, window: window, records: make(map[FileID]Record)}, nil
}

// Blend returns the store's blend weights.
func (s *Store) Blend() Blend { return s.blend }

// SetImplicit records an implicit evaluation for file f at time now,
// preserving any existing vote.
func (s *Store) SetImplicit(f FileID, v float64, now time.Duration) {
	r := s.records[f]
	r.Implicit = clamp01(v)
	r.UpdatedAt = now
	s.records[f] = r
}

// Vote records an explicit evaluation for file f at time now, preserving
// the implicit component.
func (s *Store) Vote(f FileID, v float64, now time.Duration) {
	r := s.records[f]
	r.Explicit = clamp01(v)
	r.Voted = true
	r.UpdatedAt = now
	s.records[f] = r
}

// Forget removes the evaluation of file f (e.g. the file churned away and
// the peer prunes state).
func (s *Store) Forget(f FileID) { delete(s.records, f) }

// Get returns the blended evaluation of file f at time now and whether a
// live (non-expired) evaluation exists.
func (s *Store) Get(f FileID, now time.Duration) (float64, bool) {
	r, ok := s.records[f]
	if !ok || s.expired(r, now) {
		return 0, false
	}
	return r.Value(s.blend), true
}

// Record returns the raw record for f, if present and live.
func (s *Store) Record(f FileID, now time.Duration) (Record, bool) {
	r, ok := s.records[f]
	if !ok || s.expired(r, now) {
		return Record{}, false
	}
	return r, true
}

func (s *Store) expired(r Record, now time.Duration) bool {
	return s.window > 0 && now-r.UpdatedAt > s.window
}

// Len returns the number of stored records, including expired ones not yet
// compacted.
func (s *Store) Len() int { return len(s.records) }

// ExpiredBetween returns the files whose evaluations were live at prev
// but have expired by now (prev < now). The engine's incremental matrix
// cache uses this to find rows invalidated purely by the passage of
// virtual time — an expiry changes FM and DM rows without any event
// being applied.
func (s *Store) ExpiredBetween(prev, now time.Duration) []FileID {
	if s.window <= 0 || now <= prev {
		return nil
	}
	var out []FileID
	for f, r := range s.records {
		if !s.expired(r, prev) && s.expired(r, now) {
			out = append(out, f)
		}
	}
	return out
}

// ExpiredFiles returns the files whose evaluations have expired as of
// now — exactly the records Compact(now) would drop.
func (s *Store) ExpiredFiles(now time.Duration) []FileID {
	if s.window <= 0 {
		return nil
	}
	var out []FileID
	for f, r := range s.records {
		if s.expired(r, now) {
			out = append(out, f)
		}
	}
	return out
}

// Compact drops expired records and returns how many were removed.
func (s *Store) Compact(now time.Duration) int {
	removed := 0
	for f, r := range s.records {
		if s.expired(r, now) {
			delete(s.records, f)
			removed++
		}
	}
	return removed
}

// Files returns the IDs of all live evaluations at time now, sorted for
// determinism.
func (s *Store) Files(now time.Duration) []FileID {
	out := make([]FileID, 0, len(s.records))
	for f, r := range s.records {
		if !s.expired(r, now) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns all live (file, value) pairs at time now; the map is a
// copy the caller may keep.
func (s *Store) Snapshot(now time.Duration) map[FileID]float64 {
	out := make(map[FileID]float64, len(s.records))
	for f, r := range s.records {
		if !s.expired(r, now) {
			out[f] = r.Value(s.blend)
		}
	}
	return out
}
