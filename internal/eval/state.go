package eval

// Export and Import move a store's raw records across a process
// boundary — the snapshot half of the durable-state subsystem
// (internal/journal). Records are exported verbatim, including entries
// that have expired but not yet been compacted: a snapshot must capture
// the store exactly as it is, or replaying the remaining journal tail on
// top of it diverges from the uninterrupted run.

// Export returns a copy of every record in the store, keyed by file.
func (s *Store) Export() map[FileID]Record {
	out := make(map[FileID]Record, len(s.records))
	for f, r := range s.records {
		out[f] = r
	}
	return out
}

// Import replaces the store's contents with a copy of records. The
// store's blend and window are unchanged — they are configuration, not
// state.
func (s *Store) Import(records map[FileID]Record) {
	s.records = make(map[FileID]Record, len(records))
	for f, r := range records {
		s.records[f] = r
	}
}
