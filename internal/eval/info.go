package eval

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"mdrep/internal/identity"
)

// Info is the EvaluationInfo record of §4.1, published to the DHT
// alongside a file's index entry:
//
//	EvaluationInfo = <FileID, OwnerID, Evaluation, Signature>
//
// A timestamp is added so republication supersedes stale copies and so
// replay of withdrawn evaluations is detectable.
type Info struct {
	FileID     FileID          `json:"fileId"`
	OwnerID    identity.PeerID `json:"ownerId"`
	Evaluation float64         `json:"evaluation"`
	Timestamp  time.Duration   `json:"timestampNanos"`
	Signature  []byte          `json:"signature,omitempty"`
}

// canonicalBytes is the byte string that is signed: a fixed-order,
// length-unambiguous encoding of the semantic fields. JSON is not used for
// signing because field order and float formatting are not canonical.
func (in *Info) canonicalBytes() []byte {
	b := make([]byte, 0, 96)
	b = append(b, "mdrep/eval/v1\x00"...)
	b = strconv.AppendInt(b, int64(len(in.FileID)), 10)
	b = append(b, ':')
	b = append(b, in.FileID...)
	b = strconv.AppendInt(b, int64(len(in.OwnerID)), 10)
	b = append(b, ':')
	b = append(b, in.OwnerID...)
	b = strconv.AppendFloat(b, in.Evaluation, 'g', 17, 64)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(in.Timestamp), 10)
	return b
}

// Sign fills Signature using the owner's identity. It fails if the signer
// is not the record's owner: peers may only publish their own evaluations.
func (in *Info) Sign(id *identity.Identity) error {
	if id.ID() != in.OwnerID {
		return fmt.Errorf("eval: signer %s is not owner %s", id.ID(), in.OwnerID)
	}
	in.Signature = id.Sign(in.canonicalBytes())
	return nil
}

// ErrOutOfRange is returned for evaluations outside [0,1].
var ErrOutOfRange = errors.New("eval: evaluation outside [0,1]")

// Verify checks the record's range and signature against the directory.
// This is the defence against attack 1 of §4.2 (forged or distorted
// evaluations).
func (in *Info) Verify(dir *identity.Directory) error {
	if in.Evaluation < 0 || in.Evaluation > 1 {
		return ErrOutOfRange
	}
	return dir.VerifyWith(in.OwnerID, in.canonicalBytes(), in.Signature)
}

// Marshal encodes the record as JSON for DHT storage and the TCP wire.
func (in *Info) Marshal() ([]byte, error) {
	return json.Marshal(in)
}

// UnmarshalInfo decodes a JSON-encoded record.
func UnmarshalInfo(data []byte) (*Info, error) {
	var in Info
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("eval: unmarshal info: %w", err)
	}
	return &in, nil
}
